#!/usr/bin/env python
"""The Sedov blast wave on a Cartesian mesh: non-mesh-aligned shocks.

BookLeaf runs Sedov on a Cartesian quadrant precisely to test shocks
that cross the mesh obliquely (paper Section III-B).  This example runs
the blast, compares the shock radius with the numerically-integrated
similarity solution (α computed from the ODEs, no magic constants) and
measures how round the computed front is.

Run:  python examples/sedov_blast.py
"""

import numpy as np

from repro.analytic import sedov_exact
from repro.output import ascii_plot
from repro.problems import load_problem


def main() -> None:
    energy = 0.657
    setup = load_problem("sedov", nx=64, ny=64, energy=energy, time_end=1.0)
    print("running Sedov on a 64x64 quadrant to t = 1.0 ...")
    hydro = setup.run()
    state = hydro.state

    xc, yc = state.mesh.cell_centroids(state.x, state.y)
    r = np.hypot(xc, yc)
    sim = sedov_exact.similarity(1.4)
    rs = sedov_exact.shock_radius(hydro.time, energy)

    bins = np.linspace(0.0, 1.2, 49)
    centres = 0.5 * (bins[:-1] + bins[1:])
    profile = np.array([
        state.rho[(r >= a) & (r < b)].mean()
        if ((r >= a) & (r < b)).any() else np.nan
        for a, b in zip(bins[:-1], bins[1:])
    ])
    rho_exact, _, _ = sim.profiles(centres, hydro.time, energy)
    valid = np.isfinite(profile)
    print(ascii_plot(
        centres[valid],
        {"computed": profile[valid], "x exact": rho_exact[valid]},
        title=f"Sedov radial density at t = 1 "
              f"(alpha = {sim.alpha:.4f}, exact R = {rs:.3f})",
        xlabel="radius",
    ))

    peak_r = r[np.argmax(state.rho)]
    theta = np.arctan2(yc, xc)
    front = []
    for lo in np.linspace(0, np.pi / 2 - np.pi / 8, 4):
        sector = (theta >= lo) & (theta < lo + np.pi / 8) & (state.rho > 2.0)
        front.append(r[sector].max())
    print()
    print(f"shock radius (density peak) : {peak_r:.3f}   exact {rs:.3f}")
    print(f"front radius by sector      : "
          + " ".join(f"{f:.3f}" for f in front))
    roundness = (max(front) - min(front)) / np.mean(front)
    print(f"front roundness (spread/mean): {roundness:.1%} — the shock is "
          f"round despite the Cartesian mesh")


if __name__ == "__main__":
    main()
