#!/usr/bin/env python
"""Mesh-convergence verification of the Lagrangian scheme.

Runs Sod and Noh over refinement ladders, measures L1 density errors
against the analytic solutions and reports the observed orders of
accuracy.  Shock-dominated problems converge at ~first order in L1
(the shock is smeared over a fixed number of cells), which is the
expected behaviour for the scheme — smooth-flow second order is shown
separately by the acoustic test in the test suite.

Run:  python examples/convergence_study.py
"""

from repro.validation import (
    convergence_study,
    noh_density_error,
    sod_density_error,
)


def main() -> None:
    print("Sod shock tube, L1 density error vs exact Riemann solution:")
    sod = convergence_study(
        "sod", (25, 50, 100, 200), sod_density_error, ny=2, time_end=0.2,
    )
    print(sod.table())
    print()

    print("Noh implosion, L1 density error vs exact solution "
          "(short time, 2-D):")
    noh = convergence_study(
        "noh", (16, 32, 64), noh_density_error, time_end=0.2,
    )
    print(noh.table())
    print()
    print("both ladders converge; Sod near first order as expected for "
          "a shock-dominated L1 norm")


if __name__ == "__main__":
    main()
