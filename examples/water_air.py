#!/usr/bin/env python
"""Multi-material hydrodynamics: the water–air shock tube.

BookLeaf carries four equations of state (ideal gas, Tait, JWL, void)
behind its multi-material ``getpc`` dispatch, but the bundled problems
are all single-gas.  This example runs the extension problem that
exercises the machinery for real: pressurised Tait water bursting
against ideal-gas air.  The acoustic estimate of the contact pressure,
``p ≈ p_air + ρ_air c_air u_contact``, lands within a few percent of
the computed air-side shock.

Run:  python examples/water_air.py
"""

import numpy as np

from repro.output import ascii_plot, linear_profile
from repro.problems import load_problem


def main() -> None:
    setup = load_problem("water_air", nx=200, ny=2)
    print("water (Tait, p = 1e7) | air (ideal, p = 1e5), 200 cells ...")
    hydro = setup.run()
    state = hydro.state

    prof = linear_profile(state, state.p, nbins=60)
    ok = prof.valid()
    print(ascii_plot(
        prof.centres[ok], {"pressure": np.log10(np.maximum(prof.mean[ok], 1.0))},
        title=f"log10(pressure) at t = {hydro.time:.1e} s",
        xlabel="x",
    ))

    water = state.mat == 0
    xc, _ = state.mesh.cell_centroids(state.x, state.y)
    interface_nodes = np.unique(state.mesh.cell_nodes[water][:, [1, 2]])
    x_iface = state.x[interface_nodes].max()
    u_iface = state.u[interface_nodes].max()

    shocked_air = (~water) & (xc > x_iface) & (xc < x_iface + 0.05)
    p_shock = state.p[shocked_air].mean()
    p_acoustic = 1.0e5 + 1.2 * np.sqrt(1.4 * 1e5 / 1.2) * u_iface
    print()
    print(f"interface position : {x_iface:.4f} (started at 0.5000)")
    print(f"interface velocity : {u_iface:.3f} m/s")
    print(f"air shock pressure : {p_shock:.4e} Pa")
    print(f"acoustic estimate  : {p_acoustic:.4e} Pa "
          f"({abs(p_shock / p_acoustic - 1):.1%} apart)")
    print(f"air compression    : {state.rho[~water].max() / 1.2:.4f}x")
    print(f"mass conserved to  : "
          f"{abs(state.total_mass() - setup.state.total_mass()):.2e}")


if __name__ == "__main__":
    main()
