#!/usr/bin/env python
"""Checkpoint/restart: stop a calculation and resume it bit-exactly.

Runs the Sedov blast halfway, checkpoints to a compressed ``.npz``,
resumes in a fresh driver and carries on — then proves the resumed
trajectory is bit-for-bit identical to an uninterrupted run.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.output.restart import checkpoint, resume
from repro.problems import load_problem


def main() -> None:
    kwargs = dict(nx=40, ny=40, time_end=0.5)

    print("reference: uninterrupted Sedov run ...")
    straight = load_problem("sedov", **kwargs).make_hydro()
    straight.run()
    print(f"  {straight.nstep} steps to t = {straight.time:.3f}")

    print("interrupted run: stop at step 100, checkpoint, resume ...")
    setup = load_problem("sedov", **kwargs)
    first = setup.make_hydro()
    first.run(max_steps=100)
    with tempfile.TemporaryDirectory() as tmp:
        path = checkpoint(first, Path(tmp) / "sedov.npz")
        size_kb = path.stat().st_size / 1024
        print(f"  checkpoint written at t = {first.time:.4f} "
              f"({size_kb:.0f} KiB)")
        resumed = resume(path, setup.table, setup.controls)
        resumed.run()
    print(f"  resumed to t = {resumed.time:.3f} "
          f"({resumed.nstep} total steps)")

    identical = (
        resumed.nstep == straight.nstep
        and np.array_equal(resumed.state.rho, straight.state.rho)
        and np.array_equal(resumed.state.u, straight.state.u)
        and np.array_equal(resumed.state.x, straight.state.x)
    )
    print(f"\nbit-for-bit identical to the uninterrupted run: {identical}")
    assert identical


if __name__ == "__main__":
    main()
