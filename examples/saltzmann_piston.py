#!/usr/bin/env python
"""Saltzmann's piston: why hourglass control exists.

The piston problem is 1-D, but BookLeaf runs it on the Dukowicz-Meltz
skewed mesh to excite hourglass (zero-energy) modes (paper Section
III-B).  This example runs it twice — with the sub-zonal-pressure +
filter machinery on and off — showing that the uncontrolled run
tangles its mesh while the controlled one tracks the exact shock.

Run:  python examples/saltzmann_piston.py
"""

import numpy as np

from repro.analytic import saltzmann_exact
from repro.problems import load_problem
from repro.utils.errors import BookLeafError


def run_case(label, **kwargs):
    setup = load_problem("saltzmann", nx=100, ny=10, time_end=0.6, **kwargs)
    hydro = setup.make_hydro()
    try:
        hydro.run()
        state = hydro.state
        xc, _ = state.mesh.cell_centroids(state.x, state.y)
        xs = saltzmann_exact.shock_position(hydro.time)
        xp = hydro.time
        behind = (xc > xp + 0.25 * (xs - xp)) & (xc < xp + 0.7 * (xs - xp))
        front = xc[state.rho > 2.0].max()
        print(f"{label:<28} completed: shock at x = {front:.3f} "
              f"(exact {xs:.3f}), post-shock rho = "
              f"{state.rho[behind].mean():.3f} (exact 4)")
    except BookLeafError as exc:
        print(f"{label:<28} FAILED at t = {hydro.time:.3f}: "
              f"{type(exc).__name__}: {str(exc)[:60]}")


def main() -> None:
    print("Saltzmann piston on the skewed 100x10 mesh, t_end = 0.6")
    print(f"exact: shock speed 4/3, density jump 4, piston work "
          f"{saltzmann_exact.post_shock_state()[2] * 0.6 * 0.1:.4f}\n")
    run_case("hourglass control ON")
    run_case("sub-zonal pressures only", filter_kappa=0.0)
    run_case("hourglass control OFF", subzonal_kappa=0.0, filter_kappa=0.0)
    print("\nthe uncontrolled run demonstrates the zero-energy modes the "
          "problem was designed to exacerbate")


if __name__ == "__main__":
    main()
