#!/usr/bin/env python
"""Quickstart: run Sod's shock tube and compare with the exact solution.

The 60-second tour of the public API:

1. build a bundled problem (``load_problem``),
2. run it with kernel timers attached,
3. compare the density profile against the exact Riemann solution,
4. print the BookLeaf-style per-kernel breakdown.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analytic import sod_solution
from repro.output import ascii_plot
from repro.problems import load_problem
from repro.utils.timers import TimerRegistry


def main() -> None:
    timers = TimerRegistry()
    setup = load_problem("sod", nx=200, ny=4, time_end=0.2)
    hydro = setup.make_hydro(timers=timers)
    steps = hydro.run()

    state = hydro.state
    xc, _ = state.mesh.cell_centroids(state.x, state.y)
    rho_exact, _, _ = sod_solution().sample((xc - 0.5) / hydro.time)
    l1 = np.abs(state.rho - rho_exact).mean()

    print(f"Sod shock tube: {steps} steps to t = {hydro.time:.3f}")
    print(f"L1 density error vs exact Riemann solution: {l1:.5f}")
    print(f"conserved mass  = {state.total_mass():.12f}")
    print(f"total energy    = {state.total_energy():.12f} "
          f"(drift is round-off only)")
    print()

    order = np.argsort(xc)
    print(ascii_plot(
        xc[order],
        {"computed": state.rho[order], "x exact": rho_exact[order]},
        title="density at t = 0.2 (c = computed, x = exact)",
        xlabel="x",
    ))
    print()
    print("Per-kernel breakdown (BookLeaf timer regions):")
    print(timers.breakdown())


if __name__ == "__main__":
    main()
