#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Produces text renderings of Table I, Table II (model vs paper with
ratios), Figures 1, 2a, 2b (bar charts) and Figures 3, 4a, 4b (strong-
scaling series), plus this implementation's measured Python kernel
breakdown, writing everything under ``results/``.

This is the scripted equivalent of ``pytest benchmarks/
--benchmark-only`` without the timing machinery.

Run:  python examples/reproduce_paper.py
"""

from pathlib import Path

from repro.perfmodel import (
    PAPER_TABLE2,
    TABLE2_ORDER,
    format_bars,
    format_scaling,
    format_table1,
    format_table2,
    measured_weights,
    scaling_series,
    table2,
)
from repro.perfmodel.kernels import KERNELS, OTHER

RESULTS = Path(__file__).resolve().parent.parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / name).write_text(text + "\n")
    print(text)
    print()


def main() -> None:
    emit("table1_platforms.txt", format_table1())

    model = table2()
    emit("table2_kernel_breakdown.txt", format_table2(model))

    emit("fig1_overall_noh.txt", format_bars(
        "FIG 1: Overall performance, Noh, single node (model)",
        {k: model[k]["overall"] for k in TABLE2_ORDER},
        paper={k: PAPER_TABLE2[k]["overall"] for k in TABLE2_ORDER},
    ))
    for kernel, fig in (("viscosity", "fig2a"), ("acceleration", "fig2b")):
        emit(f"{fig}_{kernel}_kernel.txt", format_bars(
            f"FIG {fig[-2:]}: {kernel} kernel, Noh, single node (model)",
            {k: model[k][kernel] for k in TABLE2_ORDER},
            paper={k: PAPER_TABLE2[k][kernel] for k in TABLE2_ORDER},
        ))

    emit("fig3_strong_scaling.txt", format_scaling(
        "FIG 3: Sod strong scaling, hybrid (model)",
        {"Skylake": scaling_series("skylake_hybrid"),
         "Broadwell": scaling_series("broadwell_hybrid")},
    ))
    for kernel, fig in (("viscosity", "fig4a"), ("acceleration", "fig4b")):
        emit(f"{fig}_{kernel}_scaling.txt", format_scaling(
            f"FIG {fig[-2:]}: {kernel} kernel strong scaling (model)",
            {"Skylake": scaling_series("skylake_hybrid", kernel=kernel),
             "Broadwell": scaling_series("broadwell_hybrid", kernel=kernel)},
        ))

    print("measuring this implementation's own kernel breakdown "
          "(Noh 50x50) ...")
    weights = measured_weights(nx=50, ny=50, time_end=0.1)
    total = sum(weights.values())
    lines = ["Measured Python per-kernel breakdown (Noh 50x50, t=0.1):"]
    for kernel in KERNELS + [OTHER]:
        lines.append(f"  {kernel:<14}{weights[kernel]:>9.3f}s "
                     f"{100 * weights[kernel] / total:>6.1f}%")
    emit("table2_measured_python.txt", "\n".join(lines))
    print(f"all reports written to {RESULTS}/")


if __name__ == "__main__":
    main()
