#!/usr/bin/env python
"""The Noh implosion: plateau density, shock position and wall heating.

Noh's problem (paper Section III-B) is BookLeaf's showcase for the
wall-heating artefact of artificial-viscosity methods: behind the
outward-moving shock the exact solution is a ρ = 16 plateau with
e = 0.5, but the cells at the origin are over-heated and under-dense.
This example runs the quadrant problem, bins the solution radially and
prints it against the exact profile, quantifying the artefact.

Run:  python examples/noh_wallheating.py
"""

import numpy as np

from repro.analytic import noh_exact
from repro.output import ascii_plot
from repro.problems import load_problem


def main() -> None:
    setup = load_problem("noh", nx=64, ny=64, time_end=0.6)
    print("running Noh on a 64x64 quadrant to t = 0.6 "
          "(sub-zonal pressures on) ...")
    hydro = setup.run()
    state = hydro.state

    xc, yc = state.mesh.cell_centroids(state.x, state.y)
    r = np.hypot(xc, yc)
    bins = np.linspace(0.0, 0.8, 41)
    centres = 0.5 * (bins[:-1] + bins[1:])
    profile = np.array([
        state.rho[(r >= a) & (r < b)].mean()
        if ((r >= a) & (r < b)).any() else np.nan
        for a, b in zip(bins[:-1], bins[1:])
    ])
    rho_exact, _, _ = noh_exact.solution(centres, hydro.time)

    valid = np.isfinite(profile)
    print(ascii_plot(
        centres[valid],
        {"computed": profile[valid], "x exact": rho_exact[valid]},
        title=f"Noh radial density at t = {hydro.time:.2f} "
              f"(shock at r = {noh_exact.shock_radius(hydro.time):.3f})",
        xlabel="radius",
    ))

    rs = noh_exact.shock_radius(hydro.time)
    plateau = (r > 0.3 * rs) & (r < 0.8 * rs)
    origin = r < 0.05
    print()
    print(f"plateau density : {state.rho[plateau].mean():7.3f}  (exact 16)")
    print(f"origin density  : min {state.rho[origin].min():6.3f} / "
          f"max {state.rho[origin].max():6.3f}  (exact 16)")
    print(f"origin energy   : max {state.e[origin].max():7.3f}  (exact 0.5 "
          f"— cells overshooting 0.5 are the wall-heating artefact)")
    print(f"total energy drift: "
          f"{hydro.state.total_energy() - 0.5 * state.total_mass():.2e} "
          f"(vs the kinetic energy injected at t=0)")


if __name__ == "__main__":
    main()
