#!/usr/bin/env python
"""Domain decomposition with the simulated Typhon layer.

Runs the same Sod problem serially and decomposed over virtual MPI
ranks (threads + halo schedules — see DESIGN.md), with both the RCB
and the spectral (METIS-substitute) partitioners, and verifies the
decomposed results match the serial ones to round-off.  Also prints
the communication profile the performance model consumes: BookLeaf
communicates only twice per step plus one global reduction.

Run:  python examples/distributed_sod.py
"""

import time

import numpy as np

from repro.parallel import DistributedHydro, edge_cut, partition
from repro.problems import load_problem


def main() -> None:
    nx, ny, t_end = 120, 24, 0.08
    print(f"Sod {nx}x{ny}, t_end = {t_end}\n")

    serial_setup = load_problem("sod", nx=nx, ny=ny, time_end=t_end)
    t0 = time.perf_counter()
    serial = serial_setup.make_hydro()
    serial.run()
    t_serial = time.perf_counter() - t0
    print(f"serial: {serial.nstep} steps in {t_serial:.2f}s")

    mesh = serial_setup.state.mesh
    for method in ("rcb", "spectral"):
        part = partition(mesh, 4, method)
        print(f"\n{method} partition into 4: edge cut = "
              f"{edge_cut(mesh, part)} faces")
        setup = load_problem("sod", nx=nx, ny=ny, time_end=t_end)
        t0 = time.perf_counter()
        driver = DistributedHydro(setup, 4, method=method)
        driver.run()
        wall = time.perf_counter() - t0
        gathered = driver.gather()
        err = np.abs(gathered.rho - serial.state.rho).max()
        stats = driver.comm_summary()
        print(f"  4 virtual ranks: {driver.nstep} steps in {wall:.2f}s, "
              f"max |rho - serial| = {err:.2e}")
        print(f"  comm/step: "
              f"{stats['messages'] / stats['steps']:.1f} messages, "
              f"{stats['bytes'] / stats['steps'] / 1024:.1f} KiB, "
              f"{stats['halo_exchanges'] / stats['steps'] / 4:.0f} halo "
              f"exchanges per rank, 1 allreduce")

    print("\nper-rank kernel timers (aggregated):")
    print(driver.merged_timers().breakdown())


if __name__ == "__main__":
    main()
