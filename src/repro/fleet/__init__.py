"""repro.fleet — cached, resumable many-run sweep scheduling.

The fleet engine behind :func:`repro.api.submit`: a work queue over
:class:`~repro.api.RunConfig` jobs with a content-addressed result
cache, a compiled-artifact cache, checkpoint/restart for crashed jobs,
a SIGKILL-safe process pool and a same-mesh batched fast path with
lane refill.  See docs/FLEET.md for the architecture tour.
"""

from .artifacts import ArtifactCache, mesh_fingerprint
from .batch import BatchJob, make_jobs, run_ensemble_jobs
from .cache import (CACHE_SCHEMA_VERSION, ResultCache, job_key,
                    state_digest)
from .checkpoint import (CHECKPOINT_SCHEMA_VERSION, CheckpointWriter,
                         load_checkpoint, restore_into,
                         save_checkpoint)
from .engine import (FLEET_SCHEMA_VERSION, Fleet, FleetHandle,
                     FleetOptions, submit)
from .worker import WorkerPool

__all__ = [
    "ArtifactCache",
    "BatchJob",
    "CACHE_SCHEMA_VERSION",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointWriter",
    "FLEET_SCHEMA_VERSION",
    "Fleet",
    "FleetHandle",
    "FleetOptions",
    "ResultCache",
    "WorkerPool",
    "job_key",
    "load_checkpoint",
    "make_jobs",
    "mesh_fingerprint",
    "restore_into",
    "run_ensemble_jobs",
    "save_checkpoint",
    "state_digest",
    "submit",
]
