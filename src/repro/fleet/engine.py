"""The fleet engine: cached, resumable many-run scheduling behind
:func:`repro.api.submit`.

One :class:`Fleet` drives a whole sweep.  Every submitted config
becomes a :class:`~repro.fleet.batch.BatchJob`; the engine then

1. **serves repeats from the result cache** — each job is keyed by its
   config's canonical hash (:func:`repro.fleet.cache.job_key`); keys
   already in ``cache_dir`` come back as ``cache_hit=True`` results
   without executing;
2. **coalesces compatible jobs onto the same-mesh fast path** — serial
   jobs sharing a mesh spec batch into one
   :func:`~repro.fleet.batch.run_ensemble_jobs` pass (vectorised
   kernels + lane refill) instead of N separate step loops;
3. **runs the rest on a crash-tolerant process pool**
   (:class:`~repro.fleet.worker.WorkerPool`) or inline when
   ``workers=0`` — with periodic checkpoints so a killed job resumes
   bit-identically instead of restarting;
4. **merges the telemetry**: one NDJSON stream / Prometheus export
   across all jobs, plus a sweep summary document the ``bookleaf
   compare`` "fleet" kind diffs by per-job outcome digest.

Every scheduling decision is appended to ``handle.schedule_log`` so
tests (and curious users) can assert how work was routed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time as _time
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence

from ..utils.errors import BookLeafError, FleetError
from .artifacts import ArtifactCache
from .batch import BatchJob, make_jobs, run_ensemble_jobs
from .cache import ResultCache, job_key, state_digest

#: fleet summary document layout version
FLEET_SCHEMA_VERSION = 1


@dataclass
class FleetOptions:
    """Everything :func:`repro.api.submit` accepts beyond the configs."""

    #: process-pool width; 0 executes jobs inline in this process
    workers: int = 0
    #: content-addressed result cache root (None disables caching)
    cache_dir: Optional[str] = None
    #: checkpoint root for resumable serial jobs (None disables)
    checkpoint_dir: Optional[str] = None
    #: steps between checkpoints
    checkpoint_every: int = 20
    #: same-mesh fast path policy: "auto" coalesces compatible jobs,
    #: "require" demands one batched pass (the run_ensemble contract),
    #: "off" forces per-job execution
    ensemble: str = "auto"
    #: live-lane cap for batched passes (None = all lanes in one batch;
    #: a finite width drains longer queues through lane refill)
    batch_width: Optional[int] = None
    #: total tries per job before the fleet gives up on a crasher
    max_attempts: int = 3
    #: chaos hook: ``{job_index: step}`` SIGKILLs that job's worker at
    #: the given step, first attempt only (needs ``workers > 0``)
    fault_steps: Optional[Dict[int, int]] = None
    #: merged NDJSON stream of every job's metrics rows
    metrics_path: Optional[str] = None
    #: merged Prometheus textfile export
    prom_path: Optional[str] = None


def _parse_options(options: dict) -> FleetOptions:
    valid = {f.name for f in fields(FleetOptions)}
    unknown = set(options) - valid
    if unknown:
        raise BookLeafError(
            f"unknown fleet option(s): {', '.join(sorted(unknown))}"
        )
    opts = FleetOptions(**options)
    if opts.ensemble not in ("auto", "require", "off"):
        raise BookLeafError(
            f"ensemble must be 'auto', 'require' or 'off', "
            f"not {opts.ensemble!r}"
        )
    if opts.workers < 0:
        raise BookLeafError("workers must be >= 0")
    if opts.fault_steps and opts.workers < 1:
        raise FleetError(
            "fault injection kills worker processes; it needs "
            "workers >= 1 (an inline fault would kill the scheduler)"
        )
    return opts


def submit(configs: Sequence, *,
           control_overrides: Optional[Sequence] = None,
           observers: Optional[Sequence] = None,
           **options) -> "FleetHandle":
    """Build a :class:`Fleet` over ``configs`` and hand back its
    :class:`FleetHandle`.  Execution is lazy — the sweep runs on the
    first :meth:`FleetHandle.results` call and is memoised."""
    opts = _parse_options(options)
    if control_overrides is not None and opts.ensemble == "off":
        raise BookLeafError(
            "control_overrides ride the ensemble path; they cannot be "
            "applied with ensemble='off'"
        )
    jobs = make_jobs(configs, control_overrides)
    if control_overrides is not None:
        opts.ensemble = "require"
    return FleetHandle(Fleet(jobs, opts, observers=observers))


class FleetHandle:
    """The caller's view of a submitted sweep."""

    def __init__(self, fleet: "Fleet"):
        self._fleet = fleet

    def results(self) -> List[Any]:
        """One :class:`~repro.api.RunResult` per config, in submission
        order (executes the sweep on first call)."""
        return self._fleet.results()

    def summary(self) -> dict:
        """The sweep-level summary document (per-job keys, digests,
        cache/scheduling counters) — the ``bookleaf compare`` "fleet"
        input."""
        return self._fleet.summary()

    @property
    def schedule_log(self) -> List[dict]:
        """Every scheduling decision the engine made, in order."""
        return self._fleet.schedule_log

    def __len__(self) -> int:
        return len(self._fleet.jobs)


class Fleet:
    """The scheduler proper (use :func:`submit`; this is the engine)."""

    def __init__(self, jobs: List[BatchJob], options: FleetOptions,
                 observers: Optional[Sequence] = None):
        self.jobs = jobs
        self.options = options
        self.observers = list(observers) if observers else None
        self.schedule_log: List[dict] = []
        self.artifacts = ArtifactCache()
        self.cache: Optional[ResultCache] = None
        self._results: Optional[List[Any]] = None
        self._wall: Optional[float] = None

    # ------------------------------------------------------------------
    def results(self) -> List[Any]:
        if self._results is None:
            start = _time.perf_counter()
            self._results = self._execute()
            self._wall = _time.perf_counter() - start
        return self._results

    # ------------------------------------------------------------------
    def _key(self, job: BatchJob) -> str:
        if "key" not in job.metadata:
            job.metadata["key"] = job_key(job.config, job.override)
        return job.metadata["key"]

    def _log(self, event: str, **kw) -> None:
        self.schedule_log.append({"event": event, **kw})

    # ------------------------------------------------------------------
    def _execute(self) -> List[Any]:
        opts = self.options
        n = len(self.jobs)
        results: List[Any] = [None] * n
        need_keys = bool(opts.cache_dir) or opts.workers > 0
        if opts.cache_dir:
            self.cache = ResultCache(opts.cache_dir)
        if need_keys:
            for job in self.jobs:
                self._key(job)

        # -- stage 1: serve repeats from the result cache ---------------
        remaining: List[BatchJob] = []
        for job in self.jobs:
            if (self.cache is not None and not self.observers
                    and self.cache.has(self._key(job))):
                results[job.index] = self.cache.load(
                    self._key(job), job.config,
                    override=job.override, hit=True)
                self._log("cache_hit", job=job.index,
                          key=self._key(job))
            else:
                if self.cache is not None:
                    self.cache.misses += 1
                remaining.append(job)

        # -- stage 2: route the rest ------------------------------------
        ensemble_mode = opts.ensemble
        if ensemble_mode != "off" and self.observers:
            if ensemble_mode == "require":
                raise BookLeafError(
                    "observers are not supported on the ensemble path"
                )
            ensemble_mode = "off"

        if remaining and ensemble_mode == "require":
            self._run_batched(remaining, results)
            remaining = []
        elif remaining and ensemble_mode == "auto":
            groups, singles = self._coalesce(remaining)
            for group in groups:
                self._run_batched(group, results)
            remaining = singles

        if remaining:
            if opts.workers > 0:
                self._run_pool(remaining, results)
            else:
                for job in remaining:
                    results[job.index] = self._run_inline(job)

        # -- stage 3: merged telemetry ----------------------------------
        self._merge_outputs(results)
        return results

    # ------------------------------------------------------------------
    def _coalesce(self, jobs: List[BatchJob]):
        """Partition jobs into same-mesh batchable groups (>= 2 jobs)
        and per-job singles."""
        buckets: Dict[tuple, List[BatchJob]] = {}
        singles: List[BatchJob] = []
        for job in jobs:
            c = job.config
            eligible = (
                c.nranks == 1
                and c.resolved_backend() == "serial"
                and not c.trace
                and not c.trace_allocations
                and not c.collect_steps
            )
            if not eligible:
                singles.append(job)
                continue
            deck = os.path.realpath(c.deck) if c.deck else None
            kwargs_key = tuple(sorted(
                (k, repr(v)) for k, v in c.problem_kwargs.items()))
            bucket = (c.problem, deck, c.nx, c.ny, kwargs_key)
            buckets.setdefault(bucket, []).append(job)
        groups: List[List[BatchJob]] = []
        for bucket, members in buckets.items():
            if len(members) < 2:
                singles.extend(members)
                continue
            # Driven boundaries (e.g. Kidder's piston) advance per-lane
            # wall-clock state the batched kernels don't model; probe
            # one setup per bucket and keep such jobs on the per-job
            # path.
            probe_setup = members[0].config.build_setup()
            if getattr(probe_setup.state.bc, "driver", None) is not None:
                self._log("group_rejected", reason="bc_driver",
                          jobs=[j.index for j in members])
                singles.extend(members)
                continue
            groups.append(members)
        singles.sort(key=lambda j: j.index)
        return groups, singles

    # ------------------------------------------------------------------
    def _run_batched(self, group: List[BatchJob],
                     results: List[Any]) -> None:
        group_results = run_ensemble_jobs(
            group, width=self.options.batch_width,
            artifacts=self.artifacts,
            schedule_log=self.schedule_log)
        for job, result in zip(group, group_results):
            results[job.index] = result
            if self.cache is not None:
                self.cache.store(self._key(job), result)

    # ------------------------------------------------------------------
    def _run_inline(self, job: BatchJob):
        from ..api import _execute_run
        from .checkpoint import CheckpointWriter, restore_into

        opts = self.options
        config = job.config
        if job.override:
            raise FleetError(
                f"job {job.index} carries control overrides but was "
                "routed off the ensemble path"
            )
        observers = list(self.observers or [])
        on_prepared = None
        serial = (config.nranks == 1
                  and config.resolved_backend() == "serial")
        if opts.checkpoint_dir and serial:
            key = self._key(job)
            ckpt_path = os.path.join(opts.checkpoint_dir,
                                     f"{key}.ckpt.npz")
            observers.append(CheckpointWriter(
                ckpt_path, opts.checkpoint_every, key=key))
            if os.path.exists(ckpt_path):
                self._log("checkpoint_resume", job=job.index,
                          path=ckpt_path)

                def on_prepared(driver, max_steps, _p=ckpt_path,
                                _k=key):
                    return restore_into(driver, _p, key=_k,
                                        max_steps=max_steps)
        self._log("job_inline", job=job.index)
        result = _execute_run(config, observers=observers or None,
                              artifacts=self.artifacts,
                              on_prepared=on_prepared)
        if self.cache is not None:
            self.cache.store(self._key(job), result)
        return result

    # ------------------------------------------------------------------
    def _run_pool(self, jobs: List[BatchJob],
                  results: List[Any]) -> None:
        from .worker import WorkerPool

        opts = self.options
        if self.observers:
            raise BookLeafError(
                "observers need inline execution (workers=0); worker "
                "processes cannot call back into this process"
            )
        spool = self.cache
        tmp_root = None
        if spool is None:
            tmp_root = tempfile.mkdtemp(prefix="bookleaf-fleet-spool-")
            spool = ResultCache(tmp_root)
        if opts.checkpoint_dir:
            os.makedirs(opts.checkpoint_dir, exist_ok=True)
        pool = WorkerPool(
            min(opts.workers, len(jobs)), spool.root,
            checkpoint_dir=opts.checkpoint_dir,
            checkpoint_every=opts.checkpoint_every,
            max_attempts=opts.max_attempts,
            schedule_log=self.schedule_log)
        try:
            done = pool.run(jobs, fault_steps=opts.fault_steps)
        finally:
            pool.shutdown()
        self._log("pool_done", jobs=len(jobs),
                  respawns=pool.respawns)
        for job in jobs:
            if job.index not in done:
                raise FleetError(
                    f"fleet job {job.index} has no stored outcome"
                )
            results[job.index] = spool.load(
                done[job.index], job.config,
                override=job.override, hit=False)

    # ------------------------------------------------------------------
    def _merge_outputs(self, results: List[Any]) -> None:
        opts = self.options
        if opts.metrics_path:
            root = os.path.dirname(os.path.abspath(opts.metrics_path))
            os.makedirs(root, exist_ok=True)
            with open(opts.metrics_path, "w", encoding="utf-8") as fh:
                for job, result in zip(self.jobs, results):
                    for rec in (result.metrics_rows or []):
                        fh.write(json.dumps(
                            {"job": job.index, **rec}) + "\n")
        if opts.prom_path:
            from ..metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
            registry.counter("fleet_jobs_total").inc(len(results))
            hits = sum(1 for r in results if r.cache_hit)
            registry.counter("fleet_cache_hits_total").inc(hits)
            for job, result in zip(self.jobs, results):
                labels = {"job": str(job.index),
                          "backend": result.backend}
                registry.gauge("fleet_job_steps", **labels).set(
                    result.nstep)
                registry.gauge("fleet_job_time", **labels).set(
                    result.time)
                registry.gauge("fleet_job_wall_seconds",
                               **labels).set(result.wall_seconds)
                if result.metrics_rows:
                    final = result.metrics_rows[-1]
                    for name in ("mass", "total_energy", "mass_drift",
                                 "energy_drift"):
                        if name in final:
                            registry.gauge(f"fleet_job_{name}",
                                           **labels).set(final[name])
            registry.write_prometheus(opts.prom_path)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Sweep summary: one entry per job with its canonical key and
        outcome digest, plus scheduling/cache counters.  The "fleet"
        document kind of ``bookleaf compare``."""
        results = self.results()
        job_docs = []
        for job, result in zip(self.jobs, results):
            job_docs.append({
                "index": job.index,
                "key": self._key(job),
                "cache_hit": bool(result.cache_hit),
                "lane": result.lane,
                "backend": result.backend,
                "nstep": int(result.nstep),
                "time": float(result.time),
                "wall_seconds": float(result.wall_seconds),
                "digest": state_digest(result.state, result.nstep,
                                       result.time,
                                       result.metrics_rows),
            })
        counts = {
            "jobs": len(results),
            "cache_hits": sum(1 for r in results if r.cache_hit),
            "ensemble_jobs": sum(1 for r in results
                                 if r.backend == "ensemble"),
            "events": len(self.schedule_log),
        }
        return {
            "fleet_sweep": 1,
            "schema_version": FLEET_SCHEMA_VERSION,
            "jobs": job_docs,
            "counts": counts,
            "wall_seconds": self._wall,
            "cache": self.cache.stats() if self.cache else None,
            "artifacts": self.artifacts.stats(),
        }
