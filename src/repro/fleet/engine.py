"""The fleet engine: cached, resumable many-run scheduling behind
:func:`repro.api.submit`.

One :class:`Fleet` drives a whole sweep.  Every submitted config
becomes a :class:`~repro.fleet.batch.BatchJob`; the engine then

1. **serves repeats from the result cache** — each job is keyed by its
   config's canonical hash (:func:`repro.fleet.cache.job_key`); keys
   already in ``cache_dir`` come back as ``cache_hit=True`` results
   without executing;
2. **coalesces compatible jobs onto the same-mesh fast path** — serial
   jobs sharing a mesh spec batch into one
   :func:`~repro.fleet.batch.run_ensemble_jobs` pass (vectorised
   kernels + lane refill) instead of N separate step loops;
3. **runs the rest on a crash-tolerant process pool**
   (:class:`~repro.fleet.worker.WorkerPool`) or inline when
   ``workers=0`` — with periodic checkpoints so a killed job resumes
   bit-identically instead of restarting;
4. **merges the telemetry**: one NDJSON stream / Prometheus export
   across all jobs, plus a sweep summary document the ``bookleaf
   compare`` "fleet" kind diffs by per-job outcome digest.

Every scheduling decision is appended to ``handle.schedule_log`` so
tests (and curious users) can assert how work was routed.

The sweep-scope observability plane threads through all of it
(docs/OBSERVABILITY.md, "Sweep-scope observability"):

* a :class:`~repro.telemetry.live.EventBus` streams lifecycle events
  (``events_path`` NDJSON + in-process ``event_listeners`` — the
  ``fleet --watch`` renderer is one);
* ``trace_path`` forces per-job tracing and merges every job's span
  shard into ONE Perfetto-loadable sweep trace
  (:class:`~repro.telemetry.sweep_trace.SweepTraceBuilder`) — worker
  process rows, per-job thread rows, cache-hit/checkpoint instants and
  kill → resume flow events;
* ``profile_dir`` attaches the sampling profiler to every job and
  aggregates the per-job collapsed stacks into one sweep flamegraph;
* :func:`summary` flags cross-job outliers
  (:mod:`repro.metrics.anomaly`) for ``compare --gate-outliers``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time as _time
import warnings
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..utils.errors import (BookLeafError, EnsembleDowngradeWarning,
                            FleetError)
from .artifacts import ArtifactCache
from .batch import BatchJob, make_jobs, run_ensemble_jobs
from .cache import ResultCache, job_key, state_digest

#: fleet summary document layout version
FLEET_SCHEMA_VERSION = 2


@dataclass
class FleetOptions:
    """Everything :func:`repro.api.submit` accepts beyond the configs."""

    #: process-pool width; 0 executes jobs inline in this process
    workers: int = 0
    #: content-addressed result cache root (None disables caching)
    cache_dir: Optional[str] = None
    #: checkpoint root for resumable serial jobs (None disables)
    checkpoint_dir: Optional[str] = None
    #: steps between checkpoints
    checkpoint_every: int = 20
    #: same-mesh fast path policy: "auto" coalesces compatible jobs,
    #: "require" demands one batched pass (the run_ensemble contract),
    #: "off" forces per-job execution
    ensemble: str = "auto"
    #: live-lane cap for batched passes (None = all lanes in one batch;
    #: a finite width drains longer queues through lane refill)
    batch_width: Optional[int] = None
    #: total tries per job before the fleet gives up on a crasher
    max_attempts: int = 3
    #: chaos hook: ``{job_index: step}`` SIGKILLs that job's worker at
    #: the given step, first attempt only (needs ``workers > 0``)
    fault_steps: Optional[Dict[int, int]] = None
    #: chaos hook: ``{job_index: step}`` wedges (sleeps forever) that
    #: job's worker at the given step, first attempt only — the
    #: failure mode only the heartbeat watchdog detects (needs
    #: ``workers > 0`` and ``heartbeat_timeout``)
    stall_steps: Optional[Dict[int, int]] = None
    #: merged NDJSON stream of every job's metrics rows
    metrics_path: Optional[str] = None
    #: merged Prometheus textfile export
    prom_path: Optional[str] = None
    #: NDJSON sink for the live lifecycle event stream
    events_path: Optional[str] = None
    #: in-process live-event listeners (``fleet --watch`` attaches its
    #: renderer here; tests attach plain callables)
    event_listeners: Optional[Sequence[Callable]] = None
    #: merged sweep-level Chrome/Perfetto trace output; setting it
    #: forces per-job tracing (span shards ship back through the spool)
    trace_path: Optional[str] = None
    #: self-contained HTML sweep dashboard, written at end of run
    dashboard_path: Optional[str] = None
    #: per-job collapsed-stack flamegraph directory; setting it turns
    #: the sampling profiler on for every job and writes the aggregate
    #: ``sweep.folded`` alongside the per-job files
    profile_dir: Optional[str] = None
    #: SIGKILL a pool worker whose heartbeat goes silent for this many
    #: seconds (the job retries); None disables stall monitoring
    heartbeat_timeout: Optional[float] = None
    #: steps between ``job_progress`` events (when the event plane is
    #: active: ``events_path`` or ``event_listeners`` set)
    progress_every: int = 10


def _parse_options(options: dict) -> FleetOptions:
    valid = {f.name for f in fields(FleetOptions)}
    unknown = set(options) - valid
    if unknown:
        raise BookLeafError(
            f"unknown fleet option(s): {', '.join(sorted(unknown))}"
        )
    opts = FleetOptions(**options)
    if opts.ensemble not in ("auto", "require", "off"):
        raise BookLeafError(
            f"ensemble must be 'auto', 'require' or 'off', "
            f"not {opts.ensemble!r}"
        )
    if opts.workers < 0:
        raise BookLeafError("workers must be >= 0")
    if opts.fault_steps and opts.workers < 1:
        raise FleetError(
            "fault injection kills worker processes; it needs "
            "workers >= 1 (an inline fault would kill the scheduler)"
        )
    if opts.stall_steps:
        if opts.workers < 1:
            raise FleetError(
                "stall injection wedges worker processes; it needs "
                "workers >= 1"
            )
        if not opts.heartbeat_timeout:
            raise FleetError(
                "stall injection without heartbeat_timeout would hang "
                "the sweep forever — set a timeout"
            )
    if opts.heartbeat_timeout is not None and opts.heartbeat_timeout <= 0:
        raise BookLeafError("heartbeat_timeout must be > 0 seconds")
    if opts.progress_every < 1:
        raise BookLeafError("progress_every must be >= 1")
    return opts


def submit(configs: Sequence, *,
           control_overrides: Optional[Sequence] = None,
           observers: Optional[Sequence] = None,
           **options) -> "FleetHandle":
    """Build a :class:`Fleet` over ``configs`` and hand back its
    :class:`FleetHandle`.  Execution is lazy — the sweep runs on the
    first :meth:`FleetHandle.results` call and is memoised."""
    opts = _parse_options(options)
    if control_overrides is not None and opts.ensemble == "off":
        raise BookLeafError(
            "control_overrides ride the ensemble path; they cannot be "
            "applied with ensemble='off'"
        )
    jobs = make_jobs(configs, control_overrides)
    if control_overrides is not None:
        opts.ensemble = "require"
    return FleetHandle(Fleet(jobs, opts, observers=observers))


class FleetHandle:
    """The caller's view of a submitted sweep."""

    def __init__(self, fleet: "Fleet"):
        self._fleet = fleet

    def results(self) -> List[Any]:
        """One :class:`~repro.api.RunResult` per config, in submission
        order (executes the sweep on first call)."""
        return self._fleet.results()

    def summary(self) -> dict:
        """The sweep-level summary document (per-job keys, digests,
        anomaly flags, cache/scheduling counters) — the ``bookleaf
        compare`` "fleet" input."""
        return self._fleet.summary()

    @property
    def schedule_log(self) -> List[dict]:
        """Every scheduling decision the engine made, in order."""
        return self._fleet.schedule_log

    @property
    def events(self) -> List[dict]:
        """The sweep's live lifecycle event records, in emission order."""
        return self._fleet.bus.events if self._fleet.bus else []

    def __len__(self) -> int:
        return len(self._fleet.jobs)


class Fleet:
    """The scheduler proper (use :func:`submit`; this is the engine)."""

    def __init__(self, jobs: List[BatchJob], options: FleetOptions,
                 observers: Optional[Sequence] = None):
        self.jobs = jobs
        self.options = options
        self.observers = list(observers) if observers else None
        self.schedule_log: List[dict] = []
        self.artifacts = ArtifactCache()
        self.cache: Optional[ResultCache] = None
        self.bus: Any = None
        self._results: Optional[List[Any]] = None
        self._wall: Optional[float] = None
        self._trace_forced = False
        #: per-job execution provenance for the sweep trace:
        #: ``{index: {"pid": worker pid row, "start": seconds}}``
        self._track: Dict[int, dict] = {}
        self._pool: Any = None
        self._profile_doc: Optional[dict] = None

    # ------------------------------------------------------------------
    def results(self) -> List[Any]:
        if self._results is None:
            start = _time.perf_counter()
            try:
                self._results = self._execute()
            finally:
                if self.bus is not None:
                    self.bus.close()
            self._wall = _time.perf_counter() - start
            self._finalize_outputs()
        return self._results

    # ------------------------------------------------------------------
    def _key(self, job: BatchJob) -> str:
        if "key" not in job.metadata:
            job.metadata["key"] = job_key(job.config, job.override)
        return job.metadata["key"]

    def _log(self, event: str, **kw) -> None:
        self.schedule_log.append({"event": event, **kw})

    def _emit(self, event: str, **payload) -> None:
        if self.bus is not None:
            self.bus.emit(event, **payload)

    @property
    def _live(self) -> bool:
        """True when someone is watching: progress observers attach."""
        return bool(self.options.events_path
                    or self.options.event_listeners)

    # ------------------------------------------------------------------
    def _execute(self) -> List[Any]:
        from ..telemetry.live import EventBus

        opts = self.options
        n = len(self.jobs)
        results: List[Any] = [None] * n
        self.bus = EventBus(path=opts.events_path,
                            listeners=opts.event_listeners)
        self._emit("sweep_started", jobs=n, workers=opts.workers)
        self._prepare_observability()
        need_keys = bool(opts.cache_dir) or opts.workers > 0
        if opts.cache_dir:
            self.cache = ResultCache(opts.cache_dir)
        if need_keys:
            for job in self.jobs:
                self._key(job)
        for job in self.jobs:
            self._emit("job_queued", job=job.index)

        # -- stage 1: serve repeats from the result cache ---------------
        remaining: List[BatchJob] = []
        for job in self.jobs:
            if (self.cache is not None and not self.observers
                    and self.cache.has(self._key(job))):
                results[job.index] = self.cache.load(
                    self._key(job), job.config,
                    override=job.override, hit=True)
                self._log("cache_hit", job=job.index,
                          key=self._key(job))
                self._emit("cache_hit", job=job.index,
                           key=self._key(job))
                self._track[job.index] = {"pid": 0,
                                          "start": self.bus.elapsed,
                                          "cache_hit": True}
            else:
                if self.cache is not None:
                    self.cache.misses += 1
                remaining.append(job)

        # -- stage 2: route the rest ------------------------------------
        ensemble_mode = opts.ensemble
        if ensemble_mode != "off" and self.observers:
            if ensemble_mode == "require":
                raise BookLeafError(
                    "observers are not supported on the ensemble path"
                )
            ensemble_mode = "off"

        if remaining and ensemble_mode == "require":
            self._run_batched(remaining, results)
            remaining = []
        elif remaining and ensemble_mode == "auto":
            groups, singles = self._coalesce(remaining)
            for group in groups:
                self._run_batched(group, results)
            remaining = singles

        if remaining:
            if opts.workers > 0:
                self._run_pool(remaining, results)
            else:
                for job in remaining:
                    results[job.index] = self._run_inline(job)

        # -- stage 3: merged telemetry ----------------------------------
        self._merge_outputs(results)
        self._emit("sweep_done", jobs=n,
                   wall_seconds=round(self.bus.elapsed, 6))
        return results

    # ------------------------------------------------------------------
    def _prepare_observability(self) -> None:
        """Force per-job telemetry the sweep-level outputs need."""
        opts = self.options
        if opts.trace_path:
            forced = [j.index for j in self.jobs if not j.config.trace]
            for job in self.jobs:
                if not job.config.trace:
                    job.config = job.config.replace(trace=True)
            self._trace_forced = True
            self._log("trace_forced", jobs=forced)
            self._emit("trace_forced", jobs=forced)
        if opts.profile_dir:
            os.makedirs(opts.profile_dir, exist_ok=True)
            for job in self.jobs:
                if not job.config.profile:
                    job.config = job.config.replace(
                        profile=os.path.join(opts.profile_dir,
                                             f"job{job.index}.folded"))

    # ------------------------------------------------------------------
    def _coalesce(self, jobs: List[BatchJob]):
        """Partition jobs into same-mesh batchable groups (>= 2 jobs)
        and per-job singles.

        A job carrying per-job telemetry (tracing, allocation
        tracking, profiling) is *never* batched — the vectorised
        kernels do not thread per-lane tracers — and the downgrade is
        announced: a ``fast_path_downgrade`` schedule-log event plus
        an :class:`EnsembleDowngradeWarning` naming the reason (the
        warning is suppressed when the engine itself forced tracing
        for a sweep-level ``trace_path``; docs/FLEET.md, 'Fast-path
        eligibility').
        """
        buckets: Dict[tuple, List[BatchJob]] = {}
        singles: List[BatchJob] = []
        for job in jobs:
            c = job.config
            reason = None
            if c.nranks != 1:
                reason = "nranks"
            elif c.resolved_backend() != "serial":
                reason = "backend"
            elif c.trace:
                reason = "trace"
            elif c.trace_allocations:
                reason = "trace_allocations"
            elif c.profile:
                reason = "profile"
            elif c.collect_steps:
                reason = "collect_steps"
            if reason is not None:
                if reason in ("trace", "trace_allocations", "profile"):
                    self._log("fast_path_downgrade", job=job.index,
                              reason=reason)
                    self._emit("fast_path_downgrade", job=job.index,
                               reason=reason)
                    if not self._trace_forced:
                        warnings.warn(
                            f"fleet job {job.index} requests "
                            f"{reason!r} and leaves the same-mesh "
                            f"batched fast path (per-job telemetry "
                            f"does not thread through the vectorised "
                            f"kernels; see docs/FLEET.md)",
                            EnsembleDowngradeWarning,
                        )
                singles.append(job)
                continue
            deck = os.path.realpath(c.deck) if c.deck else None
            kwargs_key = tuple(sorted(
                (k, repr(v)) for k, v in c.problem_kwargs.items()))
            bucket = (c.problem, deck, c.nx, c.ny, kwargs_key)
            buckets.setdefault(bucket, []).append(job)
        groups: List[List[BatchJob]] = []
        for bucket, members in buckets.items():
            if len(members) < 2:
                singles.extend(members)
                continue
            # Driven boundaries (e.g. Kidder's piston) advance per-lane
            # wall-clock state the batched kernels don't model; probe
            # one setup per bucket and keep such jobs on the per-job
            # path.
            probe_setup = members[0].config.build_setup()
            if getattr(probe_setup.state.bc, "driver", None) is not None:
                self._log("group_rejected", reason="bc_driver",
                          jobs=[j.index for j in members])
                singles.extend(members)
                continue
            groups.append(members)
        singles.sort(key=lambda j: j.index)
        return groups, singles

    # ------------------------------------------------------------------
    def _run_batched(self, group: List[BatchJob],
                     results: List[Any]) -> None:
        t0 = self.bus.elapsed if self.bus else 0.0
        self._emit("ensemble_batch", jobs=[j.index for j in group])
        group_results = run_ensemble_jobs(
            group, width=self.options.batch_width,
            artifacts=self.artifacts,
            schedule_log=self.schedule_log)
        t1 = self.bus.elapsed if self.bus else 0.0
        for job, result in zip(group, group_results):
            results[job.index] = result
            self._track[job.index] = {"pid": 0, "start": t0,
                                      "batch": (t0, t1)}
            self._emit("job_done", job=job.index,
                       nstep=int(result.nstep),
                       wall_seconds=round(t1 - t0, 6))
            if self.cache is not None:
                self.cache.store(self._key(job), result)

    # ------------------------------------------------------------------
    def _run_inline(self, job: BatchJob):
        from ..api import _execute_run
        from ..telemetry.live import ProgressReporter
        from .checkpoint import CheckpointWriter, restore_into

        opts = self.options
        config = job.config
        if job.override:
            raise FleetError(
                f"job {job.index} carries control overrides but was "
                "routed off the ensemble path"
            )
        observers = list(self.observers or [])
        in_process = config.resolved_backend() in ("serial", "threads")
        if self._live and in_process:
            observers.append(ProgressReporter(
                self.bus.emit, job.index, every=opts.progress_every,
                max_steps=config.max_steps))
        on_prepared = None
        serial = (config.nranks == 1
                  and config.resolved_backend() == "serial")
        if opts.checkpoint_dir and serial:
            key = self._key(job)
            ckpt_path = os.path.join(opts.checkpoint_dir,
                                     f"{key}.ckpt.npz")

            def on_write(step, _j=job.index):
                self._emit("job_checkpointed", job=_j, step=step)

            observers.append(CheckpointWriter(
                ckpt_path, opts.checkpoint_every, key=key,
                on_write=on_write))
            if os.path.exists(ckpt_path):
                self._log("checkpoint_resume", job=job.index,
                          path=ckpt_path)

                def on_prepared(driver, max_steps, _p=ckpt_path,
                                _k=key):
                    return restore_into(driver, _p, key=_k,
                                        max_steps=max_steps)
        self._log("job_inline", job=job.index)
        t0 = self.bus.elapsed if self.bus else 0.0
        self._emit("job_started", job=job.index, attempt=1, worker=None)
        self._track[job.index] = {"pid": 0, "start": t0}
        result = _execute_run(config, observers=observers or None,
                              artifacts=self.artifacts,
                              on_prepared=on_prepared)
        self._emit("job_done", job=job.index, nstep=int(result.nstep),
                   wall_seconds=round(result.wall_seconds, 6))
        if self.cache is not None:
            self.cache.store(self._key(job), result)
        return result

    # ------------------------------------------------------------------
    def _run_pool(self, jobs: List[BatchJob],
                  results: List[Any]) -> None:
        from .worker import WorkerPool

        opts = self.options
        if self.observers:
            raise BookLeafError(
                "observers need inline execution (workers=0); worker "
                "processes cannot call back into this process"
            )
        spool = self.cache
        tmp_root = None
        if spool is None:
            tmp_root = tempfile.mkdtemp(prefix="bookleaf-fleet-spool-")
            spool = ResultCache(tmp_root)
        if opts.checkpoint_dir:
            os.makedirs(opts.checkpoint_dir, exist_ok=True)
        pool = WorkerPool(
            min(opts.workers, len(jobs)), spool.root,
            checkpoint_dir=opts.checkpoint_dir,
            checkpoint_every=opts.checkpoint_every,
            max_attempts=opts.max_attempts,
            schedule_log=self.schedule_log,
            events=self.bus,
            heartbeat_timeout=opts.heartbeat_timeout,
            progress_every=(opts.progress_every if self._live
                            else None))
        self._pool = pool
        try:
            done = pool.run(jobs, fault_steps=opts.fault_steps,
                            stall_steps=opts.stall_steps)
        finally:
            pool.shutdown()
        self._log("pool_done", jobs=len(jobs),
                  respawns=pool.respawns)
        job_worker = pool.job_worker()
        starts = {a["job"]: a["t_start"] for a in pool.attempt_log
                  if a["outcome"] == "done"}
        for job in jobs:
            if job.index not in done:
                raise FleetError(
                    f"fleet job {job.index} has no stored outcome"
                )
            results[job.index] = spool.load(
                done[job.index], job.config,
                override=job.override, hit=False)
            self._track[job.index] = {
                "pid": job_worker.get(job.index, -1) + 1,
                "start": starts.get(job.index, 0.0),
            }

    # ------------------------------------------------------------------
    def _merge_outputs(self, results: List[Any]) -> None:
        opts = self.options
        if opts.metrics_path:
            root = os.path.dirname(os.path.abspath(opts.metrics_path))
            os.makedirs(root, exist_ok=True)
            with open(opts.metrics_path, "w", encoding="utf-8") as fh:
                for job, result in zip(self.jobs, results):
                    for rec in (result.metrics_rows or []):
                        fh.write(json.dumps(
                            {"job": job.index, **rec}) + "\n")
        if opts.prom_path:
            from ..metrics.registry import MetricsRegistry

            registry = MetricsRegistry()
            registry.counter("fleet_jobs_total").inc(len(results))
            hits = sum(1 for r in results if r.cache_hit)
            registry.counter("fleet_cache_hits_total").inc(hits)
            for job, result in zip(self.jobs, results):
                labels = {"job": str(job.index),
                          "backend": result.backend}
                registry.gauge("fleet_job_steps", **labels).set(
                    result.nstep)
                registry.gauge("fleet_job_time", **labels).set(
                    result.time)
                registry.gauge("fleet_job_wall_seconds",
                               **labels).set(result.wall_seconds)
                if result.metrics_rows:
                    final = result.metrics_rows[-1]
                    for name in ("mass", "total_energy", "mass_drift",
                                 "energy_drift"):
                        if name in final:
                            registry.gauge(f"fleet_job_{name}",
                                           **labels).set(final[name])
            registry.write_prometheus(opts.prom_path)

    # ------------------------------------------------------------------
    def _finalize_outputs(self) -> None:
        """End-of-sweep artefacts: the merged trace, the aggregated
        profile and the dashboard (needs the memoised results)."""
        opts = self.options
        if opts.profile_dir:
            self._aggregate_profiles()
        if opts.trace_path:
            from ..telemetry.sweep_trace import write_sweep_trace

            write_sweep_trace(self.build_sweep_trace(), opts.trace_path)
        if opts.dashboard_path:
            from ..telemetry.dashboard import write_dashboard

            write_dashboard(self.summary(), self.bus.events,
                            opts.dashboard_path)

    def _aggregate_profiles(self) -> None:
        from ..telemetry.sampling import (merge_folded, read_collapsed,
                                          top_stacks, write_collapsed)

        opts = self.options
        profiles = []
        for job in self.jobs:
            path = job.config.profile
            if path and os.path.exists(path):
                profiles.append(read_collapsed(path))
        merged = merge_folded(profiles)
        sweep_path = os.path.join(opts.profile_dir, "sweep.folded")
        write_collapsed(merged, sweep_path)
        self._profile_doc = {
            "jobs_profiled": len(profiles),
            "samples": sum(merged.values()),
            "path": sweep_path,
            "top_stacks": [
                {"stack": stack, "samples": count,
                 "fraction": round(frac, 4)}
                for stack, count, frac in top_stacks(merged, 5)
            ],
        }

    # ------------------------------------------------------------------
    def build_sweep_trace(self):
        """Assemble the merged sweep trace from the recorded span
        shards, scheduling track and live events."""
        from ..telemetry.sweep_trace import SweepTraceBuilder

        results = self.results()
        builder = SweepTraceBuilder(epoch_ns=self.bus.epoch_ns
                                    if self.bus else 0)

        def ns(seconds: float) -> int:
            return max(0, int(seconds * 1e9))

        for job, result in zip(self.jobs, results):
            track = self._track.get(job.index, {"pid": 0, "start": 0.0})
            label = (job.config.problem
                     or os.path.basename(job.config.deck or "")
                     or "")
            if job.config.nx:
                label += f" {job.config.nx}x{job.config.ny or job.config.nx}"
            builder.add_job(job.index, pid=track["pid"],
                            start_ns=ns(track["start"]),
                            spans=(result.spans
                                   if not result.cache_hit else []),
                            label=label.strip())
            if track.get("cache_hit"):
                builder.add_instant(job.index, "cache_hit",
                                    ns(track["start"]),
                                    args={"key": self._key(job)[:12]})
            batch = track.get("batch")
            if batch is not None and job.index == min(
                    j.index for j in self.jobs
                    if self._track.get(j.index, {}).get("batch") == batch):
                batched = [j.index for j in self.jobs
                           if self._track.get(j.index, {})
                           .get("batch") == batch]
                builder.add_batch(batched, ns(batch[0]),
                                  ns(batch[1] - batch[0]))
        for rec in (self.bus.events if self.bus else []):
            if rec["event"] == "job_checkpointed":
                builder.add_instant(rec["job"], "checkpoint",
                                    ns(rec["t"]),
                                    args={"step": rec["step"]})
        if self._pool is not None:
            by_job: Dict[int, List[dict]] = {}
            for attempt in self._pool.attempt_log:
                by_job.setdefault(attempt["job"], []).append(attempt)
            for job_index, attempts in by_job.items():
                attempts.sort(key=lambda a: a["t_start"])
                for prev, nxt in zip(attempts, attempts[1:]):
                    if prev["outcome"] != "died":
                        continue
                    builder.add_flow(
                        job_index,
                        from_pid=prev["worker"] + 1,
                        from_ns=ns(prev["t_end"] or prev["t_start"]),
                        to_pid=nxt["worker"] + 1,
                        to_ns=ns(nxt["t_start"]),
                    )
        return builder.build()

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Sweep summary: one entry per job with its canonical key,
        outcome digest and performance metrics, plus cross-job anomaly
        flags and scheduling/cache counters.  The "fleet" document
        kind of ``bookleaf compare``."""
        from ..metrics.anomaly import detect_anomalies

        results = self.results()
        job_docs = []
        for job, result in zip(self.jobs, results):
            config = job.config
            wall = float(result.wall_seconds)
            kernel_seconds = (result.timers.total()
                              if result.report_override is None
                              else sum(
                                  k.get("seconds", 0.0) for k in
                                  (result.report_override.get("kernels")
                                   or {}).values()))
            job_docs.append({
                "index": job.index,
                "key": self._key(job),
                "cache_hit": bool(result.cache_hit),
                "lane": result.lane,
                "backend": result.backend,
                "problem": config.problem,
                "deck": (os.path.basename(config.deck)
                         if config.deck else None),
                "nx": config.nx,
                "ny": config.ny,
                "nranks": int(config.nranks),
                "nstep": int(result.nstep),
                "time": float(result.time),
                "wall_seconds": wall,
                "steps_per_sec": (round(result.nstep / wall, 3)
                                  if wall > 0 else None),
                "kernel_seconds": round(float(kernel_seconds), 6),
                "comm_bytes": (result.comm_total or {}).get("bytes"),
                "digest": state_digest(result.state, result.nstep,
                                       result.time,
                                       result.metrics_rows),
            })
        anomalies = detect_anomalies(job_docs)
        counts = {
            "jobs": len(results),
            "cache_hits": sum(1 for r in results if r.cache_hit),
            "ensemble_jobs": sum(1 for r in results
                                 if r.backend == "ensemble"),
            "events": len(self.schedule_log),
            "anomalies": len(anomalies),
        }
        doc = {
            "fleet_sweep": 1,
            "schema_version": FLEET_SCHEMA_VERSION,
            "jobs": job_docs,
            "counts": counts,
            "anomalies": anomalies,
            "wall_seconds": self._wall,
            "cache": self.cache.stats() if self.cache else None,
            "artifacts": self.artifacts.stats(),
        }
        if self._profile_doc is not None:
            doc["profile"] = self._profile_doc
        return doc
