"""Checkpoint/restart: periodic HydroState snapshots for resumable jobs.

A fleet job that dies mid-run (preempted worker, SIGKILL, machine
loss) resumes from its last checkpoint instead of restarting.  The
checkpoint is one atomically-written ``.npz`` holding

* every state array (:data:`repro.fleet.cache.STATE_FIELDS` + material
  ids + boundary planes),
* the loop clocks — ``nstep``, ``time``, ``dt``, ``dt_reason``,
  ``dt_cell`` (``dt`` is load-bearing: ``getdt`` growth-limits against
  the previous step's dt, so restoring it keeps the resumed dt sequence
  bitwise equal to the uninterrupted one),
* the diagnostics probe's internals (rows, drift baseline, last sampled
  step) so the resumed NDJSON stream is byte-identical to an
  uninterrupted run's,
* the job's cache key, so a stale checkpoint from a different config
  can never be overlaid.

Restore order is the part that guards bit-identity: the driver is built
fresh from the config *first* — so the ALE remapper captures the
pristine initial coordinates as its Eulerian target, exactly as in an
uninterrupted run — and only then are the checkpoint arrays overlaid
into the live state.  Checkpointing is supported for serial-backend
jobs (the sweep workload); decomposed jobs restart from scratch on
failure.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

import numpy as np

from ..utils.errors import FleetError
from .cache import state_arrays, overlay_state

#: checkpoint file layout version
CHECKPOINT_SCHEMA_VERSION = 1


def save_checkpoint(path: str, hydro, key: str = "") -> None:
    """Atomically write one checkpoint of a live serial ``Hydro``."""
    probe_doc = None
    if hydro.probe is not None:
        p = hydro.probe
        probe_doc = {
            "rows": p.rows,
            "baseline": p._baseline,
            "last_sampled": p._last_sampled,
        }
    meta = {
        "schema_version": CHECKPOINT_SCHEMA_VERSION,
        "key": key,
        "nstep": int(hydro.nstep),
        "time": float(hydro.time),
        "dt": float(hydro.dt) if hydro.dt is not None else None,
        "dt_reason": hydro.dt_reason,
        "dt_cell": int(hydro.dt_cell) if hydro.dt_cell is not None else -1,
        "probe": probe_doc,
    }
    arrays = state_arrays(hydro.state)
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8).copy()
    root = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(root, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=root, suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: str):
    """Read a checkpoint back as ``(meta, arrays)``."""
    with np.load(path) as data:
        arrays = {name: data[name] for name in data.files}
    meta = json.loads(bytes(arrays.pop("__meta__")).decode("utf-8"))
    return meta, arrays


class CheckpointWriter:
    """Step-loop observer that checkpoints every ``every`` steps.

    Attach *before* any fault-injecting observer: the write for step N
    happens ahead of anything that can kill the process at step N.
    """

    def __init__(self, path: str, every: int, key: str = "",
                 on_write=None):
        if every < 1:
            raise FleetError("checkpoint cadence must be >= 1")
        self.path = path
        self.every = int(every)
        self.key = key
        self.saves = 0
        #: optional ``on_write(step)`` hook — the fleet's live event
        #: plane turns each save into a ``job_checkpointed`` event
        self.on_write = on_write

    def __call__(self, hydro) -> None:
        if hydro.nstep % self.every == 0:
            save_checkpoint(self.path, hydro, key=self.key)
            self.saves += 1
            if self.on_write is not None:
                self.on_write(int(hydro.nstep))


def restore_into(driver, path: str, key: str = "",
                 max_steps: Optional[int] = None) -> Optional[int]:
    """Overlay a checkpoint into a freshly-built serial driver.

    This is the :func:`repro.api._execute_run` ``on_prepared`` hook's
    body: the driver's rank-0 hydro gets the stored state, clocks and
    probe internals; the NDJSON sink (if any) is rewritten with the
    restored rows so subsequent samples continue the stream; and a
    cadence-due sample the crash cut off between checkpoint and probe
    is regenerated from the restored state (bitwise identical — the
    sample is a pure function of state + baseline).  Returns the
    *remaining* step budget (``Hydro.run`` counts steps from its call),
    or None to leave ``max_steps`` untouched.
    """
    meta, arrays = load_checkpoint(path)
    if key and meta.get("key") and meta["key"] != key:
        raise FleetError(
            f"checkpoint {path} belongs to job {meta['key'][:12]}..., "
            f"not {key[:12]}...; refusing to overlay"
        )
    if not driver.hydros:
        raise FleetError(
            "checkpoint restore needs an in-process rank "
            "(serial backend); decomposed jobs restart instead"
        )
    hydro = driver.hydros[0]
    overlay_state(hydro.state, arrays)
    hydro.nstep = int(meta["nstep"])
    hydro.time = float(meta["time"])
    hydro.dt = meta["dt"]
    hydro.dt_reason = meta["dt_reason"]
    hydro.dt_cell = meta["dt_cell"]
    probe_doc = meta.get("probe")
    if hydro.probe is not None and probe_doc is not None:
        probe = hydro.probe
        probe.rows = list(probe_doc["rows"] or [])
        probe._baseline = probe_doc["baseline"]
        probe._last_sampled = probe_doc["last_sampled"]
        if probe.sink_path is not None:
            # Rewrite the stream with the restored rows; _emit appends
            # from here on, so the final file matches an uninterrupted
            # run byte for byte.
            probe._sink = open(probe.sink_path, "w")
            for rec in probe.rows:
                probe._sink.write(json.dumps(rec) + "\n")
            probe._sink.flush()
        # The crash window: a checkpoint at step N is written by an
        # observer that runs *before* the probe samples step N.  If N
        # was cadence-due, regenerate that sample now from the restored
        # state so the stream doesn't skip it.
        if (hydro.nstep % probe.every == 0
                and probe._last_sampled != hydro.nstep):
            probe.sample(hydro)
    if max_steps is not None:
        return max(0, int(max_steps) - hydro.nstep)
    return None
