"""Compiled-artifact cache: reuse mesh-derived schedules across jobs.

A sweep re-runs the same mesh spec dozens of times; today every run
re-partitions the mesh, rebuilds the ghosted subdomains, recompiles the
packed CommPlans and (on the ensemble path) rebuilds the MeshPlans
gather/scatter index tables.  All of those are pure functions of the
mesh *topology* plus ``(nranks, method)``, so the fleet attaches one
:class:`ArtifactCache` and every same-mesh job after the first gets
them for free.

The cache is keyed by a topology fingerprint — ``(ncell, nnode,
sha256(cell_nodes))`` — never by object identity, so two
independently-built but identical meshes share entries.  Everything
cached here is read-only during a run (states are restricted by copy,
plans are index tables), and reuse is *exact*: the returned objects are
the very ones a fresh compile would produce, so bit-identity is
untouched.

Scope note: the serial ``api.run`` path deliberately takes **no**
MeshPlans from here — the plan-based scatter matches ``np.bincount``
only to round-off, and the serial driver's contract is bitwise equality
with the historic loop.  Only the ensemble path (which always runs on
MeshPlans) reuses them.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

import numpy as np


def mesh_fingerprint(mesh) -> Tuple[int, int, str]:
    """Content key of a mesh's topology (coordinates live in the
    state, not here)."""
    digest = hashlib.sha256(
        np.ascontiguousarray(mesh.cell_nodes).tobytes()).hexdigest()
    return (int(mesh.ncell), int(mesh.nnode), digest)


class ArtifactCache:
    """Memoises partitions, subdomains, CommPlans and MeshPlans."""

    def __init__(self):
        self._decomps: Dict[Tuple, Tuple] = {}
        self._plans: Dict[Tuple, List] = {}
        self._mesh_plans: Dict[Tuple, object] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def decomposition(self, mesh, nranks: int, method: str):
        """``(partition, subdomains)`` for this mesh/rank-count/method,
        compiled once."""
        from ..parallel.halo import build_subdomains
        from ..parallel.partition.interface import partition

        key = (mesh_fingerprint(mesh), int(nranks), str(method))
        entry = self._decomps.get(key)
        if entry is None:
            self.misses += 1
            part = partition(mesh, nranks, method)
            subs = build_subdomains(mesh, part, nranks)
            entry = self._decomps[key] = (part, subs)
        else:
            self.hits += 1
        return entry

    def comm_plans(self, mesh, nranks: int, method: str, subdomains):
        """The packed-exchange CommPlans for this decomposition."""
        from ..parallel.commplan import compile_plans

        key = (mesh_fingerprint(mesh), int(nranks), str(method))
        plans = self._plans.get(key)
        if plans is None:
            self.misses += 1
            plans = self._plans[key] = compile_plans(subdomains)
        else:
            self.hits += 1
        return plans

    def mesh_plans(self, mesh):
        """Ensemble-path :class:`~repro.perf.plans.MeshPlans` for this
        topology (gather/scatter index tables)."""
        from ..perf.plans import MeshPlans

        key = mesh_fingerprint(mesh)
        plans = self._mesh_plans.get(key)
        if plans is None:
            self.misses += 1
            plans = self._mesh_plans[key] = MeshPlans(mesh)
        else:
            self.hits += 1
        return plans

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "decompositions": len(self._decomps),
            "comm_plans": len(self._plans),
            "mesh_plans": len(self._mesh_plans),
        }
