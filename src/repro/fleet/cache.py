"""Content-addressed result cache: canonical config hash → stored run.

The fleet's cache keys every job by
:meth:`repro.api.RunConfig.canonical_key` (extended with the job's
per-lane control overrides, when any — :func:`job_key`), and stores the
run's *outcome*: the final state arrays, the step/time clocks, the
schema-versioned run report and the live-metrics rows.  A resubmitted
config whose key matches is served from disk with ``cache_hit=True``
instead of re-executing — the deck, every resolved control, the rank
count, the backend and the code version all enter the key, so a hit is
exactly "this run already happened".

Storage layout under the cache root, two files per entry, both written
atomically (tmp + ``os.replace``) so a killed worker never leaves a
half-entry::

    <key>.npz    final-state arrays (x, y, u, ..., bc planes)
    <key>.json   scalars + report + metrics rows (the meta document)

The same store doubles as the worker pool's result spool: workers
persist outcomes here and the parent re-materialises them by key, so a
result survives its worker's death.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

import numpy as np

from ..utils.errors import FleetError
from ..utils.timers import TimerRegistry

#: on-disk entry layout version (bumped on any stored-shape change)
CACHE_SCHEMA_VERSION = 1

#: every float64 field of a HydroState, in storage order
STATE_FIELDS = ("x", "y", "u", "v", "rho", "e", "p", "cs2", "q",
                "cell_mass", "corner_mass", "volume", "corner_volume")
#: integer fields stored alongside
INT_FIELDS = ("mat",)
#: boundary-condition planes (flags + driven velocities)
BC_FIELDS = ("flags", "ux", "uy")


def state_arrays(state) -> Dict[str, np.ndarray]:
    """Every array that defines a :class:`HydroState`, as a flat dict
    (the npz payload for cache entries and checkpoints)."""
    out = {name: np.ascontiguousarray(getattr(state, name))
           for name in STATE_FIELDS + INT_FIELDS}
    for name in BC_FIELDS:
        out[f"bc_{name}"] = np.ascontiguousarray(getattr(state.bc, name))
    return out


def overlay_state(state, arrays: Dict[str, np.ndarray]):
    """Write stored arrays back into ``state`` in place (the mesh and
    topology stay the freshly-built ones — they are pure functions of
    the config) and drop the node-mass cache."""
    for name in STATE_FIELDS + INT_FIELDS:
        getattr(state, name)[...] = arrays[name]
    for name in BC_FIELDS:
        getattr(state.bc, name)[...] = arrays[f"bc_{name}"]
    state.invalidate_node_mass()
    return state


def job_key(config, override: Optional[Dict[str, Any]] = None) -> str:
    """The cache key for one fleet job: the config's canonical dict,
    extended with its per-lane control overrides when the job came in
    through an ensemble sweep.  Override *order* never matters — keys
    are sorted before hashing."""
    doc = config.canonical_dict()
    if override:
        doc["control_overrides"] = {
            str(k): override[k] for k in sorted(override)
        }
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                         default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def state_digest(state, nstep: int, time: float,
                 metrics_rows=None) -> str:
    """Deterministic digest of a run's *outcome*: the exact final-state
    bytes, the clocks and the diagnostics stream.  Wall seconds and
    kernel timers are deliberately excluded — they are never
    reproducible — so this is the value the kill-and-resume CI gate
    compares bit-for-bit."""
    h = hashlib.sha256()
    arrays = state_arrays(state)
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(arrays[name].tobytes())
    h.update(f"nstep={int(nstep)};time={float(time)!r}".encode())
    if metrics_rows:
        h.update(json.dumps(metrics_rows, sort_keys=True).encode())
    return h.hexdigest()


class ResultCache:
    """On-disk content-addressed store of run outcomes.

    ``hits``/``misses``/``stores`` counters feed the fleet summary.
    """

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _paths(self, key: str):
        return (os.path.join(self.root, f"{key}.npz"),
                os.path.join(self.root, f"{key}.json"))

    def has(self, key: str) -> bool:
        npz, meta = self._paths(key)
        return os.path.exists(npz) and os.path.exists(meta)

    # ------------------------------------------------------------------
    def store(self, key: str, result) -> None:
        """Persist one finished :class:`RunResult` under ``key``
        (atomic: a concurrent reader sees the old entry or the new one,
        never a torn one)."""
        npz_path, meta_path = self._paths(key)
        arrays = state_arrays(result.state)
        meta = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "backend": result.backend,
            "nranks": int(result.nranks),
            "nstep": int(result.nstep),
            "time": float(result.time),
            "wall_seconds": float(result.wall_seconds),
            "lane": result.lane,
            "report": result.report(),
            "metrics_rows": result.metrics_rows,
            "step_rows": result.step_rows,
            # span shards ride the spool so the fleet parent can merge
            # worker-side traces into the sweep trace (empty when the
            # job ran untraced — the common case costs nothing)
            "spans": ([s.as_dict() for s in result.spans]
                      if result.spans else None),
            "comm_total": result.comm_total,
            "comm_per_rank": result.comm_per_rank,
            "comm_summary": result.comm_summary,
            "digest": state_digest(result.state, result.nstep,
                                   result.time, result.metrics_rows),
        }
        for path, writer in (
            (npz_path, lambda fh: np.savez(fh, **arrays)),
            (meta_path, lambda fh: fh.write(
                json.dumps(meta, default=repr).encode("utf-8"))),
        ):
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    writer(fh)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        self.stores += 1

    # ------------------------------------------------------------------
    def load(self, key: str, config, *,
             override: Optional[Dict[str, Any]] = None,
             hit: bool = True):
        """Re-materialise the stored outcome as a :class:`RunResult`.

        The mesh/topology side of the state is rebuilt deterministically
        from the config (it is not stored); the stored arrays are then
        overlaid.  The result carries the stored report verbatim
        (``report_override``) — kernel-timer *objects* are not
        reconstructable across processes — and ``cache_hit=hit``.
        """
        from ..api import RunResult
        from ..telemetry.spans import Span

        npz_path, meta_path = self._paths(key)
        if not self.has(key):
            raise FleetError(f"cache entry {key} missing from {self.root}")
        with open(meta_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
        with np.load(npz_path) as data:
            arrays = {name: data[name] for name in data.files}
        setup = config.build_setup()
        if override:
            setup.controls = setup.controls.with_(**override).validated()
        overlay_state(setup.state, arrays)
        if hit:
            self.hits += 1
        return RunResult(
            config=config,
            setup=setup,
            backend=meta["backend"],
            nranks=meta["nranks"],
            nstep=meta["nstep"],
            time=meta["time"],
            wall_seconds=meta["wall_seconds"],
            state=setup.state,
            timers=TimerRegistry(),
            spans=[Span(**doc) for doc in (meta.get("spans") or [])],
            comm_total=meta.get("comm_total"),
            comm_per_rank=meta.get("comm_per_rank") or [],
            step_rows=meta.get("step_rows"),
            comm_summary=meta.get("comm_summary"),
            metrics_rows=meta.get("metrics_rows"),
            metrics=None,
            driver=None,
            lane=meta.get("lane"),
            cache_hit=hit,
            report_override=meta.get("report"),
        )

    def digest(self, key: str) -> Optional[str]:
        """The stored outcome digest for ``key`` (None if absent)."""
        _, meta_path = self._paths(key)
        if not os.path.exists(meta_path):
            return None
        with open(meta_path, "r", encoding="utf-8") as fh:
            return json.load(fh).get("digest")

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "root": self.root}
