"""The fleet's process pool: fork-per-worker with SIGKILL-safe pipes.

Design constraints, in order:

* **A dead worker must never wedge the fleet.**  Each worker owns a
  private duplex :func:`multiprocessing.Pipe` — there is no shared
  queue whose internal lock a SIGKILLed holder could leave locked.
  The parent multiplexes worker pipes *and* process sentinels through
  one :func:`multiprocessing.connection.wait`, so a death wakes it
  exactly like a result would.
* **A job outlives its worker.**  Workers persist every outcome into
  the on-disk result store (the fleet's cache doubling as a spool,
  written atomically) *before* reporting done; the parent
  re-materialises results by key.  A worker killed between store and
  report costs one cheap retry — the replacement worker finds the
  stored entry and short-circuits.
* **A crashed job resumes, not restarts.**  With checkpointing on,
  serial jobs write periodic snapshots keyed by the job's cache key;
  the retry overlays the last one (:mod:`repro.fleet.checkpoint`) and
  continues bit-identically.
* **A wedged worker is detected, not waited on.**  With
  ``heartbeat_timeout`` set, every worker slot owns one row of a
  ``shared_memory``-backed :class:`~repro.metrics.watchdog.HeartbeatBoard`
  (created before the fork, inherited by the children); in-process
  ranks beat it per step, and the parent's wait loop SIGKILLs any
  busy slot whose beat goes stale — surfacing a
  :class:`~repro.utils.errors.StalledRankWarning` and a
  ``worker_stalled`` live event — after which the ordinary
  death/requeue path takes over.

Workers also stream **live events** back over their pipes
(``("event", pos, payload)`` messages interleaved with results): step
progress with rate/ETA and checkpoint writes, forwarded to the fleet's
:class:`~repro.telemetry.live.EventBus`.

Fault injection (``FleetOptions.fault_steps``) is the chaos hook the
resume test proves itself with: the job's observer SIGKILLs its own
worker at a chosen step — a real, uncatchable death, first attempt
only.  ``stall_steps`` is the watchdog's twin: the observer wedges
(sleeps forever) instead of dying.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time
import warnings
from collections import deque
from multiprocessing.connection import wait as _mp_wait
from typing import Any, Dict, List, Optional

from ..utils.errors import FleetError, StalledRankWarning
from .batch import BatchJob


class _FaultInjector:
    """Observer that SIGKILLs its own process at a given step (after
    the checkpoint writer for that step has run — attach order in
    :func:`_run_job` guarantees it)."""

    def __init__(self, at_step: int):
        self.at_step = int(at_step)

    def __call__(self, hydro) -> None:
        if hydro.nstep >= self.at_step:
            os.kill(os.getpid(), signal.SIGKILL)


class _StallInjector:
    """Observer that wedges its process at a given step — alive but
    silent, the failure mode only the heartbeat watchdog can see."""

    def __init__(self, at_step: int):
        self.at_step = int(at_step)

    def __call__(self, hydro) -> None:
        if hydro.nstep >= self.at_step:
            while True:  # pragma: no cover - killed by the watchdog
                time.sleep(3600)


def _observable(config) -> bool:
    """True when the job's ranks run in-process (observers attach)."""
    return config.resolved_backend() in ("serial", "threads")


def _run_job(doc: dict, store, checkpoint_dir: Optional[str],
             checkpoint_every: int, emit=None,
             heartbeat=None) -> None:
    """Execute one job document inside a worker and persist the
    outcome under its key."""
    from ..api import _execute_run
    from ..telemetry.live import ProgressReporter
    from .checkpoint import CheckpointWriter, restore_into

    config = doc["config"]
    key = doc["key"]
    pos = doc["pos"]
    if store.has(key):
        return  # a previous attempt finished the work before dying
    observers = []
    on_prepared = None
    serial = (config.nranks == 1
              and config.resolved_backend() == "serial")
    if heartbeat is not None and _observable(config):
        observers.append(heartbeat)
    if emit is not None and doc.get("progress_every") and \
            _observable(config):
        observers.append(ProgressReporter(
            emit, pos, every=doc["progress_every"],
            max_steps=config.max_steps))
    if checkpoint_dir and serial:
        ckpt_path = os.path.join(checkpoint_dir, f"{key}.ckpt.npz")
        on_write = None
        if emit is not None:
            def on_write(step, _pos=pos):
                emit("job_checkpointed", job=_pos, step=step)
        observers.append(
            CheckpointWriter(ckpt_path, checkpoint_every, key=key,
                             on_write=on_write))
        if os.path.exists(ckpt_path):
            def on_prepared(driver, max_steps, _p=ckpt_path, _k=key):
                return restore_into(driver, _p, key=_k,
                                    max_steps=max_steps)
    if doc.get("fault_step") is not None:
        observers.append(_FaultInjector(doc["fault_step"]))
    if doc.get("stall_step") is not None:
        observers.append(_StallInjector(doc["stall_step"]))
    result = _execute_run(config, observers=observers or None)
    store.store(key, result)


def _worker_main(conn, store_root: str, checkpoint_dir: Optional[str],
                 checkpoint_every: int, board=None,
                 slot: int = 0) -> None:
    """Worker loop: receive job documents, execute, report.

    ``board`` is the heartbeat board inherited through the fork (one
    row per worker slot); in-process ranks beat ``slot``'s row every
    step so the parent can tell wedged from busy.
    """
    from ..metrics.watchdog import Heartbeat
    from .cache import ResultCache

    store = ResultCache(store_root)
    heartbeat = Heartbeat(board, slot) if board is not None else None
    while True:
        try:
            doc = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if doc is None:
            return

        def emit(event: str, **payload) -> None:
            try:
                conn.send(("event", doc["pos"],
                           {"event": event, **payload}))
            except (BrokenPipeError, OSError):
                pass

        try:
            _run_job(doc, store, checkpoint_dir, checkpoint_every,
                     emit=emit, heartbeat=heartbeat)
            conn.send(("done", doc["pos"], doc["key"]))
        except BaseException as exc:  # report, keep serving
            try:
                conn.send(("failed", doc["pos"],
                           f"{type(exc).__name__}: {exc}"))
            except BrokenPipeError:
                return


class WorkerPool:
    """Parent-side scheduler over N forked workers."""

    def __init__(self, nworkers: int, store_root: str, *,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 20,
                 max_attempts: int = 3,
                 schedule_log: Optional[List[dict]] = None,
                 events: Any = None,
                 heartbeat_timeout: Optional[float] = None,
                 progress_every: Optional[int] = None):
        self.ctx = mp.get_context("fork")
        self.store_root = store_root
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.max_attempts = max(1, int(max_attempts))
        self.schedule_log = schedule_log
        #: the fleet's live :class:`~repro.telemetry.live.EventBus`
        #: (None = no event plane)
        self.events = events
        self.heartbeat_timeout = heartbeat_timeout
        self.progress_every = progress_every
        #: every dispatch, for the sweep trace's flow events:
        #: ``{"job", "worker", "t_start", "t_end", "outcome"}``
        self.attempt_log: List[dict] = []
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._hb_seg = None
        self.board = None
        nslots = max(1, nworkers)
        if heartbeat_timeout is not None:
            self._make_board(nslots)
        self.workers = [self._spawn(slot) for slot in range(nslots)]
        self.respawns = 0

    # ------------------------------------------------------------------
    def _make_board(self, nslots: int) -> None:
        from multiprocessing import shared_memory

        import numpy as np

        from ..metrics.watchdog import BOARD_COLS, HeartbeatBoard

        nbytes = nslots * BOARD_COLS * np.dtype(np.float64).itemsize
        self._hb_seg = shared_memory.SharedMemory(create=True,
                                                  size=nbytes)
        array = np.ndarray((nslots, BOARD_COLS), dtype=np.float64,
                           buffer=self._hb_seg.buf)
        self.board = HeartbeatBoard(array)
        self.board.launch()

    def _now(self) -> float:
        """Seconds on the sweep's event clock (the bus epoch when a
        bus is attached, so attempt times line up with live events)."""
        if self.events is not None:
            return self.events.elapsed
        return time.perf_counter() - self._epoch

    def _spawn(self, slot: int) -> dict:
        parent, child = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=_worker_main,
            args=(child, self.store_root, self.checkpoint_dir,
                  self.checkpoint_every, self.board, slot),
            daemon=True,
        )
        proc.start()
        child.close()
        wid = self._next_id
        self._next_id += 1
        return {"id": wid, "slot": slot, "conn": parent, "proc": proc,
                "job": None, "monitor": False, "killed": False,
                "attempt": None}

    def _log(self, event: str, **kw) -> None:
        if self.schedule_log is not None:
            self.schedule_log.append({"event": event, **kw})

    def _emit(self, event: str, **payload) -> None:
        if self.events is not None:
            self.events.emit(event, **payload)

    # ------------------------------------------------------------------
    def run(self, jobs: List[BatchJob],
            fault_steps: Optional[Dict[int, int]] = None,
            stall_steps: Optional[Dict[int, int]] = None
            ) -> Dict[int, str]:
        """Drive every job to a stored outcome; returns
        ``{job.index: key}``.  Dead workers are respawned and their
        in-flight job requeued (front of the queue) up to
        ``max_attempts`` total tries."""
        pending = deque(jobs)
        done: Dict[int, str] = {}
        timeout = None
        if self.board is not None and self.heartbeat_timeout:
            timeout = min(max(self.heartbeat_timeout / 4, 0.02), 1.0)
        while pending or any(w["job"] is not None for w in self.workers):
            for i, w in enumerate(self.workers):
                if w["job"] is None and pending:
                    job = pending.popleft()
                    fault = stall = None
                    if job.attempts == 0:
                        if fault_steps:
                            fault = fault_steps.get(job.index)
                        if stall_steps:
                            stall = stall_steps.get(job.index)
                    doc = {
                        "pos": job.index,
                        "key": job.metadata["key"],
                        "config": job.config,
                        "fault_step": fault,
                        "stall_step": stall,
                        "progress_every": self.progress_every,
                    }
                    try:
                        w["conn"].send(doc)
                    except (BrokenPipeError, OSError):
                        # the worker died while idle; replace and retry
                        pending.appendleft(job)
                        w["proc"].join()
                        self.workers[i] = self._spawn(w["slot"])
                        self.respawns += 1
                        continue
                    w["job"] = job
                    w["killed"] = False
                    w["monitor"] = _observable(job.config)
                    job.attempts += 1
                    if self.board is not None:
                        self.board.beat(w["slot"], -1)
                    w["attempt"] = {
                        "job": job.index, "worker": w["id"],
                        "t_start": self._now(), "t_end": None,
                        "outcome": None,
                    }
                    self.attempt_log.append(w["attempt"])
                    self._log("job_start", job=job.index,
                              worker=w["id"], attempt=job.attempts,
                              fault_step=fault)
                    self._emit("job_started", job=job.index,
                               worker=w["id"], attempt=job.attempts)
            busy = [w for w in self.workers if w["job"] is not None]
            if not busy:
                break
            ready = _mp_wait([w["conn"] for w in busy]
                             + [w["proc"].sentinel for w in busy],
                             timeout=timeout)
            for i, w in enumerate(self.workers):
                if w["job"] is None:
                    continue
                got_msg = False
                if w["conn"] in ready:
                    try:
                        msg = w["conn"].recv()
                        got_msg = True
                    except EOFError:
                        got_msg = False
                if got_msg:
                    kind, pos, info = msg
                    if kind == "event":
                        payload = dict(info)
                        self._emit(payload.pop("event"), **payload)
                        continue
                    job = w["job"]
                    w["job"] = None
                    w["attempt"]["t_end"] = self._now()
                    if kind == "done":
                        w["attempt"]["outcome"] = "done"
                        done[pos] = info
                        self._log("job_done", job=pos, worker=w["id"])
                        self._emit("job_done", job=pos,
                                   worker=w["id"], key=info,
                                   nstep=None, wall_seconds=round(
                                       w["attempt"]["t_end"]
                                       - w["attempt"]["t_start"], 6))
                    else:
                        w["attempt"]["outcome"] = "failed"
                        self._emit("job_failed", job=pos, error=info)
                        self.shutdown()
                        raise FleetError(
                            f"fleet job {pos} failed in worker "
                            f"{w['id']}: {info}"
                        )
                elif (w["proc"].sentinel in ready
                      and not w["proc"].is_alive()):
                    # Worker died mid-job (SIGKILL, OOM, segfault):
                    # requeue the job for the front of the line and
                    # replace the worker.
                    job = w["job"]
                    w["attempt"]["t_end"] = self._now()
                    w["attempt"]["outcome"] = "died"
                    self._log("worker_died", job=job.index,
                              worker=w["id"], attempt=job.attempts)
                    self._emit("worker_died", job=job.index,
                               worker=w["id"], attempt=job.attempts)
                    if job.attempts >= self.max_attempts:
                        self.shutdown()
                        raise FleetError(
                            f"fleet job {job.index} crashed "
                            f"{job.attempts} time(s); giving up "
                            f"(max_attempts={self.max_attempts})"
                        )
                    pending.appendleft(job)
                    self._emit("job_retried", job=job.index,
                               attempt=job.attempts + 1)
                    w["proc"].join()
                    self.workers[i] = self._spawn(w["slot"])
                    self.respawns += 1
            self._check_stalls()
        self.shutdown()
        return done

    # ------------------------------------------------------------------
    def _check_stalls(self) -> None:
        """SIGKILL any busy, monitorable worker whose heartbeat went
        stale; the death then takes the ordinary requeue path."""
        if self.board is None or not self.heartbeat_timeout:
            return
        stale = self.board.stalled(self.heartbeat_timeout)
        for w in self.workers:
            if (w["slot"] not in stale or w["job"] is None
                    or w["killed"] or not w["monitor"]):
                continue
            info = stale[w["slot"]]
            message = (
                f"fleet watchdog: worker {w['id']} (job "
                f"{w['job'].index}) sent no heartbeat within "
                f"{self.heartbeat_timeout:.1f}s (last step "
                f"{info['step']}, {info['age_seconds']:.1f}s ago); "
                f"killing it so the job can retry"
            )
            self._log("worker_stalled", job=w["job"].index,
                      worker=w["id"], age_seconds=info["age_seconds"])
            self._emit("worker_stalled", worker=w["id"],
                       job=w["job"].index,
                       age_seconds=round(info["age_seconds"], 3))
            warnings.warn(message, StalledRankWarning)
            try:
                os.kill(w["proc"].pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
            w["killed"] = True

    # ------------------------------------------------------------------
    def job_worker(self) -> Dict[int, int]:
        """``{job index: worker id}`` of each job's *completing*
        attempt (the sweep trace's process-row assignment)."""
        return {a["job"]: a["worker"] for a in self.attempt_log
                if a["outcome"] == "done"}

    def shutdown(self) -> None:
        for w in self.workers:
            try:
                w["conn"].send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in self.workers:
            w["proc"].join(timeout=5)
            if w["proc"].is_alive():
                w["proc"].terminate()
                w["proc"].join(timeout=5)
            w["conn"].close()
        if self._hb_seg is not None:
            self.board = None
            try:
                self._hb_seg.close()
                self._hb_seg.unlink()
            except (FileNotFoundError, BufferError):
                pass
            self._hb_seg = None
