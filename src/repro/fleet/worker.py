"""The fleet's process pool: fork-per-worker with SIGKILL-safe pipes.

Design constraints, in order:

* **A dead worker must never wedge the fleet.**  Each worker owns a
  private duplex :func:`multiprocessing.Pipe` — there is no shared
  queue whose internal lock a SIGKILLed holder could leave locked.
  The parent multiplexes worker pipes *and* process sentinels through
  one :func:`multiprocessing.connection.wait`, so a death wakes it
  exactly like a result would.
* **A job outlives its worker.**  Workers persist every outcome into
  the on-disk result store (the fleet's cache doubling as a spool,
  written atomically) *before* reporting done; the parent
  re-materialises results by key.  A worker killed between store and
  report costs one cheap retry — the replacement worker finds the
  stored entry and short-circuits.
* **A crashed job resumes, not restarts.**  With checkpointing on,
  serial jobs write periodic snapshots keyed by the job's cache key;
  the retry overlays the last one (:mod:`repro.fleet.checkpoint`) and
  continues bit-identically.

Fault injection (``FleetOptions.fault_steps``) is the chaos hook the
resume test proves itself with: the job's observer SIGKILLs its own
worker at a chosen step — a real, uncatchable death, first attempt
only.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
from collections import deque
from multiprocessing.connection import wait as _mp_wait
from typing import Dict, List, Optional

from ..utils.errors import FleetError
from .batch import BatchJob


class _FaultInjector:
    """Observer that SIGKILLs its own process at a given step (after
    the checkpoint writer for that step has run — attach order in
    :func:`_run_job` guarantees it)."""

    def __init__(self, at_step: int):
        self.at_step = int(at_step)

    def __call__(self, hydro) -> None:
        if hydro.nstep >= self.at_step:
            os.kill(os.getpid(), signal.SIGKILL)


def _run_job(doc: dict, store, checkpoint_dir: Optional[str],
             checkpoint_every: int) -> None:
    """Execute one job document inside a worker and persist the
    outcome under its key."""
    from ..api import _execute_run
    from .checkpoint import CheckpointWriter, restore_into

    config = doc["config"]
    key = doc["key"]
    if store.has(key):
        return  # a previous attempt finished the work before dying
    observers = []
    on_prepared = None
    serial = (config.nranks == 1
              and config.resolved_backend() == "serial")
    if checkpoint_dir and serial:
        ckpt_path = os.path.join(checkpoint_dir, f"{key}.ckpt.npz")
        observers.append(
            CheckpointWriter(ckpt_path, checkpoint_every, key=key))
        if os.path.exists(ckpt_path):
            def on_prepared(driver, max_steps, _p=ckpt_path, _k=key):
                return restore_into(driver, _p, key=_k,
                                    max_steps=max_steps)
    if doc.get("fault_step") is not None:
        observers.append(_FaultInjector(doc["fault_step"]))
    result = _execute_run(config, observers=observers or None)
    store.store(key, result)


def _worker_main(conn, store_root: str, checkpoint_dir: Optional[str],
                 checkpoint_every: int) -> None:
    """Worker loop: receive job documents, execute, report."""
    from .cache import ResultCache

    store = ResultCache(store_root)
    while True:
        try:
            doc = conn.recv()
        except (EOFError, KeyboardInterrupt):
            return
        if doc is None:
            return
        try:
            _run_job(doc, store, checkpoint_dir, checkpoint_every)
            conn.send(("done", doc["pos"], doc["key"]))
        except BaseException as exc:  # report, keep serving
            try:
                conn.send(("failed", doc["pos"],
                           f"{type(exc).__name__}: {exc}"))
            except BrokenPipeError:
                return


class WorkerPool:
    """Parent-side scheduler over N forked workers."""

    def __init__(self, nworkers: int, store_root: str, *,
                 checkpoint_dir: Optional[str] = None,
                 checkpoint_every: int = 20,
                 max_attempts: int = 3,
                 schedule_log: Optional[List[dict]] = None):
        self.ctx = mp.get_context("fork")
        self.store_root = store_root
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.max_attempts = max(1, int(max_attempts))
        self.schedule_log = schedule_log
        self._next_id = 0
        self.workers = [self._spawn() for _ in range(max(1, nworkers))]
        self.respawns = 0

    # ------------------------------------------------------------------
    def _spawn(self) -> dict:
        parent, child = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=_worker_main,
            args=(child, self.store_root, self.checkpoint_dir,
                  self.checkpoint_every),
            daemon=True,
        )
        proc.start()
        child.close()
        wid = self._next_id
        self._next_id += 1
        return {"id": wid, "conn": parent, "proc": proc, "job": None}

    def _log(self, event: str, **kw) -> None:
        if self.schedule_log is not None:
            self.schedule_log.append({"event": event, **kw})

    # ------------------------------------------------------------------
    def run(self, jobs: List[BatchJob],
            fault_steps: Optional[Dict[int, int]] = None) -> Dict[int, str]:
        """Drive every job to a stored outcome; returns
        ``{job.index: key}``.  Dead workers are respawned and their
        in-flight job requeued (front of the queue) up to
        ``max_attempts`` total tries."""
        pending = deque(jobs)
        done: Dict[int, str] = {}
        while pending or any(w["job"] is not None for w in self.workers):
            for i, w in enumerate(self.workers):
                if w["job"] is None and pending:
                    job = pending.popleft()
                    fault = None
                    if fault_steps and job.attempts == 0:
                        fault = fault_steps.get(job.index)
                    doc = {
                        "pos": job.index,
                        "key": job.metadata["key"],
                        "config": job.config,
                        "fault_step": fault,
                    }
                    try:
                        w["conn"].send(doc)
                    except (BrokenPipeError, OSError):
                        # the worker died while idle; replace and retry
                        pending.appendleft(job)
                        w["proc"].join()
                        self.workers[i] = self._spawn()
                        self.respawns += 1
                        continue
                    w["job"] = job
                    job.attempts += 1
                    self._log("job_start", job=job.index,
                              worker=w["id"], attempt=job.attempts,
                              fault_step=fault)
            busy = [w for w in self.workers if w["job"] is not None]
            if not busy:
                break
            ready = _mp_wait([w["conn"] for w in busy]
                             + [w["proc"].sentinel for w in busy])
            for i, w in enumerate(self.workers):
                if w["job"] is None:
                    continue
                got_msg = False
                if w["conn"] in ready:
                    try:
                        msg = w["conn"].recv()
                        got_msg = True
                    except EOFError:
                        got_msg = False
                if got_msg:
                    kind, pos, info = msg
                    job = w["job"]
                    w["job"] = None
                    if kind == "done":
                        done[pos] = info
                        self._log("job_done", job=pos, worker=w["id"])
                    else:
                        self.shutdown()
                        raise FleetError(
                            f"fleet job {pos} failed in worker "
                            f"{w['id']}: {info}"
                        )
                elif (w["proc"].sentinel in ready
                      and not w["proc"].is_alive()):
                    # Worker died mid-job (SIGKILL, OOM, segfault):
                    # requeue the job for the front of the line and
                    # replace the worker.
                    job = w["job"]
                    self._log("worker_died", job=job.index,
                              worker=w["id"], attempt=job.attempts)
                    if job.attempts >= self.max_attempts:
                        self.shutdown()
                        raise FleetError(
                            f"fleet job {job.index} crashed "
                            f"{job.attempts} time(s); giving up "
                            f"(max_attempts={self.max_attempts})"
                        )
                    pending.appendleft(job)
                    w["proc"].join()
                    self.workers[i] = self._spawn()
                    self.respawns += 1
        self.shutdown()
        return done

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        for w in self.workers:
            try:
                w["conn"].send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in self.workers:
            w["proc"].join(timeout=5)
            if w["proc"].is_alive():
                w["proc"].terminate()
                w["proc"].join(timeout=5)
            w["conn"].close()
