"""The fleet's same-mesh fast path: batched ensemble execution with
lane refill.

Compatible queued jobs (serial, same mesh topology) coalesce into one
:class:`~repro.ensemble.driver.EnsembleHydro` pass instead of N
separate processes — the PR 6 batching engine as a scheduler lane.
The addition over plain ``run_ensemble`` is **refill**: when a lane
finishes early (its own CFL clock hit ``time_end``) and jobs are still
queued, the batch is rebuilt at full width — still-active lanes carry
over mid-flight (state copy + clocks + their original ALE remapper and
probe, via ``EnsembleHydro(resume=...)``) and retired rows are refilled
from the queue, so the kernel pass never shrinks while work remains.

Bit-identity is preserved through a rebuild for both populations: a
carried lane continues from its exact state/dt (the compaction path
already proves batch-layout changes are bit-neutral), and a fresh lane
entering mid-flight gets the serial driver's step-0 dt handling via the
per-lane first-step logic in ``_advance_once``.

:func:`run_ensemble_jobs` is also the implementation behind the
legacy ``repro.ensemble.driver.run_ensemble`` surface (all submission
paths share it), so its validation messages are the historical ones.
"""

from __future__ import annotations

import os
import time as _time
from collections import deque
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any, Dict, List, Optional, Sequence

from ..utils.errors import BookLeafError
from ..utils.timers import TimerRegistry


@dataclass
class BatchJob:
    """One queued unit of work: a config, its submission index and the
    per-lane control overrides (ensemble sweeps)."""

    index: int
    config: Any
    override: Optional[Dict[str, Any]] = None
    #: retry bookkeeping (worker-pool path)
    attempts: int = 0
    metadata: dict = field(default_factory=dict)


def make_jobs(configs: Sequence, control_overrides=None) -> List[BatchJob]:
    """Pair configs with their per-lane overrides, validating the
    historical arity contract."""
    configs = list(configs)
    if not configs:
        raise BookLeafError("run_ensemble needs at least one RunConfig")
    if control_overrides is None:
        overrides: List[Optional[Dict[str, Any]]] = [None] * len(configs)
    else:
        overrides = list(control_overrides)
        if len(overrides) != len(configs):
            raise BookLeafError(
                "control_overrides must be one entry per config "
                f"({len(overrides)} != {len(configs)})"
            )
    return [BatchJob(index=i, config=config, override=override)
            for i, (config, override) in enumerate(zip(configs, overrides))]


def run_ensemble_jobs(jobs: Sequence[BatchJob], *,
                      width: Optional[int] = None,
                      timers: Optional[TimerRegistry] = None,
                      artifacts=None,
                      schedule_log: Optional[List[dict]] = None):
    """Run ``jobs`` through batched ensemble passes; one
    :class:`~repro.api.RunResult` per job, in job order.

    ``width`` caps the live batch (default: all jobs in one batch — the
    historical ``run_ensemble`` behaviour); a queue longer than the
    width drains through lane refill.  ``artifacts`` optionally supplies
    shared :class:`MeshPlans`; ``schedule_log`` (a list) receives one
    event dict per scheduling decision.
    """
    from ..api import RunResult
    from ..ensemble.driver import EnsembleHydro
    from ..metrics.probe import DiagnosticsProbe

    jobs = list(jobs)
    if not jobs:
        raise BookLeafError("run_ensemble needs at least one RunConfig")
    for i, job in enumerate(jobs):
        config = job.config
        if config.nranks != 1:
            raise BookLeafError(
                f"ensemble lane {i} has nranks={config.nranks}; lanes "
                "are serial runs batched together — decompose across "
                "lanes, not within them"
            )
        if config.resolved_backend() != "serial":
            raise BookLeafError(
                f"ensemble lane {i} requests backend="
                f"{config.resolved_backend()!r}; lanes run serially "
                "inside the batch"
            )
        for telemetry in ("trace", "trace_allocations", "profile"):
            if getattr(config, telemetry, None):
                raise BookLeafError(
                    f"ensemble lane {i} requests {telemetry!r}; "
                    "per-job telemetry does not thread through the "
                    "batched kernels — run it per-job "
                    "(ensemble='off'/'auto') instead (docs/FLEET.md, "
                    "'Fast-path eligibility')"
                )
    n = len(jobs)
    timers = timers if timers is not None else TimerRegistry()
    width = n if width is None else max(1, int(width))

    def make_lane(pos: int):
        job = jobs[pos]
        setup = job.config.build_setup()
        if job.override:
            setup.controls = \
                setup.controls.with_(**job.override).validated()
        every = job.config.resolved_metrics_every()
        probe = None
        if every > 0:
            snapshot_path = None
            if job.config.snapshot_dir:
                snapshot_path = os.path.join(
                    job.config.snapshot_dir,
                    f"HEALTH_snapshot_lane{job.index}.npz")
            probe = DiagnosticsProbe(
                every=every, sink_path=job.config.metrics, record=True,
                snapshot_path=snapshot_path)
        return setup, probe

    pending = deque(range(n))
    #: lanes carried across a rebuild: {"pos", "setup", "probe", "resume"}
    carried: List[dict] = []
    #: finished lanes, keyed by job position
    done: Dict[int, dict] = {}
    plans = None
    start = _time.perf_counter()
    while pending or carried:
        take = min(max(width - len(carried), 0), len(pending))
        fresh = [pending.popleft() for _ in range(take)]
        lanes = list(carried)
        for pos in fresh:
            setup, probe = make_lane(pos)
            lanes.append({"pos": pos, "setup": setup, "probe": probe,
                          "resume": None})
        carried = []
        if schedule_log is not None:
            schedule_log.append({
                "event": "ensemble_batch",
                "jobs": [jobs[l["pos"]].index for l in lanes],
                "carried": [jobs[l["pos"]].index for l in lanes
                            if l["resume"] is not None],
                "fresh": [jobs[pos].index for pos in fresh],
                "width": len(lanes),
                "queued": len(pending),
            })
        if plans is None and artifacts is not None:
            plans = artifacts.mesh_plans(lanes[0]["setup"].state.mesh)
        eh = EnsembleHydro(
            [l["setup"] for l in lanes],
            probes=[l["probe"] for l in lanes],
            timers=timers,
            max_steps=[jobs[l["pos"]].config.max_steps for l in lanes],
            plans=plans,
            resume=[l["resume"] for l in lanes],
        )
        # Subsequent rebuilds of this same-mesh group share the plans.
        plans = eh.plans
        eh.begin()
        batch_pos = [l["pos"] for l in lanes]
        setups = {l["pos"]: l["setup"] for l in lanes}
        while True:
            retired = eh.advance()
            for lane in retired:
                pos = batch_pos[lane]
                done[pos] = {
                    "setup": setups[pos],
                    "state": eh.final_states[lane],
                    "nstep": eh.nsteps[lane],
                    "time": eh.times[lane],
                    "probe": eh.probes[lane],
                    "driver": eh,
                }
                if schedule_log is not None:
                    schedule_log.append({
                        "event": "lane_retired",
                        "job": jobs[pos].index,
                        "nstep": eh.nsteps[lane],
                    })
            if not eh.order:
                break
            if retired and pending:
                # Refill: rebuild at full width — carry the active
                # lanes mid-flight, top up from the queue.
                for rec in eh.extract_active():
                    pos = batch_pos[rec["lane"]]
                    carried.append({
                        "pos": pos,
                        "setup": _dc_replace(setups[pos],
                                             state=rec["state"]),
                        "probe": rec["probe"],
                        "resume": {k: rec[k] for k in
                                   ("time", "nstep", "dt", "dt_reason",
                                    "dt_cell", "remapper")},
                    })
                if schedule_log is not None:
                    schedule_log.append({
                        "event": "lane_refill",
                        "carried": [jobs[c["pos"]].index
                                    for c in carried],
                        "queued": len(pending),
                    })
                break
    wall = _time.perf_counter() - start

    results = []
    for pos, job in enumerate(jobs):
        rec = done[pos]
        probe = rec["probe"]
        results.append(RunResult(
            config=job.config,
            setup=rec["setup"],
            backend="ensemble",
            nranks=1,
            nstep=rec["nstep"],
            time=rec["time"],
            wall_seconds=wall,
            state=rec["state"],
            timers=timers,
            spans=[],
            comm_total=None,
            comm_per_rank=[],
            step_rows=None,
            comm_summary=None,
            metrics_rows=(probe.rows if probe is not None else None),
            metrics=None,
            driver=rec["driver"],
            lane=job.index,
            cache_hit=False,
        ))
    return results
