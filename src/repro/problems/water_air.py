"""Water–air shock tube: a genuine multi-material problem.

Exercises BookLeaf's multi-material machinery — the Tait EoS next to
an ideal gas in one calculation — which the four bundled problems
(all single ideal gas) do not:

    left  (x < 0.5):  water (Tait, ρ0 = 1000), pressurised to p_L
    right (x > 0.5):  air   (ideal, γ = 1.4),  ρ = 1.2, p = 1e5

Bursting the diaphragm drives a shock into the air and a weak
rarefaction back into the (stiff) water; the interface accelerates to
the contact velocity.  There is no simple closed-form solution for the
mixed-EoS case, so validation relies on exact conservation, pressure
continuity across the material interface and the physically-required
wave ordering.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..eos.tait import Tait
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from ..mesh.regions import Region, box
from ..mesh.regions import assign_regions
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA_AIR = 1.4
RHO_AIR, P_AIR = 1.2, 1.0e5
RHO0_WATER = 1000.0
A1_WATER = 3.31e8
A3_WATER = 7.0
P_WATER = 1.0e7
DIAPHRAGM = 0.5

#: material indices in the table
WATER, AIR = 0, 1


@problem(
    "water_air",
    summary="Water-air shock tube (Tait + ideal gas)",
    acceptance="no closed form: exact conservation, pressure continuity "
               "across the material interface and physical wave "
               "ordering (tests/integration/test_extension_problems.py)",
    reference="standard stiff multi-material interface test",
    settings=[
        mesh_setting("nx", 200, "mesh cells along the tube"),
        mesh_setting("ny", 2, "mesh cells across the tube"),
        Setting("height", float, 0.05, "tube height"),
        Setting("time_end", float, 2.0e-4, "simulation end time"),
        Setting("p_water", float, P_WATER, "initial water-side "
                "pressure (sets the shock strength)"),
    ],
)
def setup(nx: int = 200, ny: int = 2, height: float = 0.05,
          time_end: float = 2.0e-4, p_water: float = P_WATER,
          **control_overrides) -> ProblemSetup:
    """Build the water–air tube on an ``nx × ny`` mesh of [0, 1]."""
    extents = (0.0, 1.0, 0.0, height)
    mesh = rect_mesh(nx, ny, extents)

    water = Tait(rho0=RHO0_WATER, a1=A1_WATER, a3=A3_WATER)
    air = IdealGas(GAMMA_AIR)
    table = MaterialTable(pcut=1.0e-3)
    table.add(water)
    table.add(air)

    rho_water = float(water.density_from_pressure(np.array([p_water]))[0])
    regions = [
        Region(where=box(-np.inf, DIAPHRAGM), material=WATER,
               rho=rho_water, p=p_water, name="water"),
        Region(where=box(DIAPHRAGM, np.inf), material=AIR,
               rho=RHO_AIR, p=P_AIR, name="air"),
    ]
    mat, rho, e, u, v = assign_regions(mesh, table, regions)
    bc = classify_box_boundary(mesh, extents)

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-8,
        dt_max=1.0e-5,
        pcut=1.0e-3,
        dencut=1.0e-6,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, mat=mat,
                                    u=u, v=v, bc=bc)
    return ProblemSetup(
        name="water_air",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Water-air shock tube (Tait + ideal gas)",
        params={"nx": nx, "ny": ny, "time_end": time_end,
                "p_water": p_water},
    )
