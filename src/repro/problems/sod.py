"""Sod's shock tube (Sod 1978) — paper Section III-B.

Two ideal gases at rest separated by a diaphragm at ``x = 0.5``:

    left  (x < 0.5):  ρ = 1.0,   p = 1.0
    right (x > 0.5):  ρ = 0.125, p = 0.1        γ = 1.4

Removing the diaphragm launches a right-moving shock and contact and a
left-moving rarefaction.  This is BookLeaf's fundamental shock test and
the problem used for the paper's strong-scaling study (Figs 3–4).

The 2-D setup is a thin tube ``[0, 1] × [0, height]`` of ``nx × ny``
cells with reflecting walls; the solution stays one-dimensional.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA = 1.4
RHO_L, P_L = 1.0, 1.0
RHO_R, P_R = 0.125, 0.1
DIAPHRAGM = 0.5


@problem(
    "sod",
    summary="Sod shock tube, gamma=1.4, diaphragm at x=0.5",
    acceptance="exact Riemann solution "
               "(repro.analytic.riemann.sod_solution); density L1 error "
               "and convergence ladder in tests/integration/test_sod.py",
    reference="Sod, J. Comput. Phys. 27 (1978); paper Section III-B",
    settings=[
        mesh_setting("nx", 100, "mesh cells along the tube"),
        mesh_setting("ny", 4, "mesh cells across the tube"),
        Setting("height", float, 0.1, "tube height (domain is [0,1] x "
                "[0, height])"),
        Setting("time_end", float, 0.2, "simulation end time"),
        Setting("ale_on", bool, False, "enable the ALE remap phase"),
    ],
)
def setup(nx: int = 100, ny: int = 4, height: float = 0.1,
          time_end: float = 0.2, ale_on: bool = False,
          **control_overrides) -> ProblemSetup:
    """Build the Sod problem on an ``nx × ny`` tube mesh."""
    extents = (0.0, 1.0, 0.0, height)
    mesh = rect_mesh(nx, ny, extents)
    xc, _ = mesh.cell_centroids()
    left = xc < DIAPHRAGM

    gas = IdealGas(GAMMA)
    table = MaterialTable()
    table.add(gas)

    rho = np.where(left, RHO_L, RHO_R)
    p = np.where(left, P_L, P_R)
    e = gas.energy_from_pressure(rho, p)
    bc = classify_box_boundary(mesh, extents)

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-4,
        dt_max=1.0e-2,
        ale_on=ale_on,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, bc=bc)
    return ProblemSetup(
        name="sod",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Sod shock tube, gamma=1.4, diaphragm at x=0.5",
        params={"nx": nx, "ny": ny, "time_end": time_end, "ale_on": ale_on},
    )
