"""JWL detonation-products expansion tube.

Completes the EoS coverage: a shock tube entirely inside JWL
detonation products (standard TNT parameters), with a dense,
energetic post-detonation state expanding into pre-expanded, cooler
products:

    left  (x < 0.5): ρ = ρ0 = 1630 kg/m³, e = 4.29 MJ/kg  (~CJ state)
    right (x > 0.5): ρ = 0.1 ρ0,         e = 0.05 × e_L

The left state's ~10 GPa pressure drives a strong shock rightward and
a release wave back into the dense products.  No closed-form solution
exists for the full JWL Riemann problem; validation uses exact
conservation, wave ordering and the thermodynamic consistency checks
(pressure positive, sound speed real throughout the expansion).
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.jwl import Jwl
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

#: standard TNT JWL parameters (SI)
RHO0 = 1630.0
A = 3.712e11
B = 3.231e9
R1 = 4.15
R2 = 0.95
OMEGA = 0.30
E_CJ = 4.29e6          #: ~detonation energy per unit mass

DIAPHRAGM = 0.5
RHO_RIGHT_FRACTION = 0.1
E_RIGHT_FRACTION = 0.05


@problem(
    "jwl_expansion",
    summary="JWL detonation-products expansion tube (TNT params)",
    acceptance="no closed form: exact conservation, wave ordering and "
               "thermodynamic consistency through the expansion "
               "(tests/integration/test_jwl_expansion.py)",
    reference="standard TNT JWL parameter set (SI units)",
    settings=[
        mesh_setting("nx", 200, "mesh cells along the tube"),
        mesh_setting("ny", 2, "mesh cells across the tube"),
        Setting("height", float, 0.05, "tube height"),
        Setting("time_end", float, 4.0e-5, "simulation end time"),
    ],
)
def setup(nx: int = 200, ny: int = 2, height: float = 0.05,
          time_end: float = 4.0e-5, **control_overrides) -> ProblemSetup:
    """Build the JWL expansion tube on an ``nx × ny`` mesh of [0, 1]."""
    extents = (0.0, 1.0, 0.0, height)
    mesh = rect_mesh(nx, ny, extents)
    xc, _ = mesh.cell_centroids()
    left = xc < DIAPHRAGM

    products = Jwl(rho0=RHO0, a=A, b=B, r1=R1, r2=R2, omega=OMEGA)
    table = MaterialTable(pcut=1.0)
    table.add(products)

    rho = np.where(left, RHO0, RHO_RIGHT_FRACTION * RHO0)
    e = np.where(left, E_CJ, E_RIGHT_FRACTION * E_CJ)
    bc = classify_box_boundary(mesh, extents)

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-10,
        dt_max=1.0e-6,
        pcut=1.0,
        dencut=1.0e-3,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, bc=bc)
    return ProblemSetup(
        name="jwl_expansion",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="JWL detonation-products expansion tube (TNT params)",
        params={"nx": nx, "ny": ny, "time_end": time_end},
    )
