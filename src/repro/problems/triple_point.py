"""Triple-point shock interaction: the canonical vorticity/ALE test.

Three ideal-gas regions meet at the point (1, 1.5) of a [0, 7] × [0, 3]
box (Loubère's standard configuration):

    left   (x < 1):          γ = 1.5, ρ = 1,     p = 1     (driver)
    bottom (x > 1, y < 1.5): γ = 1.4, ρ = 1,     p = 0.1
    top    (x > 1, y > 1.5): γ = 1.5, ρ = 0.125, p = 0.1

The high-pressure driver launches a shock into both low-pressure
regions; because the bottom region is denser, its shock lags, shearing
the horizontal material interface into a rolled-up vortex around the
triple point.  The vortex winds the Lagrangian mesh severely — this is
*the* standard stress test for hourglass control and ALE relaxation in
multi-material staggered codes, and a three-material workout for the
mixed-cell machinery.  There is no closed-form solution; validation is
by conservation, wave ordering and the (well-documented) vortex
morphology.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from ..mesh.regions import Region, assign_regions, box
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

#: material indices in the table
LEFT, BOTTOM, TOP = 0, 1, 2

GAMMA_LEFT = 1.5
GAMMA_BOTTOM = 1.4
GAMMA_TOP = 1.5
X_INTERFACE = 1.0
Y_INTERFACE = 1.5


@problem(
    "triple_point",
    summary="Three-material triple-point shock interaction",
    acceptance="no closed form: exact conservation, shock ordering "
               "(fast shock in the light top region, lagging shock in "
               "the dense bottom region) and vortex roll-up at the "
               "triple point (tests/integration/test_extension_problems.py)",
    reference="Loubere et al., J. Comput. Phys. 229 (2010); "
              "Galera, Maire & Breil, J. Comput. Phys. 229 (2010)",
    settings=[
        mesh_setting("nx", 70, "mesh cells along x (domain [0, 7])"),
        mesh_setting("ny", 30, "mesh cells along y (domain [0, 3])"),
        Setting("time_end", float, 3.5, "simulation end time "
                "(the reference vortex is usually shown at t = 3.5-5)"),
        Setting("ale_on", bool, False, "enable the ALE remap phase "
                "(recommended past t ~ 4, where the Lagrangian mesh "
                "tangles)"),
        Setting("subzonal_kappa", float, 1.0,
                "sub-zonal-pressure hourglass control strength"),
    ],
)
def setup(nx: int = 70, ny: int = 30, time_end: float = 3.5,
          ale_on: bool = False, subzonal_kappa: float = 1.0,
          **control_overrides) -> ProblemSetup:
    """Build the triple point on an ``nx × ny`` mesh of [0, 7] × [0, 3]."""
    extents = (0.0, 7.0, 0.0, 3.0)
    mesh = rect_mesh(nx, ny, extents)

    table = MaterialTable()
    table.add(IdealGas(GAMMA_LEFT))
    table.add(IdealGas(GAMMA_BOTTOM))
    table.add(IdealGas(GAMMA_TOP))

    regions = [
        Region(where=box(-np.inf, X_INTERFACE), material=LEFT,
               rho=1.0, p=1.0, name="driver"),
        Region(where=box(X_INTERFACE, np.inf, -np.inf, Y_INTERFACE),
               material=BOTTOM, rho=1.0, p=0.1, name="bottom"),
        Region(where=box(X_INTERFACE, np.inf, Y_INTERFACE, np.inf),
               material=TOP, rho=0.125, p=0.1, name="top"),
    ]
    mat, rho, e, u, v = assign_regions(mesh, table, regions)
    bc = classify_box_boundary(mesh, extents)

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-4,
        dt_max=1.0e-2,
        ale_on=ale_on,
        subzonal_kappa=subzonal_kappa,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, mat=mat,
                                    u=u, v=v, bc=bc)
    return ProblemSetup(
        name="triple_point",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Three-material triple-point shock interaction",
        params={"nx": nx, "ny": ny, "time_end": time_end,
                "ale_on": ale_on},
    )
