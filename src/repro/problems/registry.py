"""Declarative problem registry: typed settings, decks, generated docs.

Every bundled problem registers itself with the :func:`problem`
decorator, pairing its ``setup()`` factory with a **typed settings
table** — one :class:`Setting` row per keyword argument.  The table is
the single source of truth for

* deck validation (``setup_from_deck`` rejects unknown or mistyped
  ``[MESH]``/``[PROBLEM]`` keys with a structured :class:`DeckError`
  naming the offender and the valid choices),
* programmatic validation (``load_problem`` applies the same checks to
  keyword overrides),
* the ``bookleaf problems list`` / ``problems describe`` CLI, and
* the generated catalogue ``docs/PROBLEMS.md``
  (``tools/gen_problem_docs.py``; CI regenerates and diffs it).

Registration is checked against the factory's actual signature at
import time, so the table *cannot* drift from the code: a missing or
mistyped row raises :class:`RegistryError` the moment the module is
imported (this replaces the old hand-maintained ``_EXTRA_KEYS`` dict,
which drifted silently).

``load_problem("noh", nx=100)`` builds any registered problem by name;
``setup_from_deck(deck)`` builds one from a BookLeaf-style input deck
(the files in ``repro/problems/decks``), letting the CLI run
``bookleaf run sod.in`` just as the Fortran mini-app runs its control
files.
"""

from __future__ import annotations

import inspect
import tempfile
from dataclasses import dataclass, field, fields as dc_fields
from importlib import resources
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..core.controls import HydroControls, controls_from_deck
from ..utils.deck import Deck, read_deck
from ..utils.errors import BookLeafError, DeckError
from .base import ProblemSetup


class RegistryError(BookLeafError):
    """A problem registration is inconsistent with its factory."""


# ----------------------------------------------------------------------
# typed settings
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Setting:
    """One typed, documented problem parameter (a deck key).

    ``type`` is the expected Python type (``int``, ``float``, ``bool``
    or ``str``; ``float`` settings accept ints).  ``section`` names the
    deck section the key conventionally lives in (``MESH`` for the
    resolution keys, ``PROBLEM`` otherwise) — validation accepts the
    key in either section, the docs generator uses it for the deck
    examples.  ``choices`` optionally restricts the value to an
    enumerated set.
    """

    name: str
    type: type
    default: Any
    doc: str = ""
    choices: Optional[Tuple[Any, ...]] = None
    section: str = "PROBLEM"

    @property
    def type_name(self) -> str:
        return self.type.__name__

    def accepts(self, value: Any) -> bool:
        """Type check only (choices are reported separately)."""
        if self.type is float:
            return isinstance(value, (int, float)) \
                and not isinstance(value, bool)
        if self.type is int:
            return isinstance(value, int) and not isinstance(value, bool)
        if self.type is bool:
            return isinstance(value, bool)
        return isinstance(value, self.type)

    def validate(self, value: Any, context: str) -> Any:
        """Return ``value`` or raise a :class:`DeckError` naming the
        offender, the expected type and (when enumerated) the valid
        choices."""
        if not self.accepts(value):
            raise DeckError(
                f"{context}: setting '{self.name}' expects "
                f"{self.type_name}, got {value!r} "
                f"({type(value).__name__})"
            )
        if self.choices is not None and value not in self.choices:
            valid = ", ".join(repr(c) for c in self.choices)
            raise DeckError(
                f"{context}: setting '{self.name}' must be one of "
                f"{valid}; got {value!r}"
            )
        return value

    def describe(self) -> dict:
        """JSON-ready row (the CLI/doc-generator representation)."""
        row = {
            "name": self.name,
            "type": self.type_name,
            "default": self.default,
            "doc": self.doc,
            "section": self.section,
        }
        if self.choices is not None:
            row["choices"] = list(self.choices)
        return row


#: shorthand constructors for the two resolution keys every mesh has
def mesh_setting(name: str, default: int, doc: str) -> Setting:
    return Setting(name, int, default, doc, section="MESH")


# ----------------------------------------------------------------------
# registration
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProblemInfo:
    """Everything the registry knows about one problem."""

    name: str
    factory: Callable[..., ProblemSetup]
    settings: Tuple[Setting, ...]
    #: one-line physics summary (the ``problems list`` column)
    summary: str
    #: how the result is checked: analytic reference or conservation
    acceptance: str = ""
    #: literature reference for the problem definition
    reference: str = ""
    #: bundled deck filename under ``repro/problems/decks`` (``None``
    #: for problems without a shipped deck)
    deck: Optional[str] = None
    #: long-form physics description (the registering module docstring)
    physics: str = field(default="", compare=False)

    def setting(self, name: str) -> Optional[Setting]:
        for s in self.settings:
            if s.name == name:
                return s
        return None

    def setting_names(self) -> List[str]:
        return [s.name for s in self.settings]

    def describe(self) -> dict:
        """JSON-ready metadata (what ``problems describe --json``
        prints and what the docs generator renders)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "acceptance": self.acceptance,
            "reference": self.reference,
            "deck": self.deck,
            "settings": [s.describe() for s in self.settings],
        }


_REGISTRY: Dict[str, ProblemInfo] = {}

#: HydroControls field names — accepted as pass-through overrides by
#: ``load_problem`` (every factory forwards ``**control_overrides``)
_CONTROL_FIELDS = frozenset(f.name for f in dc_fields(HydroControls))


def _check_signature(factory: Callable[..., ProblemSetup],
                     settings: Tuple[Setting, ...], name: str) -> None:
    """Registration-time drift guard: the settings table must mirror
    the factory signature exactly (names and defaults)."""
    sig = inspect.signature(factory)
    params = {
        p.name: p for p in sig.parameters.values()
        if p.kind is not inspect.Parameter.VAR_KEYWORD
    }
    declared = {s.name: s for s in settings}
    missing = sorted(set(params) - set(declared))
    if missing:
        raise RegistryError(
            f"problem {name!r}: factory parameter(s) "
            f"{', '.join(missing)} have no Setting row"
        )
    extra = sorted(set(declared) - set(params))
    if extra:
        raise RegistryError(
            f"problem {name!r}: Setting row(s) {', '.join(extra)} "
            f"match no factory parameter"
        )
    for pname, param in params.items():
        default = declared[pname].default
        if param.default is inspect.Parameter.empty:
            raise RegistryError(
                f"problem {name!r}: parameter {pname!r} needs a "
                f"default (every setting must be optional)"
            )
        if not (param.default == default
                or (param.default != param.default
                    and default != default)):   # NaN-safe
            raise RegistryError(
                f"problem {name!r}: Setting {pname!r} default "
                f"{default!r} != factory default {param.default!r}"
            )


def problem(name: str, *, summary: str,
            settings: Union[Tuple[Setting, ...], List[Setting]],
            acceptance: str = "", reference: str = "",
            deck: Optional[str] = "auto"):
    """Class-free ``@problem("sod", ...)`` registration decorator.

    Registers ``factory`` under ``name`` together with its typed
    settings table, validating at import time that the table matches
    the factory signature (names and defaults).  ``deck="auto"``
    associates the bundled deck ``decks/{name}.in``; pass ``None`` for
    problems without a shipped deck.
    """
    settings = tuple(settings)

    def register(factory: Callable[..., ProblemSetup]):
        if name in _REGISTRY:
            raise RegistryError(f"problem {name!r} registered twice")
        _check_signature(factory, settings, name)
        module = inspect.getmodule(factory)
        info = ProblemInfo(
            name=name,
            factory=factory,
            settings=settings,
            summary=summary,
            acceptance=acceptance,
            reference=reference,
            deck=(f"{name}.in" if deck == "auto" else deck),
            physics=inspect.cleandoc(module.__doc__ or "") if module else "",
        )
        _REGISTRY[name] = info
        factory.problem_info = info
        return factory

    return register


def unregister(name: str) -> None:
    """Remove a registration (test scaffolding only)."""
    _REGISTRY.pop(name, None)


# ----------------------------------------------------------------------
# lookup
# ----------------------------------------------------------------------

def problem_names() -> List[str]:
    """The registered problem names, sorted."""
    return sorted(_REGISTRY)


def get_problem(name: str) -> ProblemInfo:
    """The :class:`ProblemInfo` for ``name`` (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise DeckError(
            f"unknown problem {name!r}; available: "
            f"{', '.join(problem_names())}"
        ) from None


def describe_problem(name: str) -> dict:
    """JSON-ready registry metadata for one problem."""
    return get_problem(name).describe()


def load_problem(name: str, **kwargs) -> ProblemSetup:
    """Build a registered problem by name with keyword overrides.

    Keywords are validated against the problem's settings table;
    :class:`~repro.core.controls.HydroControls` field names pass
    through as control overrides (every factory forwards them).
    Anything else raises a :class:`DeckError` listing the valid keys.
    """
    info = get_problem(name)
    for key, value in kwargs.items():
        setting = info.setting(key)
        if setting is not None:
            setting.validate(value, context=f"problem {info.name!r}")
        elif key not in _CONTROL_FIELDS:
            raise DeckError(
                f"option '{key}' not understood by problem "
                f"{info.name!r}; valid settings: "
                f"{', '.join(info.setting_names())} "
                f"(HydroControls fields may also be overridden)"
            )
    return info.factory(**kwargs)


# ----------------------------------------------------------------------
# bundled decks
# ----------------------------------------------------------------------

#: zipped-install extraction cache: deck name -> stable on-disk copy
_EXTRACTED_DECKS: Dict[str, Path] = {}


def _deck_resource(name: str):
    ref = resources.files("repro.problems").joinpath(f"decks/{name}.in")
    if not ref.is_file():
        raise DeckError(
            f"no bundled deck {name!r}; available: "
            f"{', '.join(bundled_decks())}"
        )
    return ref


def bundled_decks() -> List[str]:
    """Names of every shipped deck (including variants like
    ``sod_ale`` that reuse a registered problem)."""
    decks = resources.files("repro.problems").joinpath("decks")
    return sorted(
        entry.name[:-len(".in")]
        for entry in decks.iterdir()
        if entry.name.endswith(".in")
    )


def deck_text(name: str) -> str:
    """Contents of a bundled deck (``sod``, ``noh``, ...)."""
    return _deck_resource(name).read_text()


def deck_path(name: str) -> Path:
    """Filesystem path of a bundled deck (``sod``, ``noh``, ...).

    For normal directory installs this is the packaged file itself.
    For zipped installs — where ``resources.as_file`` would hand out a
    temporary path that is deleted when its context exits — the deck
    is extracted once per process to a stable cached copy, so the
    returned path remains valid for the caller's lifetime.
    """
    ref = _deck_resource(name)
    if isinstance(ref, Path):
        return ref
    cached = _EXTRACTED_DECKS.get(name)
    if cached is None or not cached.exists():
        outdir = Path(tempfile.mkdtemp(prefix="repro-decks-"))
        cached = outdir / f"{name}.in"
        cached.write_bytes(ref.read_bytes())
        _EXTRACTED_DECKS[name] = cached
    return cached


# ----------------------------------------------------------------------
# deck-driven construction
# ----------------------------------------------------------------------

def setup_from_deck(deck: Union[Deck, str, Path]) -> ProblemSetup:
    """Build a problem from a deck (path or parsed :class:`Deck`).

    The deck names the problem in ``[CONTROL] problem = ...``; the
    ``[MESH]`` and ``[PROBLEM]`` sections override the setup arguments
    (validated against the problem's settings table), and the full
    ``[CONTROL]``/``[ALE]`` sections are applied on top so decks can
    tune any numerical control.
    """
    if not isinstance(deck, Deck):
        deck = read_deck(deck)
    control = deck.section("CONTROL")
    name = str(control.require("problem")).lower()
    if name not in _REGISTRY:
        raise DeckError(
            f"{deck.source}: unknown problem {name!r}; "
            f"available: {', '.join(problem_names())}"
        )
    info = _REGISTRY[name]
    kwargs = {}
    mesh_sec = deck.optional("MESH")
    prob_sec = deck.optional("PROBLEM")
    for section in (mesh_sec, prob_sec):
        for key, value in section.options.items():
            setting = info.setting(key)
            if setting is None:
                raise DeckError(
                    f"{deck.source}: option '{key}' not understood by "
                    f"problem {name!r}; valid settings: "
                    f"{', '.join(info.setting_names())}"
                )
            kwargs[key] = setting.validate(
                value, context=f"{deck.source}: [{section.name}]"
            )
    setup = info.factory(**kwargs)
    # Decks may tune any control: rebuild the controls from the deck on
    # top of the problem defaults.
    if "time_end" not in control:
        control.options["time_end"] = setup.controls.time_end
    deck_controls = controls_from_deck(deck)
    merged = setup.controls
    for field_name in (
        "time_end", "dt_initial", "dt_min", "dt_max", "dt_growth",
        "cfl_safety", "div_safety", "max_steps", "cq1", "cq2",
        "use_limiter", "subzonal_kappa", "filter_kappa",
        "ale_on", "ale_every", "ale_mode", "ale_relax",
    ):
        deck_value = getattr(deck_controls, field_name)
        default_value = getattr(type(deck_controls)(), field_name)
        if deck_value != default_value or field_name == "time_end":
            merged = merged.with_(**{field_name: deck_value})
    setup.controls = merged
    return setup


# Problem modules register themselves via @problem on import; importing
# them here populates the registry exactly once.  (They import the
# decorator from this partially-initialised module, which works because
# everything above this line is already defined.)
from . import (  # noqa: E402,F401  (registration side effects)
    jwl_expansion,
    kidder,
    leblanc,
    noh,
    saltzmann,
    sedov,
    sod,
    triple_point,
    water_air,
)
