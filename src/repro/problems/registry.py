"""Problem registry and deck-driven construction.

``load_problem("noh", nx=100)`` builds any bundled problem by name;
``setup_from_deck(deck)`` builds one from a BookLeaf-style input deck
(the files in ``repro/problems/decks``), letting the CLI run
``bookleaf run sod.in`` just as the Fortran mini-app runs its control
files.
"""

from __future__ import annotations

from importlib import resources
from pathlib import Path
from typing import Callable, Dict, List, Union

from ..core.controls import controls_from_deck
from ..utils.deck import Deck, read_deck
from ..utils.errors import DeckError
from . import jwl_expansion, leblanc, noh, saltzmann, sedov, sod, water_air
from .base import ProblemSetup

_REGISTRY: Dict[str, Callable[..., ProblemSetup]] = {
    "sod": sod.setup,
    "noh": noh.setup,
    "sedov": sedov.setup,
    "saltzmann": saltzmann.setup,
    # extension problems beyond the paper's four (see module docstrings)
    "leblanc": leblanc.setup,
    "water_air": water_air.setup,
    "jwl_expansion": jwl_expansion.setup,
}

#: deck keys understood by every problem's ``setup``
_COMMON_KEYS = {"nx", "ny", "time_end"}
#: extra per-problem deck keys forwarded to ``setup``
_EXTRA_KEYS = {
    "sod": {"height", "ale_on"},
    "noh": {"size", "ale_on"},
    "sedov": {"size", "energy", "ale_on"},
    "saltzmann": {"length", "height", "subzonal_kappa", "filter_kappa"},
    "leblanc": {"height"},
    "water_air": {"height", "p_water"},
    "jwl_expansion": {"height"},
}


def problem_names() -> List[str]:
    """The registered problem names, sorted."""
    return sorted(_REGISTRY)


def load_problem(name: str, **kwargs) -> ProblemSetup:
    """Build a bundled problem by name with keyword overrides."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise DeckError(
            f"unknown problem {name!r}; available: {', '.join(problem_names())}"
        ) from None
    return factory(**kwargs)


def deck_path(name: str) -> Path:
    """Filesystem path of a bundled deck (``sod``, ``noh``, ...)."""
    with resources.as_file(
        resources.files("repro.problems").joinpath(f"decks/{name}.in")
    ) as path:
        return Path(path)


def setup_from_deck(deck: Union[Deck, str, Path]) -> ProblemSetup:
    """Build a problem from a deck (path or parsed :class:`Deck`).

    The deck names the problem in ``[CONTROL] problem = ...``; the
    ``[MESH]`` and ``[PROBLEM]`` sections override the setup arguments,
    and the full ``[CONTROL]``/``[ALE]`` sections are applied on top so
    decks can tune any numerical control.
    """
    if not isinstance(deck, Deck):
        deck = read_deck(deck)
    control = deck.section("CONTROL")
    name = str(control.require("problem")).lower()
    if name not in _REGISTRY:
        raise DeckError(
            f"{deck.source}: unknown problem {name!r}; "
            f"available: {', '.join(problem_names())}"
        )
    kwargs = {}
    mesh_sec = deck.optional("MESH")
    prob_sec = deck.optional("PROBLEM")
    allowed = _COMMON_KEYS | _EXTRA_KEYS[name]
    for section in (mesh_sec, prob_sec):
        for key, value in section.options.items():
            if key not in allowed:
                raise DeckError(
                    f"{deck.source}: option '{key}' not understood by "
                    f"problem {name!r}"
                )
            kwargs[key] = value
    setup = load_problem(name, **kwargs)
    # Decks may tune any control: rebuild the controls from the deck on
    # top of the problem defaults.
    if "time_end" not in control:
        control.options["time_end"] = setup.controls.time_end
    deck_controls = controls_from_deck(deck)
    merged = setup.controls
    for field_name in (
        "time_end", "dt_initial", "dt_min", "dt_max", "dt_growth",
        "cfl_safety", "div_safety", "max_steps", "cq1", "cq2",
        "use_limiter", "subzonal_kappa", "filter_kappa",
        "ale_on", "ale_every", "ale_mode", "ale_relax",
    ):
        deck_value = getattr(deck_controls, field_name)
        default_value = getattr(type(deck_controls)(), field_name)
        if deck_value != default_value or field_name == "time_end":
            merged = merged.with_(**{field_name: deck_value})
    setup.controls = merged
    return setup
