"""Saltzmann's piston (Dukowicz & Meltz 1992) — paper Section III-B.

A one-dimensional piston problem deliberately run on the classic
sinusoidally-skewed mesh: a piston advances from the left at unit speed
into a cold γ = 5/3 gas, driving a shock of speed (γ+1)/2 = 4/3 with a
four-fold density jump.  Because the mesh lines are oblique to the
planar shock, hourglass modes are strongly excited — the problem exists
to test the hourglass suppression machinery (sub-zonal pressures and
the Hancock filter), which this setup therefore switches on by default.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import FIX_X, FIX_Y, BoundaryConditions
from ..mesh.generator import saltzmann_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA = 5.0 / 3.0
RHO0 = 1.0
E0 = 1.0e-4
PISTON_SPEED = 1.0


@problem(
    "saltzmann",
    summary="Saltzmann piston on the Dukowicz-Meltz skewed mesh",
    acceptance="strong-shock piston relations "
               "(repro.analytic.saltzmann_exact): shock speed "
               "(gamma+1)/2 and 4x density jump; validated in "
               "tests/integration/test_saltzmann.py",
    reference="Dukowicz & Meltz, J. Comput. Phys. 99 (1992); "
              "paper Section III-B",
    settings=[
        mesh_setting("nx", 100, "mesh cells along the tube"),
        mesh_setting("ny", 10, "mesh cells across the tube"),
        Setting("length", float, 1.0, "tube length"),
        Setting("height", float, 0.1, "tube height"),
        Setting("time_end", float, 0.6, "simulation end time"),
        Setting("subzonal_kappa", float, 1.0, "sub-zonal pressure "
                "strength (hourglass control; 0 disables)"),
        Setting("filter_kappa", float, 0.05, "Hancock hourglass "
                "velocity-filter strength (0 disables)"),
    ],
)
def setup(nx: int = 100, ny: int = 10,
          length: float = 1.0, height: float = 0.1,
          time_end: float = 0.6,
          subzonal_kappa: float = 1.0, filter_kappa: float = 0.05,
          **control_overrides) -> ProblemSetup:
    """Build the Saltzmann piston on the skewed mesh."""
    mesh = saltzmann_mesh(nx, ny, length=length, height=height)
    extents = (0.0, length, 0.0, height)

    gas = IdealGas(GAMMA)
    table = MaterialTable()
    table.add(gas)

    rho = np.full(mesh.ncell, RHO0)
    e = np.full(mesh.ncell, E0)

    # The skewed warp leaves the four walls straight, so classify by
    # coordinates directly.  Piston nodes (x = 0) are fully prescribed
    # at the piston velocity; the other walls reflect.
    tol = 1e-9
    flags = np.zeros(mesh.nnode, dtype=np.int8)
    ux = np.zeros(mesh.nnode)
    uy = np.zeros(mesh.nnode)
    piston = np.abs(mesh.x) <= tol
    flags[piston] |= FIX_X | FIX_Y
    ux[piston] = PISTON_SPEED
    flags[np.abs(mesh.x - length) <= tol] |= FIX_X
    flags[np.abs(mesh.y) <= tol] |= FIX_Y
    flags[np.abs(mesh.y - height) <= tol] |= FIX_Y
    bc = BoundaryConditions(flags, ux, uy)

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-5,
        dt_max=5.0e-3,
        subzonal_kappa=subzonal_kappa,
        filter_kappa=filter_kappa,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, bc=bc)
    # Piston nodes start moving at t=0 (apply_velocity in from_initial
    # already set them from the BC table).
    return ProblemSetup(
        name="saltzmann",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Saltzmann piston on the Dukowicz-Meltz skewed mesh",
        params={"nx": nx, "ny": ny, "time_end": time_end,
                "subzonal_kappa": subzonal_kappa,
                "filter_kappa": filter_kappa},
    )
