"""BookLeaf's four bundled test problems (paper Section III-B).

Sod's shock tube, the Noh implosion, the Sedov blast wave and
Saltzmann's piston — each with a programmatic ``setup()`` and an input
deck under ``repro/problems/decks``.
"""

from .base import ProblemSetup
from .registry import (
    deck_path,
    load_problem,
    problem_names,
    setup_from_deck,
)

__all__ = [
    "ProblemSetup",
    "load_problem",
    "problem_names",
    "setup_from_deck",
    "deck_path",
]
