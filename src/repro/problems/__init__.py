"""BookLeaf's bundled test problems (paper Section III-B and beyond).

The paper's four — Sod's shock tube, the Noh implosion, the Sedov
blast wave and Saltzmann's piston — plus the extension scenarios
(LeBlanc, water–air, JWL expansion, the three-material triple point
and the Kidder isentropic shell).  Each problem module registers
itself with the declarative registry (:mod:`repro.problems.registry`)
via the ``@problem`` decorator, which carries a typed settings table:
deck validation, ``repro problems list/describe`` and
``docs/PROBLEMS.md`` all derive from that one source of truth.
"""

from .base import ProblemSetup
from .registry import (
    ProblemInfo,
    RegistryError,
    Setting,
    bundled_decks,
    deck_path,
    deck_text,
    describe_problem,
    get_problem,
    load_problem,
    problem,
    problem_names,
    setup_from_deck,
)

__all__ = [
    "ProblemSetup",
    "ProblemInfo",
    "RegistryError",
    "Setting",
    "problem",
    "get_problem",
    "describe_problem",
    "load_problem",
    "problem_names",
    "setup_from_deck",
    "bundled_decks",
    "deck_path",
    "deck_text",
]
