"""Common scaffolding for the bundled test problems.

Every problem module builds a :class:`ProblemSetup`: the initial
:class:`~repro.core.state.HydroState`, the material table and the
controls, bundled with metadata (domain extents, a short description)
and a convenience constructor for the :class:`~repro.core.hydro.Hydro`
driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.controls import HydroControls
from ..core.hydro import Hydro
from ..core.state import HydroState
from ..eos.multimaterial import MaterialTable
from ..utils.log import StepLogger
from ..utils.timers import TimerRegistry


@dataclass
class ProblemSetup:
    """A ready-to-run problem: state + materials + controls + metadata."""

    name: str
    state: HydroState
    table: MaterialTable
    controls: HydroControls
    extents: Tuple[float, float, float, float]
    description: str = ""
    #: free-form problem parameters recorded for reproducibility
    params: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """JSON-ready configuration snapshot (the run report's
        ``problem`` section: name, mesh size, params, every control)."""
        from dataclasses import asdict

        return {
            "name": self.name,
            "description": self.description,
            "extents": list(self.extents),
            "ncell": int(self.state.mesh.ncell),
            "nnode": int(self.state.mesh.nnode),
            "params": dict(self.params),
            "controls": asdict(self.controls),
        }

    def make_hydro(self, timers: Optional[TimerRegistry] = None,
                   logger: Optional[StepLogger] = None,
                   comms=None) -> Hydro:
        """Build the serial driver for this problem."""
        return Hydro(self.state, self.table, self.controls,
                     timers=timers, logger=logger, comms=comms)

    def run(self, timers: Optional[TimerRegistry] = None,
            max_steps: Optional[int] = None) -> Hydro:
        """Convenience: build the driver, run to completion, return it."""
        hydro = self.make_hydro(timers=timers)
        hydro.run(max_steps=max_steps)
        return hydro
