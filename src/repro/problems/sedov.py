"""The Sedov–Taylor blast wave (Taylor 1950) — paper Section III-B.

A point energy release in a cold uniform gas drives a self-similar
cylindrical blast wave.  BookLeaf computes it on a *Cartesian* mesh
precisely to test shocks that are not aligned with mesh directions.

Setup: one quadrant ``[0, size]²`` with symmetry on the axes.  The
blast energy ``energy`` (measured over the full plane) is deposited in
the cells touching the origin: each origin cell gets
``e = (energy / 4) / (n_origin_cells × cell_mass)``.

In 2-D the shock radius grows as ``r(t) = (E t² / (α ρ₀))^{1/4}`` with
α a γ-dependent constant (≈ 0.984 for γ = 1.4, computed exactly by
:mod:`repro.analytic.sedov_exact`); the density jump at the shock is
the strong-shock limit (γ+1)/(γ−1) = 6.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA = 1.4
RHO0 = 1.0
E_BACKGROUND = 1.0e-9
#: default full-plane blast energy — chosen so the shock is near r = 0.9
#: at t = 1.0 on the default domain
ENERGY = 0.657


@problem(
    "sedov",
    summary="Sedov blast wave, gamma=1.4, quadrant Cartesian mesh",
    acceptance="Sedov-Taylor similarity solution "
               "(repro.analytic.sedov_exact): shock radius and 6x "
               "density jump; validated in "
               "tests/integration/test_sedov.py",
    reference="Taylor, Proc. R. Soc. A 201 (1950); paper Section III-B",
    settings=[
        mesh_setting("nx", 60, "mesh cells in x"),
        mesh_setting("ny", 60, "mesh cells in y"),
        Setting("size", float, 1.2, "quadrant side length"),
        Setting("energy", float, ENERGY, "full-plane blast energy "
                "deposited at the origin"),
        Setting("time_end", float, 1.0, "simulation end time"),
        Setting("ale_on", bool, False, "enable the ALE remap phase"),
        Setting("subzonal_kappa", float, 1.0, "sub-zonal pressure "
                "strength (hourglass control; 0 disables)"),
    ],
)
def setup(nx: int = 60, ny: int = 60, size: float = 1.2,
          energy: float = ENERGY, time_end: float = 1.0,
          ale_on: bool = False, subzonal_kappa: float = 1.0,
          **control_overrides) -> ProblemSetup:
    """Build the Sedov problem on an ``nx × ny`` quadrant mesh."""
    extents = (0.0, size, 0.0, size)
    mesh = rect_mesh(nx, ny, extents)

    gas = IdealGas(GAMMA)
    table = MaterialTable()
    table.add(gas)

    rho = np.full(mesh.ncell, RHO0)
    e = np.full(mesh.ncell, E_BACKGROUND)

    # Deposit the quadrant's share of the energy in the origin cell(s).
    xc, yc = mesh.cell_centroids()
    dx = size / nx
    dy = size / ny
    origin = (xc < dx) & (yc < dy)
    n_origin = int(origin.sum())
    areas = mesh.cell_areas()
    cell_mass = RHO0 * areas[origin]
    e[origin] = (energy / 4.0) / (n_origin * cell_mass)

    bc = classify_box_boundary(
        mesh, extents, walls={"left": True, "bottom": True}
    )

    # Sub-zonal pressures are on by default: the blast strongly distorts
    # the cells around the deposition point and tangles the mesh before
    # t_end otherwise.
    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-5,
        dt_max=1.0e-2,
        ale_on=ale_on,
        subzonal_kappa=subzonal_kappa,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, bc=bc)
    return ProblemSetup(
        name="sedov",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Sedov blast wave, gamma=1.4, quadrant Cartesian mesh",
        params={"nx": nx, "ny": ny, "energy": energy,
                "time_end": time_end, "ale_on": ale_on},
    )
