"""Kidder's isentropic shell compression (Kidder 1976).

A cylindrical shell of γ = 2 ideal gas between radii 0.9 and 1.0 is
compressed isentropically: every fluid particle moves homothetically,
``R(r, t) = h(t) r`` with ``h = sqrt(1 − t²/τ²)``, and the whole shell
focuses onto the axis at τ ≈ 7.265 × 10⁻³
(:mod:`repro.analytic.kidder_exact` derives the solution and the
default boundary states).  Because the flow is smooth and isentropic,
the problem measures exactly what shock problems cannot: whether the
artificial viscosity's limiter really switches off in smooth
compression and whether the scheme tracks an analytic *ALE-free*
large-deformation flow — which is why the cell-centred-Lagrangian
literature (Maire 2009; Boscheri & Dumbser, arXiv:1408.3719) uses it
as its standard accuracy test.

Setup: one quadrant of the shell on a polar mesh
(:func:`~repro.mesh.generator.shell_mesh`) with symmetry walls on both
axes.  The inner and outer arcs are *kinematically driven* with the
exact self-similar velocity ``u = ḣ(t) r`` through a time-dependent
boundary driver (the staggered-scheme equivalent of the analytic
pressure boundary condition), so the interior solution is the scheme's
to get right.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytic import kidder_exact
from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import FIX_X, FIX_Y, BoundaryConditions
from ..mesh.generator import shell_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA = kidder_exact.GAMMA          #: γ = 2, required by self-similarity
R1 = kidder_exact.R1
R2 = kidder_exact.R2
TAU = kidder_exact.TAU              #: focalisation time (≈ 7.2648e-3)
#: default end time τ/2, where h = sqrt(3)/2 ≈ 0.866
TIME_END = 0.5 * TAU


@dataclass
class ShellDriver:
    """Time-dependent radial boundary driver ``u = ḣ(t) (x0, y0)``.

    ``(x0, y0)`` are the *initial* node coordinates (the Lagrangian
    radii times the fixed angular unit vectors — driven nodes move
    radially, so the direction never changes).
    """

    x0: np.ndarray
    y0: np.ndarray
    tau: float

    def velocities(self, t: float):
        hdot = kidder_exact.scale_rate(t, self.tau)
        return hdot * self.x0, hdot * self.y0

    def subset(self, nodes: np.ndarray) -> "ShellDriver":
        return ShellDriver(self.x0[nodes], self.y0[nodes], self.tau)


@problem(
    "kidder",
    summary="Kidder isentropic shell compression, gamma=2, polar mesh",
    acceptance="exact self-similar solution "
               "(repro.analytic.kidder_exact): shell radii follow "
               "h(t) = sqrt(1 - t^2/tau^2) and the density field "
               "matches h^(-2) rho0(R/h); gated in "
               "tests/integration/test_kidder.py",
    reference="Kidder, Nucl. Fusion 16 (1976); Maire, JCP 228 (2009)",
    settings=[
        mesh_setting("nx", 10, "radial mesh cells across the shell"),
        mesh_setting("ny", 12, "angular mesh cells around the quadrant"),
        Setting("time_end", float, TIME_END, "simulation end time "
                "(must stay below the focalisation time tau ~ 7.265e-3; "
                "default tau/2)"),
    ],
)
def setup(nx: int = 10, ny: int = 12, time_end: float = TIME_END,
          **control_overrides) -> ProblemSetup:
    """Build the Kidder shell on an ``nx × ny`` polar quadrant mesh."""
    mesh = shell_mesh(nx, ny, R1, R2)
    extents = (0.0, R2, 0.0, R2)

    gas = IdealGas(GAMMA)
    table = MaterialTable()
    table.add(gas)

    xc, yc = mesh.cell_centroids()
    rc = np.hypot(xc, yc)
    rho = kidder_exact.shell_density(rc)
    e = kidder_exact.shell_pressure(rc) / ((GAMMA - 1.0) * rho)

    # Symmetry walls on the axes; both arcs are fully prescribed and
    # driven radially with the exact boundary velocity (zero at t = 0 —
    # the shell starts at rest).
    r_node = np.hypot(mesh.x, mesh.y)
    tol = 1.0e-9
    flags = np.zeros(mesh.nnode, dtype=np.int8)
    flags[np.abs(mesh.y) <= tol] |= FIX_Y
    flags[np.abs(mesh.x) <= tol] |= FIX_X
    arcs = (np.abs(r_node - R1) <= tol) | (np.abs(r_node - R2) <= tol)
    flags[arcs] |= FIX_X | FIX_Y
    bc = BoundaryConditions(
        flags, driver=ShellDriver(mesh.x.copy(), mesh.y.copy(), TAU)
    )

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-5,
        dt_max=1.0e-4,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, bc=bc)
    return ProblemSetup(
        name="kidder",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Kidder isentropic shell compression, gamma=2",
        params={"nx": nx, "ny": ny, "time_end": time_end},
    )
