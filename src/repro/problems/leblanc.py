"""The LeBlanc shock tube — the "shock tube from hell".

An extreme Riemann problem (γ = 5/3) with an eight-orders-of-magnitude
pressure ratio and a thousand-fold density ratio:

    left  (x < 3):  ρ = 1.0,    e = 0.1      (p = 2/30)
    right (x > 3):  ρ = 1e-3,   e = 1e-7     (p ≈ 6.67e-11)

on the domain [0, 9], run to t = 6.  The exact solution (from the same
Riemann machinery as Sod) has a very strong right-moving shock near
x = 8 at t = 6 and a deep rarefaction.  LeBlanc is a standard
*extension* test for Lagrangian hydro codes beyond BookLeaf's four
bundled problems — it stresses the energy floor, the viscosity
limiter and the timestep controls far harder than Sod.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA = 5.0 / 3.0
RHO_L, E_L = 1.0, 0.1
RHO_R, E_R = 1.0e-3, 1.0e-7
INTERFACE = 3.0
LENGTH = 9.0


@problem(
    "leblanc",
    summary="LeBlanc extreme shock tube, gamma=5/3",
    acceptance="exact Riemann solution (repro.analytic.riemann) for the "
               "1e8 pressure-ratio data; wave positions checked in "
               "tests/integration/test_extension_problems.py",
    reference="the standard 'shock tube from hell' extension test",
    settings=[
        mesh_setting("nx", 360, "mesh cells along the tube"),
        mesh_setting("ny", 2, "mesh cells across the tube"),
        Setting("height", float, 0.25, "tube height (domain is [0,9] x "
                "[0, height])"),
        Setting("time_end", float, 6.0, "simulation end time"),
    ],
)
def setup(nx: int = 360, ny: int = 2, height: float = 0.25,
          time_end: float = 6.0, **control_overrides) -> ProblemSetup:
    """Build the LeBlanc tube on an ``nx × ny`` mesh of [0, 9]."""
    extents = (0.0, LENGTH, 0.0, height)
    mesh = rect_mesh(nx, ny, extents)
    xc, _ = mesh.cell_centroids()
    left = xc < INTERFACE

    gas = IdealGas(GAMMA)
    table = MaterialTable()
    table.add(gas)

    rho = np.where(left, RHO_L, RHO_R)
    e = np.where(left, E_L, E_R)
    bc = classify_box_boundary(mesh, extents)

    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-4,
        dt_max=5.0e-2,
        # the huge jumps need a careful CFL and the density floor
        cfl_safety=0.4,
        dencut=1.0e-9,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, bc=bc)
    return ProblemSetup(
        name="leblanc",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="LeBlanc extreme shock tube, gamma=5/3",
        params={"nx": nx, "ny": ny, "time_end": time_end},
    )
