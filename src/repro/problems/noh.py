"""The Noh implosion problem (Noh 1987) — paper Section III-B.

A cold ideal gas (γ = 5/3) of unit density converges radially inward
with unit speed onto the origin.  An infinite-strength shock forms and
moves outward at speed 1/3; behind it (2-D cylindrical geometry)
ρ = 16, u = 0, e = ½; ahead of it the converging flow compresses
geometrically to ρ = 1 + t/r.

The problem famously exposes *wall heating* — the over-heated,
under-dense cells artificial-viscosity methods leave at the origin —
which is exactly why BookLeaf ships it, and it is the problem used for
the paper's single-node performance study (Table II, Figs 1–2).

Setup: one quadrant ``[0, 1]²`` with symmetry (reflecting) conditions
on the two axes and a free outer boundary.
"""

from __future__ import annotations

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.ideal import IdealGas
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import classify_box_boundary
from ..mesh.generator import rect_mesh
from .base import ProblemSetup
from .registry import Setting, mesh_setting, problem

GAMMA = 5.0 / 3.0
RHO0 = 1.0
E0 = 1.0e-9      #: tiny initial energy (the exact problem is cold)
U0 = 1.0         #: inward radial speed


@problem(
    "noh",
    summary="Noh implosion, gamma=5/3, quadrant with axis symmetry",
    acceptance="exact Noh solution (repro.analytic.noh_exact): rho=16 "
               "plateau, shock at t/3; validated in "
               "tests/integration/test_noh.py",
    reference="Noh, J. Comput. Phys. 72 (1987); paper Section III-B",
    settings=[
        mesh_setting("nx", 50, "mesh cells in x"),
        mesh_setting("ny", 50, "mesh cells in y"),
        Setting("size", float, 1.0, "quadrant side length"),
        Setting("time_end", float, 0.6, "simulation end time"),
        Setting("ale_on", bool, False, "enable the ALE remap phase"),
        Setting("subzonal_kappa", float, 1.0, "sub-zonal pressure "
                "strength (hourglass control; 0 disables)"),
    ],
)
def setup(nx: int = 50, ny: int = 50, size: float = 1.0,
          time_end: float = 0.6, ale_on: bool = False,
          subzonal_kappa: float = 1.0,
          **control_overrides) -> ProblemSetup:
    """Build the Noh problem on an ``nx × ny`` quadrant mesh."""
    extents = (0.0, size, 0.0, size)
    mesh = rect_mesh(nx, ny, extents)

    gas = IdealGas(GAMMA)
    table = MaterialTable()
    table.add(gas)

    rho = np.full(mesh.ncell, RHO0)
    e = np.full(mesh.ncell, E0)

    # u = -r̂ everywhere except the origin node (where r̂ is undefined).
    r = np.hypot(mesh.x, mesh.y)
    safe = np.maximum(r, 1e-300)
    u = np.where(r > 0.0, -U0 * mesh.x / safe, 0.0)
    v = np.where(r > 0.0, -U0 * mesh.y / safe, 0.0)

    bc = classify_box_boundary(
        mesh, extents, walls={"left": True, "bottom": True}
    )

    # Sub-zonal pressures are on by default: the converging flow drives
    # strong mesh distortion at the origin that tangles the mesh before
    # t_end otherwise (the same reason BookLeaf carries the machinery).
    controls = HydroControls(
        time_end=time_end,
        dt_initial=1.0e-4,
        dt_max=1.0e-2,
        ale_on=ale_on,
        subzonal_kappa=subzonal_kappa,
    ).with_(**control_overrides)

    state = HydroState.from_initial(mesh, table, rho, e, u=u, v=v, bc=bc)
    return ProblemSetup(
        name="noh",
        state=state,
        table=table,
        controls=controls,
        extents=extents,
        description="Noh implosion, gamma=5/3, quadrant with axis symmetry",
        params={"nx": nx, "ny": ny, "time_end": time_end, "ale_on": ale_on},
    )
