"""Performance subsystem: precomputed mesh plans and buffer arenas.

The Fortran BookLeaf pays its connectivity-derived costs once, at
setup; a naive numpy port re-pays them every step as hidden
allocations: ``np.roll`` temporaries in the geometry and viscosity
kernels, ``.ravel()`` copies feeding ``bincount`` scatters, throwaway
work arrays in every kernel of the predictor/corrector loop.  This
package removes those per-step costs without touching the numerics:

* :class:`~repro.perf.plans.MeshPlans` — per-mesh index structures
  built once (rolled-corner fancy-index columns, a sort-once CSR
  scatter plan driving ``np.add.reduceat``, the static neighbour
  indices of the Christiansen limiter);
* :class:`~repro.perf.workspace.Workspace` — a preallocated buffer
  arena keyed by ``(name, shape, dtype)`` that the hot kernels draw
  their temporaries from, so the steady-state Lagrangian loop performs
  no large allocations after the first step.

Both are *optional* everywhere: every kernel accepts ``plans=None,
ws=None`` and falls back to the historical allocate-per-call behaviour,
so the serial and distributed paths run unchanged without them.
"""

from .plans import MeshPlans, roll_next, roll_prev
from .workspace import Workspace, scratch

__all__ = ["MeshPlans", "Workspace", "roll_next", "roll_prev", "scratch"]
