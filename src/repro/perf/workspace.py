"""A preallocated buffer arena for the hot kernels.

:class:`Workspace` hands out numpy arrays keyed by ``(name, shape,
dtype)``.  The first request for a key allocates; every subsequent
request returns the *same* array, so a steady-state loop that always
asks for the same buffers performs zero large allocations after its
first pass.  Buffers are plain scratch: their contents are undefined
between requests (use :meth:`Workspace.zeros` when a zero-filled
buffer is required) and they must never be stored anywhere that
outlives the loop iteration that requested them — long-lived state is
committed by copying out of the arena.

Two kinds of buffer:

* **Named** (:meth:`Workspace.array` / :meth:`Workspace.zeros`) — keyed
  by ``(name, shape, dtype)``, for results that must survive across
  kernel calls within a step (gathered geometry, assembled forces, …).
* **Borrowed** (:meth:`Workspace.borrow` / :meth:`Workspace.release`) —
  a per-``(shape, dtype)`` free-list for kernel-local temporaries.
  ``borrow`` pops the most-recently-released block (cache-hot, exactly
  the recycling ``malloc`` gives the historical allocate-per-call
  code) or allocates on first use; ``release`` returns blocks when the
  temporary dies.  Keeping temporaries on the free-list instead of
  under unique names keeps the arena's working set near the *peak
  live* size rather than the total number of temporaries — at 96² that
  is the difference between a few MB that fit in cache and ~20 MB that
  do not.

:func:`scratch` adapts the ``ws=None`` convention used throughout the
kernels: it returns the given workspace, or a fallback whose ``array``
/``zeros``/``borrow`` simply allocate fresh arrays, so kernel bodies
are written once against the workspace API and behave exactly like the
historical allocate-per-call code when no arena is supplied.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

Shape = Union[int, Tuple[int, ...]]


class Workspace:
    """Buffer arena keyed by ``(name, shape, dtype)``.

    Statistics (``hits``, ``misses``, :meth:`nbytes`) let tests assert
    that the arena stops growing once the loop reaches steady state.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], str], np.ndarray] = {}
        self._free: Dict[Tuple[Tuple[int, ...], str], list] = {}
        #: arrays ever allocated by :meth:`borrow` (free + outstanding)
        self._borrowed_count = 0
        self._borrowed_nbytes = 0
        #: requests served from an existing buffer
        self.hits = 0
        #: requests that had to allocate
        self.misses = 0

    def array(self, name: str, shape: Shape,
              dtype: np.dtype = np.float64) -> np.ndarray:
        """Uninitialised buffer for ``name``; contents are scratch."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        key = (name, shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def zeros(self, name: str, shape: Shape,
              dtype: np.dtype = np.float64) -> np.ndarray:
        """Like :meth:`array` but zero-filled on every request."""
        buf = self.array(name, shape, dtype)
        buf.fill(0)
        return buf

    def borrow(self, shape: Shape,
               dtype: np.dtype = np.float64) -> np.ndarray:
        """Scratch buffer from the free-list (most-recently-released
        first); allocates only when the list for this (shape, dtype) is
        empty.  Pair every ``borrow`` with a :meth:`release` when the
        temporary dies — a missing release shows up as arena growth,
        which the no-growth tests catch."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        key = (shape, np.dtype(dtype).str)
        pool = self._free.get(key)
        if pool:
            self.hits += 1
            return pool.pop()
        self.misses += 1
        buf = np.empty(shape, dtype=dtype)
        self._borrowed_count += 1
        self._borrowed_nbytes += buf.nbytes
        return buf

    def release(self, *arrays: np.ndarray) -> None:
        """Return borrowed buffers to the free-list.

        The caller must not touch a buffer after releasing it; the next
        ``borrow`` of the same shape/dtype will hand it out again.
        """
        for buf in arrays:
            key = (buf.shape, buf.dtype.str)
            self._free.setdefault(key, []).append(buf)

    def __len__(self) -> int:
        return len(self._buffers) + self._borrowed_count

    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return (sum(buf.nbytes for buf in self._buffers.values())
                + self._borrowed_nbytes)

    def clear(self) -> None:
        self._buffers.clear()
        self._free.clear()
        self._borrowed_count = 0
        self._borrowed_nbytes = 0
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Workspace {len(self)} buffers, "
                f"{self.nbytes() / 1e6:.2f} MB, "
                f"{self.hits} hits / {self.misses} misses>")


class _AllocScratch:
    """Workspace stand-in that always allocates (the ``ws=None`` path)."""

    def array(self, name: str, shape: Shape,
              dtype: np.dtype = np.float64) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, name: str, shape: Shape,
              dtype: np.dtype = np.float64) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def borrow(self, shape: Shape,
               dtype: np.dtype = np.float64) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def release(self, *arrays: np.ndarray) -> None:
        pass


_ALLOC = _AllocScratch()


def scratch(ws: Optional[Workspace]):
    """The given workspace, or the allocate-per-call fallback."""
    return ws if ws is not None else _ALLOC
