"""Precomputed per-mesh index plans for the hot kernels.

Everything in here is a function of the mesh *topology* only, so it is
computed once per mesh and reused every step:

* **Rolled-corner columns** — for (ncell, 4) corner arrays,
  ``np.roll(a, -1, axis=1)`` is exactly ``a[:, [1, 2, 3, 0]]``;
  :func:`roll_next`/:func:`roll_prev` express the roll as four strided
  column copies (``out=`` given) or one fancy-index gather (no
  ``out=``) — bit-for-bit identical to ``np.roll`` and measurably
  faster than it (``np.roll`` builds its result from two wrapped
  block copies plus the intermediate index arithmetic).

* **Scatter plan** — the corner→node sum (``scatter_to_nodes``) is the
  structural scatter of the whole code.  ``np.bincount`` re-derives the
  grouping from the flattened connectivity on every call and always
  allocates its result; the plan instead builds a *padded incidence
  table* once — for every node, the (≤ max-valence) flat slots of the
  (cell, corner) pairs touching it plus a 0/1 weight mask — and each
  call is then one flat gather plus one weighted row sum
  (``einsum('nk,nk->n')``), both into caller buffers.  The summation
  order per node differs from bincount's, so the two agree to rounding
  (property-tested at rtol 1e-15), not bit-wise.

* **Limiter indices** — the Christiansen limiter's neighbour-edge node
  lookups (four index arrays plus the boundary mask) depend only on
  connectivity; the plan hoists them out of ``getq``.

:class:`MeshPlans` treats the mesh duck-typed (anything exposing
``cell_nodes``, ``cell_neighbours``, ``neighbour_side``,
``node_cell_offsets``, ``nnode``, ``ncell`` works), so this module has
no imports from the rest of the package and can be used from any
layer without cycles.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

#: column order of ``np.roll(a, -1, axis=1)`` for 4-corner arrays
ROLL_NEXT_COLS = np.array([1, 2, 3, 0], dtype=np.intp)
#: column order of ``np.roll(a, 1, axis=1)``
ROLL_PREV_COLS = np.array([3, 0, 1, 2], dtype=np.intp)

#: beyond this node valence the padded incidence table would waste more
#: memory/bandwidth than it saves — fall back to ``bincount``
MAX_PAD_VALENCE = 8


def roll_next(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """``np.roll(a, -1, axis=1)`` for (n, 4) arrays, with ``out=`` support.

    ``out`` must not alias ``a``.
    """
    if out is None:
        return a[:, ROLL_NEXT_COLS]
    out[:, 0] = a[:, 1]
    out[:, 1] = a[:, 2]
    out[:, 2] = a[:, 3]
    out[:, 3] = a[:, 0]
    return out


def roll_prev(a: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """``np.roll(a, 1, axis=1)`` for (n, 4) arrays, with ``out=`` support.

    ``out`` must not alias ``a``.
    """
    if out is None:
        return a[:, ROLL_PREV_COLS]
    out[:, 0] = a[:, 3]
    out[:, 1] = a[:, 0]
    out[:, 2] = a[:, 1]
    out[:, 3] = a[:, 2]
    return out


def spread_corners(values: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Materialise a per-cell value into all 4 corner columns of ``out``.

    Equivalent to ``out[:] = values[:, None]`` but via strided column
    copies: a ufunc whose operand broadcasts with zero stride *and* has
    an ``out=`` makes numpy fall back to its buffered iterator, which
    mallocs (and fills) a hidden full-size temporary on every call —
    exactly the allocation the workspace exists to avoid.  Feeding the
    subsequent arithmetic a materialised operand keeps it on the
    unbuffered fast path.  Values are copied, not recomputed, so any
    expression using the spread operand is bit-identical to the
    broadcast form.
    """
    v = values.reshape(-1)
    out[:, 0] = v
    out[:, 1] = v
    out[:, 2] = v
    out[:, 3] = v
    return out


def limiter_indices(mesh) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]:
    """Static node indices of the Christiansen continuation jumps.

    Returns ``(n_b1, n_b0, n_f1, n_f0, off)``, each (ncell, 4): the
    node pairs of the backward/forward continuation edges of every
    in-cell edge, and the boolean mask of edges whose continuation is
    missing (mesh boundary; the limiter forces ψ = 0 there).
    """
    nb = mesh.cell_neighbours
    ns = mesh.neighbour_side
    cn = mesh.cell_nodes

    lcell = roll_prev(nb)                   # neighbour across side k-1
    lside = roll_prev(ns)
    rcell = roll_next(nb)                   # neighbour across side k+1
    rside = roll_next(ns)
    has_b = lcell >= 0
    has_f = rcell >= 0
    lc = np.where(has_b, lcell, 0)
    ls = np.where(has_b, lside, 0)
    rc = np.where(has_f, rcell, 0)
    rs = np.where(has_f, rside, 0)

    n_b1 = cn[lc, ls]                        # node at our corner k
    n_b0 = cn[lc, (ls + 3) % 4]
    n_f1 = cn[rc, (rs + 2) % 4]
    n_f0 = cn[rc, (rs + 1) % 4]              # node at our corner k+1
    off = ~(has_b & has_f)
    return n_b1, n_b0, n_f1, n_f0, off


class MeshPlans:
    """All connectivity-derived index structures, built once per mesh.

    Parameters
    ----------
    mesh:
        A :class:`~repro.mesh.topology.QuadMesh` (or anything exposing
        the same connectivity attributes).
    """

    def __init__(self, mesh):
        self.mesh = mesh
        self.ncell = int(mesh.ncell)
        self.nnode = int(mesh.nnode)
        flat = np.ascontiguousarray(mesh.cell_nodes.reshape(-1))
        #: stable sort of the 4·ncell (cell, corner) slots by node — the
        #: per-node segment order equals bincount's traversal order
        self.scatter_perm = np.argsort(flat, kind="stable")
        offsets = mesh.node_cell_offsets
        degrees = np.diff(offsets)
        #: the mesh's largest node valence (cells sharing one node)
        self.max_valence = int(degrees.max(initial=0))
        self._pad_ok = 0 < self.max_valence <= MAX_PAD_VALENCE
        if self._pad_ok:
            k = np.arange(self.max_valence)
            valid = k[None, :] < degrees[:, None]            # (nnode, K)
            src = offsets[:-1, None] + k[None, :]
            slots = self.scatter_perm[np.where(valid, src, 0)]
            #: flat (cell, corner) slot per (node, incidence) pad entry
            self.pad_idx = np.ascontiguousarray(
                np.where(valid, slots, 0), dtype=np.intp)
            #: 1.0 on real incidences, 0.0 on padding
            self.pad_w = np.ascontiguousarray(valid, dtype=np.float64)
            #: buffer shape a caller should pass as ``work=``
            self.scatter_work_shape = (self.nnode, self.max_valence)
        else:
            self.pad_idx = None
            self.pad_w = None
            self.scatter_work_shape = (0,)
        #: (ny, nx) when the mesh is a canonical structured grid
        self.grid_shape = self._detect_grid(flat)
        # Contiguous intp copies: ``np.take`` silently copies any other
        # index layout to a fresh contiguous buffer on every call.
        (self.lim_n_b1, self.lim_n_b0, self.lim_n_f1, self.lim_n_f0,
         self.lim_off) = (
            np.ascontiguousarray(a, dtype=np.intp) if a.dtype != np.bool_
            else np.ascontiguousarray(a)
            for a in limiter_indices(mesh))

    def _detect_grid(self, flat_cell_nodes: np.ndarray):
        """Recognise the canonical rectilinear numbering, if present.

        Cell (i, j) of an nx×ny grid owns nodes ``[j(nx+1)+i, +1,
        +nx+2, +nx+1]`` (counter-clockwise).  On such meshes the
        corner→node scatter collapses to four shifted-window adds.
        """
        cn = flat_cell_nodes.reshape(self.ncell, 4)
        if self.ncell == 0 or cn[0, 0] != 0 or cn[0, 1] != 1:
            return None
        nx = int(cn[0, 3]) - 1
        if nx <= 0 or self.ncell % nx != 0:
            return None
        ny = self.ncell // nx
        if self.nnode != (nx + 1) * (ny + 1):
            return None
        c = np.arange(self.ncell)
        base = (c // nx) * (nx + 1) + c % nx
        guess = np.stack([base, base + 1, base + nx + 2, base + nx + 1],
                         axis=1)
        return (ny, nx) if np.array_equal(cn, guess) else None

    # ------------------------------------------------------------------
    def gather(self, nodal: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """(ncell, 4) per-corner values of a nodal array."""
        if out is None:
            return nodal[self.mesh.cell_nodes]
        return np.take(nodal, self.mesh.cell_nodes, out=out, mode="clip")

    def scatter_to_nodes(self, corner_field: np.ndarray,
                         out: Optional[np.ndarray] = None,
                         work: Optional[np.ndarray] = None) -> np.ndarray:
        """Sum an (ncell, 4) corner field onto nodes -> (nnode,).

        On a canonical structured grid the scatter is four shifted
        2-D window adds, performed in ascending-cell order per node —
        bit-for-bit identical to ``bincount``, with no intermediate
        index traffic at all.  Otherwise the padded-incidence plan:
        gather the field's flat slots into the (nnode, max_valence)
        ``work`` table, then one weighted row sum.  Orphan (valence-0)
        nodes get 0, as with ``bincount``.  The padded path agrees with
        the ``bincount`` scatter to rounding (the per-node summation
        order differs), not bit-for-bit.
        """
        if (self.grid_shape is not None
                and corner_field.flags.c_contiguous
                and (out is None or out.flags.c_contiguous)):
            ny, nx = self.grid_shape
            if out is None:
                out = np.empty(self.nnode)
            f = corner_field.reshape(ny, nx, 4)
            o = out.reshape(ny + 1, nx + 1)
            # A node's incident cells in ascending index order reach it
            # through corners 2, 3, 1, 0 — adding the planes in that
            # order reproduces bincount's accumulation exactly.
            o.fill(0.0)
            o[1:, 1:] += f[:, :, 2]
            o[1:, :-1] += f[:, :, 3]
            o[:-1, 1:] += f[:, :, 1]
            o[:-1, :-1] += f[:, :, 0]
            return out
        flat = corner_field.reshape(-1)
        if not self._pad_ok:
            result = np.bincount(self.mesh.cell_nodes.reshape(-1),
                                 weights=flat, minlength=self.nnode)
            if out is not None:
                np.copyto(out, result)
                return out
            return result
        if out is None:
            out = np.empty(self.nnode)
        if work is None:
            work = np.empty(self.scatter_work_shape)
        else:
            work = work.reshape(self.scatter_work_shape)
        np.take(flat, self.pad_idx.reshape(-1), out=work.reshape(-1),
                mode="clip")
        np.einsum("nk,nk->n", work, self.pad_w, out=out)
        return out

    def scatter_to_nodes_batched(self, corner_field: np.ndarray,
                                 out: Optional[np.ndarray] = None
                                 ) -> np.ndarray:
        """Sum a (B, ncell, 4) corner field onto nodes -> (B, nnode).

        The ensemble scatter: one shared plan serves every lane.  On a
        canonical grid the four shifted window adds run with a leading
        batch axis — each lane's accumulation order is exactly the
        single-lane grid path's, hence bit-identical to ``bincount``
        per lane.  Off-grid meshes fall back to a per-lane ``bincount``
        loop (bit-identical by construction, just not batched).
        """
        b = corner_field.shape[0]
        if out is None:
            out = np.empty((b, self.nnode))
        if (self.grid_shape is not None
                and corner_field.flags.c_contiguous
                and out.flags.c_contiguous):
            ny, nx = self.grid_shape
            f = corner_field.reshape(b, ny, nx, 4)
            o = out.reshape(b, ny + 1, nx + 1)
            o.fill(0.0)
            o[:, 1:, 1:] += f[:, :, :, 2]
            o[:, 1:, :-1] += f[:, :, :, 3]
            o[:, :-1, 1:] += f[:, :, :, 1]
            o[:, :-1, :-1] += f[:, :, :, 0]
            return out
        flat_nodes = self.mesh.cell_nodes.reshape(-1)
        for i in range(b):
            out[i] = np.bincount(flat_nodes,
                                 weights=corner_field[i].reshape(-1),
                                 minlength=self.nnode)
        return out
