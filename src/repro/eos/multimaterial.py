"""Multi-material EoS dispatch — BookLeaf's ``getpc`` substrate.

Each cell carries a material index; the :class:`MaterialTable` maps
indices to :class:`~repro.eos.base.Eos` instances and evaluates pressure
and sound speed for the whole mesh in one vectorised sweep per material
(mask + fancy indexing, so cost is O(ncell) regardless of how many
materials exist).

The table also owns BookLeaf's global cutoffs:

* ``pcut`` — pressures with ``|p| < pcut`` are snapped to zero,
* ``ccut`` — sound-speed-squared floor, keeping the CFL timestep finite
  in cold or void cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..utils.deck import Deck
from ..utils.errors import DeckError, EosError
from .base import Eos
from .ideal import IdealGas
from .jwl import Jwl
from .tait import Tait
from .void import Void


@dataclass
class MaterialTable:
    """Material-index -> EoS dispatch with global cutoffs."""

    eos: List[Eos] = field(default_factory=list)
    pcut: float = 1.0e-8
    ccut: float = 1.0e-9

    def add(self, eos: Eos) -> int:
        """Register an EoS; returns the material index it was given."""
        self.eos.append(eos)
        return len(self.eos) - 1

    @property
    def nmat(self) -> int:
        return len(self.eos)

    def _check(self, mat: np.ndarray) -> None:
        if self.nmat == 0:
            raise EosError("MaterialTable has no materials")
        if mat.size and (mat.min() < 0 or mat.max() >= self.nmat):
            raise EosError(
                f"material indices out of range [0, {self.nmat}): "
                f"min={mat.min()} max={mat.max()}"
            )

    def getpc(self, mat: np.ndarray, rho: np.ndarray, e: np.ndarray,
              out: Optional[Tuple[np.ndarray, np.ndarray]] = None,
              ws=None) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate pressure and sound-speed² for every cell.

        This is BookLeaf's ``getpc`` kernel: one EoS call per material
        over the cells of that material, then the global cutoffs.
        ``out`` receives ``(p, cs2)`` (they must not alias the inputs);
        a workspace makes the single-material path allocation-free.
        """
        mat = np.asarray(mat)
        rho = np.asarray(rho, dtype=np.float64)
        e = np.asarray(e, dtype=np.float64)
        self._check(mat)
        if out is None:
            p = np.empty_like(rho)
            cs2 = np.empty_like(rho)
        else:
            p, cs2 = out
        if self.nmat == 1:
            # Fast path: single material, no mask gathers.
            self.eos[0].pressure_into(rho, e, p)
            self.eos[0].sound_speed_sq_into(rho, e, cs2)
        else:
            for imat, eos in enumerate(self.eos):
                sel = mat == imat
                if not sel.any():
                    continue
                p[sel] = eos.pressure(rho[sel], e[sel])
                cs2[sel] = eos.sound_speed_sq(rho[sel], e[sel])
        if ws is not None:
            t = ws.array("getpc.absp", p.shape)
            small = ws.array("getpc.small", p.shape, dtype=bool)
            np.abs(p, out=t)
            np.less(t, self.pcut, out=small)
            np.copyto(p, 0.0, where=small)
        else:
            np.copyto(p, 0.0, where=np.abs(p) < self.pcut)
        np.maximum(cs2, self.ccut, out=cs2)
        return p, cs2

    def gamma_like(self, mat: np.ndarray) -> np.ndarray:
        """Per-cell effective γ for the viscosity coefficient.

        The CSW quadratic viscosity coefficient uses (γ+1)/4; materials
        without a γ (Tait/JWL/void) fall back to 5/3.
        """
        mat = np.asarray(mat)
        out = np.full(mat.shape, 5.0 / 3.0)
        for imat, eos in enumerate(self.eos):
            if isinstance(eos, IdealGas):
                out[mat == imat] = eos.gamma
        return out


def eos_from_section(options: Dict[str, object]) -> Eos:
    """Build one EoS from deck options (``eos = ideal|tait|jwl|void``)."""
    kind = str(options.get("eos", "ideal")).lower()
    if kind == "ideal":
        return IdealGas(gamma=float(options.get("gamma", 1.4)))
    if kind == "tait":
        return Tait(
            rho0=float(options.get("rho0", 1.0)),
            a1=float(options.get("a1", 1.0)),
            a3=float(options.get("a3", 7.0)),
            cavitation_pressure=float(options.get("cavitation_pressure", 0.0)),
        )
    if kind == "jwl":
        return Jwl(
            rho0=float(options.get("rho0", 1.0)),
            a=float(options.get("a", 1.0)),
            b=float(options.get("b", 1.0)),
            r1=float(options.get("r1", 4.0)),
            r2=float(options.get("r2", 1.0)),
            omega=float(options.get("omega", 0.3)),
        )
    if kind == "void":
        return Void()
    raise DeckError(f"unknown eos kind {kind!r}")


def material_table_from_deck(deck: Deck,
                             pcut: Optional[float] = None,
                             ccut: Optional[float] = None) -> MaterialTable:
    """Build a :class:`MaterialTable` from ``[MATERIAL k]`` sections.

    Material deck indices are 1-based (as in BookLeaf); internal indices
    are 0-based in deck order.
    """
    sections = deck.indexed("MATERIAL")
    if not sections:
        raise DeckError(f"deck {deck.source} defines no [MATERIAL] sections")
    table = MaterialTable()
    if pcut is not None:
        table.pcut = pcut
    if ccut is not None:
        table.ccut = ccut
    for section in sections:
        table.add(eos_from_section(section.options))
    return table
