"""Jones–Wilkins–Lee (JWL) equation of state for detonation products.

    p(ρ, e) = A (1 - ω v0/(R1 v)) exp(-R1 v/v0)
            + B (1 - ω v0/(R2 v)) exp(-R2 v/v0)
            + ω ρ e

with ``v = 1/ρ`` the specific volume and ``v0 = 1/ρ0`` the reference
specific volume of the unreacted explosive.  Writing ``x = ρ0/ρ = v/v0``:

    p = A (1 - ω/(R1 x)) e^{-R1 x} + B (1 - ω/(R2 x)) e^{-R2 x} + ω ρ e

The sound speed follows from the thermodynamic identity
``c² = ∂p/∂ρ|_e + (p/ρ²) ∂p/∂e|_ρ`` evaluated analytically below.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import EosError
from .base import Eos


class Jwl(Eos):
    """JWL detonation-products EoS (standard five-parameter form)."""

    name = "jwl"

    def __init__(self, rho0: float, a: float, b: float,
                 r1: float, r2: float, omega: float):
        if rho0 <= 0.0:
            raise EosError(f"JWL requires rho0 > 0, got {rho0}")
        if r1 <= 0.0 or r2 <= 0.0 or omega <= 0.0:
            raise EosError("JWL requires r1, r2, omega > 0")
        self.rho0 = float(rho0)
        self.a = float(a)
        self.b = float(b)
        self.r1 = float(r1)
        self.r2 = float(r2)
        self.omega = float(omega)

    def _terms(self, rho):
        """The two exponential terms and x = rho0/rho."""
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 1e-300)
        x = self.rho0 / rho
        t1 = self.a * np.exp(-self.r1 * x)
        t2 = self.b * np.exp(-self.r2 * x)
        return x, t1, t2

    def pressure(self, rho, e):
        x, t1, t2 = self._terms(rho)
        w = self.omega
        p_cold = t1 * (1.0 - w / (self.r1 * x)) + t2 * (1.0 - w / (self.r2 * x))
        return p_cold + w * np.asarray(rho) * np.asarray(e)

    def sound_speed_sq(self, rho, e):
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 1e-300)
        x, t1, t2 = self._terms(rho)
        w = self.omega
        # dp/drho at constant e.  With x = rho0/rho, dx/drho = -x/rho:
        #   d/drho [ t_i (1 - w/(r_i x)) ]
        # = t_i' * (1 - w/(r_i x)) + t_i * w/(r_i x^2) * dx/drho-part
        # where t_i' = t_i * r_i * x / rho (chain rule through exp).
        dp_drho = (
            t1 * (self.r1 * x / rho) * (1.0 - w / (self.r1 * x))
            - t1 * (w / (self.r1 * x * x)) * (x / rho)
            + t2 * (self.r2 * x / rho) * (1.0 - w / (self.r2 * x))
            - t2 * (w / (self.r2 * x * x)) * (x / rho)
            + w * np.asarray(e)
        )
        dp_de = w * rho
        p = self.pressure(rho, e)
        cs2 = dp_drho + (p / (rho * rho)) * dp_de
        return np.maximum(cs2, 0.0)

    def energy_from_pressure(self, rho, p):
        x, t1, t2 = self._terms(rho)
        w = self.omega
        p_cold = t1 * (1.0 - w / (self.r1 * x)) + t2 * (1.0 - w / (self.r2 * x))
        return (np.asarray(p) - p_cold) / (w * np.asarray(rho, dtype=np.float64))
