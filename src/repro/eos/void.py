"""Void (vacuum) pseudo-EoS.

BookLeaf's fourth material option: a region that exerts no pressure.
The sound speed is zero (the MaterialTable's ``ccut`` floor keeps the
timestep control finite for void cells).
"""

from __future__ import annotations

import numpy as np

from .base import Eos


class Void(Eos):
    """Zero-pressure, zero-stiffness material."""

    name = "void"

    def pressure(self, rho, e):
        return np.zeros_like(np.asarray(rho, dtype=np.float64))

    def sound_speed_sq(self, rho, e):
        return np.zeros_like(np.asarray(rho, dtype=np.float64))

    def energy_from_pressure(self, rho, p):
        return np.zeros_like(np.asarray(rho, dtype=np.float64))
