"""Equation-of-state interface.

BookLeaf closes Euler's equations with one EoS per material: ideal gas,
Tait, JWL, or void (Section III-A of the paper).  Every EoS maps
``(density, specific internal energy) -> (pressure, sound speed²)`` and
must be vectorised: inputs are numpy arrays over the cells of one
material and outputs have the same shape.

Pressure and sound-speed cutoffs (BookLeaf's ``pcut``/``ccut``) are
applied by the :class:`~repro.eos.multimaterial.MaterialTable`, not by
the individual EoS classes, so the pure thermodynamics stays testable.
"""

from __future__ import annotations

import abc

import numpy as np


class Eos(abc.ABC):
    """Abstract equation of state ``p(ρ, e)``, ``c²(ρ, e)``."""

    #: short name used in input decks (``eos = ideal``)
    name: str = "abstract"

    @abc.abstractmethod
    def pressure(self, rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        """Pressure from density and specific internal energy."""

    @abc.abstractmethod
    def sound_speed_sq(self, rho: np.ndarray, e: np.ndarray) -> np.ndarray:
        """Squared adiabatic sound speed ``c² = ∂p/∂ρ|_s``.

        Implementations may return the standard thermodynamic identity
        ``c² = ∂p/∂ρ + (p/ρ²) ∂p/∂e`` evaluated pointwise.
        """

    def pressure_into(self, rho: np.ndarray, e: np.ndarray,
                      out: np.ndarray) -> np.ndarray:
        """Pressure written into ``out``.  Subclasses may override with
        an allocation-free implementation; the default just copies."""
        out[...] = self.pressure(rho, e)
        return out

    def sound_speed_sq_into(self, rho: np.ndarray, e: np.ndarray,
                            out: np.ndarray) -> np.ndarray:
        """Sound speed² written into ``out`` (see :meth:`pressure_into`)."""
        out[...] = self.sound_speed_sq(rho, e)
        return out

    def energy_from_pressure(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        """Invert ``p(ρ, e)`` for ``e`` — used by problem setups that
        specify initial pressure rather than energy.  Optional."""
        raise NotImplementedError(f"{self.name} EoS cannot invert p -> e")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"
