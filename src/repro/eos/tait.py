"""Tait (stiffened liquid) equation of state.

BookLeaf's Tait option models nearly-incompressible liquids:

    p  = a1 [ (ρ/ρ0)^a3 - 1 ]          for ρ >= ρ0·cutoff
    c² = (a1 a3 / ρ0) (ρ/ρ0)^(a3-1)

Internal energy does not enter the pressure (a barotropic fluid), which
is the classic Tait–Murnaghan form used for water (a1 ≈ 3.31e8, a3 = 7).
In tension (ρ < ρ0) the pressure goes negative down to the cavitation
cutoff, below which it is clamped to the cavitation pressure.
"""

from __future__ import annotations

import numpy as np

from ..utils.errors import EosError
from .base import Eos


class Tait(Eos):
    """Tait–Murnaghan liquid EoS (pressure independent of energy)."""

    name = "tait"

    def __init__(self, rho0: float, a1: float, a3: float,
                 cavitation_pressure: float = 0.0):
        if rho0 <= 0.0:
            raise EosError(f"Tait requires rho0 > 0, got {rho0}")
        if a1 <= 0.0 or a3 <= 0.0:
            raise EosError(f"Tait requires a1, a3 > 0, got a1={a1} a3={a3}")
        self.rho0 = float(rho0)
        self.a1 = float(a1)
        self.a3 = float(a3)
        self.cavitation_pressure = float(cavitation_pressure)

    def pressure(self, rho, e):
        ratio = np.asarray(rho, dtype=np.float64) / self.rho0
        p = self.a1 * (ratio ** self.a3 - 1.0)
        return np.maximum(p, self.cavitation_pressure)

    def sound_speed_sq(self, rho, e):
        ratio = np.maximum(np.asarray(rho, dtype=np.float64), 1e-300) / self.rho0
        return (self.a1 * self.a3 / self.rho0) * ratio ** (self.a3 - 1.0)

    def energy_from_pressure(self, rho, p):
        # Barotropic: energy is decoupled from pressure, so an initial
        # pressure specification just yields zero internal energy.
        return np.zeros_like(np.asarray(rho, dtype=np.float64))

    def density_from_pressure(self, p):
        """Invert ``p(ρ)`` — convenient for constructing initial states."""
        return self.rho0 * (np.asarray(p) / self.a1 + 1.0) ** (1.0 / self.a3)
