"""Ideal-gas (gamma-law) equation of state."""

from __future__ import annotations

import numpy as np

from ..utils.errors import EosError
from .base import Eos


class IdealGas(Eos):
    """Gamma-law gas: ``p = (γ-1) ρ e``, ``c² = γ p / ρ``.

    This is the EoS used by all four of BookLeaf's bundled test problems
    (Sod, Noh, Sedov, Saltzmann).
    """

    name = "ideal"

    def __init__(self, gamma: float):
        if gamma <= 1.0:
            raise EosError(f"ideal gas requires gamma > 1, got {gamma}")
        self.gamma = float(gamma)

    def pressure(self, rho, e):
        return (self.gamma - 1.0) * rho * e

    def sound_speed_sq(self, rho, e):
        # c² = γ p / ρ = γ (γ-1) e; guard e >= 0 so cold cells give c = 0
        # rather than NaN (the MaterialTable applies the ccut floor).
        return self.gamma * (self.gamma - 1.0) * np.maximum(e, 0.0)

    def pressure_into(self, rho, e, out):
        np.multiply(rho, self.gamma - 1.0, out=out)
        out *= e
        return out

    def sound_speed_sq_into(self, rho, e, out):
        np.maximum(e, 0.0, out=out)
        out *= self.gamma * (self.gamma - 1.0)
        return out

    def energy_from_pressure(self, rho, p):
        rho = np.asarray(rho, dtype=np.float64)
        return p / ((self.gamma - 1.0) * rho)
