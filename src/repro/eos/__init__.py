"""Equations of state (BookLeaf Section III-A).

Provides the four material closures BookLeaf offers — ideal gas, Tait,
JWL and void — and the multi-material dispatch table that implements the
``getpc`` kernel.
"""

from .base import Eos
from .ideal import IdealGas
from .jwl import Jwl
from .multimaterial import MaterialTable, eos_from_section, material_table_from_deck
from .tait import Tait
from .void import Void

__all__ = [
    "Eos",
    "IdealGas",
    "Jwl",
    "Tait",
    "Void",
    "MaterialTable",
    "eos_from_section",
    "material_table_from_deck",
]
