"""Geometry kernels — BookLeaf's ``getgeom``.

Everything here operates on gathered per-cell corner coordinate arrays
``cx, cy`` of shape (ncell, 4) in counter-clockwise order, which lets
every quantity be a handful of vectorised expressions.

Definitions (corner index arithmetic is mod 4):

* cell volume (area in 2-D): shoelace formula,
* volume gradients ``∂V_c/∂x_i = ½(y_{i+1} − y_{i−1})`` — the corner
  vectors that turn a cell pressure into compatible corner forces,
* corner (sub-zonal) volumes: the median decomposition — corner ``i``'s
  subzone is the quad (P_i, M_i, C, M_{i−1}) with M the edge midpoints
  and C the vertex centroid; the four subzones tile the cell exactly,
* subzone volume gradients ``∂V_i/∂x_j`` for the sub-zonal-pressure
  hourglass forces (each subzone's gradients sum to zero over the four
  nodes, so those forces conserve momentum exactly),
* the CFL length scale (shortest cell dimension).

Every kernel has two code paths.  Without a workspace it runs the
historical vectorised expressions exactly as first written (temporaries
allocated per call — the baseline the perf harness times against).
With a :class:`~repro.perf.workspace.Workspace` all temporaries come
from the arena, results land in caller-provided buffers and corner
rolls go through :func:`repro.perf.plans.roll_next`/``roll_prev``
(strided column copies — bit-for-bit equal to ``np.roll`` but faster
and with ``out=`` support).  The two paths perform the same floating
operations in the same association, so their results are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from ..perf.plans import roll_next, roll_prev, spread_corners
from ..perf.workspace import Workspace
from ..utils.errors import TangledMeshError


def gather(mesh: QuadMesh, x: np.ndarray, y: np.ndarray,
           out: Optional[Tuple[np.ndarray, np.ndarray]] = None
           ) -> Tuple[np.ndarray, np.ndarray]:
    """(ncell, 4) corner coordinates from nodal arrays."""
    if out is None:
        return x[mesh.cell_nodes], y[mesh.cell_nodes]
    cx, cy = out
    np.take(x, mesh.cell_nodes, out=cx, mode="clip")
    np.take(y, mesh.cell_nodes, out=cy, mode="clip")
    return cx, cy


def cell_volumes(cx: np.ndarray, cy: np.ndarray,
                 out: Optional[np.ndarray] = None,
                 ws: Optional[Workspace] = None) -> np.ndarray:
    """Signed cell volumes (areas) via the shoelace formula."""
    if ws is None:
        result = 0.5 * (
            (cx[:, 2] - cx[:, 0]) * (cy[:, 3] - cy[:, 1])
            + (cx[:, 1] - cx[:, 3]) * (cy[:, 2] - cy[:, 0])
        )
        if out is None:
            return result
        np.copyto(out, result)
        return out
    n = cx.shape[0]
    if out is None:
        out = np.empty(n)
    t1 = ws.borrow(n)
    t2 = ws.borrow(n)
    np.subtract(cx[:, 2], cx[:, 0], out=t1)
    np.subtract(cy[:, 3], cy[:, 1], out=t2)
    np.multiply(t1, t2, out=out)
    np.subtract(cx[:, 1], cx[:, 3], out=t1)
    np.subtract(cy[:, 2], cy[:, 0], out=t2)
    np.multiply(t1, t2, out=t1)
    out += t1
    out *= 0.5
    ws.release(t1, t2)
    return out


def volume_gradients(cx: np.ndarray, cy: np.ndarray,
                     out: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                     ws: Optional[Workspace] = None
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """``(∂V/∂x_i, ∂V/∂y_i)`` per corner, each (ncell, 4).

    ``∂V/∂x_i = ½(y_{i+1} − y_{i−1})``; ``∂V/∂y_i = ½(x_{i−1} − x_{i+1})``.
    The four gradients of a cell sum to zero (translation invariance),
    which is what makes the pressure corner forces conserve momentum.
    """
    if ws is None and out is None:
        dvdx = 0.5 * (np.roll(cy, -1, axis=1) - np.roll(cy, 1, axis=1))
        dvdy = 0.5 * (np.roll(cx, 1, axis=1) - np.roll(cx, -1, axis=1))
        return dvdx, dvdy
    if out is None:
        dvdx = np.empty_like(cx)
        dvdy = np.empty_like(cy)
    else:
        dvdx, dvdy = out
    t = ws.borrow(cx.shape) if ws is not None else np.empty_like(cx)
    roll_next(cy, out=dvdx)
    roll_prev(cy, out=t)
    dvdx -= t
    dvdx *= 0.5
    roll_prev(cx, out=dvdy)
    roll_next(cx, out=t)
    dvdy -= t
    dvdy *= 0.5
    if ws is not None:
        ws.release(t)
    return dvdx, dvdy


def _quad_partials(ax, ay, bx, by, cx_, cy_, dx, dy):
    """Shoelace partial derivatives of quad (A,B,C,D) w.r.t. each vertex.

    Returns ((gAx, gAy), (gBx, gBy), (gCx, gCy), (gDx, gDy)).
    """
    return (
        (0.5 * (by - dy), 0.5 * (dx - bx)),
        (0.5 * (cy_ - ay), 0.5 * (ax - cx_)),
        (0.5 * (dy - by), 0.5 * (bx - dx)),
        (0.5 * (ay - cy_), 0.5 * (cx_ - ax)),
    )


def corner_volumes(cx: np.ndarray, cy: np.ndarray,
                   out: Optional[np.ndarray] = None,
                   ws: Optional[Workspace] = None) -> np.ndarray:
    """(ncell, 4) median-decomposition subzone volumes.

    Subzone ``i`` is the quad (P_i, M_i, C, M_{i−1}); the four subzones
    tile the cell, so they sum to the shoelace cell volume exactly
    (an identity the tests check to round-off).
    """
    if ws is None:
        mx = 0.5 * (cx + np.roll(cx, -1, axis=1))   # M_i midpoints
        my = 0.5 * (cy + np.roll(cy, -1, axis=1))
        gx = cx.mean(axis=1, keepdims=True)         # centroid
        gy = cy.mean(axis=1, keepdims=True)
        ax, ay = cx, cy                             # A = P_i
        bx, by = mx, my                             # B = M_i
        dx, dy = np.roll(mx, 1, axis=1), np.roll(my, 1, axis=1)  # D = M_{i-1}
        result = 0.5 * (
            (ax * by - bx * ay)
            + (bx * gy - gx * by)
            + (gx * dy - dx * gy)
            + (dx * ay - ax * dy)
        )
        if out is None:
            return result
        np.copyto(out, result)
        return out
    n = cx.shape[0]
    if out is None:
        out = np.empty_like(cx)
    mx = ws.borrow(cx.shape)                 # M_i midpoints
    my = ws.borrow(cx.shape)
    roll_next(cx, out=mx)
    mx += cx
    mx *= 0.5
    roll_next(cy, out=my)
    my += cy
    my *= 0.5
    g1 = ws.borrow(n)
    gx = ws.borrow(cx.shape)                 # centroid, spread per corner
    gy = ws.borrow(cx.shape)
    np.mean(cx, axis=1, out=g1)
    spread_corners(g1, gx)
    np.mean(cy, axis=1, out=g1)
    spread_corners(g1, gy)
    ws.release(g1)
    dx = ws.borrow(cx.shape)                 # D = M_{i-1}
    dy = ws.borrow(cx.shape)
    roll_prev(mx, out=dx)
    roll_prev(my, out=dy)
    # A = P_i = (cx, cy), B = M_i = (mx, my); shoelace of (A, B, C, D).
    t1 = ws.borrow(cx.shape)
    t2 = ws.borrow(cx.shape)
    np.multiply(cx, my, out=out)            # ax·by − bx·ay
    np.multiply(mx, cy, out=t1)
    out -= t1
    np.multiply(mx, gy, out=t1)             # bx·gy − gx·by
    np.multiply(gx, my, out=t2)
    t1 -= t2
    out += t1
    np.multiply(gx, dy, out=t1)             # gx·dy − dx·gy
    np.multiply(dx, gy, out=t2)
    t1 -= t2
    out += t1
    np.multiply(dx, cy, out=t1)             # dx·ay − ax·dy
    np.multiply(cx, dy, out=t2)
    t1 -= t2
    out += t1
    out *= 0.5
    ws.release(mx, my, gx, gy, dx, dy, t1, t2)
    return out


def subzone_volume_gradients(cx: np.ndarray, cy: np.ndarray,
                             out: Optional[Tuple[np.ndarray,
                                                 np.ndarray]] = None,
                             ws: Optional[Workspace] = None
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """``∂V_subzone_i/∂x_j`` for all corner pairs (i, j).

    Returns ``(gradx, grady)``, each of shape (ncell, 4, 4) indexed
    ``[cell, subzone i, node j]``.  Chain rule through the subzone's
    vertices: node j enters subzone i via P_i (weight 1 when j == i),
    the midpoints M_i, M_{i−1} (weight ½) and the centroid (weight ¼).
    Each subzone's gradients sum to zero over j, and summing subzones
    recovers the cell volume gradient — both identities are tested.
    """
    ncell = cx.shape[0]
    if ws is None:
        mx = 0.5 * (cx + np.roll(cx, -1, axis=1))
        my = 0.5 * (cy + np.roll(cy, -1, axis=1))
        gx = np.broadcast_to(cx.mean(axis=1, keepdims=True), cx.shape)
        gy = np.broadcast_to(cy.mean(axis=1, keepdims=True), cy.shape)
        ax, ay = cx, cy
        bx, by = mx, my
        dx, dy = np.roll(mx, 1, axis=1), np.roll(my, 1, axis=1)
        (gAx, gAy), (gBx, gBy), (gCx, gCy), (gDx, gDy) = _quad_partials(
            ax, ay, bx, by, gx, gy, dx, dy
        )
        if out is None:
            gradx = np.zeros((ncell, 4, 4))
            grady = np.zeros((ncell, 4, 4))
        else:
            gradx, grady = out
        idx = np.arange(4)
        nxt = (idx + 1) % 4
        prv = (idx - 1) % 4
        # j == i: A fully + half of both midpoints + quarter of centroid.
        gradx[:, idx, idx] = gAx + 0.5 * (gBx + gDx) + 0.25 * gCx
        grady[:, idx, idx] = gAy + 0.5 * (gBy + gDy) + 0.25 * gCy
        # j == i+1: half of M_i + quarter of centroid.
        gradx[:, idx, nxt] = 0.5 * gBx + 0.25 * gCx
        grady[:, idx, nxt] = 0.5 * gBy + 0.25 * gCy
        # j == i-1: half of M_{i-1} + quarter of centroid.
        gradx[:, idx, prv] = 0.5 * gDx + 0.25 * gCx
        grady[:, idx, prv] = 0.5 * gDy + 0.25 * gCy
        # j == i+2: quarter of centroid only.
        opp = (idx + 2) % 4
        gradx[:, idx, opp] = 0.25 * gCx
        grady[:, idx, opp] = 0.25 * gCy
        return gradx, grady

    shape = cx.shape
    mx = ws.borrow(shape)
    my = ws.borrow(shape)
    roll_next(cx, out=mx)
    mx += cx
    mx *= 0.5
    roll_next(cy, out=my)
    my += cy
    my *= 0.5
    g1 = ws.borrow(ncell)
    gx = ws.borrow(shape)
    gy = ws.borrow(shape)
    np.mean(cx, axis=1, out=g1)
    spread_corners(g1, gx)
    np.mean(cy, axis=1, out=g1)
    spread_corners(g1, gy)
    ws.release(g1)
    dx = ws.borrow(shape)
    dy = ws.borrow(shape)
    roll_prev(mx, out=dx)
    roll_prev(my, out=dy)

    # Shoelace partials of quad (A=P_i, B=M_i, C=centroid, D=M_{i-1})
    # w.r.t. each vertex: gA = ½(B−D)⊥, gB = ½(C−A)⊥, gC = ½(D−B)⊥,
    # gD = ½(A−C)⊥ (with (x, y)⊥ = (y, −x)).
    gAx = ws.borrow(shape)
    gAy = ws.borrow(shape)
    np.subtract(my, dy, out=gAx)
    gAx *= 0.5
    np.subtract(dx, mx, out=gAy)
    gAy *= 0.5
    gBx = ws.borrow(shape)
    gBy = ws.borrow(shape)
    np.subtract(gy, cy, out=gBx)
    gBx *= 0.5
    np.subtract(cx, gx, out=gBy)
    gBy *= 0.5
    gCx = ws.borrow(shape)
    gCy = ws.borrow(shape)
    np.subtract(dy, my, out=gCx)
    gCx *= 0.5
    np.subtract(mx, dx, out=gCy)
    gCy *= 0.5
    gDx = ws.borrow(shape)
    gDy = ws.borrow(shape)
    np.subtract(cy, gy, out=gDx)
    gDx *= 0.5
    np.subtract(gx, cx, out=gDy)
    gDy *= 0.5
    ws.release(mx, my, gx, gy, dx, dy)

    if out is None:
        gradx = np.empty((ncell, 4, 4))
        grady = np.empty((ncell, 4, 4))
    else:
        gradx, grady = out
    t1 = ws.borrow(shape)
    t2 = ws.borrow(shape)
    idx = np.arange(4)
    nxt = (idx + 1) % 4
    prv = (idx - 1) % 4
    opp = (idx + 2) % 4

    def fill(grad, gA, gB, gC, gD, t1=t1, t2=t2):
        # j == i: A fully + half of both midpoints + quarter of centroid
        # — accumulated as (gA + ½(gB+gD)) + ¼gC, the same association
        # as the unbuffered expression (bit-identical results).
        np.add(gB, gD, out=t1)
        t1 *= 0.5
        t1 += gA
        np.multiply(gC, 0.25, out=t2)
        t1 += t2
        grad[:, idx, idx] = t1
        # j == i+1: half of M_i + quarter of centroid.
        np.multiply(gB, 0.5, out=t1)
        t1 += t2
        grad[:, idx, nxt] = t1
        # j == i-1: half of M_{i-1} + quarter of centroid.
        np.multiply(gD, 0.5, out=t1)
        t1 += t2
        grad[:, idx, prv] = t1
        # j == i+2: quarter of centroid only.
        grad[:, idx, opp] = t2

    fill(gradx, gAx, gBx, gCx, gDx)
    fill(grady, gAy, gBy, gCy, gDy)
    ws.release(gAx, gAy, gBx, gBy, gCx, gCy, gDx, gDy, t1, t2)
    return gradx, grady


def cfl_length_sq(cx: np.ndarray, cy: np.ndarray,
                  volume: Optional[np.ndarray] = None,
                  out: Optional[np.ndarray] = None,
                  ws: Optional[Workspace] = None) -> np.ndarray:
    """Squared CFL length scale per cell: (V / longest side)².

    For a rectangle this is the shorter side — the distance a sound
    wave must cross — and it degrades correctly for skewed cells.
    """
    if ws is None:
        if volume is None:
            volume = cell_volumes(cx, cy)
        ex = np.roll(cx, -1, axis=1) - cx
        ey = np.roll(cy, -1, axis=1) - cy
        longest_sq = (ex * ex + ey * ey).max(axis=1)
        result = volume * volume / np.maximum(longest_sq, 1e-300)
        if out is None:
            return result
        np.copyto(out, result)
        return out
    if volume is None:
        volume = cell_volumes(cx, cy, ws=ws)
    ex = ws.borrow(cx.shape)
    ey = ws.borrow(cx.shape)
    roll_next(cx, out=ex)
    ex -= cx
    roll_next(cy, out=ey)
    ey -= cy
    ex *= ex
    ey *= ey
    ex += ey
    if out is None:
        out = np.empty(cx.shape[0])
    np.max(ex, axis=1, out=out)             # longest side²
    np.maximum(out, 1e-300, out=out)
    t = ws.borrow(cx.shape[0])
    np.multiply(volume, volume, out=t)
    np.divide(t, out, out=out)
    ws.release(ex, ey, t)
    return out


def check_volumes(volume: np.ndarray, time: Optional[float] = None,
                  what: str = "cell",
                  mask: Optional[np.ndarray] = None,
                  ws: Optional[Workspace] = None) -> None:
    """Raise :class:`TangledMeshError` if any volume is non-positive.

    ``mask`` (per-cell boolean) restricts the check to owned cells in a
    decomposed run; ghost-cell geometry is not locally authoritative.
    """
    if ws is None:
        borrowed = None
        bad = volume <= 0.0
    else:
        borrowed = ws.borrow(volume.shape, dtype=bool)
        bad = borrowed
        np.less_equal(volume, 0.0, out=bad)
    if mask is not None:
        bad = bad & (mask[:, None] if volume.ndim > 1 else mask)
    if bad.any():
        if volume.ndim > 1:
            cells = np.unique(np.nonzero(bad)[0])[:10]
        else:
            cells = np.flatnonzero(bad)[:10]
        raise TangledMeshError(cells.tolist(), time=time)
    if borrowed is not None:
        ws.release(borrowed)


def getgeom(mesh: QuadMesh, x: np.ndarray, y: np.ndarray,
            time: Optional[float] = None,
            check_mask: Optional[np.ndarray] = None,
            ws: Optional[Workspace] = None,
            tag: str = ""
            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The ``getgeom`` kernel: gather coordinates and compute volumes.

    Returns ``(cx, cy, volume, corner_volume)`` and raises
    :class:`TangledMeshError` on non-positive cell or corner volume —
    the same failure detection the Fortran code performs.  In a
    decomposed run ``check_mask`` restricts the failure check to owned
    cells.

    With a workspace all four results live in arena buffers named by
    ``tag`` — callers that hold results across a later ``getgeom`` call
    on the same workspace must use distinct tags.
    """
    if ws is not None:
        cx = ws.array(f"geom.gg.cx.{tag}", (mesh.ncell, 4))
        cy = ws.array(f"geom.gg.cy.{tag}", (mesh.ncell, 4))
        volume = ws.array(f"geom.gg.vol.{tag}", mesh.ncell)
        cvol = ws.array(f"geom.gg.cvol.{tag}", (mesh.ncell, 4))
        gather(mesh, x, y, out=(cx, cy))
        cell_volumes(cx, cy, out=volume, ws=ws)
        check_volumes(volume, time=time, mask=check_mask, ws=ws)
        corner_volumes(cx, cy, out=cvol, ws=ws)
        check_volumes(cvol, time=time, what="corner", mask=check_mask, ws=ws)
        return cx, cy, volume, cvol
    cx, cy = gather(mesh, x, y)
    volume = cell_volumes(cx, cy)
    check_volumes(volume, time=time, mask=check_mask)
    cvol = corner_volumes(cx, cy)
    check_volumes(cvol, time=time, what="corner", mask=check_mask)
    return cx, cy, volume, cvol
