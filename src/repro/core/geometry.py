"""Geometry kernels — BookLeaf's ``getgeom``.

Everything here operates on gathered per-cell corner coordinate arrays
``cx, cy`` of shape (ncell, 4) in counter-clockwise order, which lets
every quantity be a handful of vectorised expressions.

Definitions (corner index arithmetic is mod 4):

* cell volume (area in 2-D): shoelace formula,
* volume gradients ``∂V_c/∂x_i = ½(y_{i+1} − y_{i−1})`` — the corner
  vectors that turn a cell pressure into compatible corner forces,
* corner (sub-zonal) volumes: the median decomposition — corner ``i``'s
  subzone is the quad (P_i, M_i, C, M_{i−1}) with M the edge midpoints
  and C the vertex centroid; the four subzones tile the cell exactly,
* subzone volume gradients ``∂V_i/∂x_j`` for the sub-zonal-pressure
  hourglass forces (each subzone's gradients sum to zero over the four
  nodes, so those forces conserve momentum exactly),
* the CFL length scale (shortest cell dimension).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from ..utils.errors import TangledMeshError


def gather(mesh: QuadMesh, x: np.ndarray, y: np.ndarray
           ) -> Tuple[np.ndarray, np.ndarray]:
    """(ncell, 4) corner coordinates from nodal arrays."""
    return x[mesh.cell_nodes], y[mesh.cell_nodes]


def cell_volumes(cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
    """Signed cell volumes (areas) via the shoelace formula."""
    return 0.5 * (
        (cx[:, 2] - cx[:, 0]) * (cy[:, 3] - cy[:, 1])
        + (cx[:, 1] - cx[:, 3]) * (cy[:, 2] - cy[:, 0])
    )


def volume_gradients(cx: np.ndarray, cy: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """``(∂V/∂x_i, ∂V/∂y_i)`` per corner, each (ncell, 4).

    ``∂V/∂x_i = ½(y_{i+1} − y_{i−1})``; ``∂V/∂y_i = ½(x_{i−1} − x_{i+1})``.
    The four gradients of a cell sum to zero (translation invariance),
    which is what makes the pressure corner forces conserve momentum.
    """
    dvdx = 0.5 * (np.roll(cy, -1, axis=1) - np.roll(cy, 1, axis=1))
    dvdy = 0.5 * (np.roll(cx, 1, axis=1) - np.roll(cx, -1, axis=1))
    return dvdx, dvdy


def _quad_partials(ax, ay, bx, by, cx_, cy_, dx, dy):
    """Shoelace partial derivatives of quad (A,B,C,D) w.r.t. each vertex.

    Returns ((gAx, gAy), (gBx, gBy), (gCx, gCy), (gDx, gDy)).
    """
    return (
        (0.5 * (by - dy), 0.5 * (dx - bx)),
        (0.5 * (cy_ - ay), 0.5 * (ax - cx_)),
        (0.5 * (dy - by), 0.5 * (bx - dx)),
        (0.5 * (ay - cy_), 0.5 * (cx_ - ax)),
    )


def corner_volumes(cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
    """(ncell, 4) median-decomposition subzone volumes.

    Subzone ``i`` is the quad (P_i, M_i, C, M_{i−1}); the four subzones
    tile the cell, so they sum to the shoelace cell volume exactly
    (an identity the tests check to round-off).
    """
    mx = 0.5 * (cx + np.roll(cx, -1, axis=1))   # M_i midpoints
    my = 0.5 * (cy + np.roll(cy, -1, axis=1))
    gx = cx.mean(axis=1, keepdims=True)         # centroid
    gy = cy.mean(axis=1, keepdims=True)
    ax, ay = cx, cy                             # A = P_i
    bx, by = mx, my                             # B = M_i
    dx, dy = np.roll(mx, 1, axis=1), np.roll(my, 1, axis=1)  # D = M_{i-1}
    return 0.5 * (
        (ax * by - bx * ay)
        + (bx * gy - gx * by)
        + (gx * dy - dx * gy)
        + (dx * ay - ax * dy)
    )


def subzone_volume_gradients(cx: np.ndarray, cy: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """``∂V_subzone_i/∂x_j`` for all corner pairs (i, j).

    Returns ``(gradx, grady)``, each of shape (ncell, 4, 4) indexed
    ``[cell, subzone i, node j]``.  Chain rule through the subzone's
    vertices: node j enters subzone i via P_i (weight 1 when j == i),
    the midpoints M_i, M_{i−1} (weight ½) and the centroid (weight ¼).
    Each subzone's gradients sum to zero over j, and summing subzones
    recovers the cell volume gradient — both identities are tested.
    """
    ncell = cx.shape[0]
    mx = 0.5 * (cx + np.roll(cx, -1, axis=1))
    my = 0.5 * (cy + np.roll(cy, -1, axis=1))
    gx = np.broadcast_to(cx.mean(axis=1, keepdims=True), cx.shape)
    gy = np.broadcast_to(cy.mean(axis=1, keepdims=True), cy.shape)
    ax, ay = cx, cy
    bx, by = mx, my
    dx, dy = np.roll(mx, 1, axis=1), np.roll(my, 1, axis=1)
    (gAx, gAy), (gBx, gBy), (gCx, gCy), (gDx, gDy) = _quad_partials(
        ax, ay, bx, by, gx, gy, dx, dy
    )
    gradx = np.zeros((ncell, 4, 4))
    grady = np.zeros((ncell, 4, 4))
    idx = np.arange(4)
    nxt = (idx + 1) % 4
    prv = (idx - 1) % 4
    # j == i: A fully + half of both midpoints + quarter of centroid.
    gradx[:, idx, idx] = gAx + 0.5 * (gBx + gDx) + 0.25 * gCx
    grady[:, idx, idx] = gAy + 0.5 * (gBy + gDy) + 0.25 * gCy
    # j == i+1: half of M_i + quarter of centroid.
    gradx[:, idx, nxt] = 0.5 * gBx + 0.25 * gCx
    grady[:, idx, nxt] = 0.5 * gBy + 0.25 * gCy
    # j == i-1: half of M_{i-1} + quarter of centroid.
    gradx[:, idx, prv] = 0.5 * gDx + 0.25 * gCx
    grady[:, idx, prv] = 0.5 * gDy + 0.25 * gCy
    # j == i+2: quarter of centroid only.
    opp = (idx + 2) % 4
    gradx[:, idx, opp] = 0.25 * gCx
    grady[:, idx, opp] = 0.25 * gCy
    return gradx, grady


def cfl_length_sq(cx: np.ndarray, cy: np.ndarray,
                  volume: Optional[np.ndarray] = None) -> np.ndarray:
    """Squared CFL length scale per cell: (V / longest side)².

    For a rectangle this is the shorter side — the distance a sound
    wave must cross — and it degrades correctly for skewed cells.
    """
    if volume is None:
        volume = cell_volumes(cx, cy)
    ex = np.roll(cx, -1, axis=1) - cx
    ey = np.roll(cy, -1, axis=1) - cy
    longest_sq = (ex * ex + ey * ey).max(axis=1)
    return volume * volume / np.maximum(longest_sq, 1e-300)


def check_volumes(volume: np.ndarray, time: Optional[float] = None,
                  what: str = "cell",
                  mask: Optional[np.ndarray] = None) -> None:
    """Raise :class:`TangledMeshError` if any volume is non-positive.

    ``mask`` (per-cell boolean) restricts the check to owned cells in a
    decomposed run; ghost-cell geometry is not locally authoritative.
    """
    bad = volume <= 0.0
    if mask is not None:
        bad = bad & (mask[:, None] if volume.ndim > 1 else mask)
    if bad.any():
        if volume.ndim > 1:
            cells = np.unique(np.nonzero(bad)[0])[:10]
        else:
            cells = np.flatnonzero(bad)[:10]
        raise TangledMeshError(cells.tolist(), time=time)


def getgeom(mesh: QuadMesh, x: np.ndarray, y: np.ndarray,
            time: Optional[float] = None,
            check_mask: Optional[np.ndarray] = None
            ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The ``getgeom`` kernel: gather coordinates and compute volumes.

    Returns ``(cx, cy, volume, corner_volume)`` and raises
    :class:`TangledMeshError` on non-positive cell or corner volume —
    the same failure detection the Fortran code performs.  In a
    decomposed run ``check_mask`` restricts the failure check to owned
    cells.
    """
    cx, cy = gather(mesh, x, y)
    volume = cell_volumes(cx, cy)
    check_volumes(volume, time=time, mask=check_mask)
    cvol = corner_volumes(cx, cy)
    check_volumes(cvol, time=time, what="corner", mask=check_mask)
    return cx, cy, volume, cvol
