"""Density from mass conservation — BookLeaf's ``getrho``.

During the Lagrangian phase cell masses are constant, so the continuity
equation is solved exactly by ``ρ = m_c / V_c`` on the moved geometry.
A density floor (``dencut``) guards against pathological states in
near-void cells.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def getrho(cell_mass: np.ndarray, volume: np.ndarray,
           dencut: float = 0.0,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Cell density from fixed mass and current volume."""
    rho = np.divide(cell_mass, volume, out=out)
    if dencut > 0.0:
        np.maximum(rho, dencut, out=rho)
    return rho
