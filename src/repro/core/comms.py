"""Communication seam between the hydro kernels and any comm layer.

The Lagrangian step communicates at exactly three points per timestep
(paper Sections III-A and IV-A):

* ghost nodal kinematics immediately before the viscosity calculation,
* completion of the partial nodal force/mass sums during the
  acceleration,
* the single global reduction in ``getdt``.

:class:`SerialComms` (alias :data:`NullComms`) is the do-nothing
implementation used by serial runs; the simulated Typhon layer
(:mod:`repro.parallel.typhon`) provides the thread-parallel one and
:mod:`repro.parallel.backends.processes` the process-parallel one.
Keeping the seam this small is what makes the kernels identical in
serial and parallel — the mini-app's defining property.

The seam is formally typed as
:class:`repro.parallel.interface.CommEndpoint`; every implementation
declares conformance (``__comm_endpoint__``) and is structurally
checked against the protocol by ``tests/parallel/test_protocol.py``.

The seam also exposes ``owned_cell_mask``: in a decomposed run the
ghost cells' thermodynamic state is not locally meaningful (their own
halos live on other ranks), so reductions (``getdt``) and failure
checks (tangling) must restrict themselves to owned cells.  Serially
the mask is ``None`` (everything owned).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .timestep import Candidate


class SerialComms:
    """No-op communications for a single-domain run."""

    #: declares conformance to repro.parallel.interface.CommEndpoint
    __comm_endpoint__ = True

    #: number of participating domains (for diagnostics)
    size: int = 1
    rank: int = 0

    def exchange_kinematics(self, state) -> None:
        """Refresh ghost nodal positions and velocities (no-op serially)."""

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scatter corner forces/masses to nodes and complete the sums
        across domains.  Serially this is just the local scatter."""
        return (
            state.scatter_to_nodes(fx),
            state.scatter_to_nodes(fy),
            state.node_mass(),
        )

    def reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Global minimum over all domains' dt candidates."""
        return min(candidates, key=lambda c: c[0])

    def owned_cell_mask(self, state) -> Optional[np.ndarray]:
        """Boolean mask of locally-owned cells (None = all owned)."""
        return None

    # ------------------------------------------------------------------
    # extensions used by the distributed ALE remap
    # ------------------------------------------------------------------
    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Refresh ghost-cell rows of per-cell arrays (no-op serially)."""

    def exchange_cell_fields(self, state) -> None:
        """Refresh the ghost cells' thermodynamic state (no-op serially)."""

    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]:
        """Complete partial nodal sums across domains (identity serially;
        the inputs must already be full local scatters)."""
        return arrays

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]:
        """(nb, 2) node pairs of the *physical* boundary sides (None =
        use the local mesh's own boundary, correct for undecomposed
        meshes)."""
        return None

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]:
        """Mask over the local mesh's boundary sides selecting the
        physical ones (None = all physical)."""
        return None

    def allreduce_max(self, value: float) -> float:
        """Global maximum of a scalar (identity serially).  Control-flow
        decisions (e.g. 'did any rank's mesh move?') must be collective
        or the ranks' barrier sequences diverge."""
        return value

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global sum of a small vector (identity serially).
        Used by the live-metrics probe for conservation sums."""
        return np.array(values, dtype=np.float64)

    def allreduce_min(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global minimum of a small vector (identity
        serially).  Used by the live-metrics probe for field extrema."""
        return np.array(values, dtype=np.float64)

    def comm_plan(self):
        """The compiled packed-exchange plan driving this endpoint
        (None: a serial run has no halos to pack)."""
        return None

    # ------------------------------------------------------------------
    # split-phase (overlapped) exchange API — serial degenerate forms.
    # A single domain has no halo, so posts are no-ops and completions
    # return the inputs; kernels gate the split code path on
    # ``overlap_enabled()`` anyway.
    # ------------------------------------------------------------------
    def overlap_enabled(self) -> bool:
        """Whether split-phase halo exchange is active (never serially)."""
        return False

    def post_kinematics(self, state) -> None:
        """Start the kinematic halo refresh (no-op serially)."""

    def complete_kinematics(self, state) -> None:
        """Finish the kinematic halo refresh (no-op serially)."""

    def post_node_sums(self, state, *partials: np.ndarray) -> None:
        """Start a nodal-sum completion (serially just remembers the
        partials, which already are the totals)."""
        self._pending_sums = partials

    def complete_node_sums(self, state) -> Tuple[np.ndarray, ...]:
        """Finish a posted nodal-sum completion (identity serially)."""
        partials = getattr(self, "_pending_sums", ())
        self._pending_sums = ()
        return partials

    def post_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Start a ghost-cell refresh of per-cell arrays (no-op)."""

    def complete_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Finish a posted ghost-cell refresh (no-op serially)."""

    def post_cell_fields(self, state) -> None:
        """Start the ghost-cell thermodynamic refresh (no-op)."""

    def complete_cell_fields(self, state) -> None:
        """Finish the ghost-cell thermodynamic refresh (no-op)."""


#: the formal name of the do-nothing endpoint in the backend registry
#: (``repro.parallel.interface`` nomenclature); same class, two names.
NullComms = SerialComms
