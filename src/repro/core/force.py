"""Corner-force assembly — BookLeaf's ``getforce`` kernel.

Everything that accelerates nodes is expressed as *corner forces*: an
(ncell, 4) pair of arrays giving the force each cell exerts on each of
its corners.  The compatible discretisation (Barlow 2008; paper Section
III-A) then uses the same corner forces twice — scattered to nodes for
the momentum equation (``getacc``) and dotted with nodal velocities for
the internal-energy equation (``getein``) — which is what makes total
energy conservation exact to round-off.

Contributions:

* cell pressure:   ``F_i = p ∂V/∂x_i``,
* artificial viscosity: the edge corner forces computed by ``getq``
  (a *separate* kernel, as in the paper's Algorithm 1 — ``getq`` is
  timed on its own and is the dominant cost in Table II).  A ``None``
  pair means "no viscous corner forces" (the bulk-viscosity form folds
  its q into the cell pressure instead) and skips the add entirely,
* hourglass control: :mod:`repro.core.hourglass` (both remedies
  optional via the controls).

With a :class:`~repro.perf.workspace.Workspace` the assembled forces
live in arena buffers (``force.fx``/``force.fy``) and every hourglass
temporary comes from the arena too, so repeat calls allocate nothing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from ..perf.plans import spread_corners
from ..perf.workspace import Workspace
from . import geometry, hourglass
from .controls import HydroControls


def pressure_forces(cx: np.ndarray, cy: np.ndarray, p: np.ndarray,
                    out: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                    ws: Optional[Workspace] = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Corner forces from a piecewise-constant cell pressure."""
    if ws is None and out is None:
        dvdx, dvdy = geometry.volume_gradients(cx, cy)
        return p[:, None] * dvdx, p[:, None] * dvdy
    fx, fy = geometry.volume_gradients(cx, cy, out=out, ws=ws)
    if ws is not None:
        sp = ws.borrow(fx.shape)
        spread_corners(p, sp)
        fx *= sp
        fy *= sp
        ws.release(sp)
    else:
        fx *= p[:, None]
        fy *= p[:, None]
    return fx, fy


def getforce(mesh: QuadMesh, cx: np.ndarray, cy: np.ndarray,
             u: np.ndarray, v: np.ndarray,
             p: np.ndarray, rho: np.ndarray, cs2: np.ndarray,
             fqx: Optional[np.ndarray], fqy: Optional[np.ndarray],
             corner_mass: np.ndarray, corner_volume: np.ndarray,
             volume: np.ndarray,
             controls: HydroControls,
             ws: Optional[Workspace] = None
             ) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble all corner forces at the given geometry and velocities.

    ``fqx, fqy`` are the viscous corner forces from a preceding ``getq``
    call, or ``None`` when the viscosity contributes no corner forces
    (the bulk form).  Returns ``(fx, fy)``, each (ncell, 4).
    """
    out = None
    if ws is not None:
        out = (ws.array("force.fx", (mesh.ncell, 4)),
               ws.array("force.fy", (mesh.ncell, 4)))
    fx, fy = pressure_forces(cx, cy, p, out=out, ws=ws)
    if fqx is not None:
        fx += fqx
        fy += fqy

    if controls.subzonal_kappa > 0.0:
        sx, sy = hourglass.subzonal_pressure_forces(
            cx, cy, corner_mass, corner_volume, rho, cs2,
            controls.subzonal_kappa, ws=ws,
        )
        fx += sx
        fy += sy
        if ws is not None:
            ws.release(sx, sy)
    if controls.filter_kappa > 0.0:
        if ws is not None:
            cu = ws.borrow((mesh.ncell, 4))
            cv = ws.borrow((mesh.ncell, 4))
            np.take(u, mesh.cell_nodes, out=cu, mode="clip")
            np.take(v, mesh.cell_nodes, out=cv, mode="clip")
        else:
            cu = u[mesh.cell_nodes]
            cv = v[mesh.cell_nodes]
        hx, hy = hourglass.hourglass_filter_forces(
            cu, cv, rho, cs2, volume, controls.filter_kappa, ws=ws
        )
        fx += hx
        fy += hy
        if ws is not None:
            ws.release(cu, cv, hx, hy)
    return fx, fy
