"""Corner-force assembly — BookLeaf's ``getforce`` kernel.

Everything that accelerates nodes is expressed as *corner forces*: an
(ncell, 4) pair of arrays giving the force each cell exerts on each of
its corners.  The compatible discretisation (Barlow 2008; paper Section
III-A) then uses the same corner forces twice — scattered to nodes for
the momentum equation (``getacc``) and dotted with nodal velocities for
the internal-energy equation (``getein``) — which is what makes total
energy conservation exact to round-off.

Contributions:

* cell pressure:   ``F_i = p ∂V/∂x_i``,
* artificial viscosity: the edge corner forces computed by ``getq``
  (a *separate* kernel, as in the paper's Algorithm 1 — ``getq`` is
  timed on its own and is the dominant cost in Table II),
* hourglass control: :mod:`repro.core.hourglass` (both remedies
  optional via the controls).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from . import geometry, hourglass
from .controls import HydroControls


def pressure_forces(cx: np.ndarray, cy: np.ndarray, p: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Corner forces from a piecewise-constant cell pressure."""
    dvdx, dvdy = geometry.volume_gradients(cx, cy)
    return p[:, None] * dvdx, p[:, None] * dvdy


def getforce(mesh: QuadMesh, cx: np.ndarray, cy: np.ndarray,
             u: np.ndarray, v: np.ndarray,
             p: np.ndarray, rho: np.ndarray, cs2: np.ndarray,
             fqx: np.ndarray, fqy: np.ndarray,
             corner_mass: np.ndarray, corner_volume: np.ndarray,
             volume: np.ndarray,
             controls: HydroControls
             ) -> Tuple[np.ndarray, np.ndarray]:
    """Assemble all corner forces at the given geometry and velocities.

    ``fqx, fqy`` are the viscous corner forces from a preceding ``getq``
    call.  Returns ``(fx, fy)``, each (ncell, 4).
    """
    fx, fy = pressure_forces(cx, cy, p)
    fx += fqx
    fy += fqy

    if controls.subzonal_kappa > 0.0:
        sx, sy = hourglass.subzonal_pressure_forces(
            cx, cy, corner_mass, corner_volume, rho, cs2,
            controls.subzonal_kappa,
        )
        fx += sx
        fy += sy
    if controls.filter_kappa > 0.0:
        cu = u[mesh.cell_nodes]
        cv = v[mesh.cell_nodes]
        hx, hy = hourglass.hourglass_filter_forces(
            cu, cv, rho, cs2, volume, controls.filter_kappa
        )
        fx += hx
        fy += hy
    return fx, fy
