"""Numerical control parameters (BookLeaf's global constants namelist).

One dataclass holds every tunable of the scheme: timestep safety
factors, artificial-viscosity coefficients, hourglass-control switches
and the ALE options.  Defaults follow the BookLeaf reference inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..utils.deck import Deck
from ..utils.errors import DeckError


@dataclass
class HydroControls:
    """Every numerical knob of the hydro scheme."""

    # --- time integration -------------------------------------------------
    time_start: float = 0.0
    time_end: float = 0.25
    dt_initial: float = 1.0e-5
    dt_min: float = 1.0e-12
    dt_max: float = 1.0e-1
    dt_growth: float = 1.02      #: max dt ratio between consecutive steps
    cfl_safety: float = 0.5      #: CFL safety factor (BookLeaf cfl_sf)
    div_safety: float = 0.25     #: volume-change limiter (BookLeaf div_sf)
    max_steps: int = 10_000_000

    # --- artificial viscosity (Caramana-Shashkov-Whalen) ------------------
    cq1: float = 0.5             #: linear coefficient (cl)
    cq2: float = 0.75            #: quadratic coefficient (cq)
    use_limiter: bool = True     #: Christiansen limiter on/off
    #: 'edge' (CSW, the BookLeaf reference form) or 'bulk'
    #: (von Neumann-Richtmyer cell-centred scalar)
    viscosity_form: str = "edge"

    # --- hourglass control -------------------------------------------------
    #: sub-zonal pressure strength (Caramana & Shashkov); 0 disables
    subzonal_kappa: float = 0.0
    #: Hancock-style hourglass velocity filter strength; 0 disables
    filter_kappa: float = 0.0

    # --- cutoffs ------------------------------------------------------------
    pcut: float = 1.0e-8         #: pressure snap-to-zero threshold
    ccut: float = 1.0e-9         #: sound-speed^2 floor
    dencut: float = 1.0e-6       #: density floor guard
    zcut: float = 1.0e-40        #: generic zero cutoff

    # --- ALE ------------------------------------------------------------
    ale_on: bool = False
    #: remap every N Lagrangian steps
    ale_every: int = 1
    #: 'eulerian' (back to initial mesh) or 'relax' (Winslow-type smoothing)
    ale_mode: str = "eulerian"
    #: under-relaxation factor for 'relax' mode mesh motion
    ale_relax: float = 0.25

    def validated(self) -> "HydroControls":
        """Raise :class:`DeckError` on inconsistent settings; returns self."""
        if self.time_end <= self.time_start:
            raise DeckError("time_end must exceed time_start")
        if not (0.0 < self.cfl_safety <= 1.0):
            raise DeckError(f"cfl_safety must be in (0, 1], got {self.cfl_safety}")
        if self.dt_initial <= 0.0 or self.dt_min <= 0.0 or self.dt_max <= 0.0:
            raise DeckError("dt_initial, dt_min, dt_max must be positive")
        if self.dt_growth < 1.0:
            raise DeckError("dt_growth must be >= 1")
        if self.cq1 < 0.0 or self.cq2 < 0.0:
            raise DeckError("viscosity coefficients must be non-negative")
        if self.viscosity_form not in ("edge", "bulk"):
            raise DeckError(
                f"unknown viscosity_form {self.viscosity_form!r}"
            )
        if self.ale_mode not in ("eulerian", "relax"):
            raise DeckError(f"unknown ale_mode {self.ale_mode!r}")
        if self.ale_every < 1:
            raise DeckError("ale_every must be >= 1")
        return self

    def with_(self, **kwargs) -> "HydroControls":
        """Functional update (``controls.with_(cfl_safety=0.3)``)."""
        return replace(self, **kwargs).validated()


def controls_from_deck(deck: Deck) -> HydroControls:
    """Build controls from the ``[CONTROL]`` and ``[ALE]`` deck sections."""
    control = deck.section("CONTROL")
    ale = deck.optional("ALE")
    base = HydroControls()
    kwargs = {}
    for key in (
        "time_start", "time_end", "dt_initial", "dt_min", "dt_max",
        "dt_growth", "cfl_safety", "div_safety", "max_steps", "cq1", "cq2",
        "use_limiter", "viscosity_form", "subzonal_kappa", "filter_kappa",
        "pcut", "ccut", "dencut", "zcut",
    ):
        if key in control:
            kwargs[key] = control.get(key)
    for key, name in (
        ("ale_on", "on"), ("ale_every", "every"),
        ("ale_mode", "mode"), ("ale_relax", "relax"),
    ):
        if name in ale:
            kwargs[key] = ale.get(name)
    return replace(base, **kwargs).validated()
