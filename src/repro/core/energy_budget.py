"""Energy bookkeeping: where every joule goes, step by step.

The compatible discretisation makes the energy flow *auditable*: the
corner forces do work −ΣF·ū on the cells and +ΣF·ū on the nodes, so
kinetic and internal changes cancel exactly, and any change of the
total is attributable to boundary work (piston faces, constrained
nodes) or to the remap.  :class:`EnergyBudget` is a
:class:`~repro.core.hydro.Hydro` observer that accumulates:

* ``d_kinetic``, ``d_internal`` — the realised changes,
* ``boundary_work`` — inferred work done *on* the gas through
  constrained nodes (the Saltzmann piston's energy source),
* ``remap_loss`` — kinetic energy dissipated by the upwinded momentum
  remap (ALE runs),
* ``closure_error`` — whatever is left, which must be round-off for a
  correct implementation (asserted by the tests).

It works by sampling total energies around each step, so it needs no
hooks inside the kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BudgetRow:
    """Energy accounting for one step."""

    nstep: int
    time: float
    kinetic: float
    internal: float
    total: float


@dataclass
class EnergyBudget:
    """Observer accumulating the run's energy ledger.

    Attach before running::

        budget = EnergyBudget.attach(hydro)
        hydro.run()
        print(budget.report())
    """

    rows: List[BudgetRow] = field(default_factory=list)
    initial_kinetic: float = 0.0
    initial_internal: float = 0.0

    @classmethod
    def attach(cls, hydro) -> "EnergyBudget":
        budget = cls(
            initial_kinetic=hydro.state.kinetic_energy(),
            initial_internal=hydro.state.internal_energy(),
        )
        budget.rows.append(BudgetRow(
            nstep=hydro.nstep, time=hydro.time,
            kinetic=budget.initial_kinetic,
            internal=budget.initial_internal,
            total=budget.initial_kinetic + budget.initial_internal,
        ))
        hydro.observers.append(budget)
        return budget

    def __call__(self, hydro) -> None:
        ke = hydro.state.kinetic_energy()
        ie = hydro.state.internal_energy()
        self.rows.append(BudgetRow(
            nstep=hydro.nstep, time=hydro.time,
            kinetic=ke, internal=ie, total=ke + ie,
        ))

    # ------------------------------------------------------------------
    @property
    def d_kinetic(self) -> float:
        return self.rows[-1].kinetic - self.rows[0].kinetic

    @property
    def d_internal(self) -> float:
        return self.rows[-1].internal - self.rows[0].internal

    @property
    def d_total(self) -> float:
        return self.rows[-1].total - self.rows[0].total

    def exchanged(self) -> float:
        """Gross KE<->IE exchange over the run (Σ |ΔIE| per step) — a
        measure of how much work the pressure/viscous forces did."""
        return sum(
            abs(b.internal - a.internal)
            for a, b in zip(self.rows, self.rows[1:])
        )

    def max_step_drift(self) -> float:
        """Largest single-step change of the total — for closed
        (wall-bounded, Lagrangian) problems this is the per-step
        conservation error and must be at round-off."""
        return max(
            (abs(b.total - a.total)
             for a, b in zip(self.rows, self.rows[1:])),
            default=0.0,
        )

    def report(self) -> str:
        first, last = self.rows[0], self.rows[-1]
        scale = max(abs(first.total), abs(last.total), 1e-300)
        lines = [
            "energy budget "
            f"(steps {first.nstep}..{last.nstep}, "
            f"t {first.time:.4g}..{last.time:.4g}):",
            f"  kinetic : {first.kinetic:14.8e} -> {last.kinetic:14.8e}"
            f"  (d={self.d_kinetic:+.3e})",
            f"  internal: {first.internal:14.8e} -> {last.internal:14.8e}"
            f"  (d={self.d_internal:+.3e})",
            f"  total   : {first.total:14.8e} -> {last.total:14.8e}"
            f"  (d={self.d_total:+.3e}, {self.d_total / scale:+.2e} rel)",
            f"  gross KE<->IE exchange: {self.exchanged():.3e}",
            f"  worst single-step drift: {self.max_step_drift():.3e}",
        ]
        return "\n".join(lines)

    def series(self) -> Dict[str, List[float]]:
        """Time series for plotting/regression."""
        return {
            "time": [r.time for r in self.rows],
            "kinetic": [r.kinetic for r in self.rows],
            "internal": [r.internal for r in self.rows],
            "total": [r.total for r in self.rows],
        }
