"""Hourglass-mode control (paper Section III-A).

A staggered quad mesh supports eight kinematic degrees of freedom but
the physics only has six; the two spurious "hourglass" (zero-energy)
modes must be suppressed.  BookLeaf implements both standard remedies
and so do we:

* **Sub-zonal pressures** (Caramana & Shashkov, JCP 142, 1998): the
  fixed corner masses define corner densities; when hourglass motion
  distorts corner volumes at constant cell volume, corner densities
  deviate from the cell density and the resulting pressure
  perturbations ``δp_i = κ c_s² (ρ_i^z − ρ_c)`` push back through the
  subzone volume gradients.  Because each subzone's gradients sum to
  zero over the cell's nodes, these forces conserve momentum exactly.

* **Hourglass filter** (after Hancock, PISCES 2DELK): a viscous damping
  force proportional to the hourglass velocity amplitude
  ``h = ¼ Σ Γ_i u_i`` with the mode vector Γ = (1, −1, 1, −1):
  ``F_i = −κ ρ c_s sqrt(V) Γ_i h``.  The Γ pattern is orthogonal to
  translation and linear deformation, so the filter leaves physical
  motion untouched, conserves momentum (Σ Γ = 0) and strictly
  dissipates (the work rate is ``−4 κ ρ c_s sqrt(V) |h|² ≤ 0``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..perf.plans import spread_corners
from ..perf.workspace import Workspace
from . import geometry


def subzonal_pressure_forces(cx: np.ndarray, cy: np.ndarray,
                             corner_mass: np.ndarray,
                             corner_volume: np.ndarray,
                             rho: np.ndarray, cs2: np.ndarray,
                             kappa: float,
                             ws: Optional[Workspace] = None
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Corner forces (ncell, 4) from the sub-zonal pressure deviations."""
    if ws is None:
        rho_z = corner_mass / np.maximum(corner_volume, 1e-300)
        dp = kappa * cs2[:, None] * (rho_z - rho[:, None])
        gradx, grady = geometry.subzone_volume_gradients(cx, cy)
        # F_j = Σ_i δp_i ∂V_i/∂x_j  — contract over the subzone axis.
        fx = np.einsum("ci,cij->cj", dp, gradx)
        fy = np.einsum("ci,cij->cj", dp, grady)
        return fx, fy
    w = ws
    ncell = cx.shape[0]
    # δp_i = κ c_s² (ρ_i^z − ρ_c) with ρ_i^z the corner density.
    dp = w.borrow(cx.shape)
    np.maximum(corner_volume, 1e-300, out=dp)
    np.divide(corner_mass, dp, out=dp)
    sp = w.borrow(cx.shape)
    spread_corners(rho, sp)
    dp -= sp
    tk = w.borrow(ncell)
    np.multiply(cs2, kappa, out=tk)
    spread_corners(tk, sp)
    dp *= sp
    w.release(sp)
    gradx, grady = geometry.subzone_volume_gradients(
        cx, cy,
        out=(w.borrow((ncell, 4, 4)), w.borrow((ncell, 4, 4))),
        ws=ws,
    )
    # F_j = Σ_i δp_i ∂V_i/∂x_j  — contract over the subzone axis.
    # The returned forces are borrowed buffers; the caller releases them.
    fx = np.einsum("ci,cij->cj", dp, gradx, out=w.borrow(cx.shape))
    fy = np.einsum("ci,cij->cj", dp, grady, out=w.borrow(cx.shape))
    w.release(dp, tk, gradx, grady)
    return fx, fy


#: the hourglass mode pattern on a quad's corners
GAMMA = np.array([1.0, -1.0, 1.0, -1.0])


def hourglass_filter_forces(cu: np.ndarray, cv: np.ndarray,
                            rho: np.ndarray, cs2: np.ndarray,
                            volume: np.ndarray,
                            kappa: float,
                            ws: Optional[Workspace] = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
    """Hancock-style damping forces (ncell, 4) on the corner velocities."""
    if ws is None:
        hu = 0.25 * (cu @ GAMMA)             # hourglass amplitudes (ncell,)
        hv = 0.25 * (cv @ GAMMA)
        coeff = (kappa * rho * np.sqrt(cs2)
                 * np.sqrt(np.maximum(volume, 0.0)))
        fx = -(coeff * hu)[:, None] * GAMMA[None, :]
        fy = -(coeff * hv)[:, None] * GAMMA[None, :]
        return fx, fy
    w = ws
    ncell = cu.shape[0]
    hu = w.borrow(ncell)                     # hourglass amplitudes (ncell,)
    hv = w.borrow(ncell)
    np.matmul(cu, GAMMA, out=hu)
    hu *= 0.25
    np.matmul(cv, GAMMA, out=hv)
    hv *= 0.25
    coeff = w.borrow(ncell)
    t = w.borrow(ncell)
    np.multiply(rho, kappa, out=coeff)
    np.sqrt(cs2, out=t)
    coeff *= t
    np.maximum(volume, 0.0, out=t)
    np.sqrt(t, out=t)
    coeff *= t
    hu *= coeff
    np.negative(hu, out=hu)
    hv *= coeff
    np.negative(hv, out=hv)
    # The returned forces are borrowed buffers; the caller releases them.
    # Outer product with Γ as 4 scalar column scalings (the broadcast
    # form would hit numpy's buffered-iterator allocation).
    fx = w.borrow(cu.shape)
    fy = w.borrow(cu.shape)
    spread_corners(hu, fx)
    spread_corners(hv, fy)
    for k in range(4):
        fx[:, k] *= GAMMA[k]
        fy[:, k] *= GAMMA[k]
    w.release(hu, hv, coeff, t)
    return fx, fy


def hourglass_amplitude(cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
    """Diagnostic |hourglass velocity| per cell (for tests/monitoring)."""
    hu = 0.25 * (cu @ GAMMA)
    hv = 0.25 * (cv @ GAMMA)
    return np.hypot(hu, hv)
