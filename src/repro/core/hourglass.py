"""Hourglass-mode control (paper Section III-A).

A staggered quad mesh supports eight kinematic degrees of freedom but
the physics only has six; the two spurious "hourglass" (zero-energy)
modes must be suppressed.  BookLeaf implements both standard remedies
and so do we:

* **Sub-zonal pressures** (Caramana & Shashkov, JCP 142, 1998): the
  fixed corner masses define corner densities; when hourglass motion
  distorts corner volumes at constant cell volume, corner densities
  deviate from the cell density and the resulting pressure
  perturbations ``δp_i = κ c_s² (ρ_i^z − ρ_c)`` push back through the
  subzone volume gradients.  Because each subzone's gradients sum to
  zero over the cell's nodes, these forces conserve momentum exactly.

* **Hourglass filter** (after Hancock, PISCES 2DELK): a viscous damping
  force proportional to the hourglass velocity amplitude
  ``h = ¼ Σ Γ_i u_i`` with the mode vector Γ = (1, −1, 1, −1):
  ``F_i = −κ ρ c_s sqrt(V) Γ_i h``.  The Γ pattern is orthogonal to
  translation and linear deformation, so the filter leaves physical
  motion untouched, conserves momentum (Σ Γ = 0) and strictly
  dissipates (the work rate is ``−4 κ ρ c_s sqrt(V) |h|² ≤ 0``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import geometry


def subzonal_pressure_forces(cx: np.ndarray, cy: np.ndarray,
                             corner_mass: np.ndarray,
                             corner_volume: np.ndarray,
                             rho: np.ndarray, cs2: np.ndarray,
                             kappa: float) -> Tuple[np.ndarray, np.ndarray]:
    """Corner forces (ncell, 4) from the sub-zonal pressure deviations."""
    rho_z = corner_mass / np.maximum(corner_volume, 1e-300)
    dp = kappa * cs2[:, None] * (rho_z - rho[:, None])   # (ncell, 4) per subzone i
    gradx, grady = geometry.subzone_volume_gradients(cx, cy)
    # F_j = Σ_i δp_i ∂V_i/∂x_j  — contract over the subzone axis.
    fx = np.einsum("ci,cij->cj", dp, gradx)
    fy = np.einsum("ci,cij->cj", dp, grady)
    return fx, fy


#: the hourglass mode pattern on a quad's corners
GAMMA = np.array([1.0, -1.0, 1.0, -1.0])


def hourglass_filter_forces(cu: np.ndarray, cv: np.ndarray,
                            rho: np.ndarray, cs2: np.ndarray,
                            volume: np.ndarray,
                            kappa: float) -> Tuple[np.ndarray, np.ndarray]:
    """Hancock-style damping forces (ncell, 4) on the corner velocities."""
    hu = 0.25 * (cu @ GAMMA)                 # hourglass amplitudes (ncell,)
    hv = 0.25 * (cv @ GAMMA)
    coeff = kappa * rho * np.sqrt(cs2) * np.sqrt(np.maximum(volume, 0.0))
    fx = -(coeff * hu)[:, None] * GAMMA[None, :]
    fy = -(coeff * hv)[:, None] * GAMMA[None, :]
    return fx, fy


def hourglass_amplitude(cu: np.ndarray, cv: np.ndarray) -> np.ndarray:
    """Diagnostic |hourglass velocity| per cell (for tests/monitoring)."""
    hu = 0.25 * (cu @ GAMMA)
    hv = 0.25 * (cv @ GAMMA)
    return np.hypot(hu, hv)
