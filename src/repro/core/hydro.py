"""The hydro driver — BookLeaf's main loop (Algorithm 1).

:class:`Hydro` owns a state, a material table and the controls, and
advances time with the predictor–corrector Lagrangian step plus the
optional ALE remap:

    loop:
        dt <- getdt()            (initial dt on the first step)
        lagstep(dt)
        if remap due: alestep()

Per-kernel timers accumulate across the run so ``timers.breakdown()``
prints the Table II-style summary at the end.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..eos.multimaterial import MaterialTable
from ..utils.log import StepLogger
from ..utils.timers import TimerRegistry
from .comms import SerialComms
from .controls import HydroControls
from .lagstep import lagstep
from .state import HydroState
from .timestep import getdt


class Hydro:
    """Time-marches one hydro problem to completion.

    Parameters
    ----------
    state:
        The initial :class:`HydroState` (consumed and advanced in place).
    table:
        Material table providing ``getpc``.
    controls:
        Numerical controls, including the ALE options.
    timers, logger, comms:
        Optional instrumentation and the communication seam; defaults
        are serial and quiet.  Attaching a telemetry tracer to
        ``timers`` (``timers.tracer = Tracer()``) additionally records
        the run → step → phase → kernel span hierarchy.
    remapper:
        Optional ALE remap object with an ``apply(state, dt)`` method;
        constructed automatically from the controls when ``ale_on``.
    plans, workspace:
        Optional :class:`~repro.perf.plans.MeshPlans` and
        :class:`~repro.perf.workspace.Workspace` threaded through every
        ``lagstep`` so the steady-state loop reuses arena buffers
        instead of allocating.  Defaults (``None``) keep the historical
        allocate-per-call behaviour.
    probe:
        Optional :class:`~repro.metrics.probe.DiagnosticsProbe` sampled
        by the step loop (live conservation/health monitoring).  The
        default (``None``) leaves the hot loop untouched beyond one
        ``is None`` check per step.
    """

    def __init__(self, state: HydroState, table: MaterialTable,
                 controls: HydroControls,
                 timers: Optional[TimerRegistry] = None,
                 logger: Optional[StepLogger] = None,
                 comms=None,
                 remapper=None,
                 plans=None,
                 workspace=None,
                 probe=None):
        self.state = state
        self.table = table
        self.controls = controls.validated()
        self.timers = timers if timers is not None else TimerRegistry()
        self.logger = logger if logger is not None else StepLogger(every=0)
        self.comms = comms if comms is not None else SerialComms()
        self.time = controls.time_start
        self.nstep = 0
        self.dt = controls.dt_initial
        self.dt_reason = "initial"
        self.dt_cell = -1
        self.gamma = table.gamma_like(state.mat)
        if remapper is None and controls.ale_on:
            # Imported here to avoid a core <-> ale import cycle.
            from ..ale.driver import AleStep

            remapper = AleStep.from_controls(state, controls, table)
        self.remapper = remapper
        self.plans = plans
        self.workspace = workspace
        self.probe = probe
        #: callbacks invoked after every step with (hydro,) — used by
        #: time-history output and tests
        self.observers: List[Callable[["Hydro"], None]] = []

    # ------------------------------------------------------------------
    def done(self) -> bool:
        """True once the simulation reached ``time_end``."""
        eps = 1e-12 * max(1.0, abs(self.controls.time_end))
        return self.time >= self.controls.time_end - eps

    def step(self) -> float:
        """Advance one timestep; returns the dt taken."""
        with self.timers.trace_span(f"step {self.nstep}",
                                    cat="step") as span:
            dt = self._step_impl()
            if span is not None:
                span.args.update(n=self.nstep, t=self.time, dt=self.dt,
                                 dt_reason=self.dt_reason)
        return dt

    def _step_impl(self) -> float:
        controls = self.controls
        if self.nstep == 0:
            remaining = controls.time_end - self.time
            self.dt = min(controls.dt_initial, remaining)
            self.dt_reason, self.dt_cell = "initial", -1
        else:
            with self.timers.region("getdt"):
                self.dt, self.dt_reason, self.dt_cell = getdt(
                    self.state, controls, self.dt, self.time, comms=self.comms
                )

        if self.state.bc.driver is not None:
            # Time-driven boundaries (e.g. the Kidder shell): prescribe
            # the end-of-step velocity so the corrector's commit lands
            # exactly on the driven value at t^{n+1} (the trapezoidal
            # x-update then integrates the boundary motion to second
            # order, matching the scheme).
            self.state.bc.advance(self.time + self.dt)

        with self.timers.trace_span("lagstep", cat="phase"):
            lagstep(
                self.state, self.table, controls, self.dt, self.timers,
                self.gamma, comms=self.comms, time=self.time,
                plans=self.plans, ws=self.workspace,
            )

        if (self.remapper is not None
                and (self.nstep + 1) % controls.ale_every == 0):
            with self.timers.region("alestep", cat="phase"):
                if self.workspace is not None:
                    self.remapper.apply(self.state, self.dt, self.timers,
                                        comms=self.comms, ws=self.workspace)
                else:
                    self.remapper.apply(self.state, self.dt, self.timers,
                                        comms=self.comms)

        self.time += self.dt
        self.nstep += 1
        self.logger.step(self.nstep, self.time, self.dt,
                         self.dt_reason, self.dt_cell)
        for observer in self.observers:
            observer(self)
        # Probed after the observers so a fault injected by an observer
        # is caught on the same step; the probe's own collectives are
        # safe because every rank samples on the same cadence.
        if self.probe is not None:
            self.probe.on_step(self)
        return self.dt

    def run(self, max_steps: Optional[int] = None) -> int:
        """March to ``time_end``; returns the number of steps taken."""
        limit = max_steps if max_steps is not None else self.controls.max_steps
        start = self.nstep
        if self.probe is not None:
            self.probe.begin(self)
        with self.timers.trace_span("run", cat="run") as span:
            while not self.done():
                if self.nstep - start >= limit:
                    break
                self.step()
            if span is not None:
                span.args.update(steps=self.nstep - start, t_end=self.time)
        if self.probe is not None:
            self.probe.finish(self)
        return self.nstep - start

    # ------------------------------------------------------------------
    def diagnostics(self) -> dict:
        """Conservation and extrema summary for logging and tests."""
        state = self.state
        momentum = state.momentum()
        return {
            "time": self.time,
            "nstep": self.nstep,
            "dt": self.dt,
            "mass": state.total_mass(),
            "internal_energy": state.internal_energy(),
            "kinetic_energy": state.kinetic_energy(),
            "total_energy": state.total_energy(),
            "momentum_x": float(momentum[0]),
            "momentum_y": float(momentum[1]),
            "rho_max": float(state.rho.max()),
            "rho_min": float(state.rho.min()),
            "p_max": float(state.p.max()),
        }
