"""The Lagrangian step — predictor/corrector orchestration.

Implements Algorithm 1 of the paper exactly, with each kernel wrapped
in the timer region whose name appears in Table II:

    Predictor:  getq, getforce, getgeom (half step), getrho, getein, getpc
    Corrector:  getq, getforce, getacc, getgeom (full step), getrho,
                getein, getpc

The predictor advances the *thermodynamic* state to the half step using
the start-of-step velocities (first-order); the corrector re-evaluates
the forces there, accelerates the nodes, and advances everything over
the full step with time-centred quantities (second-order overall).

Communications (ghost kinematics before the viscosity, nodal-sum
completion inside the acceleration) go through the ``comms`` seam, so
this very function body runs unchanged in serial and distributed mode.

Passing a :class:`~repro.perf.plans.MeshPlans` and a
:class:`~repro.perf.workspace.Workspace` makes the whole step reuse
arena buffers: after the first step every kernel temporary, every
half-step field and every returned array comes from the arena, and the
results are *committed* into the long-lived state arrays by copy (the
arena never leaks into the state).  Both arguments are optional and
independent; omitting them reproduces the allocating behaviour exactly.
The ``plans`` scatter shortcut is only taken on single-domain runs —
a decomposed run's nodal sums must complete through the comms seam.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..eos.multimaterial import MaterialTable
from ..perf.plans import MeshPlans
from ..perf.workspace import Workspace, scratch
from ..utils.timers import TimerRegistry
from . import energy as energy_mod
from . import geometry, viscosity
from .acceleration import getacc
from .comms import SerialComms
from .controls import HydroControls
from .density import getrho
from .force import getforce
from .state import HydroState


def _viscosity(mesh, cx, cy, u, v, rho, cs2, p, volume, gamma, controls,
               plans=None, ws=None):
    """Dispatch on the configured viscosity form.

    Returns ``(fqx, fqy, q_cell, p_effective)``: the edge form produces
    corner forces (p unchanged); the bulk form augments the cell
    pressure instead and returns ``fqx = fqy = None`` — no viscous
    corner forces, so ``getforce`` skips the add instead of summing a
    freshly-allocated pair of zero arrays.
    """
    if controls.viscosity_form == "bulk":
        w = scratch(ws)
        q_cell = viscosity.bulk_q(
            cx, cy, u, v, mesh.cell_nodes, rho, cs2, volume,
            controls.cq1, controls.cq2, ws=ws,
            out=w.array("lag.bulkq", mesh.ncell) if ws is not None else None,
        )
        if ws is not None:
            p_eff = w.array("lag.peff", mesh.ncell)
            np.add(p, q_cell, out=p_eff)
        else:
            p_eff = p + q_cell
        return None, None, q_cell, p_eff
    fqx, fqy, q_cell = viscosity.getq(
        mesh, cx, cy, u, v, rho, cs2, gamma,
        controls.cq1, controls.cq2, controls.use_limiter,
        plans=plans, ws=ws,
    )
    return fqx, fqy, q_cell, p


def _gather_overlapped(comms, state, mesh, cx, cy, timers) -> None:
    """Gather corner coordinates with the kinematic halo in flight.

    The CommPlan's compile-time partition splits the cells: while the
    neighbours' posts are still arriving, the full contiguous gather
    runs — the interior cells (all but an O(√ncell) strip) come out
    final, the halo cells come out stale; after
    ``complete_kinematics`` lands the ghost values, only the halo
    strip re-gathers (``plan.halo_nodes``, baked at compile time).
    Pure copies, last write wins per row — bit-identical to a blocking
    exchange followed by a full gather.
    """
    plan = comms.comm_plan()
    geometry.gather(mesh, state.x, state.y, out=(cx, cy))
    with timers.region("exchange"):
        comms.complete_kinematics(state)
    halo = plan.halo_cells
    cx[halo] = state.x[plan.halo_nodes]
    cy[halo] = state.y[plan.halo_nodes]


def lagstep(state: HydroState, table: MaterialTable,
            controls: HydroControls, dt: float,
            timers: TimerRegistry, gamma: np.ndarray,
            comms=None, time: Optional[float] = None,
            plans: Optional[MeshPlans] = None,
            ws: Optional[Workspace] = None) -> None:
    """Advance ``state`` in place by one Lagrangian step of size ``dt``."""
    comms = comms if comms is not None else SerialComms()
    mesh = state.mesh
    half = 0.5 * dt
    mask = comms.owned_cell_mask(state)
    w = scratch(ws)
    # Plans bypass the nodal-sum completion, which is only valid when
    # this rank owns every node (a single-domain run).
    acc_plans = plans if getattr(comms, "size", 1) == 1 else None

    # ------------------------------------------------------------------
    # predictor: evolve thermodynamics to the half step with u^n
    # ------------------------------------------------------------------
    overlap = comms.overlap_enabled()
    with timers.region("exchange"):
        if overlap:
            comms.post_kinematics(state)
        else:
            comms.exchange_kinematics(state)

    if ws is not None:
        cx = w.array("lag.cx", (mesh.ncell, 4))
        cy = w.array("lag.cy", (mesh.ncell, 4))
    else:
        cx = np.empty((mesh.ncell, 4))
        cy = np.empty((mesh.ncell, 4))
    if overlap:
        # Interior corners gather while the halo exchange is in flight
        _gather_overlapped(comms, state, mesh, cx, cy, timers)
    else:
        geometry.gather(mesh, state.x, state.y, out=(cx, cy))
    with timers.region("getq"):
        fqx, fqy, q_cell, p_eff = _viscosity(
            mesh, cx, cy, state.u, state.v, state.rho, state.cs2,
            state.p, state.volume, gamma, controls, plans=plans, ws=ws,
        )
        if ws is not None:
            np.copyto(state.q, q_cell)
        else:
            state.q = q_cell
    with timers.region("getforce"):
        fx, fy = getforce(
            mesh, cx, cy, state.u, state.v, p_eff, state.rho, state.cs2,
            fqx, fqy, state.corner_mass, state.corner_volume, state.volume,
            controls, ws=ws,
        )

    with timers.region("getgeom"):
        if ws is not None:
            x_h = w.array("lag.xh", mesh.nnode)
            y_h = w.array("lag.yh", mesh.nnode)
            np.multiply(state.u, half, out=x_h)
            x_h += state.x
            np.multiply(state.v, half, out=y_h)
            y_h += state.y
        else:
            x_h = state.x + half * state.u
            y_h = state.y + half * state.v
        cx_h, cy_h, vol_h, cvol_h = geometry.getgeom(
            mesh, x_h, y_h, time=time, check_mask=mask, ws=ws, tag="half"
        )

    with timers.region("getrho"):
        rho_h = getrho(
            state.cell_mass, vol_h, controls.dencut,
            out=w.array("lag.rhoh", mesh.ncell) if ws is not None else None,
        )
    with timers.region("getein"):
        e_h = energy_mod.getein(
            state, fx, fy, state.u, state.v, half, ws=ws,
            out=w.array("lag.eh", mesh.ncell) if ws is not None else None,
        )
    with timers.region("getpc"):
        p_h, cs2_h = table.getpc(
            state.mat, rho_h, e_h, ws=ws,
            out=(w.array("lag.ph", mesh.ncell),
                 w.array("lag.cs2h", mesh.ncell)) if ws is not None else None,
        )

    # ------------------------------------------------------------------
    # corrector: forces at the half step, full-step update
    # ------------------------------------------------------------------
    with timers.region("getq"):
        fqx, fqy, q_cell, p_eff_h = _viscosity(
            mesh, cx_h, cy_h, state.u, state.v, rho_h, cs2_h,
            p_h, vol_h, gamma, controls, plans=plans, ws=ws,
        )
        if ws is not None:
            np.copyto(state.q, q_cell)
        else:
            state.q = q_cell
    with timers.region("getforce"):
        fx, fy = getforce(
            mesh, cx_h, cy_h, state.u, state.v, p_eff_h, rho_h, cs2_h,
            fqx, fqy, state.corner_mass, cvol_h, vol_h,
            controls, ws=ws,
        )

    with timers.region("getacc"):
        u_new, v_new, u_bar, v_bar = getacc(
            state, fx, fy, dt, comms=comms, plans=acc_plans, ws=ws,
        )

    with timers.region("getgeom"):
        if ws is not None:
            move = w.array("lag.move", mesh.nnode)
            np.multiply(u_bar, dt, out=move)
            state.x += move
            np.multiply(v_bar, dt, out=move)
            state.y += move
            _, _, vol, cvol = geometry.getgeom(
                mesh, state.x, state.y, time=time, check_mask=mask,
                ws=ws, tag="full",
            )
            np.copyto(state.volume, vol)
            np.copyto(state.corner_volume, cvol)
        else:
            state.x += dt * u_bar
            state.y += dt * v_bar
            _, _, state.volume, state.corner_volume = geometry.getgeom(
                mesh, state.x, state.y, time=time, check_mask=mask
            )

    with timers.region("getrho"):
        if ws is not None:
            getrho(state.cell_mass, state.volume, controls.dencut,
                   out=state.rho)
        else:
            state.rho = getrho(state.cell_mass, state.volume, controls.dencut)
    with timers.region("getein"):
        if ws is not None:
            # out may alias state.e: the work term is fully accumulated
            # before the final elementwise subtraction.
            energy_mod.getein(state, fx, fy, u_bar, v_bar, dt, ws=ws,
                              out=state.e)
        else:
            state.e = energy_mod.getein(state, fx, fy, u_bar, v_bar, dt)
    with timers.region("getpc"):
        if ws is not None:
            table.getpc(state.mat, state.rho, state.e, ws=ws,
                        out=(state.p, state.cs2))
        else:
            state.p, state.cs2 = table.getpc(state.mat, state.rho, state.e)

    if ws is not None:
        np.copyto(state.u, u_new)
        np.copyto(state.v, v_new)
    else:
        state.u = u_new
        state.v = v_new
