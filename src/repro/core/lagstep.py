"""The Lagrangian step — predictor/corrector orchestration.

Implements Algorithm 1 of the paper exactly, with each kernel wrapped
in the timer region whose name appears in Table II:

    Predictor:  getq, getforce, getgeom (half step), getrho, getein, getpc
    Corrector:  getq, getforce, getacc, getgeom (full step), getrho,
                getein, getpc

The predictor advances the *thermodynamic* state to the half step using
the start-of-step velocities (first-order); the corrector re-evaluates
the forces there, accelerates the nodes, and advances everything over
the full step with time-centred quantities (second-order overall).

Communications (ghost kinematics before the viscosity, nodal-sum
completion inside the acceleration) go through the ``comms`` seam, so
this very function body runs unchanged in serial and distributed mode.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..eos.multimaterial import MaterialTable
from ..utils.timers import TimerRegistry
from . import energy as energy_mod
from . import geometry, viscosity
from .acceleration import getacc
from .comms import SerialComms
from .controls import HydroControls
from .density import getrho
from .force import getforce
from .state import HydroState


def _viscosity(mesh, cx, cy, u, v, rho, cs2, p, volume, gamma, controls):
    """Dispatch on the configured viscosity form.

    Returns ``(fqx, fqy, q_cell, p_effective)``: the edge form produces
    corner forces (p unchanged); the bulk form augments the cell
    pressure instead (zero viscous corner forces).
    """
    if controls.viscosity_form == "bulk":
        q_cell = viscosity.bulk_q(
            cx, cy, u, v, mesh.cell_nodes, rho, cs2, volume,
            controls.cq1, controls.cq2,
        )
        zeros = np.zeros((mesh.ncell, 4))
        return zeros, zeros, q_cell, p + q_cell
    fqx, fqy, q_cell = viscosity.getq(
        mesh, cx, cy, u, v, rho, cs2, gamma,
        controls.cq1, controls.cq2, controls.use_limiter,
    )
    return fqx, fqy, q_cell, p


def lagstep(state: HydroState, table: MaterialTable,
            controls: HydroControls, dt: float,
            timers: TimerRegistry, gamma: np.ndarray,
            comms=None, time: Optional[float] = None) -> None:
    """Advance ``state`` in place by one Lagrangian step of size ``dt``."""
    comms = comms if comms is not None else SerialComms()
    mesh = state.mesh
    half = 0.5 * dt
    mask = comms.owned_cell_mask(state)

    # ------------------------------------------------------------------
    # predictor: evolve thermodynamics to the half step with u^n
    # ------------------------------------------------------------------
    with timers.region("exchange"):
        comms.exchange_kinematics(state)

    cx, cy = geometry.gather(mesh, state.x, state.y)
    with timers.region("getq"):
        fqx, fqy, q_cell, p_eff = _viscosity(
            mesh, cx, cy, state.u, state.v, state.rho, state.cs2,
            state.p, state.volume, gamma, controls,
        )
        state.q = q_cell
    with timers.region("getforce"):
        fx, fy = getforce(
            mesh, cx, cy, state.u, state.v, p_eff, state.rho, state.cs2,
            fqx, fqy, state.corner_mass, state.corner_volume, state.volume,
            controls,
        )

    with timers.region("getgeom"):
        x_h = state.x + half * state.u
        y_h = state.y + half * state.v
        cx_h, cy_h, vol_h, cvol_h = geometry.getgeom(
            mesh, x_h, y_h, time=time, check_mask=mask
        )

    with timers.region("getrho"):
        rho_h = getrho(state.cell_mass, vol_h, controls.dencut)
    with timers.region("getein"):
        e_h = energy_mod.getein(state, fx, fy, state.u, state.v, half)
    with timers.region("getpc"):
        p_h, cs2_h = table.getpc(state.mat, rho_h, e_h)

    # ------------------------------------------------------------------
    # corrector: forces at the half step, full-step update
    # ------------------------------------------------------------------
    with timers.region("getq"):
        fqx, fqy, q_cell, p_eff_h = _viscosity(
            mesh, cx_h, cy_h, state.u, state.v, rho_h, cs2_h,
            p_h, vol_h, gamma, controls,
        )
        state.q = q_cell
    with timers.region("getforce"):
        fx, fy = getforce(
            mesh, cx_h, cy_h, state.u, state.v, p_eff_h, rho_h, cs2_h,
            fqx, fqy, state.corner_mass, cvol_h, vol_h,
            controls,
        )

    with timers.region("getacc"):
        u_new, v_new, u_bar, v_bar = getacc(state, fx, fy, dt, comms=comms)

    with timers.region("getgeom"):
        state.x += dt * u_bar
        state.y += dt * v_bar
        _, _, state.volume, state.corner_volume = geometry.getgeom(
            mesh, state.x, state.y, time=time, check_mask=mask
        )

    with timers.region("getrho"):
        state.rho = getrho(state.cell_mass, state.volume, controls.dencut)
    with timers.region("getein"):
        state.e = energy_mod.getein(state, fx, fy, u_bar, v_bar, dt)
    with timers.region("getpc"):
        state.p, state.cs2 = table.getpc(state.mat, state.rho, state.e)

    state.u = u_new
    state.v = v_new
