"""Edge-centred artificial viscosity — BookLeaf's ``getq`` kernel.

Follows Caramana, Shashkov & Whalen (JCP 144, 1998), the form the paper
cites: for every in-cell edge ``k`` (joining corners ``k`` and ``k+1``)
with velocity jump ``Δu`` the edge viscous pressure is

    q_k = (1 − ψ_k) ρ |Δu| ( c₂ (γ+1)/4 |Δu| + sqrt( (c₂ (γ+1)/4)² |Δu|²
                                                     + c₁² c_s² ) )

applied only where the edge is in compression (``Δu·Δx < 0``).  The
limiter ψ is Christiansen's: the velocity jump is compared with the
continuation jumps on the logically-parallel edges of the two
neighbouring cells (upstream and downstream of the edge), switching the
viscosity off in uniformly-compressing smooth flow and keeping it fully
on at shocks.  The neighbour lookups are why BookLeaf must halo-exchange
immediately before this kernel (paper Section IV-A).

The edge force on the two nodes is ``± q_k L_k û`` with ``û = Δu/|Δu|``
and ``L_k`` the median-mesh arm (centroid to edge midpoint), which
yields the correct face area for shocks aligned with either mesh
direction.  The pair of equal-and-opposite forces conserves momentum
exactly and — through the compatible energy update — converts kinetic
energy into heat at the rate ``q L |Δu| ≥ 0``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..mesh.topology import QuadMesh

#: velocity-jump magnitude below which an edge is treated as rigid
DU_CUT = 1.0e-30


def _continuation_jumps(mesh: QuadMesh, u: np.ndarray, v: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray, np.ndarray]:
    """Velocity jumps on the edges continuing each in-cell edge.

    For edge ``k`` of cell ``c`` (from corner ``k`` to ``k+1``):

    * the *backward* continuation lives in the neighbour ``l`` across
      side ``k−1`` and equals ``u_{l,s_l} − u_{l,s_l+3}`` (``s_l`` the
      side of ``l`` facing back), ending on our corner ``k``;
    * the *forward* continuation lives in the neighbour ``r`` across
      side ``k+1`` and equals ``u_{r,s_r+2} − u_{r,s_r+1}``, starting on
      our corner ``k+1``.

    Both are oriented to match the direction of edge ``k``.  Returns
    ``(bx, by, has_b, fx, fy, has_f)`` each of shape (ncell, 4).
    """
    nb = mesh.cell_neighbours
    ns = mesh.neighbour_side
    cn = mesh.cell_nodes

    lcell = np.roll(nb, 1, axis=1)          # neighbour across side k-1
    lside = np.roll(ns, 1, axis=1)
    rcell = np.roll(nb, -1, axis=1)         # neighbour across side k+1
    rside = np.roll(ns, -1, axis=1)
    has_b = lcell >= 0
    has_f = rcell >= 0
    lc = np.where(has_b, lcell, 0)
    ls = np.where(has_b, lside, 0)
    rc = np.where(has_f, rcell, 0)
    rs = np.where(has_f, rside, 0)

    n_b1 = cn[lc, ls]                        # node at our corner k
    n_b0 = cn[lc, (ls + 3) % 4]
    n_f1 = cn[rc, (rs + 2) % 4]
    n_f0 = cn[rc, (rs + 1) % 4]              # node at our corner k+1

    bx = u[n_b1] - u[n_b0]
    by = v[n_b1] - v[n_b0]
    fx = u[n_f1] - u[n_f0]
    fy = v[n_f1] - v[n_f0]
    return bx, by, has_b, fx, fy, has_f


def christiansen_limiter(mesh: QuadMesh, u: np.ndarray, v: np.ndarray,
                         dux: np.ndarray, duy: np.ndarray,
                         dumag_sq: np.ndarray) -> np.ndarray:
    """Limiter ψ in [0, 1]: 1 in smooth flow (no viscosity), 0 at shocks.

    ψ = max(0, min(½(r_b + r_f), 2 r_b, 2 r_f, 1)) with r the ratios of
    the continuation jumps projected onto this edge's jump.  Edges whose
    continuation is missing (mesh boundary) take ψ = 0, keeping full
    viscosity where shocks meet walls.
    """
    bx, by, has_b, fx, fy, has_f = _continuation_jumps(mesh, u, v)
    denom = np.maximum(dumag_sq, DU_CUT * DU_CUT)
    rb = (bx * dux + by * duy) / denom
    rf = (fx * dux + fy * duy) / denom
    psi = np.minimum(0.5 * (rb + rf), np.minimum(2.0 * rb, 2.0 * rf))
    psi = np.clip(np.minimum(psi, 1.0), 0.0, 1.0)
    psi[~(has_b & has_f)] = 0.0
    return psi


def bulk_q(cx: np.ndarray, cy: np.ndarray,
           u: np.ndarray, v: np.ndarray, cell_nodes: np.ndarray,
           rho: np.ndarray, cs2: np.ndarray, volume: np.ndarray,
           cq1: float, cq2: float) -> np.ndarray:
    """Cell-centred von Neumann–Richtmyer (bulk) viscosity.

    The classical alternative to the edge form:

        q = cq2 ρ (Δ div u)² + cq1 ρ c_s |Δ div u|,   div u < 0 only,

    with Δ = V / longest-side — the shortest cell dimension, the
    distance over which a compression wave actually crosses the cell
    (a geometric-mean sqrt(V) badly over-drives high-aspect cells).
    A scalar cell pressure — it simply augments p in the corner
    forces, so it cannot damp hourglass or shear modes (why BookLeaf's
    reference uses the edge form); provided as a design-choice option
    and used by the viscosity-form ablation tests.
    """
    dvdx = 0.5 * (np.roll(cy, -1, axis=1) - np.roll(cy, 1, axis=1))
    dvdy = 0.5 * (np.roll(cx, 1, axis=1) - np.roll(cx, -1, axis=1))
    cu = u[cell_nodes]
    cv = v[cell_nodes]
    vdot = np.einsum("ck,ck->c", dvdx, cu) + np.einsum("ck,ck->c", dvdy, cv)
    div_u = vdot / volume
    compressing = div_u < 0.0
    ex = np.roll(cx, -1, axis=1) - cx
    ey = np.roll(cy, -1, axis=1) - cy
    longest = np.sqrt((ex * ex + ey * ey).max(axis=1))
    du = (volume / longest) * np.abs(div_u)
    q = cq2 * rho * du * du + cq1 * rho * np.sqrt(cs2) * du
    return np.where(compressing, q, 0.0)


def getq(mesh: QuadMesh, cx: np.ndarray, cy: np.ndarray,
         u: np.ndarray, v: np.ndarray,
         rho: np.ndarray, cs2: np.ndarray, gamma: np.ndarray,
         cq1: float, cq2: float, use_limiter: bool = True
         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The viscosity kernel.

    Parameters are the gathered corner coordinates ``cx, cy`` (ncell, 4),
    nodal velocities, cell density/sound-speed² and the per-cell
    effective γ for the quadratic coefficient.

    Returns ``(fqx, fqy, q_cell)``: viscous corner forces (ncell, 4) and
    the cell-averaged viscous pressure used by the timestep control and
    diagnostics.
    """
    cu = u[mesh.cell_nodes]
    cv = v[mesh.cell_nodes]
    dux = np.roll(cu, -1, axis=1) - cu      # edge velocity jumps
    duy = np.roll(cv, -1, axis=1) - cv
    dxx = np.roll(cx, -1, axis=1) - cx      # edge vectors
    dxy = np.roll(cy, -1, axis=1) - cy
    dumag_sq = dux * dux + duy * duy
    dumag = np.sqrt(dumag_sq)
    compressing = (dux * dxx + duy * dxy) < 0.0
    active = compressing & (dumag > DU_CUT)

    if use_limiter:
        psi = christiansen_limiter(mesh, u, v, dux, duy, dumag_sq)
    else:
        psi = np.zeros_like(dumag)

    cquad = cq2 * (gamma[:, None] + 1.0) * 0.25
    cs = np.sqrt(cs2)[:, None]
    q_edge = (1.0 - psi) * rho[:, None] * dumag * (
        cquad * dumag + np.sqrt((cquad * dumag) ** 2 + (cq1 * cs) ** 2)
    )
    q_edge = np.where(active, q_edge, 0.0)

    # Median arm: centroid to edge midpoint.
    gx = cx.mean(axis=1, keepdims=True)
    gy = cy.mean(axis=1, keepdims=True)
    mx = 0.5 * (cx + np.roll(cx, -1, axis=1))
    my = 0.5 * (cy + np.roll(cy, -1, axis=1))
    arm = np.hypot(mx - gx, my - gy)

    # Unit jump direction (guarded); force ±q L û on the edge's nodes.
    inv = 1.0 / np.maximum(dumag, DU_CUT)
    fx_edge = q_edge * arm * dux * inv
    fy_edge = q_edge * arm * duy * inv
    # node k gets +f (pushed along Δu, i.e. decelerating node k relative
    # to k+1), node k+1 gets −f.
    fqx = fx_edge - np.roll(fx_edge, 1, axis=1)
    fqy = fy_edge - np.roll(fy_edge, 1, axis=1)

    q_cell = 0.25 * q_edge.sum(axis=1)
    return fqx, fqy, q_cell
