"""Edge-centred artificial viscosity — BookLeaf's ``getq`` kernel.

Follows Caramana, Shashkov & Whalen (JCP 144, 1998), the form the paper
cites: for every in-cell edge ``k`` (joining corners ``k`` and ``k+1``)
with velocity jump ``Δu`` the edge viscous pressure is

    q_k = (1 − ψ_k) ρ |Δu| ( c₂ (γ+1)/4 |Δu| + sqrt( (c₂ (γ+1)/4)² |Δu|²
                                                     + c₁² c_s² ) )

applied only where the edge is in compression (``Δu·Δx < 0``).  The
limiter ψ is Christiansen's: the velocity jump is compared with the
continuation jumps on the logically-parallel edges of the two
neighbouring cells (upstream and downstream of the edge), switching the
viscosity off in uniformly-compressing smooth flow and keeping it fully
on at shocks.  The neighbour lookups are why BookLeaf must halo-exchange
immediately before this kernel (paper Section IV-A).

The edge force on the two nodes is ``± q_k L_k û`` with ``û = Δu/|Δu|``
and ``L_k`` the median-mesh arm (centroid to edge midpoint), which
yields the correct face area for shocks aligned with either mesh
direction.  The pair of equal-and-opposite forces conserves momentum
exactly and — through the compatible energy update — converts kinetic
energy into heat at the rate ``q L |Δu| ≥ 0``.

This is the hottest kernel of the mini-app (Table II), so it takes the
full performance treatment: a :class:`~repro.perf.plans.MeshPlans`
supplies the limiter's static neighbour-node indices (hoisted out of
the per-step path), and a :class:`~repro.perf.workspace.Workspace`
supplies every temporary, making repeat calls allocation-free.  Without
a workspace the historical allocate-per-call expressions run unchanged;
both paths perform the same floating operations in the same
association, so their results are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from ..perf.plans import (MeshPlans, limiter_indices, roll_next, roll_prev,
                          spread_corners)
from ..perf.workspace import Workspace

#: velocity-jump magnitude below which an edge is treated as rigid
DU_CUT = 1.0e-30


def christiansen_limiter(mesh: QuadMesh, u: np.ndarray, v: np.ndarray,
                         dux: np.ndarray, duy: np.ndarray,
                         dumag_sq: np.ndarray,
                         plans: Optional[MeshPlans] = None,
                         ws: Optional[Workspace] = None) -> np.ndarray:
    """Limiter ψ in [0, 1]: 1 in smooth flow (no viscosity), 0 at shocks.

    ψ = max(0, min(½(r_b + r_f), 2 r_b, 2 r_f, 1)) with r the ratios of
    the continuation jumps projected onto this edge's jump.  Edges whose
    continuation is missing (mesh boundary) take ψ = 0, keeping full
    viscosity where shocks meet walls.

    The continuation-edge node indices depend only on connectivity; a
    ``plans`` object supplies them precomputed, otherwise they are
    rebuilt on the fly (the historical behaviour).
    """
    if plans is not None:
        n_b1, n_b0 = plans.lim_n_b1, plans.lim_n_b0
        n_f1, n_f0 = plans.lim_n_f1, plans.lim_n_f0
        off = plans.lim_off
    else:
        n_b1, n_b0, n_f1, n_f0, off = limiter_indices(mesh)
    if ws is None:
        bx = u[n_b1] - u[n_b0]
        by = v[n_b1] - v[n_b0]
        fx = u[n_f1] - u[n_f0]
        fy = v[n_f1] - v[n_f0]
        denom = np.maximum(dumag_sq, DU_CUT * DU_CUT)
        rb = (bx * dux + by * duy) / denom
        rf = (fx * dux + fy * duy) / denom
        psi = np.minimum(0.5 * (rb + rf), np.minimum(2.0 * rb, 2.0 * rf))
        psi = np.clip(np.minimum(psi, 1.0), 0.0, 1.0)
        psi[off] = 0.0
        return psi
    shape = dux.shape
    t = ws.borrow(shape)
    bx = ws.borrow(shape)                    # backward continuation jump
    np.take(u, n_b1, out=bx, mode="clip")
    np.take(u, n_b0, out=t, mode="clip")
    bx -= t
    by = ws.borrow(shape)
    np.take(v, n_b1, out=by, mode="clip")
    np.take(v, n_b0, out=t, mode="clip")
    by -= t
    fx = ws.borrow(shape)                    # forward continuation jump
    np.take(u, n_f1, out=fx, mode="clip")
    np.take(u, n_f0, out=t, mode="clip")
    fx -= t
    fy = ws.borrow(shape)
    np.take(v, n_f1, out=fy, mode="clip")
    np.take(v, n_f0, out=t, mode="clip")
    fy -= t

    denom = ws.borrow(shape)
    np.maximum(dumag_sq, DU_CUT * DU_CUT, out=denom)
    rb = bx                                  # reuse: projected ratios
    np.multiply(bx, dux, out=rb)
    np.multiply(by, duy, out=t)
    rb += t
    rb /= denom
    rf = fx
    np.multiply(fx, dux, out=rf)
    np.multiply(fy, duy, out=t)
    rf += t
    rf /= denom

    psi = ws.borrow(shape)                   # released by the caller
    np.add(rb, rf, out=psi)                  # ½(r_b + r_f)
    psi *= 0.5
    np.multiply(rb, 2.0, out=rb)
    np.multiply(rf, 2.0, out=rf)
    np.minimum(rb, rf, out=t)
    np.minimum(psi, t, out=psi)
    np.minimum(psi, 1.0, out=psi)
    np.clip(psi, 0.0, 1.0, out=psi)
    np.copyto(psi, 0.0, where=off)
    ws.release(t, bx, by, fx, fy, denom)
    return psi


def bulk_q(cx: np.ndarray, cy: np.ndarray,
           u: np.ndarray, v: np.ndarray, cell_nodes: np.ndarray,
           rho: np.ndarray, cs2: np.ndarray, volume: np.ndarray,
           cq1: float, cq2: float,
           ws: Optional[Workspace] = None,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Cell-centred von Neumann–Richtmyer (bulk) viscosity.

    The classical alternative to the edge form:

        q = cq2 ρ (Δ div u)² + cq1 ρ c_s |Δ div u|,   div u < 0 only,

    with Δ = V / longest-side — the shortest cell dimension, the
    distance over which a compression wave actually crosses the cell
    (a geometric-mean sqrt(V) badly over-drives high-aspect cells).
    A scalar cell pressure — it simply augments p in the corner
    forces, so it cannot damp hourglass or shear modes (why BookLeaf's
    reference uses the edge form); provided as a design-choice option
    and used by the viscosity-form ablation tests.
    """
    if ws is None:
        dvdx = 0.5 * (np.roll(cy, -1, axis=1) - np.roll(cy, 1, axis=1))
        dvdy = 0.5 * (np.roll(cx, 1, axis=1) - np.roll(cx, -1, axis=1))
        cu = u[cell_nodes]
        cv = v[cell_nodes]
        vdot = (np.einsum("ck,ck->c", dvdx, cu)
                + np.einsum("ck,ck->c", dvdy, cv))
        div_u = vdot / volume
        compressing = div_u < 0.0
        ex = np.roll(cx, -1, axis=1) - cx
        ey = np.roll(cy, -1, axis=1) - cy
        longest = np.sqrt((ex * ex + ey * ey).max(axis=1))
        du = (volume / longest) * np.abs(div_u)
        q = cq2 * rho * du * du + cq1 * rho * np.sqrt(cs2) * du
        result = np.where(compressing, q, 0.0)
        if out is None:
            return result
        np.copyto(out, result)
        return out
    ncell = cx.shape[0]
    dvdx = ws.borrow(cx.shape)
    dvdy = ws.borrow(cx.shape)
    t4 = ws.borrow(cx.shape)
    roll_next(cy, out=dvdx)
    roll_prev(cy, out=t4)
    dvdx -= t4
    dvdx *= 0.5
    roll_prev(cx, out=dvdy)
    roll_next(cx, out=t4)
    dvdy -= t4
    dvdy *= 0.5
    cu = ws.borrow(cx.shape)
    cv = ws.borrow(cx.shape)
    np.take(u, cell_nodes, out=cu, mode="clip")
    np.take(v, cell_nodes, out=cv, mode="clip")
    div_u = ws.borrow(ncell)
    t = ws.borrow(ncell)
    np.einsum("ck,ck->c", dvdx, cu, out=div_u)
    np.einsum("ck,ck->c", dvdy, cv, out=t)
    div_u += t
    div_u /= volume
    ws.release(cu, cv)
    compressing = ws.borrow(ncell, dtype=bool)
    np.less(div_u, 0.0, out=compressing)
    ex = dvdx                                # reuse for edge vectors
    ey = dvdy
    roll_next(cx, out=ex)
    ex -= cx
    roll_next(cy, out=ey)
    ey -= cy
    ex *= ex
    ey *= ey
    ex += ey
    longest = t
    np.max(ex, axis=1, out=longest)
    np.sqrt(longest, out=longest)
    du = ws.borrow(ncell)
    np.divide(volume, longest, out=du)
    np.abs(div_u, out=div_u)
    du *= div_u
    if out is None:
        out = np.empty(ncell)
    # q = cq2 ρ du² + cq1 ρ c_s du, only where compressing.
    np.multiply(rho, cq2, out=out)
    out *= du
    out *= du
    cs = t
    np.sqrt(cs2, out=cs)
    cs *= rho
    cs *= cq1
    cs *= du
    out += cs
    np.copyto(out, 0.0, where=~compressing)
    ws.release(dvdx, dvdy, t4, div_u, t, du, compressing)
    return out


def _getq_plain(mesh: QuadMesh, cx: np.ndarray, cy: np.ndarray,
                u: np.ndarray, v: np.ndarray,
                rho: np.ndarray, cs2: np.ndarray, gamma: np.ndarray,
                cq1: float, cq2: float, use_limiter: bool,
                plans: Optional[MeshPlans]
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The historical allocate-per-call ``getq`` body."""
    cu = u[mesh.cell_nodes]
    cv = v[mesh.cell_nodes]
    dux = np.roll(cu, -1, axis=1) - cu      # edge velocity jumps
    duy = np.roll(cv, -1, axis=1) - cv
    dxx = np.roll(cx, -1, axis=1) - cx      # edge vectors
    dxy = np.roll(cy, -1, axis=1) - cy
    dumag_sq = dux * dux + duy * duy
    dumag = np.sqrt(dumag_sq)
    compressing = (dux * dxx + duy * dxy) < 0.0
    active = compressing & (dumag > DU_CUT)

    if use_limiter:
        psi = christiansen_limiter(mesh, u, v, dux, duy, dumag_sq,
                                   plans=plans)
    else:
        psi = np.zeros_like(dumag)

    cquad = cq2 * (gamma[:, None] + 1.0) * 0.25
    cs = np.sqrt(cs2)[:, None]
    q_edge = (1.0 - psi) * rho[:, None] * dumag * (
        cquad * dumag + np.sqrt((cquad * dumag) ** 2 + (cq1 * cs) ** 2)
    )
    q_edge = np.where(active, q_edge, 0.0)

    # Median arm: centroid to edge midpoint.
    gx = cx.mean(axis=1, keepdims=True)
    gy = cy.mean(axis=1, keepdims=True)
    mx = 0.5 * (cx + np.roll(cx, -1, axis=1))
    my = 0.5 * (cy + np.roll(cy, -1, axis=1))
    arm = np.hypot(mx - gx, my - gy)

    # Unit jump direction (guarded); force ±q L û on the edge's nodes.
    inv = 1.0 / np.maximum(dumag, DU_CUT)
    fx_edge = q_edge * arm * dux * inv
    fy_edge = q_edge * arm * duy * inv
    # node k gets +f (pushed along Δu, i.e. decelerating node k relative
    # to k+1), node k+1 gets −f.
    fqx = fx_edge - np.roll(fx_edge, 1, axis=1)
    fqy = fy_edge - np.roll(fy_edge, 1, axis=1)

    q_cell = 0.25 * q_edge.sum(axis=1)
    return fqx, fqy, q_cell


def getq(mesh: QuadMesh, cx: np.ndarray, cy: np.ndarray,
         u: np.ndarray, v: np.ndarray,
         rho: np.ndarray, cs2: np.ndarray, gamma: np.ndarray,
         cq1: float, cq2: float, use_limiter: bool = True,
         plans: Optional[MeshPlans] = None,
         ws: Optional[Workspace] = None
         ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The viscosity kernel.

    Parameters are the gathered corner coordinates ``cx, cy`` (ncell, 4),
    nodal velocities, cell density/sound-speed² and the per-cell
    effective γ for the quadratic coefficient.

    Returns ``(fqx, fqy, q_cell)``: viscous corner forces (ncell, 4) and
    the cell-averaged viscous pressure used by the timestep control and
    diagnostics.  With a workspace the three results live in arena
    buffers (``getq.*``) that the next ``getq`` call reuses.
    """
    if ws is None:
        return _getq_plain(mesh, cx, cy, u, v, rho, cs2, gamma,
                           cq1, cq2, use_limiter, plans)
    ncell = mesh.ncell
    shape = (ncell, 4)
    cu = ws.borrow(shape)
    cv = ws.borrow(shape)
    np.take(u, mesh.cell_nodes, out=cu, mode="clip")
    np.take(v, mesh.cell_nodes, out=cv, mode="clip")
    dux = ws.borrow(shape)                   # edge velocity jumps
    duy = ws.borrow(shape)
    roll_next(cu, out=dux)
    dux -= cu
    roll_next(cv, out=duy)
    duy -= cv
    ws.release(cu, cv)
    dxx = ws.borrow(shape)                   # edge vectors
    dxy = ws.borrow(shape)
    roll_next(cx, out=dxx)
    dxx -= cx
    roll_next(cy, out=dxy)
    dxy -= cy
    t = ws.borrow(shape)
    dumag_sq = ws.borrow(shape)
    np.multiply(dux, dux, out=dumag_sq)
    np.multiply(duy, duy, out=t)
    dumag_sq += t
    dumag = ws.borrow(shape)
    np.sqrt(dumag_sq, out=dumag)
    # Compression test Δu·Δx < 0, and the rigid-edge cut.
    np.multiply(dux, dxx, out=t)
    np.multiply(duy, dxy, out=dxx)           # dxx consumed; reuse
    t += dxx
    active = ws.borrow(shape, dtype=bool)
    tb = ws.borrow(shape, dtype=bool)
    np.less(t, 0.0, out=active)
    np.greater(dumag, DU_CUT, out=tb)
    active &= tb
    ws.release(dxx, dxy, t)

    if use_limiter:
        psi = christiansen_limiter(mesh, u, v, dux, duy, dumag_sq,
                                   plans=plans, ws=ws)
    else:
        psi = ws.borrow(shape)
        psi.fill(0.0)
    ws.release(dumag_sq)

    # q_edge = (1−ψ) ρ |Δu| (c₂' |Δu| + sqrt((c₂' |Δu|)² + (c₁ c_s)²)).
    cquad = ws.borrow(ncell)
    np.add(gamma, 1.0, out=cquad)
    cquad *= cq2
    cquad *= 0.25
    cs = ws.borrow(ncell)
    np.sqrt(cs2, out=cs)
    sp = ws.borrow(shape)                    # spread per-cell operands
    i1 = ws.borrow(shape)                    # c₂' |Δu|
    spread_corners(cquad, sp)
    np.multiply(dumag, sp, out=i1)
    i2 = ws.borrow(shape)
    np.multiply(i1, i1, out=i2)
    tq = ws.borrow(ncell)                    # (c₁ c_s)²
    np.multiply(cs, cq1, out=tq)
    tq *= tq
    spread_corners(tq, sp)
    i2 += sp
    np.sqrt(i2, out=i2)
    i2 += i1
    q_edge = ws.borrow(shape)
    np.subtract(1.0, psi, out=q_edge)
    spread_corners(rho, sp)
    q_edge *= sp
    q_edge *= dumag
    q_edge *= i2
    np.logical_not(active, out=tb)
    np.copyto(q_edge, 0.0, where=tb)
    ws.release(psi, cquad, cs, i1, i2, tq, active, tb)

    # Median arm: centroid to edge midpoint.
    gx = ws.borrow(ncell)
    gy = ws.borrow(ncell)
    np.mean(cx, axis=1, out=gx)
    np.mean(cy, axis=1, out=gy)
    mx = ws.borrow(shape)
    my = ws.borrow(shape)
    roll_next(cx, out=mx)
    mx += cx
    mx *= 0.5
    roll_next(cy, out=my)
    my += cy
    my *= 0.5
    spread_corners(gx, sp)
    mx -= sp
    spread_corners(gy, sp)
    my -= sp
    arm = ws.borrow(shape)
    np.hypot(mx, my, out=arm)
    ws.release(gx, gy, mx, my, sp)

    # Unit jump direction (guarded); force ±q L û on the edge's nodes.
    # Association matches the unbuffered ((q·L)·Δu)·inv so the two
    # paths stay bit-identical.
    inv = ws.borrow(shape)
    np.maximum(dumag, DU_CUT, out=inv)
    np.divide(1.0, inv, out=inv)
    qarm = arm                               # reuse: q L
    np.multiply(q_edge, arm, out=qarm)
    fx_edge = ws.borrow(shape)
    np.multiply(qarm, dux, out=fx_edge)
    fx_edge *= inv
    fy_edge = ws.borrow(shape)
    np.multiply(qarm, duy, out=fy_edge)
    fy_edge *= inv
    ws.release(qarm, inv, dux, duy, dumag)
    # node k gets +f (pushed along Δu, i.e. decelerating node k relative
    # to k+1), node k+1 gets −f.
    fqx = ws.array("getq.fqx", shape)
    roll_prev(fx_edge, out=fqx)
    np.subtract(fx_edge, fqx, out=fqx)
    fqy = ws.array("getq.fqy", shape)
    roll_prev(fy_edge, out=fqy)
    np.subtract(fy_edge, fqy, out=fqy)
    ws.release(fx_edge, fy_edge)

    q_cell = ws.array("getq.qcell", ncell)
    np.sum(q_edge, axis=1, out=q_cell)
    q_cell *= 0.25
    ws.release(q_edge)
    return fqx, fqy, q_cell
