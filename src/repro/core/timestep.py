"""Timestep control — BookLeaf's ``getdt``.

The explicit scheme needs a stable dt each step.  Four constraints
compete and the reason (plus controlling cell) is reported, exactly as
the Fortran code prints it:

* ``cfl``    — acoustic CFL: ``dt = f_cfl · min_c l_c / c_eff`` with
  ``c_eff² = c_s² + 2 q/ρ`` (the viscous correction keeps shocks
  stable) and ``l_c`` the shortest cell dimension,
* ``div``    — volume-change limit: ``dt = f_div / max_c |V̇/V|``,
* ``growth`` — ``dt ≤ growth · dt_prev`` (smooth ramp-up),
* ``max``    — the absolute cap; plus ``end`` when the remaining time
  to ``time_end`` is shorter than everything else.

In the distributed code this is the *single global reduction* per step
the paper mentions: each rank computes its local minimum and the
reduction takes the global one.  :func:`local_dt_candidates` exposes
the per-rank part so the parallel driver can do exactly that.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..utils.errors import TimestepCollapseError
from . import geometry
from .controls import HydroControls
from .state import HydroState

Candidate = Tuple[float, str, int]


def local_dt_candidates(state: HydroState, controls: HydroControls,
                        mask: Optional[np.ndarray] = None
                        ) -> List[Candidate]:
    """CFL and divergence candidates ``(dt, reason, cell)`` for this domain.

    ``mask`` restricts the reductions to owned cells in a decomposed
    run (ghost cells carry locally-meaningless thermodynamics).
    """
    cx, cy = geometry.gather(state.mesh, state.x, state.y)
    volume = state.volume

    # CFL: l² / c_eff², with the viscous augmentation of the wave speed.
    l_sq = geometry.cfl_length_sq(cx, cy, volume)
    c_eff_sq = state.cs2 + 2.0 * state.q / np.maximum(state.rho, controls.dencut)
    ratio = l_sq / np.maximum(c_eff_sq, controls.ccut)
    if mask is not None:
        ratio = np.where(mask, ratio, np.inf)
    icfl = int(np.argmin(ratio))
    dt_cfl = controls.cfl_safety * float(np.sqrt(ratio[icfl]))

    # Volume-change rate: V̇ = Σ_i ∇_i V · u_i on current velocities.
    dvdx, dvdy = geometry.volume_gradients(cx, cy)
    cu = state.u[state.mesh.cell_nodes]
    cv = state.v[state.mesh.cell_nodes]
    vdot = np.einsum("ck,ck->c", dvdx, cu) + np.einsum("ck,ck->c", dvdy, cv)
    rate = np.abs(vdot) / volume
    if mask is not None:
        rate = np.where(mask, rate, 0.0)
    idiv = int(np.argmax(rate))
    max_rate = float(rate[idiv])
    dt_div = controls.div_safety / max_rate if max_rate > controls.zcut else np.inf

    return [(dt_cfl, "cfl", icfl), (dt_div, "div", idiv)]


def getdt(state: HydroState, controls: HydroControls,
          dt_prev: float, time: float, comms=None) -> Candidate:
    """Choose the next timestep; raises on collapse below ``dt_min``.

    With a ``comms`` object the physics candidates are reduced globally
    first (the one collective per step), then the deterministic caps
    (growth/max/end) are applied identically on every domain.
    """
    mask = comms.owned_cell_mask(state) if comms is not None else None
    candidates = local_dt_candidates(state, controls, mask)
    if comms is not None:
        candidates = [comms.reduce_dt(candidates)]
    candidates.append((controls.dt_growth * dt_prev, "growth", -1))
    candidates.append((controls.dt_max, "max", -1))
    dt, reason, cell = min(candidates, key=lambda c: c[0])
    if dt < controls.dt_min:
        raise TimestepCollapseError(dt, controls.dt_min, cell=cell, time=time)
    remaining = controls.time_end - time
    if dt >= remaining:
        return (remaining, "end", -1)
    return (dt, reason, cell)
