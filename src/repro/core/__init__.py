"""The Lagrangian hydro core — BookLeaf's primary contribution.

Staggered-mesh compatible finite-element discretisation with
predictor–corrector time integration (paper Section III-A and
Algorithm 1).  Each public kernel corresponds to a named BookLeaf
routine: ``getq``, ``getforce``, ``getacc``, ``getgeom``, ``getrho``,
``getein``, ``getpc`` (on the material table), ``getdt``.
"""

from .acceleration import getacc
from .comms import SerialComms
from .controls import HydroControls, controls_from_deck
from .density import getrho
from .energy import getein
from .energy_budget import EnergyBudget
from .force import getforce, pressure_forces
from .geometry import (
    cell_volumes,
    cfl_length_sq,
    corner_volumes,
    getgeom,
    subzone_volume_gradients,
    volume_gradients,
)
from .hourglass import (
    hourglass_amplitude,
    hourglass_filter_forces,
    subzonal_pressure_forces,
)
from .hydro import Hydro
from .lagstep import lagstep
from .state import HydroState
from .timestep import getdt, local_dt_candidates
from .viscosity import bulk_q, christiansen_limiter, getq

__all__ = [
    "Hydro",
    "HydroState",
    "HydroControls",
    "controls_from_deck",
    "SerialComms",
    "lagstep",
    "getq",
    "getforce",
    "getacc",
    "getgeom",
    "getrho",
    "getein",
    "EnergyBudget",
    "getdt",
    "local_dt_candidates",
    "pressure_forces",
    "cell_volumes",
    "corner_volumes",
    "volume_gradients",
    "subzone_volume_gradients",
    "cfl_length_sq",
    "christiansen_limiter",
    "bulk_q",
    "hourglass_amplitude",
    "hourglass_filter_forces",
    "subzonal_pressure_forces",
]
