"""The staggered-mesh hydrodynamic state.

BookLeaf's discretisation (paper Section III-A) centres thermodynamic
variables (ρ, e, p, q, c²) in cells and kinematic variables (x, u) on
nodes.  Masses are the conserved bookkeeping: a fixed cell mass plus
fixed corner (sub-zonal) masses during the Lagrangian phase; the nodal
mass used by the momentum equation is the scatter-sum of the corner
masses around each node.

:class:`HydroState` owns all of these arrays plus the scatter helper
(node assembly is the only gather/scatter primitive the kernels need).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import BoundaryConditions
from ..mesh.topology import QuadMesh
from ..utils.errors import MeshError
from . import geometry


@dataclass
class HydroState:
    """All evolving fields of one (serial or per-rank) hydro domain."""

    mesh: QuadMesh
    # nodal kinematics
    x: np.ndarray
    y: np.ndarray
    u: np.ndarray
    v: np.ndarray
    # cell thermodynamics
    rho: np.ndarray
    e: np.ndarray
    p: np.ndarray
    cs2: np.ndarray
    q: np.ndarray
    mat: np.ndarray
    # masses (fixed during the Lagrangian phase)
    cell_mass: np.ndarray
    corner_mass: np.ndarray
    # geometry caches (refreshed by getgeom)
    volume: np.ndarray
    corner_volume: np.ndarray
    bc: BoundaryConditions = field(default=None)  # type: ignore[assignment]
    # cached nodal mass — valid while corner_mass is unchanged, i.e. for
    # the whole Lagrangian phase; the ALE update invalidates it.
    _node_mass: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.bc is None:
            self.bc = BoundaryConditions.free(self.mesh.nnode)
        nnode, ncell = self.mesh.nnode, self.mesh.ncell
        for name, arr, size in (
            ("x", self.x, nnode), ("y", self.y, nnode),
            ("u", self.u, nnode), ("v", self.v, nnode),
            ("rho", self.rho, ncell), ("e", self.e, ncell),
            ("p", self.p, ncell), ("cs2", self.cs2, ncell),
            ("q", self.q, ncell), ("mat", self.mat, ncell),
            ("cell_mass", self.cell_mass, ncell),
            ("volume", self.volume, ncell),
        ):
            if arr.shape != (size,):
                raise MeshError(f"state field {name} has shape {arr.shape}, "
                                f"expected ({size},)")
        if self.corner_mass.shape != (ncell, 4):
            raise MeshError("corner_mass must have shape (ncell, 4)")
        if self.corner_volume.shape != (ncell, 4):
            raise MeshError("corner_volume must have shape (ncell, 4)")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_initial(cls, mesh: QuadMesh, table: MaterialTable,
                     rho: np.ndarray, e: np.ndarray,
                     mat: Optional[np.ndarray] = None,
                     u: Optional[np.ndarray] = None,
                     v: Optional[np.ndarray] = None,
                     bc: Optional[BoundaryConditions] = None) -> "HydroState":
        """Build a consistent state from ρ, e (and optional u, v, mat).

        Masses are set from the initial geometry (cell mass = ρV, corner
        masses = ρ × corner volume, i.e. uniform sub-zonal density), and
        p/c² are initialised through the EoS.
        """
        ncell, nnode = mesh.ncell, mesh.nnode
        rho = np.ascontiguousarray(rho, dtype=np.float64)
        e = np.ascontiguousarray(e, dtype=np.float64)
        mat = (np.zeros(ncell, dtype=np.int64) if mat is None
               else np.ascontiguousarray(mat, dtype=np.int64))
        x = mesh.x.copy()
        y = mesh.y.copy()
        cx, cy, volume, cvol = geometry.getgeom(mesh, x, y)
        state = cls(
            mesh=mesh,
            x=x, y=y,
            u=np.zeros(nnode) if u is None else np.ascontiguousarray(u, dtype=np.float64),
            v=np.zeros(nnode) if v is None else np.ascontiguousarray(v, dtype=np.float64),
            rho=rho.copy(), e=e.copy(),
            p=np.zeros(ncell), cs2=np.zeros(ncell), q=np.zeros(ncell),
            mat=mat,
            cell_mass=rho * volume,
            corner_mass=rho[:, None] * cvol,
            volume=volume,
            corner_volume=cvol,
            bc=bc,
        )
        state.p, state.cs2 = table.getpc(state.mat, state.rho, state.e)
        state.bc.apply_velocity(state.u, state.v)
        return state

    # ------------------------------------------------------------------
    # scatter / assembly primitives
    # ------------------------------------------------------------------
    def scatter_to_nodes(self, corner_field: np.ndarray) -> np.ndarray:
        """Sum an (ncell, 4) corner field onto nodes -> (nnode,).

        Implemented with ``bincount`` over the flattened connectivity,
        which is the fastest pure-numpy scatter for repeated use.
        """
        return np.bincount(
            self.mesh.cell_nodes.ravel(),
            weights=corner_field.ravel(),
            minlength=self.mesh.nnode,
        )

    def node_mass(self, plans=None) -> np.ndarray:
        """Nodal mass: scatter-sum of corner masses (always > 0).

        Corner masses are fixed during the Lagrangian phase, so the sum
        is computed once and cached until :meth:`invalidate_node_mass`
        (called by the ALE update, which rewrites the corner masses).
        The returned array is shared — callers must treat it read-only.
        An optional :class:`~repro.perf.plans.MeshPlans` provides the
        scatter for the (rare) cache-miss computation.
        """
        if self._node_mass is None:
            if plans is not None:
                self._node_mass = plans.scatter_to_nodes(self.corner_mass)
            else:
                self._node_mass = self.scatter_to_nodes(self.corner_mass)
        return self._node_mass

    def invalidate_node_mass(self) -> None:
        """Drop the cached nodal mass (call after changing corner_mass)."""
        self._node_mass = None

    # ------------------------------------------------------------------
    # health sentinels (the live-metrics layer's hard invariants)
    # ------------------------------------------------------------------
    #: nodal fields scanned for NaN/Inf (ids in a violation are node ids)
    SENTINEL_NODE_FIELDS = ("x", "y", "u", "v")
    #: cell fields scanned for NaN/Inf (ids are cell ids)
    SENTINEL_CELL_FIELDS = ("rho", "e", "p", "cs2", "q",
                            "volume", "cell_mass")

    def sentinel_scan(self, cell_mask: Optional[np.ndarray] = None,
                      max_ids: int = 32) -> dict:
        """Scan for states no healthy step may produce.

        Checks every kinematic and thermodynamic field for NaN/Inf and
        the invariant-domain bounds of the compatible scheme: positive
        cell volume, density and mass, non-negative internal energy.
        Returns ``{sentinel_name: offending ids}`` (empty dict =
        healthy); ids are truncated to ``max_ids`` per sentinel.
        ``cell_mask`` restricts the *cell* checks to owned cells in a
        decomposed run (ghost thermodynamics are refreshed lazily and
        may be stale, never authoritative).
        """
        violations = {}

        def trip(name: str, bad: np.ndarray) -> None:
            idx = np.flatnonzero(bad)
            if idx.size:
                violations[name] = idx[:max_ids]

        for name in self.SENTINEL_NODE_FIELDS:
            trip(f"nonfinite:{name}", ~np.isfinite(getattr(self, name)))
        owned = (np.ones(self.mesh.ncell, dtype=bool)
                 if cell_mask is None else cell_mask)
        for name in self.SENTINEL_CELL_FIELDS:
            trip(f"nonfinite:{name}",
                 owned & ~np.isfinite(getattr(self, name)))
        trip("nonpositive:volume", owned & (self.volume <= 0.0))
        trip("nonpositive:rho", owned & (self.rho <= 0.0))
        trip("nonpositive:cell_mass", owned & (self.cell_mass <= 0.0))
        trip("negative:e", owned & (self.e < 0.0))
        return violations

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def kinetic_energy(self) -> float:
        """Total kinetic energy ``Σ ½ m_n |u_n|²`` on the nodal masses."""
        mass = self.node_mass()
        return float(0.5 * np.sum(mass * (self.u ** 2 + self.v ** 2)))

    def internal_energy(self) -> float:
        """Total internal energy ``Σ m_c e_c``."""
        return float(np.sum(self.cell_mass * self.e))

    def total_energy(self) -> float:
        return self.kinetic_energy() + self.internal_energy()

    def total_mass(self) -> float:
        return float(self.cell_mass.sum())

    def momentum(self) -> np.ndarray:
        """Total momentum vector on the nodal masses."""
        mass = self.node_mass()
        return np.array([np.sum(mass * self.u), np.sum(mass * self.v)])

    def refresh_geometry(self, time: Optional[float] = None) -> None:
        """Recompute volume caches from the current coordinates."""
        _, _, self.volume, self.corner_volume = geometry.getgeom(
            self.mesh, self.x, self.y, time=time
        )

    def copy(self) -> "HydroState":
        """Deep copy of all evolving arrays (mesh topology is shared)."""
        return HydroState(
            mesh=self.mesh,
            x=self.x.copy(), y=self.y.copy(),
            u=self.u.copy(), v=self.v.copy(),
            rho=self.rho.copy(), e=self.e.copy(), p=self.p.copy(),
            cs2=self.cs2.copy(), q=self.q.copy(), mat=self.mat.copy(),
            cell_mass=self.cell_mass.copy(),
            corner_mass=self.corner_mass.copy(),
            volume=self.volume.copy(),
            corner_volume=self.corner_volume.copy(),
            bc=BoundaryConditions(self.bc.flags.copy(),
                                  self.bc.ux.copy(), self.bc.uy.copy(),
                                  driver=self.bc.driver),
        )
