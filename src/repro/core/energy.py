"""Compatible internal-energy update — BookLeaf's ``getein``.

The internal-energy equation is discretised so the work done by the
corner forces on the nodes is removed from (added to) the cells
*exactly* (Barlow 2008):

    m_c de_c/dt = − Σ_{corners i} F_i · u_i

Using the same forces as ``getacc`` and the time-centred velocity makes
ΔIE = −ΔKE identically, so total energy is conserved to round-off
(modulo boundary work, e.g. the Saltzmann piston, which *should* add
energy).  The artificial-viscosity and hourglass parts of F are
strictly dissipative by construction, so shocks heat the gas correctly.
"""

from __future__ import annotations

import numpy as np

from .state import HydroState


def getein(state: HydroState, fx: np.ndarray, fy: np.ndarray,
           u: np.ndarray, v: np.ndarray, dt: float) -> np.ndarray:
    """Return the updated specific internal energy after time ``dt``.

    ``u, v`` must be the velocities consistent with the force
    evaluation: u^n for the predictor half-step, ū for the corrector.
    """
    cu = u[state.mesh.cell_nodes]
    cv = v[state.mesh.cell_nodes]
    work = np.einsum("ck,ck->c", fx, cu) + np.einsum("ck,ck->c", fy, cv)
    return state.e - dt * work / state.cell_mass
