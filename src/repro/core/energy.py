"""Compatible internal-energy update — BookLeaf's ``getein``.

The internal-energy equation is discretised so the work done by the
corner forces on the nodes is removed from (added to) the cells
*exactly* (Barlow 2008):

    m_c de_c/dt = − Σ_{corners i} F_i · u_i

Using the same forces as ``getacc`` and the time-centred velocity makes
ΔIE = −ΔKE identically, so total energy is conserved to round-off
(modulo boundary work, e.g. the Saltzmann piston, which *should* add
energy).  The artificial-viscosity and hourglass parts of F are
strictly dissipative by construction, so shocks heat the gas correctly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..perf.workspace import Workspace
from .state import HydroState


def getein(state: HydroState, fx: np.ndarray, fy: np.ndarray,
           u: np.ndarray, v: np.ndarray, dt: float,
           ws: Optional[Workspace] = None,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Return the updated specific internal energy after time ``dt``.

    ``u, v`` must be the velocities consistent with the force
    evaluation: u^n for the predictor half-step, ū for the corrector.
    ``out`` may alias ``state.e`` (the work term is fully accumulated
    before the subtraction).
    """
    mesh = state.mesh
    if ws is None:
        cu = u[mesh.cell_nodes]
        cv = v[mesh.cell_nodes]
        work = (np.einsum("ck,ck->c", fx, cu)
                + np.einsum("ck,ck->c", fy, cv))
        result = state.e - dt * work / state.cell_mass
        if out is None:
            return result
        np.copyto(out, result)
        return out
    w = ws
    cu = w.borrow((mesh.ncell, 4))
    cv = w.borrow((mesh.ncell, 4))
    np.take(u, mesh.cell_nodes, out=cu, mode="clip")
    np.take(v, mesh.cell_nodes, out=cv, mode="clip")
    work = w.borrow(mesh.ncell)
    t = w.borrow(mesh.ncell)
    np.einsum("ck,ck->c", fx, cu, out=work)
    np.einsum("ck,ck->c", fy, cv, out=t)
    work += t
    work *= dt
    work /= state.cell_mass
    if out is None:
        out = state.e - work
    else:
        np.subtract(state.e, work, out=out)
    w.release(cu, cv, work, t)
    return out
