"""Nodal acceleration and velocity update — BookLeaf's ``getacc``.

Scatter-assembles the corner forces onto nodes, divides by the nodal
(corner-sum) mass, applies the kinematic boundary conditions and
advances the velocity:

    a_n      = (Σ_corners F) / m_n
    u^{n+1}  = u^n + dt a_n
    ū        = ½ (u^n + u^{n+1})

The time-centred ū is returned for the mesh move and the compatible
energy update.  This kernel is the one the paper singles out as having
a data dependency that defeats OpenMP threading (the scatter-assembly
race); in numpy the scatter is a ``bincount`` and the whole kernel is
a few vector operations.

With a :class:`~repro.perf.plans.MeshPlans` (serial runs only — the
distributed path completes its partial sums through the comms seam and
must not take this shortcut) the force scatter uses the precomputed
``reduceat`` plan and the nodal mass comes from the state's cache; a
:class:`~repro.perf.workspace.Workspace` supplies every buffer, so
repeat calls allocate nothing.  The returned arrays then live in the
arena (``acc.*``) — the caller commits them by copy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..perf.plans import MeshPlans
from ..perf.workspace import Workspace, scratch
from .comms import SerialComms
from .state import HydroState


def getacc(state: HydroState, fx: np.ndarray, fy: np.ndarray, dt: float,
           comms=None,
           plans: Optional[MeshPlans] = None,
           ws: Optional[Workspace] = None
           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Advance nodal velocities by ``dt`` under corner forces ``fx, fy``.

    Returns ``(u_new, v_new, u_bar, v_bar)``.  The state's velocity
    arrays are *not* modified — the caller (``lagstep``) commits them,
    keeping this kernel side-effect free and independently testable.

    With a ``comms`` object, the partial nodal force/mass sums of
    shared interface nodes are completed across domains before the
    divide — BookLeaf's second communication point.  ``plans`` may only
    be passed for single-domain runs.
    """
    if plans is None and ws is None:
        if comms is None:
            comms = SerialComms()
        node_fx, node_fy, mass = comms.assemble_node_sums(state, fx, fy)
        safe_mass = np.where(mass > 0.0, mass, 1.0)
        ax = np.where(mass > 0.0, node_fx / safe_mass, 0.0)
        ay = np.where(mass > 0.0, node_fy / safe_mass, 0.0)
        state.bc.apply_acceleration(ax, ay)
        u_new = state.u + dt * ax
        v_new = state.v + dt * ay
        state.bc.apply_velocity(u_new, v_new)
        u_bar = 0.5 * (state.u + u_new)
        v_bar = 0.5 * (state.v + v_new)
        return u_new, v_new, u_bar, v_bar
    w = scratch(ws)
    nnode = state.mesh.nnode
    borrowed_sums = None
    if plans is not None:
        work = w.borrow(plans.scatter_work_shape)
        node_fx = plans.scatter_to_nodes(
            fx, out=w.borrow(nnode), work=work)
        node_fy = plans.scatter_to_nodes(
            fy, out=w.borrow(nnode), work=work)
        borrowed_sums = (work, node_fx, node_fy)
        mass = state.node_mass(plans=plans)
    else:
        if comms is None:
            comms = SerialComms()
        node_fx, node_fy, mass = comms.assemble_node_sums(state, fx, fy)
    # Ghost-only nodes of a decomposed run have zero completed mass
    # (their sums live on other ranks); guard the divide — their values
    # are overwritten by the next kinematic exchange.
    massless = w.borrow(nnode, dtype=bool)
    np.less_equal(mass, 0.0, out=massless)
    safe_mass = w.borrow(nnode)
    np.copyto(safe_mass, mass)
    np.copyto(safe_mass, 1.0, where=massless)
    ax = w.borrow(nnode)
    ay = w.borrow(nnode)
    np.divide(node_fx, safe_mass, out=ax)
    np.copyto(ax, 0.0, where=massless)
    np.divide(node_fy, safe_mass, out=ay)
    np.copyto(ay, 0.0, where=massless)
    if borrowed_sums is not None:
        w.release(*borrowed_sums)
    state.bc.apply_acceleration(ax, ay)
    u_new = w.array("acc.unew", nnode)
    v_new = w.array("acc.vnew", nnode)
    np.multiply(ax, dt, out=u_new)
    u_new += state.u
    np.multiply(ay, dt, out=v_new)
    v_new += state.v
    w.release(massless, safe_mass, ax, ay)
    state.bc.apply_velocity(u_new, v_new)
    u_bar = w.array("acc.ubar", nnode)
    v_bar = w.array("acc.vbar", nnode)
    np.add(state.u, u_new, out=u_bar)
    u_bar *= 0.5
    np.add(state.v, v_new, out=v_bar)
    v_bar *= 0.5
    return u_new, v_new, u_bar, v_bar
