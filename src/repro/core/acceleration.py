"""Nodal acceleration and velocity update — BookLeaf's ``getacc``.

Scatter-assembles the corner forces onto nodes, divides by the nodal
(corner-sum) mass, applies the kinematic boundary conditions and
advances the velocity:

    a_n      = (Σ_corners F) / m_n
    u^{n+1}  = u^n + dt a_n
    ū        = ½ (u^n + u^{n+1})

The time-centred ū is returned for the mesh move and the compatible
energy update.  This kernel is the one the paper singles out as having
a data dependency that defeats OpenMP threading (the scatter-assembly
race); in numpy the scatter is a ``bincount`` and the whole kernel is
a few vector operations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .comms import SerialComms
from .state import HydroState


def getacc(state: HydroState, fx: np.ndarray, fy: np.ndarray, dt: float,
           comms=None
           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Advance nodal velocities by ``dt`` under corner forces ``fx, fy``.

    Returns ``(u_new, v_new, u_bar, v_bar)``.  The state's velocity
    arrays are *not* modified — the caller (``lagstep``) commits them,
    keeping this kernel side-effect free and independently testable.

    With a ``comms`` object, the partial nodal force/mass sums of
    shared interface nodes are completed across domains before the
    divide — BookLeaf's second communication point.
    """
    if comms is None:
        comms = SerialComms()
    node_fx, node_fy, mass = comms.assemble_node_sums(state, fx, fy)
    # Ghost-only nodes of a decomposed run have zero completed mass
    # (their sums live on other ranks); guard the divide — their values
    # are overwritten by the next kinematic exchange.
    safe_mass = np.where(mass > 0.0, mass, 1.0)
    ax = np.where(mass > 0.0, node_fx / safe_mass, 0.0)
    ay = np.where(mass > 0.0, node_fy / safe_mass, 0.0)
    state.bc.apply_acceleration(ax, ay)
    u_new = state.u + dt * ax
    v_new = state.v + dt * ay
    state.bc.apply_velocity(u_new, v_new)
    u_bar = 0.5 * (state.u + u_new)
    v_bar = 0.5 * (state.v + v_new)
    return u_new, v_new, u_bar, v_bar
