"""Run telemetry — hierarchical trace spans, run reports, Chrome traces.

The paper's whole evaluation is a per-kernel time breakdown plus
communication-volume accounting (Table II, Figures 1-4).  This package
turns the repository's ad-hoc instrumentation — :class:`TimerRegistry`
accumulators and Typhon's :class:`CommStats` counters — into first-class
observability artefacts:

* :class:`~repro.telemetry.spans.Tracer` / :class:`~repro.telemetry.spans.Span`
  — hierarchical trace spans (run → step → phase → kernel) recorded
  with monotonic clocks, one tracer per rank, merged deterministically,
* :mod:`repro.telemetry.report` — the schema-versioned JSON run report
  (``bookleaf run --report out.json``),
* :mod:`repro.telemetry.trace` — the Chrome trace-event file loadable
  in Perfetto (``bookleaf run --trace out.trace.json``),
* :mod:`repro.telemetry.table2` — the measured-vs-modeled Table II
  (``bookleaf model table2-measured``),
* :mod:`repro.telemetry.live` — the fleet's schema-versioned lifecycle
  event bus (NDJSON stream, ``fleet --watch`` renderer, progress/ETA),
* :mod:`repro.telemetry.sweep_trace` — ONE merged Perfetto trace for a
  whole sweep (worker process rows, per-job thread rows, flow events),
* :mod:`repro.telemetry.sampling` — the low-overhead collapsed-stack
  sampling profiler (``run --profile``, ``fleet --profile-dir``),
* :mod:`repro.telemetry.dashboard` — the self-contained HTML sweep
  dashboard.

Telemetry is off by default and adds nothing to the hot loop beyond a
``tracer is None`` check per timer region; see docs/OBSERVABILITY.md.
"""

from .report import (  # noqa: F401
    SCHEMA_VERSION,
    StepSeries,
    build_report,
    schema_shape,
    validate_report,
    write_report,
)
from .live import (  # noqa: F401
    LIVE_SCHEMA_VERSION,
    EventBus,
    ProgressReporter,
    WatchRenderer,
    read_events,
    validate_live_event,
    validate_live_stream,
)
from .sampling import (  # noqa: F401
    SamplingProfiler,
    merge_folded,
    read_collapsed,
    write_collapsed,
)
from .spans import Span, Tracer, merge_spans  # noqa: F401
from .sweep_trace import (  # noqa: F401
    SweepTraceBuilder,
    strip_nondeterminism,
    write_sweep_trace,
)
from .table2 import (  # noqa: F401
    format_measured_vs_modeled,
    measured_vs_modeled,
    update_experiments,
)
from .trace import trace_events, validate_trace, write_trace  # noqa: F401
