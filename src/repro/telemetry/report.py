"""The schema-versioned JSON run report (``bookleaf run --report``).

One run produces one report: the problem configuration, per-kernel
seconds/calls/allocation counters (the measured Table II column), the
Typhon communication counters (total and per rank, in rank order) and
a per-step time series.  The report is the machine-readable companion
to the human breakdown the CLI prints — the artefact every perf PR
regresses against.

The schema is versioned and *pinned by a golden test*
(``tests/telemetry/test_report.py``): changing the shape of the report
— adding, removing or retyping a field — requires bumping
:data:`SCHEMA_VERSION` and regenerating the golden shape file, which
makes schema drift an explicit, reviewed event rather than an
accident.  docs/OBSERVABILITY.md carries the annotated example.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..utils.timers import TimerRegistry

#: bump when (and only when) the report shape changes; the golden test
#: pins shape + version together
#: v2: added the ``diagnostics`` key (the final live-metrics sample —
#: conservation drifts, extrema; null when the run carried no probe)
SCHEMA_VERSION = 2

GENERATOR = "repro.telemetry"

#: counters every comm entry carries (total and per-rank alike)
COMM_FIELDS = ("messages", "bytes", "halo_exchanges", "reductions")

#: fields of one step record in the time series
STEP_FIELDS = ("nstep", "time", "dt", "dt_reason", "wall_seconds")


class StepSeries:
    """Hydro observer recording the step-loop time series.

    Appends one record per step: step number, simulated time, the dt
    taken (and why), and the wall-clock seconds the step cost
    (measured between observer invocations with a monotonic clock).
    """

    def __init__(self) -> None:
        self.rows: List[dict] = []
        self._last_ns = time.perf_counter_ns()

    def __call__(self, hydro) -> None:
        now = time.perf_counter_ns()
        self.rows.append({
            "nstep": hydro.nstep,
            "time": hydro.time,
            "dt": hydro.dt,
            "dt_reason": hydro.dt_reason,
            "wall_seconds": (now - self._last_ns) * 1e-9,
        })
        self._last_ns = now


def _kernel_entry(timer) -> dict:
    return {
        "seconds": timer.seconds,
        "calls": timer.calls,
        "alloc_bytes": timer.alloc_bytes,
        "alloc_peak": timer.alloc_peak,
    }


def build_report(problem: dict, timers: TimerRegistry, *,
                 steps: int, time_reached: float, wall_seconds: float,
                 ranks: int = 1, partition: Optional[str] = None,
                 comm_total: Optional[dict] = None,
                 comm_per_rank: Optional[List[dict]] = None,
                 step_series: Optional[StepSeries] = None,
                 diagnostics: Optional[dict] = None) -> dict:
    """Assemble the run report dict (see module docstring for shape).

    Serial runs pass no comm counters and get an all-zero total with an
    empty per-rank list — the schema is identical either way, so report
    consumers need no serial/distributed special case.

    ``diagnostics`` is the run's final live-metrics sample (the last
    NDJSON record of a ``--metrics`` run, verbatim — so the stream and
    the report agree bit-for-bit on the closing drift) or ``None`` when
    no probe was attached.
    """
    if comm_total is None:
        comm_total = {k: 0 for k in COMM_FIELDS}
    comm_total = {k: int(comm_total.get(k, 0)) for k in COMM_FIELDS}
    per_rank = [
        {k: int(entry.get(k, 0)) for k in COMM_FIELDS}
        for entry in (comm_per_rank or [])
    ]
    kernels = {
        name: _kernel_entry(timer)
        for name, timer in sorted(timers.timers.items())
    }
    series = [dict(row) for row in step_series.rows] if step_series else []
    return {
        "schema_version": SCHEMA_VERSION,
        "generator": GENERATOR,
        "problem": problem,
        "run": {
            "ranks": int(ranks),
            "partition": partition if ranks > 1 else None,
            "steps": int(steps),
            "time": float(time_reached),
            "wall_seconds": float(wall_seconds),
        },
        "kernels": kernels,
        "comm": {"total": comm_total, "per_rank": per_rank},
        "steps": series,
        "diagnostics": dict(diagnostics) if diagnostics else None,
    }


def write_report(report: dict, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# schema validation + the golden shape
# ----------------------------------------------------------------------
def validate_report(report: dict) -> None:
    """Raise ``ValueError`` on any report that violates the schema."""
    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise ValueError(f"invalid run report: {msg}")

    need(isinstance(report, dict), "not a dict")
    need(report.get("schema_version") == SCHEMA_VERSION,
         f"schema_version != {SCHEMA_VERSION}")
    need(report.get("generator") == GENERATOR, "unknown generator")
    for key in ("problem", "run", "kernels", "comm", "steps"):
        need(key in report, f"missing top-level key {key!r}")
    run = report["run"]
    for key in ("ranks", "steps"):
        need(isinstance(run.get(key), int), f"run.{key} not an int")
    for key in ("time", "wall_seconds"):
        need(isinstance(run.get(key), (int, float)),
             f"run.{key} not a number")
    for name, entry in report["kernels"].items():
        for key in ("seconds", "calls", "alloc_bytes", "alloc_peak"):
            need(isinstance(entry.get(key), (int, float)),
                 f"kernels[{name!r}].{key} not a number")
    comm = report["comm"]
    need(isinstance(comm.get("per_rank"), list), "comm.per_rank not a list")
    for entry in [comm["total"]] + comm["per_rank"]:
        for key in COMM_FIELDS:
            need(isinstance(entry.get(key), int),
                 f"comm counter {key!r} not an int")
    if run["ranks"] > 1:
        need(len(comm["per_rank"]) == run["ranks"],
             "comm.per_rank length != ranks")
    for row in report["steps"]:
        for key in STEP_FIELDS:
            need(key in row, f"step record missing {key!r}")
    need("diagnostics" in report, "missing top-level key 'diagnostics'")
    diag = report["diagnostics"]
    if diag is not None:
        need(isinstance(diag, dict), "diagnostics not a dict or null")
        for key in ("nstep", "mass_drift", "energy_drift",
                    "total_energy"):
            need(isinstance(diag.get(key), (int, float)),
                 f"diagnostics.{key} not a number")


#: dict paths whose *keys* are data (kernel names, problem params) —
#: their shape collapses to one representative "*" entry, so adding a
#: timer region is not a schema change but retyping a field is
_WILDCARD_PATHS = frozenset({("kernels",), ("problem", "params")})


def schema_shape(value, _path: tuple = ()):
    """Canonical shape of a report: dict keys mapped to value *types*.

    Lists collapse to the shape of their first element and wildcard
    maps (kernels, problem params) to one ``"*"`` entry, so two reports
    from different runs have equal shapes unless the schema itself
    changed.  Used by the golden-file test.
    """
    if isinstance(value, dict):
        if _path in _WILDCARD_PATHS:
            if not value:
                return {}
            first = sorted(value)[0]
            return {"*": schema_shape(value[first], _path + ("*",))}
        return {k: schema_shape(v, _path + (k,))
                for k, v in sorted(value.items())}
    if isinstance(value, list):
        return [schema_shape(value[0], _path + ("[]",))] if value else []
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if value is None:
        return "null"
    return type(value).__name__
