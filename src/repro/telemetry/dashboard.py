"""Self-contained HTML sweep dashboard (``fleet --dashboard out.html``).

One static file, no external assets, written at end of sweep from the
summary document plus the live-event stream: stat tiles (jobs, cache
hits, batched jobs, wall time, anomaly count), a per-job wall-clock
timeline (one bar per job, start → finish offsets from the event bus),
the full job table (the accessible twin of the timeline) and the
anomaly flags.  Design rules: a single neutral hue carries the
timeline bars; job *status* is a labelled badge (text + color, never
color alone); values and labels wear text colors, not series colors;
one time axis.
"""

from __future__ import annotations

import html
import os
from typing import Dict, List, Optional

#: status -> (badge background, badge ink); every badge also carries
#: its status word, so color is reinforcement, never the only channel
_STATUS_STYLE = {
    "done": ("#dafbe1", "#116329"),
    "cached": ("#ddf4ff", "#0550ae"),
    "batched": ("#ddf4ff", "#0550ae"),
    "retried": ("#fff8c5", "#7d4e00"),
    "failed": ("#ffebe9", "#a40e26"),
    "outlier": ("#fff8c5", "#7d4e00"),
}

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, Helvetica,
       Arial, sans-serif; margin: 24px; color: #1f2328;
       background: #ffffff; }
h1 { font-size: 20px; margin: 0 0 4px 0; }
h2 { font-size: 15px; margin: 28px 0 8px 0; }
.sub { color: #57606a; font-size: 13px; margin-bottom: 20px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile { border: 1px solid #d0d7de; border-radius: 6px;
        padding: 10px 16px; min-width: 110px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { font-size: 12px; color: #57606a; }
table { border-collapse: collapse; font-size: 13px; width: 100%; }
th { text-align: left; color: #57606a; font-weight: 600;
     border-bottom: 1px solid #d0d7de; padding: 4px 10px 4px 0; }
td { border-bottom: 1px solid #eaeef2; padding: 4px 10px 4px 0;
     font-variant-numeric: tabular-nums; }
.lane { position: relative; height: 14px; background: #f6f8fa;
        border-radius: 4px; min-width: 240px; }
.bar { position: absolute; top: 3px; height: 8px; border-radius: 4px;
       background: #6598d1; min-width: 2px; }
.mark { position: absolute; top: 1px; width: 4px; height: 12px;
        border-radius: 2px; background: #0550ae; }
.badge { display: inline-block; border-radius: 10px; padding: 1px 8px;
         font-size: 12px; }
.axis { color: #57606a; font-size: 11px; display: flex;
        justify-content: space-between; min-width: 240px; }
code { background: #f6f8fa; padding: 1px 4px; border-radius: 4px; }
"""


def _badge(status: str) -> str:
    bg, ink = _STATUS_STYLE.get(status, ("#f6f8fa", "#57606a"))
    return (f'<span class="badge" style="background:{bg};'
            f'color:{ink}">{html.escape(status)}</span>')


def _fmt(value, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _job_windows(events: List[dict]) -> Dict[int, dict]:
    """Per-job (start, end, status) offsets from the event stream."""
    windows: Dict[int, dict] = {}
    for rec in events:
        job = rec.get("job")
        if job is None:
            if rec.get("event") == "ensemble_batch":
                for j in rec.get("jobs", []):
                    w = windows.setdefault(int(j), {})
                    w.setdefault("start", rec["t"])
                    w["status"] = "batched"
            continue
        w = windows.setdefault(int(job), {})
        event = rec["event"]
        if event == "job_started":
            w.setdefault("start", rec["t"])
            if rec.get("attempt", 1) > 1:
                w["status"] = "retried"
        elif event == "cache_hit":
            w["start"] = w["end"] = rec["t"]
            w["status"] = "cached"
        elif event == "job_done":
            w["end"] = rec["t"]
            w.setdefault("status", "done")
            if w.get("status") == "retried":
                pass  # keep the retry marker visible in the table
        elif event == "job_failed":
            w["end"] = rec["t"]
            w["status"] = "failed"
        elif event == "job_retried":
            w["status"] = "retried"
    return windows


def render_dashboard(summary: dict, events: Optional[List[dict]] = None,
                     title: str = "BookLeaf sweep") -> str:
    """The dashboard HTML, as a string."""
    events = events or []
    jobs = summary.get("jobs", [])
    counts = summary.get("counts", {})
    anomalies = summary.get("anomalies", [])
    flagged = {a["job"] for a in anomalies}
    windows = _job_windows(events)
    horizon = max([w.get("end", 0) or 0 for w in windows.values()]
                  + [summary.get("wall_seconds") or 0, 1e-9])

    tiles = [
        ("jobs", counts.get("jobs", len(jobs))),
        ("cache hits", counts.get("cache_hits", 0)),
        ("batched", counts.get("ensemble_jobs", 0)),
        ("wall seconds", _fmt(summary.get("wall_seconds"))),
        ("anomalies", len(anomalies)),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="v">{html.escape(str(v))}</div>'
        f'<div class="k">{html.escape(k)}</div></div>'
        for k, v in tiles)

    rows = []
    for doc in jobs:
        idx = doc["index"]
        w = windows.get(idx, {})
        status = ("cached" if doc.get("cache_hit")
                  else w.get("status",
                             "batched" if doc.get("backend") == "ensemble"
                             else "done"))
        start = w.get("start", 0) or 0
        end = w.get("end", start) or start
        left = 100.0 * start / horizon
        width = max(100.0 * (end - start) / horizon, 0.0)
        if status == "cached" or width < 0.5:
            lane = (f'<div class="lane" role="img" aria-label="job {idx} '
                    f'at {start:.2f}s"><div class="mark" '
                    f'style="left:{left:.2f}%"></div></div>')
        else:
            lane = (f'<div class="lane" role="img" aria-label="job {idx} '
                    f'{start:.2f}s to {end:.2f}s"><div class="bar" '
                    f'style="left:{left:.2f}%;width:{width:.2f}%">'
                    f'</div></div>')
        badges = _badge(status)
        if idx in flagged:
            badges += " " + _badge("outlier")
        rows.append(
            "<tr>"
            f"<td>{idx}</td>"
            f"<td>{badges}</td>"
            f"<td>{html.escape(str(doc.get('problem') or '-'))}"
            f"</td>"
            f"<td>{_fmt(doc.get('nx'), 0)}</td>"
            f"<td>{html.escape(str(doc.get('backend', '-')))}</td>"
            f"<td>{_fmt(doc.get('nstep'), 0)}</td>"
            f"<td>{_fmt(doc.get('wall_seconds'), 3)}</td>"
            f"<td>{_fmt(doc.get('steps_per_sec'), 1)}</td>"
            f"<td><code>{html.escape(str(doc.get('digest', ''))[:12])}"
            f"</code></td>"
            f"<td>{lane}</td>"
            "</tr>")

    anomaly_html = "<p class='sub'>no outliers flagged</p>"
    if anomalies:
        items = "".join(
            f"<tr><td>{a['job']}</td>"
            f"<td>{html.escape(a['metric'])}</td>"
            f"<td>{_fmt(a['value'], 4)}</td>"
            f"<td>{_fmt(a['median'], 4)}</td>"
            f"<td>{_fmt(a['zscore'], 2)}</td>"
            f"<td>{_badge('outlier') if a.get('harmful') else 'benign'}"
            f"</td></tr>"
            for a in anomalies)
        anomaly_html = (
            "<table><tr><th>job</th><th>metric</th><th>value</th>"
            "<th>sweep median</th><th>robust z</th><th>direction</th>"
            f"</tr>{items}</table>")

    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_CSS}</style></head>
<body>
<h1>{html.escape(title)}</h1>
<div class="sub">{len(jobs)} jobs · {len(events)} live events ·
schema v{summary.get('schema_version', '?')}</div>
<div class="tiles">{tile_html}</div>
<h2>Jobs</h2>
<table>
<tr><th>job</th><th>status</th><th>problem</th><th>nx</th>
<th>backend</th><th>steps</th><th>wall s</th><th>steps/s</th>
<th>digest</th><th>timeline</th></tr>
{''.join(rows)}
</table>
<div class="axis"><span>0s</span><span>{horizon:.2f}s</span></div>
<h2>Anomalies</h2>
{anomaly_html}
</body></html>
"""


def write_dashboard(summary: dict, events: Optional[List[dict]],
                    path: str, title: str = "BookLeaf sweep") -> str:
    root = os.path.dirname(os.path.abspath(path))
    os.makedirs(root, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_dashboard(summary, events, title=title))
    return path
