"""Low-overhead sampling profiler over the live span stack.

The tracer already maintains, per rank, the stack of currently-open
spans (:attr:`repro.telemetry.spans.Tracer._open`) — the run → step →
phase → kernel hierarchy the instrumented code is inside *right now*.
This module samples that stack from a background thread at a fixed
interval and accumulates collapsed call stacks, so a run's wall time
is attributed to kernels/phases at a cost bounded by the sampling
rate, not by instrumentation density.

Why sample a stack we also trace exactly?  Scale: a sweep of hundreds
of jobs cannot afford to keep (or merge) every span of every job, but
a few hundred samples per job folds into one flamegraph line set —
``repro.fleet`` aggregates the per-job files into one per-sweep
profile.  Overhead is bounded by the bench ladder
(``benchmarks/bench_observability.py``); the sampler reads the stack
under the GIL with a plain list snapshot, never locking the hot loop.

Output is the collapsed-stack format flamegraph.pl / speedscope /
inferno consume directly::

    run;step;lagstep;viscosity 42

Step spans are normalised (``step 17`` → ``step``) so stacks fold by
phase identity instead of exploding one line per timestep.
"""

from __future__ import annotations

import time
from collections import Counter
from threading import Event, Thread
from typing import Dict, Iterable, List, Optional

#: default sampling interval in seconds (200 Hz — coarse enough that a
#: Python-level sampler stays in the noise, fine enough for per-kernel
#: attribution over a few seconds of run)
DEFAULT_INTERVAL = 0.005

#: the stack frame recorded when a tracer has no open span
IDLE_FRAME = "<idle>"


def _normalise(name: str) -> str:
    """Collapse per-instance span names to their identity: ``step 17``
    -> ``step`` (every timestep folds into one frame)."""
    if name.startswith("step ") and name[5:].isdigit():
        return "step"
    return name


class SamplingProfiler:
    """Background thread sampling the open-span stacks of tracers.

    Parameters
    ----------
    tracers:
        The live :class:`~repro.telemetry.spans.Tracer` objects to
        sample (one per in-process rank).  Multi-rank stacks are
        prefixed ``rank N`` so the per-rank profiles stay separable.
    interval:
        Seconds between samples.
    """

    def __init__(self, tracers: Iterable, interval: float = DEFAULT_INTERVAL):
        self.tracers = list(tracers)
        self.interval = float(interval)
        self.counts: Counter = Counter()
        self.samples = 0
        self.wall_seconds = 0.0
        self._halt = Event()
        self._thread: Optional[Thread] = None
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._halt.clear()
        self._t0 = time.perf_counter()
        self._thread = Thread(target=self._run, name="span-sampler",
                              daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._halt.set()
        self._thread.join()
        self._thread = None
        self.wall_seconds += time.perf_counter() - self._t0

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        multi = len(self.tracers) > 1
        while not self._halt.wait(self.interval):
            self.sample_once(multi=multi)

    def sample_once(self, multi: Optional[bool] = None) -> None:
        """Take one sample of every tracer's open-span stack (public
        for deterministic tests; the thread calls it on a timer)."""
        if multi is None:
            multi = len(self.tracers) > 1
        self.samples += 1
        for tracer in self.tracers:
            # list() snapshots under the GIL; the tracer only ever
            # appends/pops, so the worst case is one off-by-one frame.
            stack = [_normalise(span.name)
                     for span in list(tracer._open)]
            if not stack:
                stack = [IDLE_FRAME]
            if multi:
                stack = [f"rank {tracer.rank}"] + stack
            self.counts[tuple(stack)] += 1

    # ------------------------------------------------------------------
    def folded(self) -> Dict[str, int]:
        """The collapsed-stack lines: ``"run;step;lagstep" -> count``."""
        return {";".join(stack): count
                for stack, count in self.counts.items()}


# ----------------------------------------------------------------------
# collapsed-stack files
# ----------------------------------------------------------------------
def write_collapsed(folded: Dict[str, int], path: str) -> str:
    """Write ``stack -> count`` as a flamegraph.pl collapsed file
    (sorted by stack for deterministic output)."""
    import os

    root = os.path.dirname(os.path.abspath(path))
    os.makedirs(root, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for stack in sorted(folded):
            fh.write(f"{stack} {folded[stack]}\n")
    return path


def read_collapsed(path: str) -> Dict[str, int]:
    """Load a collapsed-stack file back into ``stack -> count``."""
    out: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            stack, _, count = line.rpartition(" ")
            out[stack] = out.get(stack, 0) + int(count)
    return out


def merge_folded(profiles: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum collapsed profiles (the per-sweep aggregation)."""
    total: Counter = Counter()
    for folded in profiles:
        total.update(folded)
    return dict(total)


def top_stacks(folded: Dict[str, int], n: int = 10) -> List[tuple]:
    """The ``n`` hottest stacks as ``(stack, count, fraction)`` rows."""
    total = sum(folded.values()) or 1
    ranked = sorted(folded.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(stack, count, count / total)
            for stack, count in ranked[:n]]
