"""Hierarchical trace spans over monotonic clocks.

A :class:`Span` is one timed interval of the run — the whole run, one
timestep, one phase (``lagstep``/``alestep``) or one kernel region —
with its start and duration in nanoseconds since the tracer's *epoch*
(a ``perf_counter_ns`` origin shared by every rank of a run, so the
per-rank streams line up on one time axis).  Spans nest: the ``depth``
field records how many spans were open on the same tracer when this
one began, which is enough to rebuild the tree (within one rank, spans
form a properly bracketed sequence).

A :class:`Tracer` records spans for one rank.  It is deliberately
append-only and thread-local by construction — the distributed driver
gives each rank thread its own tracer and merges the streams with
:func:`merge_spans` in ascending rank order, so the merged stream is
deterministic run-to-run (same span names, categories, counts and
order; only the clock values vary).

When ``trace_allocations`` is on (and ``tracemalloc`` is tracing),
every span also carries the net bytes allocated inside it — the same
counter the :class:`~repro.utils.timers.TimerRegistry` accumulates per
region, but per *instance* rather than per name.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: the span categories, outermost first — the hierarchy levels of the
#: run → step → phase → kernel span model (plus ``comm`` for the
#: Typhon exchange/reduction spans nested inside kernels)
CATEGORIES = ("run", "step", "phase", "kernel", "comm")


@dataclass
class Span:
    """One timed interval: name, category, rank, clocks, nesting depth."""

    name: str
    cat: str
    rank: int
    t0_ns: int              #: start, ns since the tracer's epoch
    dur_ns: int = -1        #: -1 while the span is still open
    depth: int = 0          #: spans open on this tracer when this began
    args: Dict[str, object] = field(default_factory=dict)
    alloc_bytes: Optional[int] = None

    def as_dict(self) -> dict:
        out = {
            "name": self.name,
            "cat": self.cat,
            "rank": self.rank,
            "t0_ns": self.t0_ns,
            "dur_ns": self.dur_ns,
            "depth": self.depth,
        }
        if self.args:
            out["args"] = dict(self.args)
        if self.alloc_bytes is not None:
            out["alloc_bytes"] = self.alloc_bytes
        return out


class Tracer:
    """Append-only span recorder for one rank.

    Parameters
    ----------
    rank:
        Rank id stamped on every span (the Chrome-trace ``tid``).
    epoch_ns:
        Shared ``perf_counter_ns`` origin.  Every rank of a distributed
        run must receive the *same* epoch so the streams align; the
        default (``None``) takes the construction instant.
    trace_allocations:
        Record per-span net allocated bytes (requires ``tracemalloc``
        to be running — the timer registry starts it).
    """

    def __init__(self, rank: int = 0, epoch_ns: Optional[int] = None,
                 trace_allocations: bool = False):
        self.rank = rank
        self.enabled = True
        self.epoch_ns = (time.perf_counter_ns()
                         if epoch_ns is None else epoch_ns)
        self.trace_allocations = trace_allocations
        self.spans: List[Span] = []
        self._open: List[Span] = []

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._open)

    @contextmanager
    def span(self, name: str, cat: str = "kernel",
             args: Optional[dict] = None) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block.

        The yielded :class:`Span` is live — callers may fill ``args``
        (e.g. the dt a step settled on) before the block closes.
        """
        if not self.enabled:
            yield Span(name, cat, self.rank, 0)
            return
        alloc0 = None
        if self.trace_allocations and tracemalloc.is_tracing():
            alloc0, _ = tracemalloc.get_traced_memory()
        span = Span(name, cat, self.rank,
                    time.perf_counter_ns() - self.epoch_ns,
                    depth=len(self._open),
                    args=dict(args) if args else {})
        self.spans.append(span)
        self._open.append(span)
        try:
            yield span
        finally:
            span.dur_ns = (time.perf_counter_ns() - self.epoch_ns
                           - span.t0_ns)
            if alloc0 is not None and tracemalloc.is_tracing():
                alloc1, _ = tracemalloc.get_traced_memory()
                span.alloc_bytes = alloc1 - alloc0
            self._open.pop()

    def record(self, name: str, cat: str, t0_ns_abs: int, dur_ns: int,
               alloc_bytes: Optional[int] = None,
               args: Optional[dict] = None) -> None:
        """Record an already-measured interval (the timer-region hook:
        the registry measured the clocks itself and hands them over so
        the region body pays for exactly one clock pair)."""
        self.spans.append(Span(
            name, cat, self.rank, t0_ns_abs - self.epoch_ns, dur_ns,
            depth=len(self._open), args=dict(args) if args else {},
            alloc_bytes=alloc_bytes,
        ))

    def instant(self, name: str, cat: str = "phase",
                args: Optional[dict] = None) -> None:
        """Record a zero-duration marker event (e.g. a skipped remap)."""
        if not self.enabled:
            return
        self.spans.append(Span(
            name, cat, self.rank,
            time.perf_counter_ns() - self.epoch_ns, 0,
            depth=len(self._open), args=dict(args) if args else {},
        ))


def merge_spans(tracers: List[Tracer]) -> List[Span]:
    """Merge per-rank span streams into one deterministic stream.

    Concatenates in ascending rank order, preserving each rank's
    recording order — *not* by timestamp, which would make the merged
    order vary run-to-run with scheduling noise.  Two runs of the same
    problem produce streams with identical (name, cat, rank, depth)
    sequences; only the clock values differ.
    """
    ordered = sorted(tracers, key=lambda t: t.rank)
    merged: List[Span] = []
    for tracer in ordered:
        merged.extend(tracer.spans)
    return merged
