"""The fleet's live status plane: a schema-versioned lifecycle event bus.

A sweep between ``submit()`` and ``summary()`` used to be a black box;
this module is the window into it.  The fleet engine owns one
:class:`EventBus` per sweep and emits a lifecycle record for every
scheduling fact as it happens — job queued / started / progress /
checkpointed / retried / cache hit / done — each stamped with a
monotonically increasing sequence number and the offset in seconds
since the sweep epoch.  Three consumers share the stream:

* an **NDJSON sink** (``fleet --events out.ndjson``), flushed per
  record so a crashed sweep still leaves a readable prefix;
* in-process **listeners** (``bookleaf fleet --watch`` attaches a
  :class:`WatchRenderer`; tests attach plain lists);
* the post-run artefacts — the merged sweep trace and the HTML
  dashboard are both built from the recorded events.

The record layout is pinned by :data:`LIVE_SCHEMA_VERSION` and
:func:`validate_live_event`; CI validates the stream the fleet smoke
produces.  Progress records carry the step rate and an ETA computed by
:class:`ProgressReporter`, a step-loop observer that works from either
the step budget or the simulated-time target, whichever bounds the run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, TextIO

#: live-event record layout version (bumped on any field change)
LIVE_SCHEMA_VERSION = 1

#: every event type -> the payload fields it must carry (beyond the
#: common envelope ``schema_version``/``event``/``seq``/``t``).  Extra
#: fields are always allowed; these are the floor consumers rely on.
EVENT_FIELDS: Dict[str, tuple] = {
    "sweep_started": ("jobs", "workers"),
    "job_queued": ("job",),
    "cache_hit": ("job", "key"),
    "job_started": ("job", "attempt"),
    "job_progress": ("job", "step", "steps_per_sec", "eta_seconds"),
    "job_checkpointed": ("job", "step"),
    "job_retried": ("job", "attempt"),
    "worker_died": ("job", "worker", "attempt"),
    "worker_stalled": ("worker", "age_seconds"),
    "job_done": ("job", "nstep", "wall_seconds"),
    "job_failed": ("job", "error"),
    "ensemble_batch": ("jobs",),
    "fast_path_downgrade": ("job", "reason"),
    "trace_forced": ("jobs",),
    "sweep_done": ("jobs", "wall_seconds"),
}


def validate_live_event(rec: dict) -> None:
    """Raise ``ValueError`` unless ``rec`` is a well-formed live event."""
    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise ValueError(f"invalid live event: {msg}")

    need(isinstance(rec, dict), "not a dict")
    need(rec.get("schema_version") == LIVE_SCHEMA_VERSION,
         f"schema_version {rec.get('schema_version')!r} != "
         f"{LIVE_SCHEMA_VERSION}")
    event = rec.get("event")
    need(event in EVENT_FIELDS, f"unknown event type {event!r}")
    need(isinstance(rec.get("seq"), int) and rec["seq"] >= 0,
         "seq must be a non-negative int")
    need(isinstance(rec.get("t"), (int, float)) and rec["t"] >= 0,
         "t must be a non-negative offset in seconds")
    for field in EVENT_FIELDS[event]:
        need(field in rec, f"{event} record missing {field!r}")


def validate_live_stream(records: Sequence[dict]) -> None:
    """Validate every record and the stream invariant: ``seq`` counts
    0, 1, 2, ... with no gaps (a gap means records were lost)."""
    for i, rec in enumerate(records):
        validate_live_event(rec)
        if rec["seq"] != i:
            raise ValueError(
                f"invalid live stream: record {i} carries seq "
                f"{rec['seq']} (streams are gapless from 0)"
            )


def read_events(path: str) -> List[dict]:
    """Load an NDJSON live-event stream back into records."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class EventBus:
    """One sweep's lifecycle event stream.

    Every :meth:`emit` stamps the record (schema version, sequence
    number, seconds since the sweep epoch), appends it to
    :attr:`events`, writes it to the NDJSON sink (if any, flushed so a
    crash leaves a readable prefix) and fans it out to the listeners.
    A listener that raises does not break the sweep — the error is
    swallowed after detaching the listener.
    """

    def __init__(self, path: Optional[str] = None,
                 listeners: Optional[Sequence[Callable]] = None,
                 epoch_ns: Optional[int] = None):
        self.path = path
        self.listeners: List[Callable] = list(listeners or [])
        self.epoch_ns = (time.perf_counter_ns()
                         if epoch_ns is None else int(epoch_ns))
        self.events: List[dict] = []
        self._seq = 0
        self._fh: Optional[TextIO] = None
        if path:
            root = os.path.dirname(os.path.abspath(path))
            os.makedirs(root, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Seconds since the sweep epoch."""
        return (time.perf_counter_ns() - self.epoch_ns) / 1e9

    def emit(self, event: str, **payload) -> dict:
        rec = {
            "schema_version": LIVE_SCHEMA_VERSION,
            "event": event,
            "seq": self._seq,
            "t": round(self.elapsed, 6),
            **payload,
        }
        self._seq += 1
        self.events.append(rec)
        if self._fh is not None:
            self._fh.write(json.dumps(rec, default=repr) + "\n")
            self._fh.flush()
        for listener in list(self.listeners):
            try:
                listener(rec)
            except Exception:
                self.listeners.remove(listener)
        return rec

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventBus":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProgressReporter:
    """Step-loop observer emitting ``job_progress`` events with a step
    rate and an ETA.

    The rate is measured over the last reporting window (not
    cumulative, so it tracks the current regime after a slow start-up).
    The ETA uses whichever bound the run will hit first: the remaining
    step budget at the current step rate, or the remaining simulated
    time at the current time-advance rate — the minimum of the
    estimates that exist.  ``eta_seconds`` is None until one window has
    elapsed.
    """

    def __init__(self, emit: Callable[..., object], job: int,
                 every: int = 10, max_steps: Optional[int] = None):
        self.emit = emit
        self.job = int(job)
        self.every = max(1, int(every))
        self.max_steps = max_steps
        self._last_step: Optional[int] = None
        self._last_time: Optional[float] = None
        self._last_wall: Optional[float] = None

    def __call__(self, hydro) -> None:
        if hydro.nstep % self.every:
            return
        wall = time.perf_counter()
        rate = None
        eta = None
        if self._last_wall is not None and wall > self._last_wall:
            window = wall - self._last_wall
            rate = (hydro.nstep - self._last_step) / window
            estimates = []
            if self.max_steps is not None and rate > 0:
                estimates.append((self.max_steps - hydro.nstep) / rate)
            time_end = getattr(hydro.controls, "time_end", None)
            if time_end is not None:
                sim_rate = (hydro.time - self._last_time) / window
                if sim_rate > 0:
                    estimates.append((time_end - hydro.time) / sim_rate)
            if estimates:
                eta = max(0.0, min(estimates))
        self._last_step = hydro.nstep
        self._last_time = hydro.time
        self._last_wall = wall
        self.emit("job_progress", job=self.job, step=int(hydro.nstep),
                  time=float(hydro.time),
                  steps_per_sec=(round(rate, 3)
                                 if rate is not None else None),
                  eta_seconds=(round(eta, 3)
                               if eta is not None else None))


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class WatchRenderer:
    """Renders the live-event stream as a per-job status table
    (``bookleaf fleet --watch``).

    Attached to an :class:`EventBus` as a listener.  On a TTY the
    table redraws in place (cursor-up + erase); on a pipe it degrades
    to one plain line per lifecycle transition, so ``--watch`` output
    stays useful under ``tee`` and in CI logs.
    """

    #: events that change a job's displayed status
    _STATUS = {
        "job_queued": "queued",
        "job_started": "running",
        "job_retried": "retrying",
        "cache_hit": "cached",
        "job_done": "done",
        "job_failed": "failed",
    }

    def __init__(self, out: Optional[TextIO] = None,
                 live: Optional[bool] = None):
        self.out = out if out is not None else sys.stderr
        self.live = (self.out.isatty() if live is None else bool(live))
        self.jobs: Dict[int, dict] = {}
        self.stalled_workers: List[int] = []
        self._drawn_lines = 0

    # ------------------------------------------------------------------
    def __call__(self, rec: dict) -> None:
        event = rec["event"]
        job = rec.get("job")
        if job is not None:
            row = self.jobs.setdefault(int(job), {
                "status": "queued", "step": None, "rate": None,
                "eta": None, "attempt": 1, "detail": "",
            })
            if event in self._STATUS:
                row["status"] = self._STATUS[event]
            if event == "job_started":
                row["attempt"] = rec.get("attempt", 1)
            elif event == "job_progress":
                row["step"] = rec.get("step")
                row["rate"] = rec.get("steps_per_sec")
                row["eta"] = rec.get("eta_seconds")
            elif event == "job_checkpointed":
                row["detail"] = f"ckpt@{rec.get('step')}"
            elif event == "job_done":
                row["step"] = rec.get("nstep")
                row["eta"] = 0.0
                row["detail"] = f"{rec.get('wall_seconds', 0):.2f}s"
            elif event == "job_failed":
                row["detail"] = str(rec.get("error", ""))[:40]
            elif event == "fast_path_downgrade":
                row["detail"] = f"per-job ({rec.get('reason')})"
        elif event == "worker_stalled":
            self.stalled_workers.append(rec.get("worker"))
        elif event == "ensemble_batch":
            for j in rec.get("jobs", []):
                row = self.jobs.setdefault(int(j), {
                    "status": "queued", "step": None, "rate": None,
                    "eta": None, "attempt": 1, "detail": "",
                })
                row["status"] = "batched"
        if self.live:
            self._redraw()
        elif event in self._STATUS or event == "worker_stalled":
            self.out.write(self._line(rec) + "\n")
            self.out.flush()

    # ------------------------------------------------------------------
    def _line(self, rec: dict) -> str:
        if rec["event"] == "worker_stalled":
            return (f"[{rec['t']:8.2f}s] worker {rec.get('worker')} "
                    f"stalled ({rec.get('age_seconds', 0):.1f}s silent)")
        job = rec.get("job")
        row = self.jobs.get(int(job), {}) if job is not None else {}
        return (f"[{rec['t']:8.2f}s] job {job}: {row.get('status', '?')}"
                + (f" ({row['detail']})" if row.get("detail") else ""))

    def render(self) -> str:
        """The current table, as text (also the non-TTY final frame)."""
        headers = ("job", "status", "step", "steps/s", "eta", "note")
        body = []
        for job in sorted(self.jobs):
            row = self.jobs[job]
            rate = row["rate"]
            body.append((
                str(job), row["status"],
                "-" if row["step"] is None else str(row["step"]),
                "-" if rate is None else f"{rate:.1f}",
                _fmt_eta(row["eta"]), row["detail"],
            ))
        widths = [max(len(h), *(len(r[i]) for r in body)) if body
                  else len(h) for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w)
                           for h, w in zip(headers, widths))]
        for r in body:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(r, widths)))
        if self.stalled_workers:
            lines.append(f"stalled workers: "
                         f"{sorted(set(self.stalled_workers))}")
        return "\n".join(lines)

    def _redraw(self) -> None:
        frame = self.render()
        if self._drawn_lines:
            # move to the top of the previous frame and erase downward
            self.out.write(f"\x1b[{self._drawn_lines}F\x1b[J")
        self.out.write(frame + "\n")
        self.out.flush()
        self._drawn_lines = frame.count("\n") + 1
