"""Chrome trace-event output (``bookleaf run --trace``).

Serialises the recorded spans as a Trace Event Format JSON object —
the format Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``
load directly.  Every rank becomes one *thread row* (``tid`` = rank)
inside one process, so a decomposed run renders as stacked per-rank
timelines on a shared clock: the run/step/phase/kernel hierarchy nests
by timestamp within a row, and the Typhon ``comm`` spans make barrier
waits (load imbalance) directly visible.

Spans map to complete events (``"ph": "X"``, microsecond ``ts``/
``dur``) and zero-duration markers to instant events (``"ph": "i"``);
metadata events name the process and the rank rows.  See
docs/OBSERVABILITY.md for a screenshot-level walkthrough.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from .spans import CATEGORIES, Span

PROCESS_NAME = "bookleaf"

#: categories legal in a trace file: the span hierarchy plus the
#: sweep-level rows (``fleet`` scheduler facts, ``flow`` arrows
#: linking a killed attempt to its resumed retry)
TRACE_CATEGORIES = CATEGORIES + ("fleet", "flow")


def trace_events(spans: Iterable[Span]) -> dict:
    """Build the trace-event JSON object from a merged span stream."""
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": PROCESS_NAME},
    }]
    ranks = sorted({span.rank for span in spans})
    for rank in ranks:
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": rank,
            "args": {"name": f"rank {rank}"},
        })
    for span in spans:
        args = dict(span.args)
        if span.alloc_bytes is not None:
            args["alloc_bytes"] = span.alloc_bytes
        event = {
            "name": span.name,
            "cat": span.cat,
            "pid": 0,
            "tid": span.rank,
            "ts": span.t0_ns / 1e3,       # microseconds
        }
        if span.dur_ns == 0:
            event["ph"] = "i"
            event["s"] = "t"              # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = max(span.dur_ns, 0) / 1e3
        if args:
            event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry"},
    }


def write_trace(spans: Iterable[Span], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(trace_events(list(spans))) + "\n")
    return path


def validate_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless ``trace`` is a well-formed trace-event
    object (the checks Perfetto's loader effectively performs)."""
    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise ValueError(f"invalid trace: {msg}")

    need(isinstance(trace, dict), "not a dict")
    events = trace.get("traceEvents")
    need(isinstance(events, list) and events, "traceEvents missing/empty")
    for event in events:
        need(isinstance(event.get("name"), str), "event without a name")
        ph = event.get("ph")
        need(ph in ("X", "i", "M", "s", "f"), f"unsupported phase {ph!r}")
        need(isinstance(event.get("pid"), int), "event without pid")
        need(isinstance(event.get("tid"), int), "event without tid")
        if ph == "M":
            continue
        need(isinstance(event.get("ts"), (int, float)) and event["ts"] >= 0,
             "event with negative/missing ts")
        need(event.get("cat") in TRACE_CATEGORIES,
             f"unknown category {event.get('cat')!r}")
        if ph == "X":
            need(isinstance(event.get("dur"), (int, float))
                 and event["dur"] >= 0, "X event with bad dur")
        if ph == "i":
            need(event.get("s") in ("t", "p", "g"), "i event without scope")
        if ph in ("s", "f"):
            need(isinstance(event.get("id"), int),
                 f"{ph} flow event without an id")
        if ph == "f":
            need(event.get("bp") == "e",
                 "f flow event without bp='e' (binds to enclosing slice)")
