"""One merged Chrome/Perfetto trace for a whole fleet sweep.

A single run's trace (:mod:`repro.telemetry.trace`) renders ranks as
thread rows of one process.  A sweep is a different shape: many jobs,
executed by many workers, with scheduling events (cache hits,
checkpoints, retries) that belong to the *fleet*, not to any rank.
The :class:`SweepTraceBuilder` lays that out as

* one **process row per worker** (``pid = worker id + 1``) plus the
  scheduler itself (``pid = 0``) — inline and batched jobs render
  under the scheduler, pool jobs under the worker that finished them;
* one **thread row per job/rank** (``tid = 1 + job*RANK_STRIDE +
  rank``), carrying the job's run → step → phase → kernel spans
  shipped back from the worker;
* **instant events** for scheduler facts — cache hits, checkpoint
  writes — pinned to the job's row;
* **flow events** (``ph: "s"``/``"f"``) linking a killed attempt to
  the resumed retry that completed the job, so a kill → resume renders
  as an arrow across worker process rows in Perfetto.

Event order is deterministic: jobs ascending, each job's spans in
recording order, instants by job then time — *not* by arrival, which
would differ run to run with worker scheduling.  The determinism test
asserts ``workers=1`` and ``workers=4`` sweeps produce event-identical
traces modulo timestamps and worker assignment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .spans import Span

#: tid stride between job rows — rank r of job j renders at
#: ``1 + j*RANK_STRIDE + r`` (tid 0 is the scheduler's own row)
RANK_STRIDE = 64

SCHEDULER_PID = 0


class SweepTraceBuilder:
    """Accumulates per-job records during a sweep; :meth:`build` emits
    the merged trace-event object."""

    def __init__(self, epoch_ns: int = 0):
        self.epoch_ns = int(epoch_ns)
        self.jobs: Dict[int, dict] = {}
        self.instants: List[dict] = []
        self.flows: List[dict] = []
        self.batches: List[dict] = []

    # ------------------------------------------------------------------
    def add_job(self, job: int, *, pid: int = SCHEDULER_PID,
                start_ns: int = 0,
                spans: Optional[List] = None,
                label: str = "") -> None:
        """Attach a job's span shard: ``pid`` is the worker process
        that completed it (0 = scheduler/inline), ``start_ns`` the
        sweep-epoch offset its tracer epoch corresponds to."""
        spans = [s if isinstance(s, Span) else Span(**s)
                 for s in (spans or [])]
        self.jobs[int(job)] = {
            "pid": int(pid),
            "start_ns": int(start_ns),
            "spans": spans,
            "label": label,
        }

    def add_instant(self, job: int, name: str, t_ns: int,
                    args: Optional[dict] = None) -> None:
        """A scheduler fact pinned to the job's row (cache hit,
        checkpoint write, retry)."""
        self.instants.append({
            "job": int(job), "name": name, "t_ns": int(t_ns),
            "args": dict(args) if args else {},
        })

    def add_flow(self, job: int, *, from_pid: int, from_ns: int,
                 to_pid: int, to_ns: int, name: str = "resume") -> None:
        """An arrow from a killed attempt (on its worker's row) to the
        retry that resumed the job (on its worker's row)."""
        self.flows.append({
            "job": int(job), "name": name,
            "from_pid": int(from_pid), "from_ns": int(from_ns),
            "to_pid": int(to_pid), "to_ns": int(to_ns),
        })

    def add_batch(self, jobs: List[int], t0_ns: int, dur_ns: int) -> None:
        """One batched ensemble pass, rendered as a span on the
        scheduler's own row."""
        self.batches.append({
            "jobs": [int(j) for j in jobs],
            "t0_ns": int(t0_ns), "dur_ns": int(dur_ns),
        })

    # ------------------------------------------------------------------
    def _tid(self, job: int, rank: int = 0) -> int:
        return 1 + job * RANK_STRIDE + min(rank, RANK_STRIDE - 1)

    def build(self) -> dict:
        """The merged trace-event object (Perfetto-loadable)."""
        events: List[dict] = []
        pids = sorted({rec["pid"] for rec in self.jobs.values()}
                      | {SCHEDULER_PID}
                      | {f["from_pid"] for f in self.flows}
                      | {f["to_pid"] for f in self.flows})
        for pid in pids:
            name = ("fleet scheduler" if pid == SCHEDULER_PID
                    else f"worker {pid - 1}")
            events.append({"name": "process_name", "ph": "M",
                           "pid": pid, "tid": 0,
                           "args": {"name": name}})
        for job in sorted(self.jobs):
            rec = self.jobs[job]
            ranks = sorted({s.rank for s in rec["spans"]}) or [0]
            for rank in ranks:
                name = f"job {job}"
                if rec["label"]:
                    name += f" ({rec['label']})"
                if len(ranks) > 1:
                    name += f" rank {rank}"
                events.append({"name": "thread_name", "ph": "M",
                               "pid": rec["pid"],
                               "tid": self._tid(job, rank),
                               "args": {"name": name}})
        for batch in self.batches:
            events.append({
                "name": f"ensemble batch ({len(batch['jobs'])} jobs)",
                "cat": "fleet", "ph": "X",
                "pid": SCHEDULER_PID, "tid": 0,
                "ts": batch["t0_ns"] / 1e3,
                "dur": max(batch["dur_ns"], 0) / 1e3,
                "args": {"jobs": batch["jobs"]},
            })
        for job in sorted(self.jobs):
            rec = self.jobs[job]
            for span in rec["spans"]:
                args = dict(span.args)
                if span.alloc_bytes is not None:
                    args["alloc_bytes"] = span.alloc_bytes
                event = {
                    "name": span.name,
                    "cat": span.cat,
                    "pid": rec["pid"],
                    "tid": self._tid(job, span.rank),
                    "ts": (rec["start_ns"] + span.t0_ns) / 1e3,
                }
                if span.dur_ns == 0:
                    event["ph"] = "i"
                    event["s"] = "t"
                else:
                    event["ph"] = "X"
                    event["dur"] = max(span.dur_ns, 0) / 1e3
                if args:
                    event["args"] = args
                events.append(event)
        for inst in sorted(self.instants,
                           key=lambda i: (i["job"], i["t_ns"], i["name"])):
            job = inst["job"]
            pid = (self.jobs[job]["pid"] if job in self.jobs
                   else SCHEDULER_PID)
            event = {
                "name": inst["name"], "cat": "fleet", "ph": "i",
                "pid": pid, "tid": self._tid(job),
                "ts": inst["t_ns"] / 1e3, "s": "t",
            }
            if inst["args"]:
                event["args"] = inst["args"]
            events.append(event)
        flow_counts: Dict[int, int] = {}
        for flow in sorted(self.flows,
                           key=lambda f: (f["job"], f["to_ns"])):
            job = flow["job"]
            n = flow_counts.get(job, 0)
            flow_counts[job] = n + 1
            flow_id = 1 + job * RANK_STRIDE + n
            common = {"name": flow["name"], "cat": "flow",
                      "id": flow_id}
            events.append({**common, "ph": "s", "pid": flow["from_pid"],
                           "tid": self._tid(job),
                           "ts": flow["from_ns"] / 1e3})
            events.append({**common, "ph": "f", "bp": "e",
                           "pid": flow["to_pid"],
                           "tid": self._tid(job),
                           "ts": flow["to_ns"] / 1e3})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.telemetry.sweep"},
        }


def write_sweep_trace(builder: Union[SweepTraceBuilder, dict],
                      path: Union[str, Path]) -> Path:
    trace = (builder.build() if isinstance(builder, SweepTraceBuilder)
             else builder)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace) + "\n")
    return path


def strip_nondeterminism(trace: dict) -> List[dict]:
    """The determinism view of a sweep trace: metadata rows dropped
    (worker naming follows pool width), clocks and worker assignment
    (``ts``/``dur``/``pid``) stripped — what remains must be identical
    for ``workers=1`` and ``workers=4`` sweeps of the same configs."""
    out = []
    for event in trace["traceEvents"]:
        if event.get("ph") == "M":
            continue
        out.append({k: v for k, v in event.items()
                    if k not in ("ts", "dur", "pid")})
    return out
