"""Restart dumps: checkpoint and resume a calculation.

BookLeaf-scale production codes checkpoint; this module provides the
equivalent for the reproduction: the full :class:`HydroState` (mesh
topology, coordinates, fields, masses, BCs) plus the driver's clock
are written to a single compressed ``.npz`` and can be restored into a
bit-identical state, so a resumed run continues exactly where the
original would have (verified by the tests).

The material table and controls are *not* serialised (they are code,
reconstructed by the caller); a fingerprint of the mesh topology and
material indices guards against resuming with mismatched setups.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..core.hydro import Hydro
from ..core.state import HydroState
from ..mesh.boundary import BoundaryConditions
from ..mesh.topology import QuadMesh
from ..utils.errors import BookLeafError

FORMAT_VERSION = 1

_STATE_FIELDS = (
    "x", "y", "u", "v", "rho", "e", "p", "cs2", "q", "mat",
    "cell_mass", "corner_mass", "volume", "corner_volume",
)


def _fingerprint(cell_nodes: np.ndarray, mat: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(cell_nodes).tobytes())
    digest.update(np.ascontiguousarray(mat).tobytes())
    return digest.hexdigest()


def write_restart(path: Union[str, Path], state: HydroState,
                  time: float = 0.0, nstep: int = 0,
                  dt: float = 0.0) -> Path:
    """Write a restart dump; returns the path."""
    path = Path(path)
    payload = {name: getattr(state, name) for name in _STATE_FIELDS}
    payload.update(
        version=np.int64(FORMAT_VERSION),
        mesh_x0=state.mesh.x,
        mesh_y0=state.mesh.y,
        cell_nodes=state.mesh.cell_nodes,
        bc_flags=state.bc.flags,
        bc_ux=state.bc.ux,
        bc_uy=state.bc.uy,
        time=np.float64(time),
        nstep=np.int64(nstep),
        dt=np.float64(dt),
        fingerprint=np.frombuffer(
            _fingerprint(state.mesh.cell_nodes, state.mat).encode(),
            dtype=np.uint8,
        ),
    )
    np.savez_compressed(path, **payload)
    return path


def read_restart(path: Union[str, Path]
                 ) -> Tuple[HydroState, float, int, float]:
    """Read a restart dump; returns ``(state, time, nstep, dt)``."""
    path = Path(path)
    try:
        data = np.load(path)
    except OSError as exc:
        raise BookLeafError(f"cannot read restart {path}: {exc}") from exc
    version = int(data["version"])
    if version != FORMAT_VERSION:
        raise BookLeafError(
            f"restart {path} has format version {version}, "
            f"expected {FORMAT_VERSION}"
        )
    mesh = QuadMesh(data["mesh_x0"], data["mesh_y0"], data["cell_nodes"])
    bc = BoundaryConditions(data["bc_flags"], data["bc_ux"], data["bc_uy"])
    fields = {name: data[name] for name in _STATE_FIELDS}
    state = HydroState(mesh=mesh, bc=bc, **fields)
    expected = _fingerprint(mesh.cell_nodes, state.mat)
    stored = bytes(data["fingerprint"]).decode()
    if stored != expected:
        raise BookLeafError(f"restart {path} failed its fingerprint check")
    return state, float(data["time"]), int(data["nstep"]), float(data["dt"])


def checkpoint(hydro: Hydro, path: Union[str, Path]) -> Path:
    """Checkpoint a driver (state + clock)."""
    return write_restart(path, hydro.state, time=hydro.time,
                         nstep=hydro.nstep, dt=hydro.dt)


def resume(path: Union[str, Path], table, controls,
           timers=None, logger=None) -> Hydro:
    """Build a :class:`Hydro` driver resumed from a checkpoint.

    The caller supplies the (non-serialised) material table and
    controls; the returned driver continues from the stored clock.
    """
    state, time, nstep, dt = read_restart(path)
    hydro = Hydro(state, table, controls, timers=timers, logger=logger)
    hydro.time = time
    hydro.nstep = nstep
    if dt > 0.0:
        hydro.dt = dt
    return hydro
