"""Output facilities: legacy VTK dumps, time-history CSV, ASCII plots."""

from .ascii_plot import ascii_plot
from .profiles import (
    Profile,
    front_position,
    linear_profile,
    radial_profile,
)
from .restart import checkpoint, read_restart, resume, write_restart
from .timehist import TimeHistory
from .vtk import write_vtk

__all__ = [
    "write_vtk",
    "TimeHistory",
    "ascii_plot",
    "checkpoint",
    "resume",
    "read_restart",
    "write_restart",
    "Profile",
    "linear_profile",
    "radial_profile",
    "front_position",
]
