"""Terminal line plots for the examples (no plotting dependency).

A minimal scatter/line renderer good enough to eyeball a density
profile against its analytic solution in a terminal, used by the
example scripts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def ascii_plot(x: Sequence[float], series: dict,
               width: int = 72, height: int = 20,
               title: str = "", xlabel: str = "") -> str:
    """Render ``series = {label: y-array}`` against ``x`` as text.

    The first character of each label is used as its marker; later
    series draw over earlier ones where they collide.
    """
    x = np.asarray(x, dtype=np.float64)
    ys = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    ymin = min(float(np.nanmin(v)) for v in ys.values())
    ymax = max(float(np.nanmax(v)) for v in ys.values())
    if ymax <= ymin:
        ymax = ymin + 1.0
    xmin, xmax = float(x.min()), float(x.max())
    if xmax <= xmin:
        xmax = xmin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for label, y in ys.items():
        marker = label[0]
        cols = np.clip(((x - xmin) / (xmax - xmin) * (width - 1)).round()
                       .astype(int), 0, width - 1)
        rows = np.clip(((ymax - y) / (ymax - ymin) * (height - 1)).round()
                       .astype(int), 0, height - 1)
        for r, c in zip(rows, cols):
            grid[r][c] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{ymin:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{xmin:<10.3g}{xlabel:^{max(width - 20, 0)}}"
                            f"{xmax:>10.3g}")
    legend = "   ".join(f"{k[0]} = {k}" for k in ys)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
