"""Time-history recording (BookLeaf's step diagnostics file).

:class:`TimeHistory` is a :class:`~repro.core.hydro.Hydro` observer
that records the conservation diagnostics every N steps and can write
them as CSV — the data behind convergence/conservation plots and the
regression tests on energy behaviour.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

FIELDS = [
    "nstep", "time", "dt", "mass", "internal_energy", "kinetic_energy",
    "total_energy", "momentum_x", "momentum_y", "rho_max", "rho_min",
    "p_max",
]


@dataclass
class TimeHistory:
    """Records ``hydro.diagnostics()`` rows at a fixed step cadence."""

    every: int = 1
    rows: List[Dict[str, float]] = field(default_factory=list)

    def __call__(self, hydro) -> None:
        """Observer hook: append a row when the cadence fires."""
        if self.every <= 0 or hydro.nstep % self.every:
            return
        self.rows.append(hydro.diagnostics())

    def column(self, name: str) -> List[float]:
        """One diagnostic across all recorded rows."""
        return [row[name] for row in self.rows]

    def write_csv(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=FIELDS)
            writer.writeheader()
            for row in self.rows:
                writer.writerow({k: row[k] for k in FIELDS})
        return path
