"""Legacy-VTK output of the unstructured mesh and fields.

BookLeaf dumps its mesh and cell/node fields for visualisation; we
write ASCII legacy VTK (``.vtk``) unstructured-grid files readable by
ParaView/VisIt with no third-party dependency.  Cell fields (ρ, e, p,
q, material) and node fields (velocity) are written as CELL_DATA and
POINT_DATA respectively.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..core.state import HydroState

_VTK_QUAD = 9


def write_vtk(state: HydroState, path: Union[str, Path],
              title: str = "bookleaf dump",
              extra_cell_fields: Optional[Dict[str, np.ndarray]] = None
              ) -> Path:
    """Write the state to a legacy VTK file; returns the path."""
    path = Path(path)
    mesh = state.mesh
    lines = [
        "# vtk DataFile Version 3.0",
        title,
        "ASCII",
        "DATASET UNSTRUCTURED_GRID",
        f"POINTS {mesh.nnode} double",
    ]
    for xi, yi in zip(state.x, state.y):
        lines.append(f"{xi:.12g} {yi:.12g} 0.0")
    lines.append(f"CELLS {mesh.ncell} {mesh.ncell * 5}")
    for quad in mesh.cell_nodes:
        lines.append("4 " + " ".join(str(int(n)) for n in quad))
    lines.append(f"CELL_TYPES {mesh.ncell}")
    lines.extend([str(_VTK_QUAD)] * mesh.ncell)

    cell_fields = {
        "density": state.rho,
        "internal_energy": state.e,
        "pressure": state.p,
        "viscosity": state.q,
        "material": state.mat.astype(np.float64),
    }
    if extra_cell_fields:
        cell_fields.update(extra_cell_fields)
    lines.append(f"CELL_DATA {mesh.ncell}")
    for name, field in cell_fields.items():
        lines.append(f"SCALARS {name} double 1")
        lines.append("LOOKUP_TABLE default")
        lines.extend(f"{v:.12g}" for v in field)

    lines.append(f"POINT_DATA {mesh.nnode}")
    lines.append("VECTORS velocity double")
    for ui, vi in zip(state.u, state.v):
        lines.append(f"{ui:.12g} {vi:.12g} 0.0")

    path.write_text("\n".join(lines) + "\n")
    return path
