"""Profile extraction: binned 1-D views of 2-D solutions.

Shock-tube and implosion solutions are compared against 1-D analytic
references, so the recurring operation is "bin this cell field along x
(or along radius) and average".  This module provides that as a small
API used by the examples and available to downstream users:

* :func:`linear_profile`  — bin a cell field along x (tube problems),
* :func:`radial_profile`  — bin along radius (Noh, Sedov),
* :func:`front_position`  — locate a front by thresholding the binned
  profile from the far side (robust against origin artefacts),
* :class:`Profile` — the binned result with centres, means, counts and
  extrema per bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.state import HydroState
from ..utils.errors import BookLeafError


@dataclass(frozen=True)
class Profile:
    """A binned 1-D profile of a cell field."""

    centres: np.ndarray
    mean: np.ndarray
    count: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray

    def valid(self) -> np.ndarray:
        """Mask of bins that contain at least one cell."""
        return self.count > 0

    def interp(self, x: np.ndarray) -> np.ndarray:
        """Linear interpolation of the mean profile at ``x``."""
        ok = self.valid()
        return np.interp(x, self.centres[ok], self.mean[ok])


def _bin_field(coord: np.ndarray, field: np.ndarray,
               bins: np.ndarray) -> Profile:
    if bins.size < 2:
        raise BookLeafError("need at least two bin edges")
    idx = np.digitize(coord, bins) - 1
    nbin = bins.size - 1
    # points landing exactly on the last edge belong to the last bin
    idx[coord == bins[-1]] = nbin - 1
    inside = (idx >= 0) & (idx < nbin)
    idx = idx[inside]
    values = field[inside]
    count = np.bincount(idx, minlength=nbin)
    total = np.bincount(idx, weights=values, minlength=nbin)
    mean = np.divide(total, count, out=np.zeros(nbin), where=count > 0)
    minimum = np.full(nbin, np.inf)
    maximum = np.full(nbin, -np.inf)
    np.minimum.at(minimum, idx, values)
    np.maximum.at(maximum, idx, values)
    minimum[count == 0] = np.nan
    maximum[count == 0] = np.nan
    return Profile(
        centres=0.5 * (bins[:-1] + bins[1:]),
        mean=mean,
        count=count,
        minimum=minimum,
        maximum=maximum,
    )


def linear_profile(state: HydroState, field: np.ndarray,
                   nbins: int = 50,
                   extent: Optional[Tuple[float, float]] = None) -> Profile:
    """Bin a cell field along x on the current (moved) geometry."""
    xc, _ = state.mesh.cell_centroids(state.x, state.y)
    if extent is None:
        extent = (float(xc.min()), float(xc.max()))
    bins = np.linspace(extent[0], extent[1], nbins + 1)
    return _bin_field(xc, field, bins)


def radial_profile(state: HydroState, field: np.ndarray,
                   nbins: int = 50, origin: Tuple[float, float] = (0.0, 0.0),
                   r_max: Optional[float] = None) -> Profile:
    """Bin a cell field along radius from ``origin``."""
    xc, yc = state.mesh.cell_centroids(state.x, state.y)
    r = np.hypot(xc - origin[0], yc - origin[1])
    if r_max is None:
        r_max = float(r.max())
    bins = np.linspace(0.0, r_max, nbins + 1)
    return _bin_field(r, field, bins)


def front_position(profile: Profile, threshold: float,
                   from_inside: bool = True) -> float:
    """Locate a front: the outermost bin (ascending coordinate) whose
    mean exceeds ``threshold`` when ``from_inside`` (shock moving
    outward/rightward into quiet material), else the innermost one.
    Raises if the threshold is never crossed."""
    ok = profile.valid() & (profile.mean > threshold)
    if not ok.any():
        raise BookLeafError(
            f"profile never exceeds the threshold {threshold}"
        )
    hits = profile.centres[ok]
    return float(hits.max() if from_inside else hits.min())
