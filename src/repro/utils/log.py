"""Run logging in the style of BookLeaf's step banner.

BookLeaf prints one line per step (step number, time, dt, controlling
cell and which constraint chose the timestep).  :class:`StepLogger`
reproduces that, with a configurable cadence so long runs stay quiet.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, TextIO


@dataclass
class StepLogger:
    """Prints a BookLeaf-style per-step banner line.

    Parameters
    ----------
    every:
        Print one line every ``every`` steps (0 silences output).
    stream:
        Output stream, defaulting to stdout.
    """

    every: int = 0
    stream: Optional[TextIO] = None

    def step(self, nstep: int, time: float, dt: float,
             control: str = "", cell: int = -1) -> None:
        if self.every <= 0 or nstep % self.every:
            return
        stream = self.stream or sys.stdout
        where = f" cell={cell}" if cell >= 0 else ""
        stream.write(
            f"step {nstep:6d}  t={time:12.6e}  dt={dt:12.6e}  {control}{where}\n"
        )

    def banner(self, text: str) -> None:
        if self.every <= 0:
            return
        stream = self.stream or sys.stdout
        stream.write(text.rstrip() + "\n")
