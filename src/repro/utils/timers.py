"""Hierarchical kernel timers mirroring BookLeaf's timer regions.

The Fortran mini-app wraps every hydro kernel in a named timer region
(``getq``, ``getacc``, ...) and prints a per-kernel breakdown at the end
of the run — that breakdown is exactly what the paper's Table II
reports.  This module provides the same facility:

* :class:`TimerRegistry` — a registry of named accumulating timers,
* :func:`TimerRegistry.region` — a context manager charging wall time to
  a region,
* call counting, so the performance model can be driven by *measured*
  kernel-invocation counts rather than assumptions.

Timers are cheap (one ``perf_counter`` pair per region entry) and can be
disabled wholesale for benchmarking the raw kernels.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Timer:
    """A single accumulating timer: total seconds and invocation count."""

    name: str
    seconds: float = 0.0
    calls: int = 0

    def add(self, dt: float) -> None:
        self.seconds += dt
        self.calls += 1


@dataclass
class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    The registry is hierarchical only by naming convention (BookLeaf uses
    flat names, so do we).  ``enabled=False`` turns every region into a
    no-op with near-zero overhead.
    """

    enabled: bool = True
    timers: Dict[str, Timer] = field(default_factory=dict)

    def get(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = Timer(name)
            self.timers[name] = timer
        return timer

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Charge the wall time spent inside the ``with`` block to ``name``."""
        if not self.enabled:
            yield
            return
        timer = self.get(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            timer.add(time.perf_counter() - start)

    def seconds(self, name: str) -> float:
        timer = self.timers.get(name)
        return 0.0 if timer is None else timer.seconds

    def calls(self, name: str) -> int:
        timer = self.timers.get(name)
        return 0 if timer is None else timer.calls

    def total(self) -> float:
        return sum(t.seconds for t in self.timers.values())

    def reset(self) -> None:
        self.timers.clear()

    def merge(self, other: "TimerRegistry") -> None:
        """Accumulate another registry into this one (used by the
        distributed driver to aggregate per-rank timers)."""
        for name, timer in other.timers.items():
            mine = self.get(name)
            mine.seconds += timer.seconds
            mine.calls += timer.calls

    def breakdown(self, kernels: Optional[List[str]] = None) -> str:
        """Format a BookLeaf-style per-kernel breakdown table.

        ``kernels`` restricts and orders the rows; by default all timers
        are shown sorted by accumulated time (descending).
        """
        names = kernels if kernels is not None else sorted(
            self.timers, key=lambda n: -self.timers[n].seconds
        )
        total = self.total()
        lines = [f"{'kernel':<16}{'seconds':>12}{'calls':>10}{'share':>9}"]
        for name in names:
            timer = self.timers.get(name)
            if timer is None:
                continue
            share = 100.0 * timer.seconds / total if total > 0 else 0.0
            lines.append(
                f"{name:<16}{timer.seconds:>12.4f}{timer.calls:>10d}{share:>8.1f}%"
            )
        lines.append(f"{'total':<16}{total:>12.4f}")
        return "\n".join(lines)
