"""Hierarchical kernel timers mirroring BookLeaf's timer regions.

The Fortran mini-app wraps every hydro kernel in a named timer region
(``getq``, ``getacc``, ...) and prints a per-kernel breakdown at the end
of the run — that breakdown is exactly what the paper's Table II
reports.  This module provides the same facility:

* :class:`TimerRegistry` — a registry of named accumulating timers,
* :func:`TimerRegistry.region` — a context manager charging wall time to
  a region,
* call counting, so the performance model can be driven by *measured*
  kernel-invocation counts rather than assumptions,
* an optional :class:`~repro.telemetry.spans.Tracer` hook
  (``registry.tracer = Tracer(...)``): every region entry is then also
  recorded as an individual trace span, which is how the telemetry
  layer (docs/OBSERVABILITY.md) sees the kernels without any change to
  the kernel call sites — the cost when no tracer is attached is one
  ``is None`` check per region,
* an optional ``tracemalloc``-backed allocation counter
  (``trace_allocations=True``), which charges the *net* allocated bytes
  and the peak allocation observed inside each region — the
  observability half of the allocation-free-hot-loop work: the
  workspace tests assert that a planned ``lagstep`` stops allocating.

Timers are cheap (one ``perf_counter`` pair per region entry) and can be
disabled wholesale for benchmarking the raw kernels.  Allocation tracing
is *not* cheap (tracemalloc intercepts every allocation) — enable it for
diagnosis and tests, never for benchmark timing runs.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Timer:
    """A single accumulating timer: total seconds and invocation count.

    When allocation tracing is enabled, ``alloc_bytes`` accumulates the
    net bytes allocated inside the region across calls (allocations
    minus frees — steady-state buffer reuse nets to ~zero) and
    ``alloc_peak`` holds the largest single-call peak allocation.
    """

    name: str
    seconds: float = 0.0
    calls: int = 0
    alloc_bytes: int = 0
    alloc_peak: int = 0

    def add(self, dt: float) -> None:
        self.seconds += dt
        self.calls += 1

    def add_alloc(self, net: int, peak: int) -> None:
        self.alloc_bytes += net
        if peak > self.alloc_peak:
            self.alloc_peak = peak


@dataclass
class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    The registry is hierarchical only by naming convention (BookLeaf uses
    flat names, so do we).  ``enabled=False`` turns every region into a
    no-op with near-zero overhead.  ``trace_allocations=True`` starts
    ``tracemalloc`` on first use and charges per-region allocation
    deltas; nested regions attribute peaks to the innermost region.
    """

    enabled: bool = True
    trace_allocations: bool = False
    timers: Dict[str, Timer] = field(default_factory=dict)
    #: optional :class:`~repro.telemetry.spans.Tracer`; when attached,
    #: every region entry is also recorded as one trace span
    tracer: Optional[object] = None

    def get(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = Timer(name)
            self.timers[name] = timer
        return timer

    @contextmanager
    def region(self, name: str, cat: str = "kernel") -> Iterator[None]:
        """Charge the wall time spent inside the ``with`` block to ``name``.

        ``cat`` is only meaningful when a tracer is attached: it sets
        the recorded span's category (the ``alestep`` region is a
        *phase* in the span hierarchy, the rest are kernels).
        """
        if not self.enabled:
            yield
            return
        timer = self.get(name)
        tracing = self.trace_allocations
        tracer = self.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        if tracing:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
            tracemalloc.reset_peak()
            size0, _ = tracemalloc.get_traced_memory()
        start_ns = time.perf_counter_ns()
        try:
            yield
        finally:
            dur_ns = time.perf_counter_ns() - start_ns
            timer.add(dur_ns * 1e-9)
            net = None
            if tracing and tracemalloc.is_tracing():
                size1, peak = tracemalloc.get_traced_memory()
                net = size1 - size0
                timer.add_alloc(net, peak - size0)
                # Re-arm the peak so an enclosing region's remainder is
                # measured on its own, not against this region's peak.
                tracemalloc.reset_peak()
            if tracer is not None:
                tracer.record(name, cat, start_ns, dur_ns,
                              alloc_bytes=net)

    def trace_span(self, name: str, cat: str = "phase",
                   args: Optional[dict] = None):
        """A tracer span *without* a timer — the structural levels of
        the span hierarchy (run, step, lagstep) that must not double-
        charge the kernel accumulators.  A shared no-op context when no
        tracer is attached, so untraced runs pay nothing."""
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return nullcontext()
        return tracer.span(name, cat, args)

    def trace_instant(self, name: str, cat: str = "phase",
                      args: Optional[dict] = None) -> None:
        """Record a zero-duration marker event on the attached tracer."""
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(name, cat, args)

    def seconds(self, name: str) -> float:
        timer = self.timers.get(name)
        return 0.0 if timer is None else timer.seconds

    def calls(self, name: str) -> int:
        timer = self.timers.get(name)
        return 0 if timer is None else timer.calls

    def alloc_bytes(self, name: str) -> int:
        timer = self.timers.get(name)
        return 0 if timer is None else timer.alloc_bytes

    def alloc_peak(self, name: str) -> int:
        timer = self.timers.get(name)
        return 0 if timer is None else timer.alloc_peak

    def total(self) -> float:
        return sum(t.seconds for t in self.timers.values())

    def reset(self) -> None:
        self.timers.clear()

    def merge(self, other: "TimerRegistry") -> None:
        """Accumulate another registry into this one (used by the
        distributed driver to aggregate per-rank timers)."""
        for name, timer in other.timers.items():
            mine = self.get(name)
            mine.seconds += timer.seconds
            mine.calls += timer.calls
            mine.alloc_bytes += timer.alloc_bytes
            if timer.alloc_peak > mine.alloc_peak:
                mine.alloc_peak = timer.alloc_peak

    def breakdown(self, kernels: Optional[List[str]] = None) -> str:
        """Format a BookLeaf-style per-kernel breakdown table.

        ``kernels`` restricts and orders the rows; by default all timers
        are shown sorted by accumulated time (descending).  When
        allocation tracing was on, an allocations column (net bytes +
        worst single-call peak) extends the Table II format.
        """
        names = kernels if kernels is not None else sorted(
            self.timers, key=lambda n: -self.timers[n].seconds
        )
        total = self.total()
        traced = any(t.alloc_bytes or t.alloc_peak
                     for t in self.timers.values())
        header = f"{'kernel':<16}{'seconds':>12}{'calls':>10}{'share':>9}"
        if traced:
            header += f"{'net alloc':>14}{'peak':>12}"
        lines = [header]
        for name in names:
            timer = self.timers.get(name)
            if timer is None:
                continue
            share = 100.0 * timer.seconds / total if total > 0 else 0.0
            row = (f"{name:<16}{timer.seconds:>12.4f}"
                   f"{timer.calls:>10d}{share:>8.1f}%")
            if traced:
                row += f"{timer.alloc_bytes:>14d}{timer.alloc_peak:>12d}"
            lines.append(row)
        lines.append(f"{'total':<16}{total:>12.4f}")
        return "\n".join(lines)
