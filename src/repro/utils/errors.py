"""Exception hierarchy for the BookLeaf reproduction.

BookLeaf (the Fortran mini-app) aborts with an error code and a short
message (e.g. negative volume detected in ``getgeom``, timestep collapse
in ``getdt``).  We map those failure modes onto a small exception
hierarchy so callers can distinguish *user* errors (bad decks, bad
meshes) from *numerical* failures (tangling, dt collapse).
"""

from __future__ import annotations


class BookLeafError(Exception):
    """Base class for all errors raised by this package."""


class DeckError(BookLeafError):
    """An input deck is malformed or contains inconsistent options."""


class MeshError(BookLeafError):
    """A mesh is topologically or geometrically invalid."""


class TangledMeshError(MeshError):
    """The Lagrangian step produced a non-positive cell or corner volume.

    Carries the indices of the offending cells so drivers can report the
    location of the failure, as the Fortran code does.
    """

    def __init__(self, cells, time=None):
        self.cells = cells
        self.time = time
        where = f" at t={time:.6g}" if time is not None else ""
        super().__init__(f"mesh tangled{where}: non-positive volume in cells {cells}")


class TimestepCollapseError(BookLeafError):
    """The CFL timestep fell below the configured minimum.

    This is BookLeaf's ``dt < dtmin`` abort; it usually indicates an
    instability or a tangling mesh one step before it goes negative.
    """

    def __init__(self, dt, dtmin, cell=None, time=None):
        self.dt = dt
        self.dtmin = dtmin
        self.cell = cell
        self.time = time
        where = f" (controlling cell {cell})" if cell is not None else ""
        super().__init__(
            f"timestep collapse: dt={dt:.6g} < dtmin={dtmin:.6g}{where}"
        )


class EosError(BookLeafError):
    """An equation-of-state evaluation left the physical regime."""


class PartitionError(BookLeafError):
    """A domain decomposition request could not be satisfied."""


class CommError(BookLeafError):
    """Misuse of the simulated Typhon communication layer."""
