"""Exception hierarchy for the BookLeaf reproduction.

BookLeaf (the Fortran mini-app) aborts with an error code and a short
message (e.g. negative volume detected in ``getgeom``, timestep collapse
in ``getdt``).  We map those failure modes onto a small exception
hierarchy so callers can distinguish *user* errors (bad decks, bad
meshes) from *numerical* failures (tangling, dt collapse).
"""

from __future__ import annotations


class BookLeafError(Exception):
    """Base class for all errors raised by this package."""


class DeckError(BookLeafError):
    """An input deck is malformed or contains inconsistent options."""


class MeshError(BookLeafError):
    """A mesh is topologically or geometrically invalid."""


class TangledMeshError(MeshError):
    """The Lagrangian step produced a non-positive cell or corner volume.

    Carries the indices of the offending cells so drivers can report the
    location of the failure, as the Fortran code does.
    """

    def __init__(self, cells, time=None):
        self.cells = cells
        self.time = time
        where = f" at t={time:.6g}" if time is not None else ""
        super().__init__(f"mesh tangled{where}: non-positive volume in cells {cells}")


class TimestepCollapseError(BookLeafError):
    """The CFL timestep fell below the configured minimum.

    This is BookLeaf's ``dt < dtmin`` abort; it usually indicates an
    instability or a tangling mesh one step before it goes negative.
    """

    def __init__(self, dt, dtmin, cell=None, time=None):
        self.dt = dt
        self.dtmin = dtmin
        self.cell = cell
        self.time = time
        where = f" (controlling cell {cell})" if cell is not None else ""
        super().__init__(
            f"timestep collapse: dt={dt:.6g} < dtmin={dtmin:.6g}{where}"
        )


class EosError(BookLeafError):
    """An equation-of-state evaluation left the physical regime."""


class PartitionError(BookLeafError):
    """A domain decomposition request could not be satisfied."""


class CommError(BookLeafError):
    """Misuse of the simulated Typhon communication layer."""


class HealthError(BookLeafError):
    """A live-health sentinel tripped: non-finite or unphysical state.

    Raised by the in-situ :class:`~repro.metrics.probe.DiagnosticsProbe`
    when a sampled state carries NaN/Inf values or negative
    volume/density/energy (the invariant-domain bounds a healthy step
    must maintain).  Carries the violations keyed by sentinel name
    (``"nonfinite:e"`` -> offending cell/node ids) and, when the probe
    dumped one, the path of the on-disk state snapshot for forensics.
    """

    def __init__(self, violations, nstep=None, time=None,
                 snapshot=None, rank=None):
        self.violations = {
            name: [int(i) for i in ids] for name, ids in violations.items()
        }
        self.nstep = nstep
        self.time = time
        self.snapshot = str(snapshot) if snapshot is not None else None
        self.rank = rank
        where = ""
        if nstep is not None:
            where += f" at step {nstep}"
        if time is not None:
            where += f" (t={time:.6g})"
        if rank is not None:
            where += f" on rank {rank}"
        parts = "; ".join(
            f"{name} at {ids[:8]}{'...' if len(ids) > 8 else ''}"
            for name, ids in sorted(self.violations.items())
        )
        msg = f"health sentinel tripped{where}: {parts}"
        if self.snapshot:
            msg += f" — state snapshot written to {self.snapshot}"
        super().__init__(msg)

    def cells(self):
        """Sorted union of every offending cell/node id."""
        out = set()
        for ids in self.violations.values():
            out.update(ids)
        return sorted(out)


class DeprecatedOptionError(BookLeafError):
    """A removed option was used after its deprecation window closed.

    PR 3 aliased ``ranks=``/``method=`` to ``nranks=``/``partition=``
    with a one-release ``DeprecationWarning``; that release has passed,
    so the aliases now fail loudly instead of silently drifting.  The
    error is structured — ``option`` and ``replacement`` are attributes
    — so embedding code and the CLI can render a precise fix.
    """

    def __init__(self, option, replacement, context="repro.api.run"):
        self.option = option
        self.replacement = replacement
        self.context = context
        super().__init__(
            f"{context}: option {option!r} was removed; "
            f"use {replacement!r} instead (see docs/FLEET.md, "
            "'Migrating from the removed aliases')"
        )


class FleetError(BookLeafError):
    """The fleet scheduler could not execute or recover a job."""


class StalledRankWarning(UserWarning):
    """The rank watchdog saw no heartbeat from a rank within the
    configured timeout — the run was aborted instead of hanging at the
    next collective.  The message carries every rank's last-seen step."""


class EnsembleDowngradeWarning(UserWarning):
    """A fleet job was routed off the same-mesh batched fast path.

    Tracing, allocation tracking and profiling are per-job telemetry
    the vectorised ensemble kernels do not thread through, so a job
    requesting them under ``ensemble="auto"`` silently losing the fast
    path would be a surprise slowdown.  The warning (and the paired
    ``fast_path_downgrade`` schedule-log event) names the job and the
    reason; see docs/FLEET.md, 'Fast-path eligibility'."""
