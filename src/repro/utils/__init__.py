"""Infrastructure shared across the BookLeaf reproduction.

Exposes the deck parser, timer registry, step logger and the exception
hierarchy.
"""

from .deck import Deck, Section, parse_deck, read_deck
from .errors import (
    BookLeafError,
    CommError,
    DeckError,
    EosError,
    MeshError,
    PartitionError,
    TangledMeshError,
    TimestepCollapseError,
)
from .log import StepLogger
from .timers import Timer, TimerRegistry

__all__ = [
    "Deck",
    "Section",
    "parse_deck",
    "read_deck",
    "BookLeafError",
    "CommError",
    "DeckError",
    "EosError",
    "MeshError",
    "PartitionError",
    "TangledMeshError",
    "TimestepCollapseError",
    "StepLogger",
    "Timer",
    "TimerRegistry",
]
