"""BookLeaf-style input-deck parser.

The Fortran mini-app reads Fortran namelist control files.  We keep the
same sectioned shape in a dependency-free format::

    ! comment
    [CONTROL]
    time_end   = 0.205
    dt_initial = 1.0e-5
    ale        = false

    [MESH]
    type = rect
    nx   = 100
    ny   = 4

    [MATERIAL 1]
    eos   = ideal
    gamma = 1.4

Values are parsed into ``bool``/``int``/``float``/``str`` (with bare
comma-separated lists becoming Python lists).  Repeated sections with an
index (``[MATERIAL 1]``, ``[MATERIAL 2]``) become entries of
``deck.indexed("MATERIAL")``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from .errors import DeckError

_SECTION_RE = re.compile(r"^\[\s*([A-Za-z_]+)(?:\s+(\d+))?\s*\]$")
_BOOLS = {"true": True, ".true.": True, "on": True,
          "false": False, ".false.": False, "off": False}


def _parse_scalar(text: str) -> Any:
    """Convert one token to bool/int/float, falling back to str."""
    low = text.lower()
    if low in _BOOLS:
        return _BOOLS[low]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text.replace("d", "e").replace("D", "E"))
    except ValueError:
        pass
    return text.strip("'\"")


def _parse_value(text: str) -> Any:
    if "," in text:
        return [_parse_scalar(tok.strip()) for tok in text.split(",") if tok.strip()]
    return _parse_scalar(text.strip())


@dataclass
class Section:
    """One deck section: a dict of options with typed accessors."""

    name: str
    index: int = 0
    options: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.options.get(key.lower(), default)

    def require(self, key: str) -> Any:
        key = key.lower()
        if key not in self.options:
            raise DeckError(f"section [{self.name}] is missing required key '{key}'")
        return self.options[key]

    def __contains__(self, key: str) -> bool:
        return key.lower() in self.options


@dataclass
class Deck:
    """A parsed input deck: ordered sections plus indexed lookup."""

    sections: List[Section] = field(default_factory=list)
    source: str = "<memory>"

    def section(self, name: str) -> Section:
        """Return the unique section called ``name`` (case-insensitive)."""
        found = [s for s in self.sections if s.name == name.upper()]
        if not found:
            raise DeckError(f"deck {self.source} has no [{name.upper()}] section")
        if len(found) > 1 and any(s.index for s in found):
            raise DeckError(
                f"deck {self.source} has multiple [{name.upper()}] sections; "
                f"use indexed()"
            )
        return found[0]

    def optional(self, name: str) -> Section:
        """Like :meth:`section` but returns an empty section if absent."""
        found = [s for s in self.sections if s.name == name.upper()]
        return found[0] if found else Section(name.upper())

    def indexed(self, name: str) -> List[Section]:
        """All sections ``[NAME k]`` sorted by index ``k``."""
        found = [s for s in self.sections if s.name == name.upper()]
        return sorted(found, key=lambda s: s.index)

    def __contains__(self, name: str) -> bool:
        return any(s.name == name.upper() for s in self.sections)


def parse_deck(text: str, source: str = "<memory>") -> Deck:
    """Parse deck ``text`` into a :class:`Deck`, validating syntax."""
    deck = Deck(source=source)
    current: Union[Section, None] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("!")[0].split("#")[0].strip()
        if not line:
            continue
        match = _SECTION_RE.match(line)
        if match:
            name = match.group(1).upper()
            index = int(match.group(2)) if match.group(2) else 0
            current = Section(name=name, index=index)
            deck.sections.append(current)
            continue
        if "=" not in line:
            raise DeckError(f"{source}:{lineno}: expected 'key = value', got {line!r}")
        if current is None:
            raise DeckError(f"{source}:{lineno}: option outside any [SECTION]")
        key, _, value = line.partition("=")
        key = key.strip().lower()
        if not key:
            raise DeckError(f"{source}:{lineno}: empty key")
        if key in current.options:
            raise DeckError(
                f"{source}:{lineno}: duplicate key '{key}' in [{current.name}]"
            )
        current.options[key] = _parse_value(value)
    return deck


def read_deck(path: Union[str, Path]) -> Deck:
    """Read and parse the deck file at ``path``."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise DeckError(f"cannot read deck {path}: {exc}") from exc
    return parse_deck(text, source=str(path))
