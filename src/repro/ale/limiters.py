"""Slope limiters for the second-order remap (paper Section III-A).

The swept-volume advection reconstructs cell quantities linearly and
limits the gradients to enforce monotonicity, following Van Leer (1977)
as the paper cites.  Two standard limiters are provided:

* :func:`barth_jespersen` — the multidimensional cell-wise limiter used
  by the unstructured advection (limits the full gradient by a single
  scalar so reconstructed values stay within the neighbour bounds),
* :func:`van_leer` — the classic smooth ratio limiter, exposed for the
  1-D property tests and as an alternative edge limiter.
"""

from __future__ import annotations

import numpy as np


def van_leer(r: np.ndarray) -> np.ndarray:
    """Van Leer's harmonic limiter φ(r) = (r + |r|)/(1 + |r|).

    Zero for opposite-signed slopes (r ≤ 0), asymptoting to 2 for
    r → ∞, φ(1) = 1 (second order preserved in smooth regions).
    """
    r = np.asarray(r, dtype=np.float64)
    return (r + np.abs(r)) / (1.0 + np.abs(r))


def barth_jespersen(phi_c: np.ndarray, phi_min: np.ndarray,
                    phi_max: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Cell-wise limiter factors α in [0, 1].

    ``phi_c``: cell values (ncell,); ``phi_min/phi_max``: local bounds
    (min/max over the cell and its face neighbours); ``d``: the
    *unlimited* reconstruction increments ``g·(r_f − r_c)`` at each of
    the cell's evaluation points, shape (ncell, npoints).  Returns α
    such that ``phi_c + α d`` lies within [phi_min, phi_max] at every
    point.
    """
    phi_c = phi_c[:, None]
    # d may be zero or subnormal: the division then yields inf/NaN,
    # which the isfinite guard below maps to "unconstrained" (the
    # min(·, 1) cap makes that the right answer for huge ratios too).
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        alpha_pos = (phi_max[:, None] - phi_c) / d
        alpha_neg = (phi_min[:, None] - phi_c) / d
    alpha = np.where(d > 0.0, alpha_pos, np.where(d < 0.0, alpha_neg, 1.0))
    alpha = np.minimum(alpha, 1.0)
    # Degenerate d == 0 produced NaN via 0/0 guards above only when the
    # bounds equal phi_c; treat as unconstrained.
    alpha = np.where(np.isfinite(alpha), alpha, 1.0)
    return np.clip(alpha.min(axis=1), 0.0, 1.0)
