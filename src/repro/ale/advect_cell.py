"""Cell-centred advection — the heart of BookLeaf's ``aleadvect``.

Second-order swept-volume donor-cell advection of the *independent*
cell variables (mass, then internal energy mass-weighted on top of the
mass fluxes):

1. least-squares gradients of the advected quantity over face
   neighbours (robust to boundary cells and to degenerate axis-aligned
   stencils),
2. Barth–Jespersen limiting so reconstructed face values stay within
   the local bounds (the Van Leer monotonicity treatment of the paper
   in its standard unstructured form),
3. upwind (donor-cell) evaluation at the swept-region centroid,
   multiplied by the flux volume.

Mass is advected with density reconstruction; energy with specific-
internal-energy reconstruction carried by the mass fluxes, which makes
a uniform-``e`` field an exact fixed point of the remap.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from ..perf.workspace import Workspace, scratch
from .limiters import barth_jespersen

_TINY = 1.0e-300


def cell_gradients(mesh: QuadMesh, xc: np.ndarray, yc: np.ndarray,
                   phi: np.ndarray, limit: bool = True
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Limited least-squares gradients of cell field ``phi``.

    ``xc, yc`` are cell centroids on the (old) donor geometry.  The
    normal equations degenerate for cells whose neighbours are
    collinear (single-row tube meshes); those directions fall back to
    independent 1-D fits, and fully isolated cells get zero gradient.
    """
    nb = mesh.cell_neighbours
    valid = nb >= 0
    nbc = np.where(valid, nb, 0)
    dx = np.where(valid, xc[nbc] - xc[:, None], 0.0)
    dy = np.where(valid, yc[nbc] - yc[:, None], 0.0)
    dphi = np.where(valid, phi[nbc] - phi[:, None], 0.0)

    a11 = (dx * dx).sum(axis=1)
    a12 = (dx * dy).sum(axis=1)
    a22 = (dy * dy).sum(axis=1)
    b1 = (dx * dphi).sum(axis=1)
    b2 = (dy * dphi).sum(axis=1)
    det = a11 * a22 - a12 * a12
    scale = np.maximum(a11 * a22, a12 * a12)
    ok = det > 1e-12 * np.maximum(scale, _TINY)
    safe_det = np.where(ok, det, 1.0)
    gx = np.where(ok, (a22 * b1 - a12 * b2) / safe_det,
                  np.where(a11 > _TINY, b1 / np.maximum(a11, _TINY), 0.0))
    gy = np.where(ok, (a11 * b2 - a12 * b1) / safe_det,
                  np.where(a22 > _TINY, b2 / np.maximum(a22, _TINY), 0.0))

    if limit:
        nb_phi = np.where(valid, phi[nbc], phi[:, None])
        phi_min = np.minimum(phi, nb_phi.min(axis=1))
        phi_max = np.maximum(phi, nb_phi.max(axis=1))
        d = gx[:, None] * dx + gy[:, None] * dy
        # Bound at neighbour centroids (where dx, dy point); for
        # boundary sides dx = dy = 0 so they impose no constraint.
        alpha = barth_jespersen(phi, phi_min, phi_max, d)
        gx = gx * alpha
        gy = gy * alpha
    return gx, gy


def swept_centroids(mesh: QuadMesh,
                    x_old: np.ndarray, y_old: np.ndarray,
                    x_new: np.ndarray, y_new: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate centroid of each interior face's swept region."""
    n1 = mesh.face_nodes[:, 0]
    n2 = mesh.face_nodes[:, 1]
    sx = 0.25 * (x_old[n1] + x_old[n2] + x_new[n1] + x_new[n2])
    sy = 0.25 * (y_old[n1] + y_old[n2] + y_new[n1] + y_new[n2])
    return sx, sy


def face_fluxes(mesh: QuadMesh, fv: np.ndarray, phi: np.ndarray,
                gx: np.ndarray, gy: np.ndarray,
                xc: np.ndarray, yc: np.ndarray,
                sx: np.ndarray, sy: np.ndarray) -> np.ndarray:
    """Per-face advected amount ``fv · φ_donor(swept centroid)``."""
    donor = np.where(fv > 0.0, mesh.face_cells[:, 0], mesh.face_cells[:, 1])
    phi_f = (
        phi[donor]
        + gx[donor] * (sx - xc[donor])
        + gy[donor] * (sy - yc[donor])
    )
    return fv * phi_f


def scatter_face_fluxes(mesh: QuadMesh, flux: np.ndarray,
                        target: np.ndarray) -> None:
    """Apply per-face fluxes to a cell array in place (conservative)."""
    np.subtract.at(target, mesh.face_cells[:, 0], flux)
    np.add.at(target, mesh.face_cells[:, 1], flux)


def advect_cells(mesh: QuadMesh,
                 x_old: np.ndarray, y_old: np.ndarray,
                 x_new: np.ndarray, y_new: np.ndarray,
                 fv: np.ndarray,
                 cell_mass: np.ndarray, rho: np.ndarray, e: np.ndarray,
                 comms=None,
                 ws: "Workspace" = None) -> Tuple[np.ndarray, np.ndarray]:
    """Advect mass and internal energy through the flux volumes.

    Returns ``(mass_new, energy_mass_new)`` where the second array is
    the advected total internal energy per cell (``m e``).  Both are
    exactly conservative: face fluxes are added to one cell and
    subtracted from its neighbour.

    In a decomposed run ``comms`` overwrites the ghost cells' gradient
    rows with their owners' (a ghost's own stencil is incomplete), so
    both sides of an interface face compute the identical donor
    reconstruction and conservation stays exact globally.
    """
    w = scratch(ws)
    g = w.array("ale.ac.gather", (mesh.ncell, 4))
    cx = np.mean(np.take(x_old, mesh.cell_nodes, out=g, mode="clip"), axis=1,
                 out=w.array("ale.ac.cx", mesh.ncell))
    cy = np.mean(np.take(y_old, mesh.cell_nodes, out=g, mode="clip"), axis=1,
                 out=w.array("ale.ac.cy", mesh.ncell))
    sx, sy = swept_centroids(mesh, x_old, y_old, x_new, y_new)

    grx, gry = cell_gradients(mesh, cx, cy, rho)
    gex, gey = cell_gradients(mesh, cx, cy, e)
    if comms is not None and comms.overlap_enabled():
        # Split-phase: the donor selection and the flux-target bases
        # depend only on local data, so they compute while the ghost
        # gradient rows are in flight.
        comms.post_cell_arrays(grx, gry, gex, gey)
        donor = np.where(fv > 0.0, mesh.face_cells[:, 0],
                         mesh.face_cells[:, 1])
        mass_new = cell_mass.copy()
        energy_new = cell_mass * e
        comms.complete_cell_arrays(grx, gry, gex, gey)
    else:
        if comms is not None:
            comms.exchange_cell_arrays(grx, gry, gex, gey)
        donor = np.where(fv > 0.0, mesh.face_cells[:, 0],
                         mesh.face_cells[:, 1])
        mass_new = cell_mass.copy()
        energy_new = cell_mass * e

    mass_flux = face_fluxes(mesh, fv, rho, grx, gry, cx, cy, sx, sy)
    scatter_face_fluxes(mesh, mass_flux, mass_new)

    e_f = e[donor] + gex[donor] * (sx - cx[donor]) + gey[donor] * (sy - cy[donor])
    energy_flux = mass_flux * e_f
    scatter_face_fluxes(mesh, energy_flux, energy_new)
    return mass_new, energy_new
