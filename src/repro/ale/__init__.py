"""The ALE remap (BookLeaf's optional Eulerian step, paper Section III-A).

Second-order swept-volume-flux advection (Benson 1989) with Van Leer /
Barth-Jespersen monotonicity limiting for cell quantities and a
median-dual momentum remap for the staggered kinematics.
"""

from .advect_cell import advect_cells, cell_gradients, face_fluxes
from .advect_node import advect_momentum
from .driver import FLUX_VOLUME_LIMIT, AleStep
from .fluxvol import dual_flux_volumes, face_flux_volumes, sweep_quads
from .getmesh import select_target
from .limiters import barth_jespersen, van_leer
from .update import aleupdate

__all__ = [
    "AleStep",
    "FLUX_VOLUME_LIMIT",
    "advect_cells",
    "advect_momentum",
    "aleupdate",
    "barth_jespersen",
    "cell_gradients",
    "dual_flux_volumes",
    "face_flux_volumes",
    "face_fluxes",
    "select_target",
    "sweep_quads",
    "van_leer",
]
