"""Momentum advection on the dual (nodal) mesh.

The kinematic variables live on nodes, so their remap runs on the
median-dual control volumes (the union of each node's cell corners).
Following the staggered-remap approach of Benson (1989):

* the dual flux volumes come from :func:`repro.ale.fluxvol.dual_flux_volumes`
  — the exact swept volumes of the median-mesh segments, so nodal
  volume changes are reproduced identically,
* nodal mass fluxes upwind the nodal density (mass / dual volume),
* momentum fluxes carry the upwind node's velocity, which makes a
  uniform velocity field an exact fixed point of the remap and
  conserves total momentum to round-off (every flux is added to one
  node and subtracted from another).

The advected nodal mass ``m*`` is used solely to turn momentum back
into velocity; the corner masses the next Lagrangian phase uses are
rebuilt from the remapped cell state (the standard small inconsistency
of staggered remaps, quantified in the tests).

In a decomposed run every per-node sum (base mass/momentum and the
flux scatters) is accumulated from *owned* cells only and completed
across ranks through the comms seam — each dual segment belongs to
exactly one cell, so each is counted exactly once globally and the
remap stays conservative.  Ghost-only nodes end with zero completed
mass; their velocities are left untouched (the next kinematic halo
exchange overwrites them).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.state import HydroState
from ..perf.workspace import Workspace, scratch
from ..utils.errors import BookLeafError


def _masked_scatter(state: HydroState, corner_field: np.ndarray,
                    owned: Optional[np.ndarray]) -> np.ndarray:
    if owned is None:
        return state.scatter_to_nodes(corner_field)
    return state.scatter_to_nodes(
        np.where(owned[:, None], corner_field, 0.0)
    )


def advect_momentum(state: HydroState, dual_fv: np.ndarray,
                    comms=None,
                    ws: Optional[Workspace] = None
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advect nodal momentum through the dual flux volumes.

    ``dual_fv`` has shape (ncell, 4): entry (c, k) is flow from node
    ``cell_nodes[c, k]`` to node ``cell_nodes[c, k+1]`` (the side's two
    nodes), whose median-dual volumes the segment separates.  Returns
    ``(u_new, v_new, node_mass_star)``.
    """
    mesh = state.mesh
    w = scratch(ws)
    owned = comms.owned_cell_mask(state) if comms is not None else None

    # Base nodal volume/mass/momentum as completed corner sums.
    node_vol = _masked_scatter(state, state.corner_volume, owned)
    node_mass = _masked_scatter(state, state.corner_mass, owned)
    cu = np.take(state.u, mesh.cell_nodes,
                 out=w.array("ale.am.cu", (mesh.ncell, 4)), mode="clip")
    cv = np.take(state.v, mesh.cell_nodes,
                 out=w.array("ale.am.cv", (mesh.ncell, 4)), mode="clip")
    cu *= state.corner_mass
    cv *= state.corner_mass
    mom_x = _masked_scatter(state, cu, owned)
    mom_y = _masked_scatter(state, cv, owned)
    if comms is not None and comms.overlap_enabled():
        # Split-phase: the donor selection depends only on the flux
        # signs, so it computes while the peers' sum blocks arrive.
        comms.post_node_sums(state, node_vol, node_mass, mom_x, mom_y)
        n1 = mesh.cell_nodes
        n2 = np.roll(mesh.cell_nodes, -1, axis=1)
        donor = np.where(dual_fv > 0.0, n1, n2)
        node_vol, node_mass, mom_x, mom_y = comms.complete_node_sums(state)
    else:
        if comms is not None:
            node_vol, node_mass, mom_x, mom_y = comms.complete_node_arrays(
                state, node_vol, node_mass, mom_x, mom_y
            )
        n1 = mesh.cell_nodes
        n2 = np.roll(mesh.cell_nodes, -1, axis=1)
        donor = np.where(dual_fv > 0.0, n1, n2)

    # Upwind nodal density needs complete sums; guard ghost-only nodes.
    complete = node_vol > 0.0
    rho_n = np.where(complete, node_mass / np.where(complete, node_vol, 1.0),
                     0.0)

    fm = dual_fv * rho_n[donor]
    fmx = fm * state.u[donor]
    fmy = fm * state.v[donor]

    # Flux scatters (owned segments only in decomposed runs; each
    # segment is owned by exactly one rank so sums complete exactly).
    def segment_sums(field: np.ndarray) -> np.ndarray:
        masked = field if owned is None else np.where(
            owned[:, None], field, 0.0)
        out = np.zeros(mesh.nnode)
        np.subtract.at(out, n1.ravel(), masked.ravel())
        np.add.at(out, n2.ravel(), masked.ravel())
        return out

    d_mass = segment_sums(fm)
    d_momx = segment_sums(fmx)
    d_momy = segment_sums(fmy)
    if comms is not None:
        d_mass, d_momx, d_momy = comms.complete_node_arrays(
            state, d_mass, d_momx, d_momy
        )

    mass_star = node_mass + d_mass
    mom_x += d_momx
    mom_y += d_momy

    bad = complete & (mass_star <= 0.0)
    if bad.any():
        nodes = np.flatnonzero(bad)[:5]
        raise BookLeafError(
            f"momentum remap produced non-positive nodal mass at nodes "
            f"{nodes.tolist()} — reduce the remap step (ale_every/ale_relax)"
        )
    safe = np.where(complete, mass_star, 1.0)
    u_new = np.where(complete, mom_x / safe, state.u)
    v_new = np.where(complete, mom_y / safe, state.v)
    return u_new, v_new, mass_star
