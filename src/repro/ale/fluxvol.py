"""Swept (flux) volumes — BookLeaf's ``alegetfvol``.

The remap moves the mesh from the Lagrangian coordinates to the target
coordinates; the volume swept by each face is the advection flux volume
(Benson 1989, as the paper cites).  For a directed face A→B moving to
A′→B′ the swept volume is the signed shoelace area of the quad
(A, B, B′, A′); with the face directed as traversed by its *owner*
cell (CCW), a positive value is volume flowing *out* of the owner.

Two families of faces are needed:

* primal faces (cell sides) — drive the cell-centred advection; the
  polygon identity ``V_new = V_old − Σ_sides fv`` holds exactly, which
  the tests check and which makes uniform-flow preservation exact;
* dual faces (edge-midpoint → cell-centroid segments) — drive the
  momentum advection on the nodal control volumes; the matching
  identity relates nodal volume changes to the dual sweeps.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..mesh.topology import QuadMesh


def sweep_quads(ax0: np.ndarray, ay0: np.ndarray, bx0: np.ndarray,
                by0: np.ndarray, bx1: np.ndarray, by1: np.ndarray,
                ax1: np.ndarray, ay1: np.ndarray) -> np.ndarray:
    """Signed shoelace area of quads (A_old, B_old, B_new, A_new)."""
    return 0.5 * (
        (ax0 * by0 - bx0 * ay0)
        + (bx0 * by1 - bx1 * by0)
        + (bx1 * ay1 - ax1 * by1)
        + (ax1 * ay0 - ax0 * ay1)
    )


def face_flux_volumes(mesh: QuadMesh,
                      x_old: np.ndarray, y_old: np.ndarray,
                      x_new: np.ndarray, y_new: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Primal flux volumes.

    Returns ``(fv_face, fv_boundary)``:

    * ``fv_face`` (nface,) — swept volume of each interior face,
      positive for flow out of ``face_cells[:, 0]`` into
      ``face_cells[:, 1]``;
    * ``fv_boundary`` (nboundary,) — swept volume of each boundary side
      (should be exactly zero when the target mesh respects the
      boundary, and is asserted against in the driver).
    """
    n1 = mesh.face_nodes[:, 0]
    n2 = mesh.face_nodes[:, 1]
    fv = sweep_quads(
        x_old[n1], y_old[n1], x_old[n2], y_old[n2],
        x_new[n2], y_new[n2], x_new[n1], y_new[n1],
    )
    bc_cells = mesh.boundary_cells
    bc_sides = mesh.boundary_sides
    b1 = mesh.cell_nodes[bc_cells, bc_sides]
    b2 = mesh.cell_nodes[bc_cells, (bc_sides + 1) % 4]
    fvb = sweep_quads(
        x_old[b1], y_old[b1], x_old[b2], y_old[b2],
        x_new[b2], y_new[b2], x_new[b1], y_new[b1],
    )
    return fv, fvb


def dual_flux_volumes(mesh: QuadMesh,
                      x_old: np.ndarray, y_old: np.ndarray,
                      x_new: np.ndarray, y_new: np.ndarray) -> np.ndarray:
    """Dual (nodal control volume) flux volumes, shape (ncell, 4).

    Entry (c, k) is the swept volume of the segment from the midpoint
    of side k of cell c to the centroid of c, positive for flow from
    node ``cell_nodes[c, k]`` to node ``cell_nodes[c, k+1]`` (the
    side's two nodes), whose median-dual volumes the segment separates.
    """
    def midpoints_centroid(x, y):
        cx = x[mesh.cell_nodes]
        cy = y[mesh.cell_nodes]
        mx = 0.5 * (cx + np.roll(cx, -1, axis=1))
        my = 0.5 * (cy + np.roll(cy, -1, axis=1))
        gx = np.broadcast_to(cx.mean(axis=1, keepdims=True), mx.shape)
        gy = np.broadcast_to(cy.mean(axis=1, keepdims=True), my.shape)
        return mx, my, gx, gy

    mx0, my0, gx0, gy0 = midpoints_centroid(x_old, y_old)
    mx1, my1, gx1, gy1 = midpoints_centroid(x_new, y_new)
    # Directed segment M -> C: traversing it, the subzone of the side's
    # first node (corner k) lies on the left, so a positive sweep is
    # flow out of node k's volume into node k+1's.
    return sweep_quads(mx0, my0, gx0, gy0, gx1, gy1, mx1, my1)
