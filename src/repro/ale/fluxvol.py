"""Swept (flux) volumes — BookLeaf's ``alegetfvol``.

The remap moves the mesh from the Lagrangian coordinates to the target
coordinates; the volume swept by each face is the advection flux volume
(Benson 1989, as the paper cites).  For a directed face A→B moving to
A′→B′ the swept volume is the signed shoelace area of the quad
(A, B, B′, A′); with the face directed as traversed by its *owner*
cell (CCW), a positive value is volume flowing *out* of the owner.

Two families of faces are needed:

* primal faces (cell sides) — drive the cell-centred advection; the
  polygon identity ``V_new = V_old − Σ_sides fv`` holds exactly, which
  the tests check and which makes uniform-flow preservation exact;
* dual faces (edge-midpoint → cell-centroid segments) — drive the
  momentum advection on the nodal control volumes; the matching
  identity relates nodal volume changes to the dual sweeps.

All kernels accept an optional workspace so a periodic remap reuses its
buffers; without one the behaviour is the historical allocate-per-call.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..mesh.topology import QuadMesh
from ..perf.plans import roll_next
from ..perf.workspace import Workspace, scratch


def sweep_quads(ax0: np.ndarray, ay0: np.ndarray, bx0: np.ndarray,
                by0: np.ndarray, bx1: np.ndarray, by1: np.ndarray,
                ax1: np.ndarray, ay1: np.ndarray,
                out: Optional[np.ndarray] = None,
                ws: Optional[Workspace] = None) -> np.ndarray:
    """Signed shoelace area of quads (A_old, B_old, B_new, A_new)."""
    w = scratch(ws)
    if out is None:
        out = np.empty(ax0.shape)
    t1 = w.array("ale.sweep.t1", ax0.shape)
    t2 = w.array("ale.sweep.t2", ax0.shape)
    np.multiply(ax0, by0, out=out)          # ax0·by0 − bx0·ay0
    np.multiply(bx0, ay0, out=t1)
    out -= t1
    np.multiply(bx0, by1, out=t1)           # bx0·by1 − bx1·by0
    np.multiply(bx1, by0, out=t2)
    t1 -= t2
    out += t1
    np.multiply(bx1, ay1, out=t1)           # bx1·ay1 − ax1·by1
    np.multiply(ax1, by1, out=t2)
    t1 -= t2
    out += t1
    np.multiply(ax1, ay0, out=t1)           # ax1·ay0 − ax0·ay1
    np.multiply(ax0, ay1, out=t2)
    t1 -= t2
    out += t1
    out *= 0.5
    return out


def face_flux_volumes(mesh: QuadMesh,
                      x_old: np.ndarray, y_old: np.ndarray,
                      x_new: np.ndarray, y_new: np.ndarray,
                      ws: Optional[Workspace] = None
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Primal flux volumes.

    Returns ``(fv_face, fv_boundary)``:

    * ``fv_face`` (nface,) — swept volume of each interior face,
      positive for flow out of ``face_cells[:, 0]`` into
      ``face_cells[:, 1]``;
    * ``fv_boundary`` (nboundary,) — swept volume of each boundary side
      (should be exactly zero when the target mesh respects the
      boundary, and is asserted against in the driver).
    """
    w = scratch(ws)
    n1 = mesh.face_nodes[:, 0]
    n2 = mesh.face_nodes[:, 1]
    if ws is not None:
        g = [w.array(f"ale.fv.g{i}", n1.shape) for i in range(8)]
        np.take(x_old, n1, out=g[0], mode="clip")
        np.take(y_old, n1, out=g[1], mode="clip")
        np.take(x_old, n2, out=g[2], mode="clip")
        np.take(y_old, n2, out=g[3], mode="clip")
        np.take(x_new, n2, out=g[4], mode="clip")
        np.take(y_new, n2, out=g[5], mode="clip")
        np.take(x_new, n1, out=g[6], mode="clip")
        np.take(y_new, n1, out=g[7], mode="clip")
        fv = sweep_quads(*g, out=w.array("ale.fv.fv", n1.shape), ws=ws)
    else:
        fv = sweep_quads(
            x_old[n1], y_old[n1], x_old[n2], y_old[n2],
            x_new[n2], y_new[n2], x_new[n1], y_new[n1],
        )
    # Boundary sides are a small set; the gathers stay as allocations.
    bc_cells = mesh.boundary_cells
    bc_sides = mesh.boundary_sides
    b1 = mesh.cell_nodes[bc_cells, bc_sides]
    b2 = mesh.cell_nodes[bc_cells, (bc_sides + 1) % 4]
    fvb = sweep_quads(
        x_old[b1], y_old[b1], x_old[b2], y_old[b2],
        x_new[b2], y_new[b2], x_new[b1], y_new[b1],
        out=None if ws is None else w.array("ale.fv.fvb", b1.shape),
    )
    return fv, fvb


def dual_flux_volumes(mesh: QuadMesh,
                      x_old: np.ndarray, y_old: np.ndarray,
                      x_new: np.ndarray, y_new: np.ndarray,
                      ws: Optional[Workspace] = None) -> np.ndarray:
    """Dual (nodal control volume) flux volumes, shape (ncell, 4).

    Entry (c, k) is the swept volume of the segment from the midpoint
    of side k of cell c to the centroid of c, positive for flow from
    node ``cell_nodes[c, k]`` to node ``cell_nodes[c, k+1]`` (the
    side's two nodes), whose median-dual volumes the segment separates.
    """
    w = scratch(ws)
    shape = (mesh.ncell, 4)

    def midpoints_centroid(x, y, tag):
        cx = w.array(f"ale.dfv.cx{tag}", shape)
        cy = w.array(f"ale.dfv.cy{tag}", shape)
        np.take(x, mesh.cell_nodes, out=cx, mode="clip")
        np.take(y, mesh.cell_nodes, out=cy, mode="clip")
        mx = w.array(f"ale.dfv.mx{tag}", shape)
        my = w.array(f"ale.dfv.my{tag}", shape)
        roll_next(cx, out=mx)
        mx += cx
        mx *= 0.5
        roll_next(cy, out=my)
        my += cy
        my *= 0.5
        gx = w.array(f"ale.dfv.gx{tag}", (mesh.ncell, 1))
        gy = w.array(f"ale.dfv.gy{tag}", (mesh.ncell, 1))
        np.mean(cx, axis=1, keepdims=True, out=gx)
        np.mean(cy, axis=1, keepdims=True, out=gy)
        return (mx, my, np.broadcast_to(gx, shape), np.broadcast_to(gy, shape))

    mx0, my0, gx0, gy0 = midpoints_centroid(x_old, y_old, "0")
    mx1, my1, gx1, gy1 = midpoints_centroid(x_new, y_new, "1")
    # Directed segment M -> C: traversing it, the subzone of the side's
    # first node (corner k) lies on the left, so a positive sweep is
    # flow out of node k's volume into node k+1's.
    return sweep_quads(
        mx0, my0, gx0, gy0, gx1, gy1, mx1, my1,
        out=None if ws is None else w.array("ale.dfv.fv", shape), ws=ws,
    )
