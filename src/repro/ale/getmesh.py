"""Target-mesh selection — BookLeaf's ``alegetmesh``.

The remap needs a target mesh to map the Lagrangian solution onto.
Two strategies are provided, matching the bounding cases the paper
describes (Section III-A):

* ``eulerian`` — the target is the *initial* mesh: running the remap
  every step makes the calculation fully Eulerian.  Requires a
  wall-bounded domain: free boundary segments are frozen at their
  Lagrangian positions (so no boundary face sweeps volume), and if
  they collapse inward past the fixed interior target — a freely
  imploding boundary like Noh's — the target mesh tangles; use
  ``relax`` for such problems;
* ``relax``    — Winslow-type smoothing: each interior node moves a
  fraction ``ale_relax`` of the way towards the average of its
  edge-connected neighbours, undoing Lagrangian distortion while
  following the flow (true ALE).

Constrained boundary nodes only move within their wall (their fixed
coordinate components are preserved); *free* boundary nodes are never
moved, which keeps every boundary face's swept volume identically zero
and the remap strictly conservative.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.state import HydroState
from ..mesh.boundary import FIX_X, FIX_Y
from ..utils.errors import BookLeafError


def _neighbour_average(state: HydroState) -> Tuple[np.ndarray, np.ndarray]:
    """Average position of each node's edge-connected neighbours."""
    mesh = state.mesh
    cn = mesh.cell_nodes
    # Every cell side contributes the (n1 -> n2) and (n2 -> n1) pairs;
    # interior edges are counted twice on both ends symmetrically, so
    # the average is well defined on any unstructured mesh.
    n1 = cn.ravel()
    n2 = np.roll(cn, -1, axis=1).ravel()
    sx = np.bincount(n1, weights=state.x[n2], minlength=mesh.nnode)
    sy = np.bincount(n1, weights=state.y[n2], minlength=mesh.nnode)
    cnt = np.bincount(n1, minlength=mesh.nnode).astype(np.float64)
    sx += np.bincount(n2, weights=state.x[n1], minlength=mesh.nnode)
    sy += np.bincount(n2, weights=state.y[n1], minlength=mesh.nnode)
    cnt += np.bincount(n2, minlength=mesh.nnode)
    return sx / cnt, sy / cnt


def _boundary_side_nodes(mesh) -> np.ndarray:
    """(nboundary, 2) node pairs of the mesh's boundary sides."""
    cells = mesh.boundary_cells
    sides = mesh.boundary_sides
    n1 = mesh.cell_nodes[cells, sides]
    n2 = mesh.cell_nodes[cells, (sides + 1) % 4]
    return np.stack([n1, n2], axis=1)


def frozen_boundary_nodes(state: HydroState,
                          side_nodes: np.ndarray,
                          tol: float = 1e-12) -> np.ndarray:
    """Nodes on *free* boundary segments, which the remap must freeze.

    A boundary side is a wall (its nodes may slide along it during the
    remap) only when both endpoints share the matching constraint and
    the side actually lies along that constrained coordinate; anything
    else — free surfaces, and the corners where a wall meets one — is
    frozen entirely, so no boundary face ever sweeps volume.
    """
    if side_nodes.size == 0:
        return np.empty(0, dtype=np.int64)
    flags = state.bc.flags
    n1, n2 = side_nodes[:, 0], side_nodes[:, 1]
    scale = max(float(np.abs(state.x).max()),
                float(np.abs(state.y).max()), 1.0)
    wall_x = (
        ((flags[n1] & FIX_X) != 0) & ((flags[n2] & FIX_X) != 0)
        & (np.abs(state.x[n1] - state.x[n2]) <= tol * scale)
    )
    wall_y = (
        ((flags[n1] & FIX_Y) != 0) & ((flags[n2] & FIX_Y) != 0)
        & (np.abs(state.y[n1] - state.y[n2]) <= tol * scale)
    )
    free_side = ~(wall_x | wall_y)
    return np.unique(side_nodes[free_side].ravel())


def select_target(state: HydroState, mode: str, relax: float,
                  x0: np.ndarray, y0: np.ndarray,
                  boundary_sides: "np.ndarray | None" = None
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """Target node coordinates for the remap.

    ``x0, y0`` are the initial coordinates captured at setup (used by
    the Eulerian mode).  ``boundary_sides`` overrides the (nb, 2) node
    pairs of the boundary sides subject to the freeze/slide rules —
    the decomposed driver passes the *physical* domain boundary, since
    a subdomain's own mesh boundary includes artificial ghost edges.
    """
    mesh = state.mesh
    if mode == "eulerian":
        xt = x0.copy()
        yt = y0.copy()
    elif mode == "relax":
        ax, ay = _neighbour_average(state)
        xt = state.x + relax * (ax - state.x)
        yt = state.y + relax * (ay - state.y)
    else:
        raise BookLeafError(f"unknown ALE mesh mode {mode!r}")

    # Constrained nodes keep their fixed components (sliding within
    # their wall); nodes on free boundary segments freeze entirely.
    flags = state.bc.flags
    fix_x = (flags & FIX_X) != 0
    fix_y = (flags & FIX_Y) != 0
    xt[fix_x] = state.x[fix_x]
    yt[fix_y] = state.y[fix_y]
    if boundary_sides is None:
        boundary_sides = _boundary_side_nodes(mesh)
    frozen = frozen_boundary_nodes(state, boundary_sides)
    xt[frozen] = state.x[frozen]
    yt[frozen] = state.y[frozen]
    return xt, yt
