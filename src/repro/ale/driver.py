"""The ALE step driver — BookLeaf's ``alestep`` (Algorithm 1).

Orchestrates the remap after a Lagrangian step:

    ALEGETMESH  — choose the target mesh (Eulerian or relaxed),
    ALEGETFVOL  — swept flux volumes for primal faces and dual faces,
    ALEADVECT   — advect the independent variables (mass, energy,
                  nodal momentum),
    ALEUPDATE   — rebuild every dependent variable on the new mesh.

The driver enforces the remap's validity conditions: boundary faces
must sweep (numerically) zero volume and no face may sweep more than a
fraction of its adjacent cells' volume — violating either means the
mesh moved too far between remaps (increase ``ale_every``'s frequency
or reduce ``ale_relax``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.controls import HydroControls
from ..core.state import HydroState
from ..eos.multimaterial import MaterialTable
from ..utils.errors import BookLeafError
from ..utils.timers import TimerRegistry
from .advect_cell import advect_cells
from .advect_node import advect_momentum
from .fluxvol import dual_flux_volumes, face_flux_volumes
from .getmesh import select_target

#: max |flux volume| as a fraction of the smaller adjacent cell volume
FLUX_VOLUME_LIMIT = 0.45


@dataclass
class AleStep:
    """A configured remap operator; ``apply`` runs one remap in place."""

    table: MaterialTable
    mode: str = "eulerian"
    relax: float = 0.25
    dencut: float = 0.0
    #: initial node coordinates (the Eulerian target)
    x0: np.ndarray = field(default=None)  # type: ignore[assignment]
    y0: np.ndarray = field(default=None)  # type: ignore[assignment]

    @classmethod
    def from_controls(cls, state: HydroState, controls: HydroControls,
                      table: MaterialTable) -> "AleStep":
        return cls(
            table=table,
            mode=controls.ale_mode,
            relax=controls.ale_relax,
            dencut=controls.dencut,
            x0=state.x.copy(),
            y0=state.y.copy(),
        )

    def apply(self, state: HydroState, dt: float,
              timers: Optional[TimerRegistry] = None,
              comms=None, ws=None) -> bool:
        """Remap ``state`` onto the target mesh; returns False if the
        mesh had not moved (nothing to do).

        With a distributed ``comms`` (Eulerian mode only) the ghost
        kinematics, thermodynamics and reconstruction gradients are
        refreshed from their owner ranks and the nodal remap sums are
        completed across ranks, keeping the remap globally conservative.
        """
        timers = timers if timers is not None else TimerRegistry(enabled=False)
        mesh = state.mesh
        distributed = comms is not None and getattr(comms, "size", 1) > 1
        if distributed and self.mode != "eulerian":
            raise BookLeafError(
                "decomposed remaps support the 'eulerian' mesh mode only "
                "(relaxation needs neighbour averages across ranks)"
            )

        if distributed:
            with timers.region("exchange"):
                # Ghost node positions moved with u^n during the step;
                # refresh them (and the dependent volumes) exactly, then
                # pull the ghosts' post-Lagrangian thermodynamics.
                if comms.overlap_enabled():
                    # Both halos in flight at once: the geometry
                    # refresh needs the ghost coordinates, so it sits
                    # after the kinematic complete but overlaps the
                    # (larger) cell-field exchange.
                    comms.post_kinematics(state)
                    comms.post_cell_fields(state)
                    comms.complete_kinematics(state)
                    state.refresh_geometry()
                    comms.complete_cell_fields(state)
                else:
                    comms.exchange_kinematics(state)
                    state.refresh_geometry()
                    comms.exchange_cell_fields(state)

        with timers.region("alegetmesh"):
            boundary_sides = (comms.physical_boundary_sides(state)
                              if distributed else None)
            x_t, y_t = select_target(state, self.mode, self.relax,
                                     self.x0, self.y0,
                                     boundary_sides=boundary_sides)
            moved = max(
                float(np.abs(x_t - state.x).max()),
                float(np.abs(y_t - state.y).max()),
            )
            if distributed:
                # The skip decision must be collective: a quiet rank
                # bailing out while others remap would desynchronise
                # the barrier sequence.
                moved = comms.allreduce_max(moved)
            if moved < 1e-15:
                # Marker (not a span): the remap was due but the mesh
                # had not moved — visible in traces as an instant event.
                timers.trace_instant("ale.skip", args={"moved": moved})
                return False

        with timers.region("alegetfvol"):
            fv, fvb = face_flux_volumes(mesh, state.x, state.y, x_t, y_t,
                                        ws=ws)
            scale = float(state.volume.min())
            if distributed:
                side_mask = comms.physical_boundary_side_mask(state)
                fvb_check = fvb[side_mask] if side_mask is not None else fvb
            else:
                fvb_check = fvb
            if fvb_check.size and float(np.abs(fvb_check).max()) > 1e-12 * scale:
                raise BookLeafError(
                    "remap target moves the domain boundary "
                    f"(max boundary sweep {np.abs(fvb_check).max():.3e})"
                )
            vmin = np.minimum(state.volume[mesh.face_cells[:, 0]],
                              state.volume[mesh.face_cells[:, 1]])
            if fv.size and np.any(np.abs(fv) > FLUX_VOLUME_LIMIT * vmin):
                worst = int(np.argmax(np.abs(fv) / vmin))
                raise BookLeafError(
                    "remap flux volume exceeds "
                    f"{FLUX_VOLUME_LIMIT:.0%} of a cell volume at face "
                    f"{worst} — remap more often (ale_every) or relax less"
                )
            dual_fv = dual_flux_volumes(mesh, state.x, state.y, x_t, y_t,
                                        ws=ws)

        with timers.region("aleadvect"):
            mass_new, energy_new = advect_cells(
                mesh, state.x, state.y, x_t, y_t, fv,
                state.cell_mass, state.rho, state.e,
                comms=comms if distributed else None, ws=ws,
            )
            u_new, v_new, _ = advect_momentum(
                state, dual_fv, comms=comms if distributed else None, ws=ws,
            )

        with timers.region("aleupdate"):
            from .update import aleupdate

            aleupdate(state, self.table, x_t, y_t, mass_new, energy_new,
                      u_new, v_new, self.dencut)
        return True
