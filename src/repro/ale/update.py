"""Dependent-variable update — BookLeaf's ``aleupdate``.

After the independent variables (cell mass, internal energy mass,
nodal momentum) have been advected onto the target mesh, everything
derived is rebuilt: coordinates committed, volumes refreshed, density
and specific energy recomputed, corner masses redistributed by the new
subzone volume fractions (uniform sub-zonal density — the standard
post-remap reset), velocities committed with the boundary conditions
re-applied, and pressure/sound speed re-closed through the EoS.
"""

from __future__ import annotations

import numpy as np

from ..core import geometry
from ..core.density import getrho
from ..core.state import HydroState
from ..eos.multimaterial import MaterialTable


def aleupdate(state: HydroState, table: MaterialTable,
              x_new: np.ndarray, y_new: np.ndarray,
              mass_new: np.ndarray, energy_mass_new: np.ndarray,
              u_new: np.ndarray, v_new: np.ndarray,
              dencut: float = 0.0) -> None:
    """Commit the remapped state in place."""
    state.x = x_new
    state.y = y_new
    _, _, volume, cvol = geometry.getgeom(state.mesh, x_new, y_new)
    state.volume = volume
    state.corner_volume = cvol
    state.cell_mass = mass_new
    state.rho = getrho(mass_new, volume, dencut)
    state.e = energy_mass_new / mass_new
    state.corner_mass = mass_new[:, None] * (cvol / volume[:, None])
    state.invalidate_node_mass()
    state.u = u_new
    state.v = v_new
    state.bc.apply_velocity(state.u, state.v)
    state.p, state.cs2 = table.getpc(state.mat, state.rho, state.e)
