"""repro — a Python reproduction of BookLeaf.

BookLeaf (Truby et al., IEEE CLUSTER / WRAp 2018) is a 2-D unstructured
Arbitrary Lagrangian–Eulerian shock-hydrodynamics mini-application from
the UK Mini-App Consortium.  This package reimplements the full
mini-app — mesh, staggered compatible Lagrangian scheme, artificial
viscosity, hourglass control, EoS options, ALE remap, domain
decomposition with a simulated Typhon communication layer, the four
bundled test problems — plus the performance-model machinery that
regenerates the paper's evaluation tables and figures.

Quickstart::

    from repro.problems import load_problem

    hydro = load_problem("sod", nx=200).run()
    print(hydro.diagnostics())
"""

from .core import Hydro, HydroControls, HydroState
from .eos import IdealGas, Jwl, MaterialTable, Tait, Void
from .mesh import QuadMesh, rect_mesh, saltzmann_mesh
from .problems import load_problem, problem_names, setup_from_deck

__version__ = "1.0.0"

__all__ = [
    "Hydro",
    "HydroControls",
    "HydroState",
    "IdealGas",
    "Tait",
    "Jwl",
    "Void",
    "MaterialTable",
    "QuadMesh",
    "rect_mesh",
    "saltzmann_mesh",
    "load_problem",
    "problem_names",
    "setup_from_deck",
    "__version__",
]
