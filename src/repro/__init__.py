"""repro — a Python reproduction of BookLeaf.

BookLeaf (Truby et al., IEEE CLUSTER / WRAp 2018) is a 2-D unstructured
Arbitrary Lagrangian–Eulerian shock-hydrodynamics mini-application from
the UK Mini-App Consortium.  This package reimplements the full
mini-app — mesh, staggered compatible Lagrangian scheme, artificial
viscosity, hourglass control, EoS options, ALE remap, domain
decomposition with a simulated Typhon communication layer, the four
bundled test problems — plus the performance-model machinery that
regenerates the paper's evaluation tables and figures.

Quickstart (the supported embedding surface — see docs/PARALLEL.md)::

    from repro.api import RunConfig, run

    result = run(RunConfig(problem="sod", nx=200))
    print(result.nstep, result.diagnostics())

    result = run(RunConfig(problem="noh", nx=64, nranks=4,
                           backend="processes"))
"""

from .api import RunConfig, RunResult, run, run_ensemble, submit
from .core import Hydro, HydroControls, HydroState
from .eos import IdealGas, Jwl, MaterialTable, Tait, Void
from .mesh import QuadMesh, rect_mesh, saltzmann_mesh
from .problems import load_problem, problem_names, setup_from_deck
from .version import __version__

__all__ = [
    "RunConfig",
    "RunResult",
    "run",
    "run_ensemble",
    "submit",
    "Hydro",
    "HydroControls",
    "HydroState",
    "IdealGas",
    "Tait",
    "Jwl",
    "Void",
    "MaterialTable",
    "QuadMesh",
    "rect_mesh",
    "saltzmann_mesh",
    "load_problem",
    "problem_names",
    "setup_from_deck",
    "__version__",
]
