"""Command-line front end — a thin adapter onto :mod:`repro.api`.

Usage (installed as ``bookleaf``, or ``python -m repro``)::

    bookleaf run sod.in                 # run a deck file
    bookleaf run --problem noh --nx 100 # run a bundled problem
    bookleaf run sod.in --nranks 4      # decomposed (virtual-MPI) run
    bookleaf run sod.in --nranks 4 --backend processes  # real processes
    bookleaf run noh.in --report r.json --trace t.json   # telemetry
    bookleaf run noh.in --metrics m.ndjson --watchdog-timeout 30
    bookleaf compare old.json new.json  # regression gate (exit 1)
    bookleaf problems list              # registry catalogue
    bookleaf problems describe kidder   # settings table + references
    bookleaf decks                      # list bundled decks
    bookleaf info                       # platform/model registry
    bookleaf model table2-measured      # measured-vs-modeled Table II

The parser maps straight onto :class:`repro.api.RunConfig` and every
run executes through :func:`repro.api.run` — the CLI owns only
argument parsing and printing.  Prints the BookLeaf-style per-kernel
timer breakdown (plus, for decomposed runs, the Typhon communication
totals) at the end of every run, and optionally a VTK dump, a
time-history CSV, a schema-versioned JSON run report and a
Perfetto-loadable Chrome trace (the telemetry layer — see
docs/OBSERVABILITY.md, docs/PARALLEL.md and the README's CLI
reference).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .output.timehist import TimeHistory
from .output.vtk import write_vtk
from .problems import deck_path, problem_names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bookleaf",
        description="BookLeaf reproduction: 2-D unstructured ALE hydro",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a deck or a bundled problem")
    run.add_argument("deck", nargs="?", help="input deck path")
    run.add_argument("--problem", choices=problem_names(),
                     help="bundled problem instead of a deck")
    run.add_argument("--nx", type=int, help="mesh cells in x")
    run.add_argument("--ny", type=int, help="mesh cells in y")
    run.add_argument("--time-end", type=float, dest="time_end")
    run.add_argument("--nranks", type=int, default=None,
                     help="MPI-style rank count (1 = serial)")
    run.add_argument("--ranks", type=int, default=None,
                     help="removed alias for --nranks (errors with the "
                          "replacement; see docs/FLEET.md)")
    run.add_argument("--backend", default="auto",
                     help="comm backend: auto, serial, threads or "
                          "processes (see docs/PARALLEL.md; auto picks "
                          "serial for 1 rank, threads otherwise)")
    run.add_argument("--partition", choices=("rcb", "spectral"),
                     default="rcb")
    run.add_argument("--comm-plan", choices=("overlap", "packed"),
                     default="overlap", dest="comm_plan",
                     help="halo exchange protocol: 'overlap' (split-"
                          "phase post/complete with interior compute "
                          "overlap and tree dt reduction; default) or "
                          "'packed' (single-barrier collectives, "
                          "bit-identical; see docs/PARALLEL.md)")
    run.add_argument("--max-steps", type=int, dest="max_steps")
    run.add_argument("--log-every", type=int, default=0,
                     help="print a step banner every N steps")
    run.add_argument("--vtk", help="write a final-state VTK dump here")
    run.add_argument("--history", help="write a time-history CSV here")
    run.add_argument("--report",
                     help="write the schema-versioned JSON run report "
                          "here (per-kernel timings, comm counters, "
                          "step series; see docs/OBSERVABILITY.md)")
    run.add_argument("--trace",
                     help="write a Chrome trace-event file here "
                          "(load it in https://ui.perfetto.dev)")
    run.add_argument("--trace-allocs", action="store_true",
                     help="also record per-region allocation counters "
                          "(tracemalloc; serial backend only — slows "
                          "the run, diagnosis only)")
    run.add_argument("--profile", metavar="PATH",
                     help="write a collapsed-stack flamegraph profile "
                          "here (thread-based span sampler, ~5ms "
                          "period; feed to flamegraph.pl or speedscope"
                          "; see docs/OBSERVABILITY.md)")
    run.add_argument("--metrics", metavar="PATH",
                     help="stream live diagnostics (conservation drift, "
                          "extrema, health sentinels) to this NDJSON "
                          "file, one record per sample")
    run.add_argument("--metrics-every", type=int, default=None,
                     metavar="N",
                     help="diagnostics sampling cadence in steps "
                          "(default 10 when --metrics is set; 0 "
                          "disables the probe entirely)")
    run.add_argument("--metrics-prom", metavar="PATH",
                     help="write an end-of-run Prometheus text-"
                          "exposition snapshot of the metrics registry")
    run.add_argument("--watchdog-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="flag a rank as stalled after this many "
                          "seconds without a heartbeat (threads/"
                          "processes backends)")

    ens = sub.add_parser(
        "run-ensemble",
        help="batch N same-mesh serial runs through one (N, ...) "
             "kernel pass (bit-identical per lane; see "
             "docs/PERFORMANCE.md)",
    )
    ens.add_argument("deck", nargs="?", help="input deck path")
    ens.add_argument("--problem", choices=problem_names(),
                     help="bundled problem instead of a deck")
    ens.add_argument("--nx", type=int, help="mesh cells in x")
    ens.add_argument("--ny", type=int, help="mesh cells in y")
    ens.add_argument("--time-end", type=float, dest="time_end")
    ens.add_argument("--max-steps", type=int, dest="max_steps")
    ens.add_argument("--lanes", type=int, default=None,
                     help="replicate the base config N times (mutually "
                          "exclusive with --sweep, whose cartesian "
                          "product sets the lane count)")
    ens.add_argument("--sweep", action="append", default=[],
                     metavar="KEY=V1,V2,...",
                     help="sweep one parameter across lanes; repeat "
                          "for a cartesian product.  Keys route to "
                          "HydroControls fields (cq1=0.3,0.5), run "
                          "limits (time_end, max_steps) or problem "
                          "setup kwargs; nx/ny cannot be swept (lanes "
                          "share one mesh)")
    ens.add_argument("--report", metavar="PATH",
                     help="write one JSON run report per lane "
                          "(PATH gains a .laneN suffix)")
    ens.add_argument("--metrics", metavar="PATH",
                     help="stream live diagnostics per lane to "
                          "PATH with a .laneN suffix")
    ens.add_argument("--metrics-every", type=int, default=None,
                     metavar="N",
                     help="diagnostics sampling cadence in steps "
                          "(default 10 when --metrics is set)")

    fleet = sub.add_parser(
        "fleet",
        help="run a cached, resumable sweep of many configs through "
             "the fleet scheduler (see docs/FLEET.md)",
    )
    fleet.add_argument("deck", nargs="?", help="input deck path")
    fleet.add_argument("--problem", choices=problem_names(),
                       help="bundled problem instead of a deck")
    fleet.add_argument("--nx", type=int, help="mesh cells in x")
    fleet.add_argument("--ny", type=int, help="mesh cells in y")
    fleet.add_argument("--time-end", type=float, dest="time_end")
    fleet.add_argument("--max-steps", type=int, dest="max_steps")
    fleet.add_argument("--nranks", type=int, default=1,
                       help="rank count per job (1 = serial)")
    fleet.add_argument("--backend", default="auto",
                       help="comm backend per job: auto, serial, "
                            "threads or processes")
    fleet.add_argument("--lanes", type=int, default=None,
                       help="replicate the base config N times "
                            "(mutually exclusive with --sweep)")
    fleet.add_argument("--sweep", action="append", default=[],
                       metavar="KEY=V1,V2,...",
                       help="sweep one parameter across jobs; repeat "
                            "for a cartesian product (same key routing "
                            "as run-ensemble; nx/ny ARE sweepable here "
                            "— mismatched meshes just skip the batched "
                            "fast path)")
    fleet.add_argument("--workers", type=int, default=0,
                       help="process-pool width for per-job execution "
                            "(0 = inline)")
    fleet.add_argument("--cache-dir", metavar="DIR",
                       help="content-addressed result cache; repeated "
                            "configs are served from disk")
    fleet.add_argument("--checkpoint-dir", metavar="DIR",
                       help="periodic snapshots so killed jobs resume "
                            "bit-identically")
    fleet.add_argument("--checkpoint-every", type=int, default=20,
                       metavar="N", help="steps between checkpoints")
    fleet.add_argument("--no-ensemble", action="store_true",
                       help="disable the same-mesh batched fast path "
                            "(every job runs on its own step loop)")
    fleet.add_argument("--batch-width", type=int, default=None,
                       metavar="N",
                       help="live-lane cap for batched passes (longer "
                            "queues drain through lane refill)")
    fleet.add_argument("--summary", metavar="PATH",
                       help="write the sweep summary JSON (per-job "
                            "keys + outcome digests; diffable with "
                            "`bookleaf compare`)")
    fleet.add_argument("--metrics", metavar="PATH",
                       help="merged NDJSON stream of every job's "
                            "diagnostics samples")
    fleet.add_argument("--metrics-every", type=int, default=None,
                       metavar="N",
                       help="diagnostics sampling cadence in steps "
                            "(default 10 when --metrics or --prom is "
                            "set; note: the cadence enters each job's "
                            "cache key)")
    fleet.add_argument("--watch", action="store_true",
                       help="render a live per-job status table "
                            "(state, step rate, ETA) from the sweep's "
                            "event stream while it runs")
    fleet.add_argument("--events", metavar="PATH",
                       help="stream schema-versioned lifecycle events "
                            "(job queued/started/progress/done, cache "
                            "hits, retries) to this NDJSON file")
    fleet.add_argument("--trace", metavar="PATH",
                       help="write ONE merged Perfetto trace of the "
                            "whole sweep here: a process row per "
                            "worker, a thread row per job, cache-hit/"
                            "checkpoint instants and kill->resume flow "
                            "arrows (forces per-job tracing)")
    fleet.add_argument("--dashboard", metavar="PATH",
                       help="write a self-contained HTML sweep "
                            "dashboard here at end of run")
    fleet.add_argument("--profile-dir", metavar="DIR",
                       dest="profile_dir",
                       help="sample every job with the low-overhead "
                            "span profiler; per-job collapsed-stack "
                            "files plus an aggregated sweep.folded "
                            "land here")
    fleet.add_argument("--heartbeat-timeout", type=float, default=None,
                       dest="heartbeat_timeout", metavar="SECONDS",
                       help="SIGKILL and retry a pool worker silent "
                            "for this long (stall watchdog; needs "
                            "--workers >= 1)")
    fleet.add_argument("--prom", metavar="PATH",
                       help="merged Prometheus textfile export")

    compare = sub.add_parser(
        "compare",
        help="diff two run reports or two BENCH_*.json files "
             "(exits 1 on regression beyond the threshold)",
    )
    compare.add_argument("old", help="baseline document")
    compare.add_argument("new", help="candidate document")
    compare.add_argument("--threshold", type=float, default=None,
                         help="allowed fractional slowdown before a "
                              "gated metric counts as regressed "
                              "(default 0.25)")
    compare.add_argument("--min-seconds", type=float, default=None,
                         help="kernels faster than this in both runs "
                              "are never gated (default 1e-3)")
    compare.add_argument("--gate-comm", action="store_true",
                         dest="gate_comm",
                         help="also gate comm volume (report: bytes "
                              "per step; bench: bytes_per_step "
                              "leaves) instead of reporting it "
                              "informationally")
    compare.add_argument("--gate-outliers", action="store_true",
                         dest="gate_outliers",
                         help="fleet summaries: also fail when the new "
                              "sweep carries harmful cross-job anomaly "
                              "flags (a job slow/heavy against its "
                              "siblings; see docs/OBSERVABILITY.md)")
    compare.add_argument("--gate-throughput", action="store_true",
                         dest="gate_throughput",
                         help="also gate bench throughput leaves "
                              "(runs_per_sec, throughput) higher-is-"
                              "better; cases whose sibling seconds "
                              "stay under --min-seconds in both "
                              "documents are never gated")

    problems = sub.add_parser(
        "problems",
        help="inspect the problem registry (list / describe)",
    )
    psub = problems.add_subparsers(dest="problems_command", required=True)
    plist = psub.add_parser(
        "list", help="list every registered problem with its summary"
    )
    plist.add_argument("--json", action="store_true",
                       help="machine-readable output (full metadata)")
    pdesc = psub.add_parser(
        "describe",
        help="show one problem's settings table, defaults and references",
    )
    pdesc.add_argument("name", help="registered problem name "
                       "(see 'problems list')")
    pdesc.add_argument("--json", action="store_true",
                       help="machine-readable output")

    sub.add_parser("decks", help="list the bundled input decks")
    sub.add_parser("info", help="show the modelled platform registry")

    model = sub.add_parser(
        "model", help="print a modelled table/figure from the paper"
    )
    model.add_argument(
        "report",
        choices=("table1", "table2", "table2-measured", "fig1", "fig2a",
                 "fig2b", "fig3", "fig4a", "fig4b", "ablations"),
        help="which evaluation artefact to regenerate "
             "(table2-measured runs an instrumented Noh and compares "
             "live timings with the analytic model)",
    )
    model.add_argument("--nx", type=int, default=64,
                       help="table2-measured: Noh mesh size (default 64)")
    model.add_argument("--steps", type=int, default=200,
                       help="table2-measured: steps to time (default 200)")
    model.add_argument("--update-experiments", action="store_true",
                       help="table2-measured: rewrite the autogenerated "
                            "measured-vs-modeled block in EXPERIMENTS.md")

    validate = sub.add_parser(
        "validate",
        help="run a mesh-convergence ladder against the exact solution",
    )
    validate.add_argument("problem", choices=("sod", "noh"),
                          help="problem with an analytic reference")
    validate.add_argument("--resolutions", default="25,50,100",
                          help="comma-separated nx ladder")
    validate.add_argument("--time-end", type=float, dest="time_end")
    return parser


def _validate(args: argparse.Namespace) -> int:
    from .validation import (
        convergence_study,
        noh_density_error,
        sod_density_error,
    )

    resolutions = [int(tok) for tok in args.resolutions.split(",")]
    kwargs = {}
    if args.time_end is not None:
        kwargs["time_end"] = args.time_end
    if args.problem == "sod":
        study = convergence_study("sod", resolutions, sod_density_error,
                                  ny=2, **kwargs)
    else:
        study = convergence_study("noh", resolutions, noh_density_error,
                                  **kwargs)
    print(study.table())
    converged = all(b < a for a, b in zip(study.errors, study.errors[1:]))
    print("converging" if converged else "NOT converging")
    return 0 if converged else 1


def _model_report(args: argparse.Namespace) -> str:
    which = args.report
    if which == "table2-measured":
        from .telemetry import (
            format_measured_vs_modeled,
            measured_vs_modeled,
            update_experiments,
        )

        result = measured_vs_modeled(nx=args.nx, max_steps=args.steps)
        text = format_measured_vs_modeled(result)
        if args.update_experiments:
            path = update_experiments(result)
            text += f"\nupdated {path}"
        return text
    from .perfmodel import (
        PAPER_TABLE2,
        TABLE2_ORDER,
        format_ablations,
        format_bars,
        format_scaling,
        format_table1,
        format_table2,
        scaling_series,
        table2,
    )

    if which == "table1":
        return format_table1()
    if which == "ablations":
        return format_ablations()
    model = table2()
    if which == "table2":
        return format_table2(model)
    if which == "fig1":
        return format_bars(
            "FIG 1: Overall performance, Noh, single node (model)",
            {k: model[k]["overall"] for k in TABLE2_ORDER},
            paper={k: PAPER_TABLE2[k]["overall"] for k in TABLE2_ORDER},
        )
    if which in ("fig2a", "fig2b"):
        kernel = "viscosity" if which == "fig2a" else "acceleration"
        return format_bars(
            f"FIG {which[-2:]}: {kernel} kernel, Noh, single node (model)",
            {k: model[k][kernel] for k in TABLE2_ORDER},
            paper={k: PAPER_TABLE2[k][kernel] for k in TABLE2_ORDER},
        )
    kernel = None
    if which == "fig4a":
        kernel = "viscosity"
    elif which == "fig4b":
        kernel = "acceleration"
    title = (f"FIG {which[-2:]}: "
             + (f"{kernel} kernel " if kernel else "")
             + "Sod strong scaling, hybrid (model)")
    return format_scaling(title, {
        "Skylake": scaling_series("skylake_hybrid", kernel=kernel),
        "Broadwell": scaling_series("broadwell_hybrid", kernel=kernel),
    })


def _run_config(args: argparse.Namespace):
    """Map the parsed ``run`` arguments onto a :class:`RunConfig`."""
    from .api import RunConfig

    nranks = args.nranks
    if args.ranks is not None:
        # The PR 3 deprecation window has closed: the alias is now a
        # structured refusal naming the replacement, exit code 2.
        from .utils.errors import DeprecatedOptionError

        err = DeprecatedOptionError("--ranks", "--nranks",
                                    context="bookleaf run")
        print(f"error: {err}", file=sys.stderr)
        return None
    if nranks is None:
        nranks = 1
    return RunConfig(
        problem=args.problem,
        deck=args.deck,
        nx=args.nx,
        ny=args.ny,
        time_end=args.time_end,
        max_steps=args.max_steps,
        nranks=nranks,
        backend=args.backend,
        partition=args.partition,
        comm_plan=args.comm_plan,
        trace=bool(args.report or args.trace),
        trace_allocations=args.trace_allocs,
        profile=args.profile,
        collect_steps=bool(args.report),
        log_every=args.log_every,
        metrics=args.metrics,
        # --metrics-prom alone still needs the probe (the registry is
        # the probe's output): enable the default cadence for it.
        metrics_every=(RunConfig.DEFAULT_METRICS_EVERY
                       if (args.metrics_prom and args.metrics_every is None
                           and args.metrics is None)
                       else args.metrics_every),
        watchdog_timeout=args.watchdog_timeout,
    )


def _run(args: argparse.Namespace) -> int:
    if args.deck and args.problem:
        print("give either a deck or --problem, not both", file=sys.stderr)
        return 2
    if args.deck and (args.nx or args.ny):
        print("--nx/--ny apply to --problem runs; set them in the deck",
              file=sys.stderr)
        return 2
    if not args.deck and not args.problem:
        print("nothing to run: give a deck path or --problem",
              file=sys.stderr)
        return 2
    config = _run_config(args)
    if config is None:
        return 2

    from .api import run as api_run

    distributed = config.nranks > 1
    if args.trace_allocs and config.resolved_backend() != "serial":
        # tracemalloc is process-global: concurrent ranks would charge
        # each other's allocations to open regions.  Any non-serial
        # backend ignores the flag — including a forced
        # `--backend threads --nranks 1` — so say so instead of
        # silently dropping it (docs/OBSERVABILITY.md).
        print(f"--trace-allocs is serial-only; ignoring for the "
              f"{config.resolved_backend()!r} backend", file=sys.stderr)
        config = config.replace(trace_allocations=False)
    history = None
    observers = []
    if args.history:
        if distributed:
            print("--history is serial-only; ignoring for a "
                  "decomposed run", file=sys.stderr)
        else:
            history = TimeHistory(every=max(args.log_every, 1))
            observers.append(history)

    result = api_run(config, observers=observers or None)
    final = result.state

    if distributed:
        summary = result.comm_summary
        print(f"ranks: {config.nranks} ({config.partition}, "
              f"{result.backend}); "
              f"halo nodes: {summary['halo_nodes']}, "
              f"shared nodes: {summary['shared_nodes']}")
    if history is not None:
        history.write_csv(args.history)
        print(f"wrote time history to {args.history}")

    print(f"problem {result.setup.name}: {result.nstep} steps to "
          f"t={result.time:.6g} in {result.wall_seconds:.2f}s")
    print(f"mass={final.total_mass():.9g} "
          f"total_energy={final.total_energy():.9g} "
          f"rho_max={float(final.rho.max()):.4g}")
    if result.comm_total is not None:
        comm_total = result.comm_total
        print(f"comm: {comm_total['halo_exchanges']} halo exchanges, "
              f"{comm_total['reductions']} reductions, "
              f"{comm_total['messages']} messages, "
              f"{comm_total['bytes']} bytes across {config.nranks} ranks")
    print()
    print(result.timers.breakdown())
    if args.vtk:
        write_vtk(final, args.vtk, title=f"bookleaf {result.setup.name}")
        print(f"wrote VTK dump to {args.vtk}")
    if args.report:
        from .telemetry import write_report

        write_report(result.report(), args.report)
        print(f"wrote run report to {args.report}")
    if args.trace:
        from .telemetry import write_trace

        write_trace(result.spans, args.trace)
        print(f"wrote Chrome trace to {args.trace} "
              f"(load in https://ui.perfetto.dev)")
    if args.profile:
        print(f"wrote collapsed-stack profile to {args.profile}")
    if args.metrics:
        rows = result.metrics_rows or []
        tail = (f" (final energy drift "
                f"{rows[-1]['energy_drift']:.3g})" if rows else "")
        print(f"wrote {len(rows)} metrics records to "
              f"{args.metrics}{tail}")
    if args.metrics_prom:
        if result.metrics is None:
            print("--metrics-prom needs the probe enabled "
                  "(--metrics-every > 0)", file=sys.stderr)
        else:
            result.metrics.write_prometheus(args.metrics_prom)
            print(f"wrote Prometheus snapshot to {args.metrics_prom}")
    return 0


def _parse_sweep_value(token: str):
    """``"0.5"`` -> 0.5, ``"3"`` -> 3, ``"true"``/``"false"`` -> bool,
    anything else stays a string (problem kwargs may be symbolic)."""
    low = token.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            pass
    return token


def _sweep_lanes(sweeps: List[str]):
    """Expand repeated ``--sweep key=v1,v2`` into the cartesian product
    of per-lane ``{key: value}`` dicts (in the given key order)."""
    import itertools

    axes = []
    for spec in sweeps:
        key, sep, values = spec.partition("=")
        if not sep or not key or not values:
            raise ValueError(
                f"--sweep wants KEY=V1,V2,... (got {spec!r})")
        axes.append([(key, _parse_sweep_value(tok))
                     for tok in values.split(",")])
    return [dict(combo) for combo in itertools.product(*axes)]


def _lane_path(path: str, lane: int) -> str:
    """``out.json`` -> ``out.lane3.json`` (suffix-preserving)."""
    import os.path

    stem, ext = os.path.splitext(path)
    return f"{stem}.lane{lane}{ext}"


def _run_ensemble_cli(args: argparse.Namespace) -> int:
    if args.deck and args.problem:
        print("give either a deck or --problem, not both", file=sys.stderr)
        return 2
    if not args.deck and not args.problem:
        print("nothing to run: give a deck path or --problem",
              file=sys.stderr)
        return 2
    if args.sweep and args.lanes is not None:
        print("give --lanes or --sweep, not both (the sweep's "
              "cartesian product sets the lane count)", file=sys.stderr)
        return 2

    try:
        assignments = _sweep_lanes(args.sweep)
    except ValueError as exc:
        print(f"run-ensemble: {exc}", file=sys.stderr)
        return 2
    if not args.sweep:
        assignments = [{}] * max(args.lanes or 1, 1)

    from dataclasses import fields as dc_fields

    from .api import RunConfig, run_ensemble
    from .core.controls import HydroControls

    control_names = {f.name for f in dc_fields(HydroControls)}
    configs, overrides = [], []
    for lane, assignment in enumerate(assignments):
        kwargs = dict(
            problem=args.problem, deck=args.deck,
            nx=args.nx, ny=args.ny,
            time_end=args.time_end, max_steps=args.max_steps,
            metrics=(_lane_path(args.metrics, lane)
                     if args.metrics else None),
            metrics_every=args.metrics_every,
            problem_kwargs={},
        )
        override = {}
        for key, value in assignment.items():
            if key in ("nx", "ny"):
                print(f"run-ensemble: cannot sweep {key!r} — all "
                      "lanes share one mesh (vary initial state and "
                      "controls instead)", file=sys.stderr)
                return 2
            if key in ("time_end", "max_steps"):
                kwargs[key] = value
            elif key in control_names:
                override[key] = value
            elif args.deck:
                print(f"run-ensemble: sweep key {key!r} is not a "
                      "control field; problem-kwarg sweeps need "
                      "--problem (deck runs fix the setup in the "
                      "deck file)", file=sys.stderr)
                return 2
            else:
                kwargs["problem_kwargs"][key] = value
        configs.append(RunConfig(**kwargs))
        overrides.append(override or None)

    from .utils.errors import BookLeafError

    try:
        results = run_ensemble(configs, control_overrides=overrides)
    except BookLeafError as exc:
        print(f"run-ensemble: {exc}", file=sys.stderr)
        return 2

    for lane, result in enumerate(results):
        tag = ""
        if assignments[lane]:
            tag = " (" + ", ".join(f"{k}={v}" for k, v in
                                   sorted(assignments[lane].items())) + ")"
        final = result.state
        print(f"lane {lane}{tag}: {result.nstep} steps to "
              f"t={result.time:.6g}  mass={final.total_mass():.9g} "
              f"total_energy={final.total_energy():.9g}")
    print(f"\n{len(results)} lane(s) in {results[0].wall_seconds:.2f}s "
          f"({len(results) / results[0].wall_seconds:.2f} runs/s "
          "aggregate)")
    print()
    print(results[0].timers.breakdown())
    if args.report:
        from .telemetry import write_report

        for lane, result in enumerate(results):
            write_report(result.report(), _lane_path(args.report, lane))
        print(f"wrote {len(results)} lane reports to "
              f"{_lane_path(args.report, 0)} ...")
    if args.metrics:
        for lane, result in enumerate(results):
            rows = result.metrics_rows or []
            print(f"wrote {len(rows)} metrics records to "
                  f"{_lane_path(args.metrics, lane)}")
    return 0


def _fleet_cli(args: argparse.Namespace) -> int:
    if args.deck and args.problem:
        print("give either a deck or --problem, not both", file=sys.stderr)
        return 2
    if not args.deck and not args.problem:
        print("nothing to run: give a deck path or --problem",
              file=sys.stderr)
        return 2
    if args.sweep and args.lanes is not None:
        print("give --lanes or --sweep, not both (the sweep's "
              "cartesian product sets the job count)", file=sys.stderr)
        return 2

    try:
        assignments = _sweep_lanes(args.sweep)
    except ValueError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    if not args.sweep:
        assignments = [{}] * max(args.lanes or 1, 1)

    from dataclasses import fields as dc_fields

    from .api import RunConfig, submit
    from .core.controls import HydroControls

    control_names = {f.name for f in dc_fields(HydroControls)}
    swept_keys = {k for a in assignments for k in a}
    if (swept_keys & control_names) and (swept_keys & {"nx", "ny"}):
        print("fleet: cannot combine control sweeps with mesh sweeps "
              "(control overrides ride the same-mesh batched path)",
              file=sys.stderr)
        return 2

    configs, overrides, any_override = [], [], False
    for assignment in assignments:
        kwargs = dict(
            problem=args.problem, deck=args.deck,
            nx=args.nx, ny=args.ny,
            time_end=args.time_end, max_steps=args.max_steps,
            nranks=args.nranks, backend=args.backend,
            # merged telemetry needs the per-job probe: default its
            # cadence when a fleet-level sink is requested, exactly as
            # `run --metrics` does for a single run
            metrics_every=(RunConfig.DEFAULT_METRICS_EVERY
                           if (args.metrics_every is None
                               and (args.metrics or args.prom))
                           else args.metrics_every),
            problem_kwargs={},
        )
        override = {}
        for key, value in assignment.items():
            if key in ("nx", "ny", "time_end", "max_steps", "nranks"):
                kwargs[key] = value
            elif key in control_names:
                override[key] = value
            elif args.deck:
                print(f"fleet: sweep key {key!r} is not a control "
                      "field; problem-kwarg sweeps need --problem",
                      file=sys.stderr)
                return 2
            else:
                kwargs["problem_kwargs"][key] = value
        configs.append(RunConfig(**kwargs))
        overrides.append(override or None)
        any_override = any_override or bool(override)

    from .utils.errors import BookLeafError

    watcher = None
    listeners = None
    if args.watch:
        from .telemetry.live import WatchRenderer

        watcher = WatchRenderer()
        listeners = [watcher]
    options = dict(
        workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        ensemble="off" if args.no_ensemble else "auto",
        batch_width=args.batch_width,
        metrics_path=args.metrics,
        prom_path=args.prom,
        events_path=args.events,
        event_listeners=listeners,
        trace_path=args.trace,
        dashboard_path=args.dashboard,
        profile_dir=args.profile_dir,
        heartbeat_timeout=args.heartbeat_timeout,
    )
    try:
        handle = submit(
            configs,
            control_overrides=overrides if any_override else None,
            **options)
        results = handle.results()
    except BookLeafError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2

    for job, result in enumerate(results):
        tag = ""
        if assignments[job]:
            tag = " (" + ", ".join(f"{k}={v}" for k, v in
                                   sorted(assignments[job].items())) + ")"
        via = result.backend
        if result.cache_hit:
            via += ", cached"
        final = result.state
        print(f"job {job}{tag} [{via}]: {result.nstep} steps to "
              f"t={result.time:.6g}  mass={final.total_mass():.9g} "
              f"total_energy={final.total_energy():.9g}")
    summary = handle.summary()
    counts = summary["counts"]
    print(f"\n{counts['jobs']} job(s): {counts['cache_hits']} from "
          f"cache, {counts['ensemble_jobs']} on the batched fast path "
          f"({summary['wall_seconds']:.2f}s)")
    if args.summary:
        import json

        with open(args.summary, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"wrote sweep summary to {args.summary}")
    if args.metrics:
        print(f"wrote merged metrics stream to {args.metrics}")
    if args.prom:
        print(f"wrote merged Prometheus export to {args.prom}")
    if args.events:
        print(f"wrote live event stream to {args.events}")
    if args.trace:
        print(f"wrote merged sweep trace to {args.trace} "
              f"(load in https://ui.perfetto.dev)")
    if args.dashboard:
        print(f"wrote sweep dashboard to {args.dashboard}")
    if args.profile_dir:
        profile = summary.get("profile") or {}
        print(f"wrote {profile.get('jobs_profiled', 0)} job profile(s) "
              f"and the aggregate to {args.profile_dir}")
    outliers = summary.get("anomalies") or []
    for flag in outliers:
        direction = "slow/heavy" if flag["harmful"] else "fast/light"
        print(f"anomaly: job {flag['job']} {flag['metric']}="
              f"{flag['value']:.4g} vs sweep median "
              f"{flag['median']:.4g} (|z|={abs(flag['zscore']):.1f}, "
              f"{direction})")
    return 0


def _problems(args: argparse.Namespace) -> int:
    import json

    from .problems import describe_problem, get_problem
    from .utils.errors import DeckError

    if args.problems_command == "list":
        if args.json:
            print(json.dumps([describe_problem(name)
                              for name in problem_names()], indent=2))
            return 0
        width = max(len(name) for name in problem_names())
        for name in problem_names():
            info = get_problem(name)
            deck = info.deck or "-"
            print(f"{name:<{width}}  {info.summary}  [deck: {deck}]")
        return 0

    # describe
    try:
        info = get_problem(args.name)
    except DeckError as exc:
        print(f"problems describe: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(info.describe(), indent=2))
        return 0
    print(f"{info.name}: {info.summary}")
    if info.reference:
        print(f"reference:  {info.reference}")
    if info.acceptance:
        print(f"acceptance: {info.acceptance}")
    if info.deck:
        print(f"deck:       {deck_path(info.name)}")
    print()
    print("settings:")
    rows = [(s.name, s.type_name, repr(s.default), s.section,
             s.doc + (f" (one of: "
                      f"{', '.join(repr(c) for c in s.choices)})"
                      if s.choices else ""))
            for s in info.settings]
    widths = [max(len(r[i]) for r in rows) for i in range(4)]
    for r in rows:
        print(f"  {r[0]:<{widths[0]}}  {r[1]:<{widths[1]}}  "
              f"default={r[2]:<{widths[2]}}  [{r[3]:<{widths[3]}}]  {r[4]}")
    print()
    print("any HydroControls field (cfl_safety, cq1, ale_on, ...) may "
          "also be set\nin the deck's [CONTROL]/[ALE] sections or passed "
          "to load_problem().")
    return 0


def _compare(args: argparse.Namespace) -> int:
    from .metrics import compare as cmp

    kwargs = {}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    if args.min_seconds is not None:
        kwargs["min_seconds"] = args.min_seconds
    if args.gate_comm:
        kwargs["gate_comm"] = True
    if args.gate_throughput:
        kwargs["gate_throughput"] = True
    if args.gate_outliers:
        kwargs["gate_outliers"] = True
    try:
        result = cmp.compare_files(args.old, args.new, **kwargs)
    except (OSError, ValueError) as exc:
        print(f"compare: {exc}", file=sys.stderr)
        return 2
    print(cmp.format_table(result))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`) — exit quietly
        # the way well-behaved Unix tools do.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _run(args)
    if args.command == "run-ensemble":
        return _run_ensemble_cli(args)
    if args.command == "fleet":
        return _fleet_cli(args)
    if args.command == "compare":
        return _compare(args)
    if args.command == "problems":
        return _problems(args)
    if args.command == "decks":
        from .problems import bundled_decks

        for name in bundled_decks():
            print(f"{name:<13} {deck_path(name)}")
        return 0
    if args.command == "info":
        from .perfmodel import format_table1

        print(format_table1())
        return 0
    if args.command == "model":
        print(_model_report(args))
        return 0
    if args.command == "validate":
        return _validate(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
