"""Command-line front end — run the mini-app like the Fortran binary.

Usage (installed as ``bookleaf``, or ``python -m repro``)::

    bookleaf run sod.in                 # run a deck file
    bookleaf run --problem noh --nx 100 # run a bundled problem
    bookleaf run sod.in --ranks 4       # decomposed (virtual-MPI) run
    bookleaf decks                      # list bundled decks
    bookleaf info                       # platform/model registry

Prints the BookLeaf-style per-kernel timer breakdown at the end of
every run, and optionally a VTK dump and a time-history CSV.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .output.timehist import TimeHistory
from .output.vtk import write_vtk
from .problems import deck_path, load_problem, problem_names, setup_from_deck
from .utils.log import StepLogger
from .utils.timers import TimerRegistry


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bookleaf",
        description="BookLeaf reproduction: 2-D unstructured ALE hydro",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a deck or a bundled problem")
    run.add_argument("deck", nargs="?", help="input deck path")
    run.add_argument("--problem", choices=problem_names(),
                     help="bundled problem instead of a deck")
    run.add_argument("--nx", type=int, help="mesh cells in x")
    run.add_argument("--ny", type=int, help="mesh cells in y")
    run.add_argument("--time-end", type=float, dest="time_end")
    run.add_argument("--ranks", type=int, default=1,
                     help="virtual MPI ranks (simulated Typhon)")
    run.add_argument("--partition", choices=("rcb", "spectral"),
                     default="rcb")
    run.add_argument("--max-steps", type=int, dest="max_steps")
    run.add_argument("--log-every", type=int, default=0,
                     help="print a step banner every N steps")
    run.add_argument("--vtk", help="write a final-state VTK dump here")
    run.add_argument("--history", help="write a time-history CSV here")

    sub.add_parser("decks", help="list the bundled input decks")
    sub.add_parser("info", help="show the modelled platform registry")

    model = sub.add_parser(
        "model", help="print a modelled table/figure from the paper"
    )
    model.add_argument(
        "report",
        choices=("table1", "table2", "fig1", "fig2a", "fig2b",
                 "fig3", "fig4a", "fig4b", "ablations"),
        help="which evaluation artefact to regenerate",
    )

    validate = sub.add_parser(
        "validate",
        help="run a mesh-convergence ladder against the exact solution",
    )
    validate.add_argument("problem", choices=("sod", "noh"),
                          help="problem with an analytic reference")
    validate.add_argument("--resolutions", default="25,50,100",
                          help="comma-separated nx ladder")
    validate.add_argument("--time-end", type=float, dest="time_end")
    return parser


def _validate(args: argparse.Namespace) -> int:
    from .validation import (
        convergence_study,
        noh_density_error,
        sod_density_error,
    )

    resolutions = [int(tok) for tok in args.resolutions.split(",")]
    kwargs = {}
    if args.time_end is not None:
        kwargs["time_end"] = args.time_end
    if args.problem == "sod":
        study = convergence_study("sod", resolutions, sod_density_error,
                                  ny=2, **kwargs)
    else:
        study = convergence_study("noh", resolutions, noh_density_error,
                                  **kwargs)
    print(study.table())
    converged = all(b < a for a, b in zip(study.errors, study.errors[1:]))
    print("converging" if converged else "NOT converging")
    return 0 if converged else 1


def _model_report(which: str) -> str:
    from .perfmodel import (
        PAPER_TABLE2,
        TABLE2_ORDER,
        format_ablations,
        format_bars,
        format_scaling,
        format_table1,
        format_table2,
        scaling_series,
        table2,
    )

    if which == "table1":
        return format_table1()
    if which == "ablations":
        return format_ablations()
    model = table2()
    if which == "table2":
        return format_table2(model)
    if which == "fig1":
        return format_bars(
            "FIG 1: Overall performance, Noh, single node (model)",
            {k: model[k]["overall"] for k in TABLE2_ORDER},
            paper={k: PAPER_TABLE2[k]["overall"] for k in TABLE2_ORDER},
        )
    if which in ("fig2a", "fig2b"):
        kernel = "viscosity" if which == "fig2a" else "acceleration"
        return format_bars(
            f"FIG {which[-2:]}: {kernel} kernel, Noh, single node (model)",
            {k: model[k][kernel] for k in TABLE2_ORDER},
            paper={k: PAPER_TABLE2[k][kernel] for k in TABLE2_ORDER},
        )
    kernel = None
    if which == "fig4a":
        kernel = "viscosity"
    elif which == "fig4b":
        kernel = "acceleration"
    title = (f"FIG {which[-2:]}: "
             + (f"{kernel} kernel " if kernel else "")
             + "Sod strong scaling, hybrid (model)")
    return format_scaling(title, {
        "Skylake": scaling_series("skylake_hybrid", kernel=kernel),
        "Broadwell": scaling_series("broadwell_hybrid", kernel=kernel),
    })


def _run(args: argparse.Namespace) -> int:
    if args.deck and args.problem:
        print("give either a deck or --problem, not both", file=sys.stderr)
        return 2
    if args.deck:
        setup = setup_from_deck(args.deck)
        overrides = {}
        if args.time_end is not None:
            overrides["time_end"] = args.time_end
        if overrides:
            setup.controls = setup.controls.with_(**overrides)
        if args.nx or args.ny:
            print("--nx/--ny apply to --problem runs; set them in the deck",
                  file=sys.stderr)
            return 2
    elif args.problem:
        kwargs = {}
        if args.nx:
            kwargs["nx"] = args.nx
        if args.ny:
            kwargs["ny"] = args.ny
        if args.time_end is not None:
            kwargs["time_end"] = args.time_end
        setup = load_problem(args.problem, **kwargs)
    else:
        print("nothing to run: give a deck path or --problem",
              file=sys.stderr)
        return 2

    timers = TimerRegistry()
    start = time.perf_counter()
    if args.ranks > 1:
        from .parallel import DistributedHydro

        driver = DistributedHydro(setup, args.ranks, method=args.partition)
        driver.run(max_steps=args.max_steps)
        hydro = driver.hydros[0]
        timers = driver.merged_timers()
        final = driver.gather()
        print(f"ranks: {args.ranks} ({args.partition}); "
              f"comm: {driver.comm_summary()}")
    else:
        hydro = setup.make_hydro(
            timers=timers, logger=StepLogger(every=args.log_every)
        )
        history = TimeHistory(every=max(args.log_every, 1))
        if args.history:
            hydro.observers.append(history)
        hydro.run(max_steps=args.max_steps)
        final = hydro.state
        if args.history:
            history.write_csv(args.history)
            print(f"wrote time history to {args.history}")
    wall = time.perf_counter() - start

    print(f"problem {setup.name}: {hydro.nstep} steps to "
          f"t={hydro.time:.6g} in {wall:.2f}s")
    print(f"mass={final.total_mass():.9g} "
          f"total_energy={final.total_energy():.9g} "
          f"rho_max={float(final.rho.max()):.4g}")
    print()
    print(timers.breakdown())
    if args.vtk:
        write_vtk(final, args.vtk, title=f"bookleaf {setup.name}")
        print(f"wrote VTK dump to {args.vtk}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(_build_parser().parse_args(argv))
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`) — exit quietly
        # the way well-behaved Unix tools do.
        import os

        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _run(args)
    if args.command == "decks":
        for name in problem_names():
            print(f"{name:<12} {deck_path(name)}")
        return 0
    if args.command == "info":
        from .perfmodel import format_table1

        print(format_table1())
        return 0
    if args.command == "model":
        print(_model_report(args.report))
        return 0
    if args.command == "validate":
        return _validate(args)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
