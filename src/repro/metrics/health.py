"""Forensic state snapshots for health-sentinel trips.

When a :class:`~repro.metrics.probe.DiagnosticsProbe` sentinel trips
(NaN in the energy field, a negative volume, …) the interesting state
is *gone* by the time anyone reads the exception — the run aborted and
the arrays were garbage-collected.  These helpers freeze the offending
:class:`~repro.core.state.HydroState` to an ``.npz`` at trip time so
the failure can be dissected offline: reload, find the listed cells,
inspect their neighbourhoods.

The snapshot is self-contained: every evolving field plus the mesh
coordinates/connectivity and the trip metadata (step, time, rank, the
sentinel names and ids), so no access to the original deck is needed
to start debugging.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

#: state fields frozen into a snapshot (mesh topology travels separately)
SNAPSHOT_FIELDS = (
    "x", "y", "u", "v",
    "rho", "e", "p", "cs2", "q", "mat",
    "cell_mass", "corner_mass", "volume", "corner_volume",
)


def dump_snapshot(state, path, *, nstep: Optional[int] = None,
                  time: Optional[float] = None,
                  rank: Optional[int] = None,
                  violations: Optional[dict] = None) -> str:
    """Write a forensic snapshot of ``state`` to ``path`` (.npz).

    Returns the path written.  ``violations`` is the sentinel dict from
    :meth:`~repro.core.state.HydroState.sentinel_scan`; it is stored as
    JSON in the metadata record so ids survive the round trip.
    """
    meta = {
        "nstep": nstep,
        "time": time,
        "rank": rank,
        "violations": {
            name: [int(i) for i in ids]
            for name, ids in (violations or {}).items()
        },
    }
    arrays = {name: np.asarray(getattr(state, name))
              for name in SNAPSHOT_FIELDS}
    arrays["cell_nodes"] = state.mesh.cell_nodes
    arrays["_meta_json"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    path = str(path)
    np.savez(path, **arrays)
    return path if path.endswith(".npz") else path + ".npz"


def load_snapshot(path) -> dict:
    """Load a snapshot back: field arrays plus the ``meta`` dict."""
    with np.load(str(path)) as data:
        out = {name: data[name] for name in data.files
               if name != "_meta_json"}
        out["meta"] = json.loads(bytes(data["_meta_json"]).decode())
    return out
