"""Cross-job anomaly detection for fleet sweeps.

A sweep's jobs are mostly siblings — same problem family, same mesh,
different controls — so their performance metrics should cluster.  A
job whose kernel seconds, comm bytes or step rate sits far outside the
sweep's distribution is worth a flag: a thermally-throttled worker, a
pathological parameter corner, a NUMA-unlucky placement.

The statistic is the **modified z-score** (Iglewicz & Hoaglin):
``0.6745 * (x - median) / MAD`` — median/MAD instead of mean/stddev so
one wild outlier cannot mask itself by inflating the spread.  When the
MAD is zero (half the sweep identical) the mean absolute deviation
takes over with the standard 1.253314 consistency factor; when that is
zero too the metric is constant and nothing is flagged.  The default
threshold is the conventional 3.5.

Jobs are grouped by config *family* — (problem, deck, nx, ny, nranks,
backend) — before scoring: a 32² job is not an outlier for being
faster than 128² siblings.  Direction matters for gating: only the
*harmful* direction (slow, heavy) fails ``compare --gate-outliers``;
a surprisingly fast job is reported but never fails CI.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: |modified z| beyond this flags a job (Iglewicz & Hoaglin's 3.5)
DEFAULT_THRESHOLD = 3.5

#: groups smaller than this are never scored (median/MAD of 3 jobs is
#: not a distribution)
MIN_GROUP = 4

#: metric name -> True when larger values are the harmful direction
METRIC_DIRECTIONS = {
    "wall_seconds": True,
    "kernel_seconds": True,
    "comm_bytes": True,
    "steps_per_sec": False,
}

#: metrics that scale with step count: scored per step when the group's
#: step budgets differ, so a job is not an "outlier" for running longer
STEP_SCALED = ("wall_seconds", "kernel_seconds", "comm_bytes")

#: job-doc fields defining the comparison family
FAMILY_FIELDS = ("problem", "deck", "nx", "ny", "nranks", "backend")


#: spread below this fraction of the median is float noise, not signal
#: (a derived per-step quantity can be "identical" to 1 ulp)
REL_SPREAD_FLOOR = 1e-9


def robust_zscores(values: Sequence[float]) -> List[float]:
    """Modified z-scores of ``values`` (0.6745*(x-median)/MAD, with
    the meanAD fallback when the MAD degenerates).  A spread below
    :data:`REL_SPREAD_FLOOR` of the median is treated as constant —
    dividing by a 1-ulp MAD would flag rounding noise as a 10^9-sigma
    event."""
    vals = [float(v) for v in values]
    n = len(vals)
    if n == 0:
        return []
    ordered = sorted(vals)
    mid = n // 2
    median = (ordered[mid] if n % 2
              else 0.5 * (ordered[mid - 1] + ordered[mid]))
    floor = abs(median) * REL_SPREAD_FLOOR
    abs_dev = [abs(v - median) for v in vals]
    ordered_dev = sorted(abs_dev)
    mad = (ordered_dev[mid] if n % 2
           else 0.5 * (ordered_dev[mid - 1] + ordered_dev[mid]))
    if mad > floor:
        return [0.6745 * (v - median) / mad for v in vals]
    mean_ad = sum(abs_dev) / n
    if mean_ad > floor:
        return [(v - median) / (1.253314 * mean_ad) for v in vals]
    return [0.0] * n


def _family(doc: dict) -> tuple:
    return tuple(doc.get(f) for f in FAMILY_FIELDS)


def detect_anomalies(job_docs: Sequence[dict],
                     threshold: float = DEFAULT_THRESHOLD,
                     min_group: int = MIN_GROUP,
                     metrics: Optional[Sequence[str]] = None
                     ) -> List[dict]:
    """Flag outlier jobs across a sweep's job documents.

    Returns one record per (job, metric) flag::

        {"job": 3, "metric": "wall_seconds", "value": 9.1,
         "median": 1.2, "basis": "raw", "zscore": 7.8, "harmful": True}

    sorted by job then metric.  Cache hits are excluded from timing
    metrics (a served result's wall time measures the disk, not the
    run).  When a group's step budgets differ, step-scaled metrics are
    scored per step (``basis="per_step"``; value and median are then
    per-step quantities) — a job is not an outlier for running longer.
    """
    metrics = tuple(metrics) if metrics else tuple(METRIC_DIRECTIONS)
    groups: Dict[tuple, List[dict]] = {}
    for doc in job_docs:
        groups.setdefault(_family(doc), []).append(doc)
    flags: List[dict] = []
    for members in groups.values():
        for metric in metrics:
            higher_is_bad = METRIC_DIRECTIONS.get(metric, True)
            rows = [d for d in members
                    if d.get(metric) is not None
                    and not (d.get("cache_hit")
                             and metric != "comm_bytes")]
            if len(rows) < max(2, int(min_group)):
                continue
            values = [float(d[metric]) for d in rows]
            basis = "raw"
            if metric in STEP_SCALED:
                steps = [d.get("nstep") for d in rows]
                if (all(isinstance(s, (int, float)) and s > 0
                        for s in steps)
                        and len(set(steps)) > 1):
                    values = [v / float(s)
                              for v, s in zip(values, steps)]
                    basis = "per_step"
            zscores = robust_zscores(values)
            ordered = sorted(values)
            mid = len(ordered) // 2
            median = (ordered[mid] if len(ordered) % 2
                      else 0.5 * (ordered[mid - 1] + ordered[mid]))
            for doc, value, z in zip(rows, values, zscores):
                if abs(z) <= threshold:
                    continue
                harmful = (z > 0) == higher_is_bad
                flags.append({
                    "job": doc.get("index"),
                    "metric": metric,
                    "value": value,
                    "median": median,
                    "basis": basis,
                    "zscore": round(z, 3),
                    "harmful": harmful,
                })
    flags.sort(key=lambda f: (f["job"] if f["job"] is not None else -1,
                              f["metric"]))
    return flags
