"""Live metrics & health: in-situ diagnostics for running simulations.

PR 2 gave the repository *post-hoc* observability — trace spans and a
JSON run report you read after the run ends (docs/OBSERVABILITY.md).
This package is the *live* half: what a production system would watch
while the run executes.

* :class:`~repro.metrics.probe.DiagnosticsProbe` — sampled every N
  steps by the hydro loop; computes the conserved totals (mass,
  internal + kinetic energy) and their drift against step 0, the
  hourglass-energy proxy, field extrema and the dt control, and scans
  hard health **sentinels** (NaN/Inf, non-positive volume/density,
  negative energy) that raise a structured
  :class:`~repro.utils.errors.HealthError` with a forensic state
  snapshot on disk.
* :class:`~repro.metrics.registry.MetricsRegistry` — labelled
  counter/gauge/histogram primitives with an NDJSON append stream and
  a Prometheus text-exposition snapshot writer.
* :mod:`~repro.metrics.watchdog` — rank heartbeats and the stall
  monitor used by the ``threads``/``processes`` backends
  (:class:`~repro.utils.errors.StalledRankWarning`).
* :mod:`~repro.metrics.compare` — the ``repro compare`` CLI: diff two
  run reports or two ``BENCH_*.json`` files with a regression
  threshold, for CI gating.
* :mod:`~repro.metrics.anomaly` — cross-job outlier detection for
  fleet sweeps (robust modified z-scores over kernel seconds, comm
  bytes and step rate; ``compare --gate-outliers``).

Everything here is opt-in: with no probe attached the step loop pays
one ``is None`` check per step and stays bit-identical.
"""

from .probe import METRICS_SCHEMA_VERSION, DiagnosticsProbe
from .registry import MetricsRegistry
from .health import dump_snapshot, load_snapshot
from .watchdog import HeartbeatBoard, Heartbeat, Watchdog
from .anomaly import detect_anomalies, robust_zscores

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "DiagnosticsProbe",
    "MetricsRegistry",
    "HeartbeatBoard",
    "Heartbeat",
    "Watchdog",
    "dump_snapshot",
    "load_snapshot",
    "detect_anomalies",
    "robust_zscores",
]
