"""Rank heartbeats and the stall watchdog.

A decomposed run is lockstep: every rank must reach every barrier and
collective.  When one rank stops making progress — wedged in a kernel,
killed by the OOM killer, SIGKILLed — its peers hang *silently* at the
next dt reduction, and the run looks alive forever.  The watchdog
turns that silence into a diagnosis:

* every rank publishes ``(step, wallclock)`` heartbeats into a shared
  :class:`HeartbeatBoard` — a plain (nranks, 2) float64 array for the
  ``threads`` backend, a ``shared_memory``-backed view of the same
  layout for ``processes``;
* a monitor (the :class:`Watchdog` thread for ``threads``; the parent
  process's existing poll loop for ``processes``) flags any rank whose
  heartbeat age exceeds the configured timeout, aborts the run
  (releasing the peers stuck in barriers) and surfaces a
  :class:`~repro.utils.errors.StalledRankWarning` carrying every
  rank's last-seen step.

Heartbeats are two float stores per step — always on for decomposed
runs; only the monitoring (and hence the timeout policy) is opt-in via
``--watchdog-timeout``.
"""

from __future__ import annotations

import time
from threading import Event, Thread
from typing import Callable, Dict, Optional

import numpy as np

#: board layout: one row per rank, columns = (last step, monotonic stamp)
BOARD_COLS = 2

#: step value meaning "launched but no step completed yet"
LAUNCHED = -1.0


class HeartbeatBoard:
    """Shared (nranks, 2) array of per-rank (step, wallclock) beats.

    The storage is caller-provided so one class serves both backends:
    threads hand in a process-local array, processes hand in a view of
    a ``shared_memory`` segment.  Writers only ever touch their own
    row, so no locking is needed (float64 stores are atomic enough for
    a monitor that tolerates a torn read as one stale poll).
    """

    def __init__(self, array: np.ndarray):
        if array.ndim != 2 or array.shape[1] != BOARD_COLS:
            raise ValueError(f"heartbeat board must be (nranks, "
                             f"{BOARD_COLS}), got {array.shape}")
        self.array = array

    @classmethod
    def allocate(cls, nranks: int) -> "HeartbeatBoard":
        board = cls(np.zeros((nranks, BOARD_COLS)))
        board.launch()
        return board

    @property
    def nranks(self) -> int:
        return self.array.shape[0]

    # ------------------------------------------------------------------
    def launch(self) -> None:
        """Stamp every row 'launched now' — a rank that never completes
        a single step still ages from launch, not from epoch zero."""
        self.array[:, 0] = LAUNCHED
        self.array[:, 1] = time.monotonic()

    def beat(self, rank: int, step: int) -> None:
        self.array[rank, 0] = float(step)
        self.array[rank, 1] = time.monotonic()

    def last_seen(self) -> Dict[int, dict]:
        """Every rank's last beat: ``{rank: {step, age_seconds}}``."""
        now = time.monotonic()
        return {
            r: {"step": int(self.array[r, 0]),
                "age_seconds": now - float(self.array[r, 1])}
            for r in range(self.nranks)
        }

    def stalled(self, timeout: float) -> Dict[int, dict]:
        """Ranks whose last beat is older than ``timeout`` seconds."""
        return {r: seen for r, seen in self.last_seen().items()
                if seen["age_seconds"] > timeout}


class Heartbeat:
    """Per-rank step observer: one board write per completed step."""

    def __init__(self, board: HeartbeatBoard, rank: int):
        self.board = board
        self.rank = rank

    def __call__(self, hydro) -> None:
        self.board.beat(self.rank, hydro.nstep)


def stall_message(stalled: Dict[int, dict],
                  board: HeartbeatBoard, timeout: float) -> str:
    """The StalledRankWarning text: who stalled, everyone's last step."""
    who = ", ".join(
        f"rank {r} (last step {info['step']}, "
        f"{info['age_seconds']:.1f}s ago)"
        for r, info in sorted(stalled.items())
    )
    steps = [int(s) for s in board.array[:, 0]]
    return (f"watchdog: no heartbeat within {timeout:.1f}s from {who}; "
            f"per-rank last-seen steps: {steps}")


class Watchdog(Thread):
    """Monitor thread flagging ranks that stop beating.

    On the first stall it records the verdict (``self.stalled``), calls
    ``on_stall(stalled)`` — the threads backend passes ``ctx.abort`` so
    peers blocked in barriers are released — and exits.  The driver
    reads ``self.stalled`` after joining the workers and issues the
    :class:`~repro.utils.errors.StalledRankWarning` from the main
    thread (warnings from daemon threads are invisible to
    ``pytest.warns`` and most filters).
    """

    def __init__(self, board: HeartbeatBoard, timeout: float,
                 on_stall: Optional[Callable[[Dict[int, dict]], None]] = None,
                 poll: Optional[float] = None):
        super().__init__(name="rank-watchdog", daemon=True)
        self.board = board
        self.timeout = float(timeout)
        self.on_stall = on_stall
        self.poll = poll if poll is not None else min(self.timeout / 4, 0.05)
        self.stalled: Optional[Dict[int, dict]] = None
        # NB: not ``_stop`` — that would shadow threading.Thread._stop,
        # which Thread.join() calls internally.
        self._halt = Event()

    def run(self) -> None:
        while not self._halt.wait(self.poll):
            stalled = self.board.stalled(self.timeout)
            if stalled:
                self.stalled = stalled
                if self.on_stall is not None:
                    self.on_stall(stalled)
                return

    def stop(self) -> None:
        self._halt.set()
