"""``repro compare`` — diff two run reports or two BENCH files.

The bench jobs in CI have always been *advisory*: a human has to open
two JSON artifacts and eyeball the kernel seconds.  This module is the
machine half of that judgement — given two schema-versioned run
reports (``--report out.json``) or two ``BENCH_*.json`` documents it
prints a per-metric table (old, new, ratio) and exits nonzero when any
gated metric regressed beyond the threshold, which is what lets a CI
step fail a PR instead of merely attaching artifacts.

Gating rules:

* **run reports** — per-kernel ``seconds`` are gated (lower is
  better); kernels below the ``min_seconds`` floor in *both* runs are
  reported but never gated (sub-millisecond timings are noise).
  Comm counters and the embedded diagnostics (energy/mass drift) are
  informational rows: a comm-count change means the algorithm changed,
  which is a review question, not a timing regression.  With
  ``gate_comm=True`` (CLI ``--gate-comm``) the derived
  ``comm.bytes_per_step`` IS gated — comm volume is deterministic
  (schedule-driven), so CI can fail a comm-volume regression without
  any timing-noise floor.
* **fleet summaries** (``repro.fleet`` sweep documents, classified by
  their ``fleet_sweep`` marker) — jobs are matched across documents by
  ``(canonical config key, occurrence)`` and the *intersection's*
  outcome **digests** are gated bit-for-bit: the digest covers the
  exact final-state bytes, clocks and diagnostics stream, so any
  mismatch is a determinism regression regardless of threshold.  Jobs
  present in only one document surface as explicit added/removed rows
  (a grown sweep is not a regression); wall seconds and cache-hit
  counts are informational (a warm cache is *supposed* to change
  them).  ``--gate-outliers`` additionally fails the comparison when
  the new sweep carries harmful cross-job anomaly flags
  (:mod:`repro.metrics.anomaly`).
* **bench documents** — every shared numeric leaf is compared;
  ``*seconds*``/``t_*`` leaves are gated lower-is-better, ``*speedup*``
  leaves higher-is-better, anything else informational
  (``*bytes_per_step*`` leaves join the gate under ``gate_comm``;
  ``*runs_per_sec*``/``*throughput*`` leaves join higher-is-better
  under ``gate_throughput`` — CLI ``--gate-throughput`` — with the
  ``min_seconds`` noise floor applied through the sibling ``seconds``
  leaf, so a sub-millisecond case can't fail CI on dispatch jitter).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: kernels faster than this in both runs are never gated (timing noise)
DEFAULT_MIN_SECONDS = 1e-3

#: default allowed fractional slowdown before a row counts as regressed
DEFAULT_THRESHOLD = 0.25


@dataclass
class Row:
    """One comparison line: a metric in the old and new documents."""

    name: str
    old: Optional[float]
    new: Optional[float]
    #: "ok" | "regression" | "improved" | "info"
    status: str = "info"
    #: True when this row can flip the exit code
    gated: bool = False

    @property
    def ratio(self) -> Optional[float]:
        if self.old is None or self.new is None or self.old == 0:
            return None
        return self.new / self.old


@dataclass
class CompareResult:
    kind: str                       # "report" | "bench" | "fleet"
    rows: List[Row] = field(default_factory=list)

    @property
    def regressions(self) -> List[Row]:
        return [r for r in self.rows if r.status == "regression"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0


# ----------------------------------------------------------------------
# document classification and loading
# ----------------------------------------------------------------------
def load_document(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def classify(doc: dict) -> str:
    if "fleet_sweep" in doc:
        return "fleet"
    if "kernels" in doc and "run" in doc:
        return "report"
    if "rungs" in doc or "cases" in doc or "bench" in doc:
        return "bench"
    raise ValueError(
        "not a run report (--report out.json), a BENCH_*.json document "
        "or a fleet sweep summary"
    )


# ----------------------------------------------------------------------
# run-report comparison
# ----------------------------------------------------------------------
def _judge(old: Optional[float], new: Optional[float], threshold: float,
           lower_is_better: bool = True) -> str:
    if old is None or new is None or old == 0:
        return "info"
    ratio = new / old
    if lower_is_better:
        if ratio > 1.0 + threshold:
            return "regression"
        if ratio < 1.0 - threshold:
            return "improved"
    else:
        if ratio < 1.0 - threshold:
            return "regression"
        if ratio > 1.0 + threshold:
            return "improved"
    return "ok"


def _comm_bytes_per_step(doc: dict) -> Optional[float]:
    """Comm volume per step, derived (the report schema pins the comm
    entry fields, so the derivation lives here, not in the report)."""
    total = doc.get("comm", {}).get("total", {}).get("bytes")
    steps = doc.get("run", {}).get("steps")
    if total is None or not steps:
        return None
    return total / steps


def compare_reports(old: dict, new: dict, threshold: float,
                    min_seconds: float,
                    gate_comm: bool = False) -> CompareResult:
    result = CompareResult(kind="report")
    kernels = sorted(set(old.get("kernels", {})) | set(new.get("kernels", {})))
    for name in kernels:
        a = old.get("kernels", {}).get(name, {}).get("seconds")
        b = new.get("kernels", {}).get(name, {}).get("seconds")
        gate = (a is not None and b is not None
                and max(a, b) >= min_seconds)
        status = _judge(a, b, threshold) if gate else "info"
        result.rows.append(Row(f"kernels.{name}.seconds", a, b,
                               status=status, gated=gate))
    a, b = _comm_bytes_per_step(old), _comm_bytes_per_step(new)
    if gate_comm and a is not None and b is not None:
        # Comm volume is deterministic (schedule-driven, no timing
        # noise), so it is gated exactly — unlike kernel seconds, no
        # noise floor applies.
        result.rows.append(Row("comm.bytes_per_step", a, b, gated=True,
                               status=_judge(a, b, threshold)))
    else:
        result.rows.append(Row("comm.bytes_per_step", a, b))
    for counter in ("messages", "bytes", "halo_exchanges", "reductions"):
        a = old.get("comm", {}).get("total", {}).get(counter)
        b = new.get("comm", {}).get("total", {}).get(counter)
        result.rows.append(Row(f"comm.total.{counter}", a, b))
    for metric in ("energy_drift", "mass_drift", "total_energy",
                   "hourglass_energy"):
        a = (old.get("diagnostics") or {}).get(metric)
        b = (new.get("diagnostics") or {}).get(metric)
        if a is not None or b is not None:
            result.rows.append(Row(f"diagnostics.{metric}", a, b))
    a, b = old.get("run", {}).get("wall_seconds"), \
        new.get("run", {}).get("wall_seconds")
    result.rows.append(Row("run.wall_seconds", a, b))
    return result


# ----------------------------------------------------------------------
# fleet-summary comparison
# ----------------------------------------------------------------------
def _jobs_by_occurrence(doc: dict) -> Dict[Tuple[str, int], dict]:
    """Index a summary's jobs by ``(key, occurrence)``.

    Submitting the same config twice in one sweep is legal (the second
    is a cache hit), so the canonical key alone is not unique; the
    occurrence counter disambiguates repeats while still lining jobs up
    across documents regardless of submission order.
    """
    seen: Dict[str, int] = {}
    out: Dict[Tuple[str, int], dict] = {}
    for job in doc.get("jobs", []):
        n = seen.get(job["key"], 0)
        seen[job["key"]] = n + 1
        out[(job["key"], n)] = job
    return out


def compare_fleets(old: dict, new: dict,
                   gate_outliers: bool = False) -> CompareResult:
    """Diff two fleet sweep summaries by per-job outcome digest.

    Jobs line up by ``(canonical config key, occurrence)`` — submission
    order may change between sweeps, and the two documents may cover
    *different* job lists (a grown or shrunk sweep).  Only the
    intersection is gated: a digest mismatch on a shared job is a
    bit-exactness regression (no threshold applies); jobs present in
    only one document are reported as explicit ``added``/``removed``
    rows, never gated.  Wall time and cache-hit counts are
    informational.

    ``gate_outliers=True`` additionally gates the *new* document's
    harmful anomaly flags (:mod:`repro.metrics.anomaly`): a job flagged
    slow/heavy against its sweep siblings fails the comparison even
    when its digest matches (bit-identical but 10x slower is still a
    regression).
    """
    result = CompareResult(kind="fleet")
    jobs_old = _jobs_by_occurrence(old)
    jobs_new = _jobs_by_occurrence(new)

    def name_of(key: str, n: int) -> str:
        return (f"jobs[{key[:12]}].digest" if n == 0
                else f"jobs[{key[:12]}#{n}].digest")

    shared = sorted(set(jobs_old) & set(jobs_new))
    removed = sorted(set(jobs_old) - set(jobs_new))
    added = sorted(set(jobs_new) - set(jobs_old))
    for key, n in shared:
        a, b = jobs_old[(key, n)], jobs_new[(key, n)]
        match = a.get("digest") == b.get("digest")
        result.rows.append(Row(
            name_of(key, n), 1.0, 1.0 if match else 0.0, gated=True,
            status="ok" if match else "regression"))
        result.rows.append(Row(name_of(key, n).replace(
            ".digest", ".nstep"), a.get("nstep"), b.get("nstep")))
    for key, n in removed:
        result.rows.append(Row(
            name_of(key, n).replace(".digest", ".removed"), 1.0, None))
    for key, n in added:
        result.rows.append(Row(
            name_of(key, n).replace(".digest", ".added"), None, 1.0))
    if removed or added:
        result.rows.append(Row("jobs.shared", float(len(shared)),
                               float(len(shared))))
    if gate_outliers:
        anomalies = new.get("anomalies")
        if anomalies is None:
            from .anomaly import detect_anomalies

            anomalies = detect_anomalies(new.get("jobs", []))
        harmful = [f for f in anomalies if f.get("harmful")]
        result.rows.append(Row(
            "anomalies.harmful", 0.0, float(len(harmful)), gated=True,
            status="ok" if not harmful else "regression"))
        for flag in harmful:
            result.rows.append(Row(
                f"anomalies.job{flag['job']}.{flag['metric']}.zscore",
                None, flag.get("zscore")))
    for counter in ("jobs", "cache_hits", "ensemble_jobs",
                    "anomalies"):
        a = (old.get("counts") or {}).get(counter)
        b = (new.get("counts") or {}).get(counter)
        if a is not None or b is not None:
            result.rows.append(Row(f"counts.{counter}", a, b))
    result.rows.append(Row("wall_seconds", old.get("wall_seconds"),
                           new.get("wall_seconds")))
    return result


# ----------------------------------------------------------------------
# bench-document comparison
# ----------------------------------------------------------------------
def _numeric_leaves(doc, prefix: str = "") -> Dict[str, float]:
    """Flatten a JSON document to ``dotted.path -> number`` leaves.

    Lists of objects are keyed by their most identifying scalar fields
    (nx, backend, nranks, problem, name) when present, else by index —
    so the same case lines up across documents even if list order or
    length changed.
    """
    out: Dict[str, float] = {}
    if isinstance(doc, bool):
        return out
    if isinstance(doc, (int, float)):
        out[prefix.rstrip(".")] = float(doc)
        return out
    if isinstance(doc, dict):
        for key in sorted(doc):
            out.update(_numeric_leaves(doc[key], f"{prefix}{key}."))
        return out
    if isinstance(doc, list):
        for i, item in enumerate(doc):
            label = str(i)
            if isinstance(item, dict):
                tags = [f"{k}={item[k]}"
                        for k in ("problem", "name", "backend", "nx",
                                  "nranks", "lanes")
                        if k in item and not isinstance(item[k], (dict, list))]
                if tags:
                    label = ",".join(tags)
            out.update(_numeric_leaves(item, f"{prefix}[{label}]."))
        return out
    return out


def _bench_direction(path: str, gate_comm: bool = False,
                     gate_throughput: bool = False) -> Optional[bool]:
    """True = lower better, False = higher better, None = ungated."""
    leaf = path.rsplit(".", 1)[-1]
    if "speedup" in leaf:
        return False
    if gate_throughput and ("runs_per_sec" in leaf
                            or "throughput" in leaf):
        return False
    if "seconds" in leaf or leaf.startswith("t_"):
        return True
    if gate_comm and "bytes_per_step" in leaf:
        return True
    return None


def _throughput_floored(path: str, leaves_old: Dict[str, float],
                        leaves_new: Dict[str, float],
                        min_seconds: float) -> bool:
    """True when a throughput leaf's case ran below the noise floor.

    A runs/sec ratio on a case that completes in under ``min_seconds``
    is dominated by dispatch jitter; the sibling ``seconds`` leaf (the
    same dotted path with ``runs_per_sec`` -> ``seconds``) supplies the
    wall time.  No sibling found = not floored (gate normally).
    """
    head, _, leaf = path.rpartition(".")
    if "runs_per_sec" not in leaf:
        return False
    sibling = (head + "." if head else "") + leaf.replace(
        "runs_per_sec", "seconds")
    a, b = leaves_old.get(sibling), leaves_new.get(sibling)
    if a is None or b is None:
        return False
    return max(a, b) < min_seconds


def compare_benches(old: dict, new: dict, threshold: float,
                    gate_comm: bool = False,
                    gate_throughput: bool = False,
                    min_seconds: float = DEFAULT_MIN_SECONDS
                    ) -> CompareResult:
    result = CompareResult(kind="bench")
    a_leaves = _numeric_leaves(old)
    b_leaves = _numeric_leaves(new)
    for path in sorted(set(a_leaves) | set(b_leaves)):
        a, b = a_leaves.get(path), b_leaves.get(path)
        direction = _bench_direction(path, gate_comm=gate_comm,
                                     gate_throughput=gate_throughput)
        if (direction is False
                and _throughput_floored(path, a_leaves, b_leaves,
                                        min_seconds)):
            direction = None
        if direction is None or a is None or b is None:
            result.rows.append(Row(path, a, b))
        else:
            result.rows.append(Row(
                path, a, b, gated=True,
                status=_judge(a, b, threshold,
                              lower_is_better=direction),
            ))
    return result


# ----------------------------------------------------------------------
# entry point + table rendering
# ----------------------------------------------------------------------
def compare_files(path_old: str, path_new: str,
                  threshold: float = DEFAULT_THRESHOLD,
                  min_seconds: float = DEFAULT_MIN_SECONDS,
                  gate_comm: bool = False,
                  gate_throughput: bool = False,
                  gate_outliers: bool = False) -> CompareResult:
    old, new = load_document(path_old), load_document(path_new)
    kind_old, kind_new = classify(old), classify(new)
    if kind_old != kind_new:
        raise ValueError(
            f"cannot compare a {kind_old} against a {kind_new}"
        )
    if kind_old == "fleet":
        return compare_fleets(old, new, gate_outliers=gate_outliers)
    if kind_old == "report":
        return compare_reports(old, new, threshold, min_seconds,
                               gate_comm=gate_comm)
    return compare_benches(old, new, threshold, gate_comm=gate_comm,
                           gate_throughput=gate_throughput,
                           min_seconds=min_seconds)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.6g}"


def format_table(result: CompareResult) -> str:
    headers = ("metric", "old", "new", "ratio", "status")
    body = []
    for row in result.rows:
        ratio = row.ratio
        body.append((
            row.name, _fmt(row.old), _fmt(row.new),
            "-" if ratio is None else f"{ratio:.3f}",
            row.status if row.gated else "info",
        ))
    widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
              for i, h in enumerate(headers)]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    n = len(result.regressions)
    lines.append("")
    lines.append(f"{n} regression(s)" if n else "no regressions")
    return "\n".join(lines)
