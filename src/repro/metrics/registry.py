"""Labelled metrics primitives with Prometheus and NDJSON sinks.

A minimal, dependency-free metrics pipeline in the Prometheus data
model: **counters** (monotone totals — messages sent, samples taken),
**gauges** (point-in-time values — energy drift, min density) and
**histograms** (distributions — per-step wall seconds), every
instrument carrying a sorted label set (``rank``, ``phase``, ``kernel``
…).

Two sinks:

* :meth:`MetricsRegistry.prometheus` / :meth:`write_prometheus` — the
  standard text exposition format, one snapshot per call, for scraping
  or eyeballing;
* the NDJSON *stream* lives in :mod:`repro.metrics.probe` (one record
  per diagnostics sample, append-only) — the registry is the
  end-of-run aggregate, the stream is the time series.

The registry is also fed from the existing instrumentation after a
run: :meth:`ingest_timers` folds a
:class:`~repro.utils.timers.TimerRegistry` into per-kernel counters
and :meth:`ingest_comm` folds the Typhon
:class:`~repro.parallel.typhon.CommStats` dicts, so one registry ends
up holding physics, timing and traffic under a uniform naming scheme.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

#: default histogram bucket upper bounds (seconds-flavoured, +Inf added)
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _key(name: str, labels: Dict[str, str]) -> Tuple:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class Counter:
    """A monotone accumulating total."""

    kind = "counter"

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value (goes up and down)."""

    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A cumulative-bucket distribution (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.bounds = tuple(sorted(buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Bucket counts as Prometheus wants them: cumulative ≤ bound."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """A set of named, labelled instruments.

    ``registry.counter("samples_total", rank=0).inc()`` — instruments
    are created on first touch and identified by (name, label set), so
    every call site with the same labels shares one instrument.
    """

    def __init__(self):
        self._instruments: Dict[Tuple, Tuple[str, dict, object]] = {}

    # ------------------------------------------------------------------
    def _get(self, factory, name: str, labels: dict):
        key = _key(name, labels)
        entry = self._instruments.get(key)
        if entry is None:
            # labels are stored stringified, matching the identity key
            # (rank=0 and rank="0" are one instrument, shown one way)
            entry = (name, {k: str(v) for k, v in labels.items()},
                     factory())
            self._instruments[key] = entry
        return entry[2]

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(lambda: Histogram(buckets), name, labels)

    # ------------------------------------------------------------------
    # bulk ingestion from the existing instrumentation
    # ------------------------------------------------------------------
    def ingest_timers(self, timers, **labels) -> None:
        """Fold a :class:`~repro.utils.timers.TimerRegistry` in as
        per-kernel ``kernel_seconds_total`` / ``kernel_calls_total``."""
        for name, timer in timers.timers.items():
            self.counter("kernel_seconds_total",
                         kernel=name, **labels).inc(timer.seconds)
            self.counter("kernel_calls_total",
                         kernel=name, **labels).inc(timer.calls)

    def ingest_comm(self, comm: dict, **labels) -> None:
        """Fold one rank's CommStats dict in as ``comm_*_total``."""
        for field, value in comm.items():
            self.counter(f"comm_{field}_total", **labels).inc(value)

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready dump: ``{name: [{labels, kind, value(s)}...]}``."""
        out: Dict[str, list] = {}
        for key in sorted(self._instruments):
            name, labels, inst = self._instruments[key]
            entry = {"labels": labels, "kind": inst.kind}
            if inst.kind == "histogram":
                entry.update(sum=inst.sum, count=inst.count,
                             buckets=dict(zip(
                                 [str(b) for b in inst.bounds] + ["+Inf"],
                                 inst.cumulative())))
            else:
                entry["value"] = inst.value
            out.setdefault(name, []).append(entry)
        return out

    def prometheus(self, prefix: str = "bookleaf") -> str:
        """The Prometheus text exposition format, deterministic order."""
        by_name: Dict[str, list] = {}
        for key in sorted(self._instruments):
            name, labels, inst = self._instruments[key]
            by_name.setdefault(name, []).append((labels, inst))
        lines: List[str] = []
        for name in sorted(by_name):
            series = by_name[name]
            metric = _NAME_RE.sub("_", f"{prefix}_{name}")
            lines.append(f"# TYPE {metric} {series[0][1].kind}")
            for labels, inst in series:
                if inst.kind == "histogram":
                    cum = inst.cumulative()
                    for bound, count in zip(
                            list(inst.bounds) + [math.inf], cum):
                        le = "+Inf" if bound == math.inf else repr(bound)
                        lines.append(
                            f"{metric}_bucket"
                            f"{_labelset(labels, le=le)} {count}")
                    lines.append(
                        f"{metric}_sum{_labelset(labels)} {_fmt(inst.sum)}")
                    lines.append(
                        f"{metric}_count{_labelset(labels)} {inst.count}")
                else:
                    lines.append(
                        f"{metric}{_labelset(labels)} {_fmt(inst.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path, prefix: str = "bookleaf") -> str:
        text = self.prometheus(prefix=prefix)
        with open(path, "w") as fh:
            fh.write(text)
        return str(path)


def _labelset(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(
        f'{_LABEL_RE.sub("_", k)}="{_escape(v)}"'
        for k, v in sorted((k, str(v)) for k, v in merged.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
