"""In-situ physics diagnostics: the live probe in the step loop.

The compatible-hydro scheme's defining property is discrete
conservation — total energy drifts only by floating-point round-off
(paper Section III; measured ~1e-16 per run on Noh) — and the
invariant-domain ALE literature (Guermond et al.; Boscheri & Dumbser)
treats positivity of density/energy and cell validity as first-class
run-health bounds.  :class:`DiagnosticsProbe` turns those invariants
into a live monitor:

* every ``every``-th step (and at step 0, the baseline) it computes
  total mass, internal/kinetic energy and their relative drift against
  step 0, an hourglass-energy proxy, the minimum cell volume/density/
  pressure and the current dt with its controlling reason;
* before any of that it runs the **hard sentinels**
  (:meth:`~repro.core.state.HydroState.sentinel_scan`): NaN/Inf
  anywhere, non-positive volume/density/mass, negative internal
  energy.  A trip dumps a forensic snapshot
  (:mod:`repro.metrics.health`) and raises
  :class:`~repro.utils.errors.HealthError` naming the offending cells;
* each sample appends one schema-versioned JSON record to the NDJSON
  sink (``--metrics out.ndjson``) and updates the
  :class:`~repro.metrics.registry.MetricsRegistry` gauges.

Decomposed runs: every rank probes on the same cadence (the step count
is SPMD state), sums/minima go through the two vector collectives on
the comms seam, and per-cell sums are restricted to **owned** cells —
kinetic energy is partitioned by attributing each node's energy
through the corner masses, which sum over owned cells to exactly the
serial total.  The sentinel scan runs *before* the collectives so a
sick rank aborts its peers through the normal failure machinery
instead of deadlocking in a reduction.

With no probe attached the step loop pays one ``is None`` check — the
bit-identity and bench guarantees of the hot loop are untouched.
"""

from __future__ import annotations

import json
from typing import List, Optional

import numpy as np

from ..core.hourglass import hourglass_amplitude
from ..utils.errors import HealthError
from .health import dump_snapshot

#: bumped on any record-shape change (mirrors the run-report discipline)
METRICS_SCHEMA_VERSION = 1

#: denominator floor for the relative drifts (a zero-energy baseline —
#: e.g. cold static gas — reports absolute drift instead of dividing
#: by zero)
_DRIFT_FLOOR = 1e-300


class DiagnosticsProbe:
    """Samples physics diagnostics and health sentinels every N steps.

    Parameters
    ----------
    every:
        Sampling cadence in steps (≥ 1).  Step 0 is always sampled (the
        drift baseline) and the final step is sampled at ``finish`` so
        the stream ends with the run's closing drift.
    sink_path:
        NDJSON output path (one record per sample, append-streamed and
        flushed per line so a crash keeps everything sampled so far).
        Usually only rank 0 of a decomposed run carries a sink — the
        record holds global totals, identical on every rank.
    registry:
        Optional :class:`~repro.metrics.registry.MetricsRegistry` whose
        gauges/counters are updated per sample.
    record:
        Keep the records in memory (``self.rows``) for the run report.
    snapshot_path:
        Where a sentinel trip dumps the forensic state snapshot;
        defaults to ``HEALTH_snapshot_rank{rank}.npz`` in the CWD.
    cell_global:
        Optional local→global cell-id map (decomposed runs) so
        :class:`~repro.utils.errors.HealthError` names global cells.
    """

    def __init__(self, every: int = 10,
                 sink_path: Optional[str] = None,
                 registry=None,
                 record: bool = True,
                 snapshot_path: Optional[str] = None,
                 cell_global: Optional[np.ndarray] = None):
        if every < 1:
            raise ValueError("probe cadence must be >= 1 "
                             "(disable by not attaching a probe)")
        self.every = int(every)
        self.sink_path = sink_path
        self.registry = registry
        self.record = record
        self.snapshot_path = snapshot_path
        self.cell_global = cell_global
        self.rows: List[dict] = []
        self._sink = None
        self._baseline: Optional[dict] = None
        self._last_sampled: Optional[int] = None

    # ------------------------------------------------------------------
    # the Hydro seam
    # ------------------------------------------------------------------
    def begin(self, hydro) -> None:
        """Record the drift baseline (idempotent — first call wins)."""
        if self._baseline is None:
            self.sample(hydro)

    def on_step(self, hydro) -> None:
        """Called by the step loop after every completed step."""
        if self._baseline is None:
            # step() driven directly without run(): baseline now.  The
            # drift reference is then the first *observed* state, which
            # is the best available.
            self.sample(hydro)
        elif hydro.nstep % self.every == 0:
            self.sample(hydro)

    def finish(self, hydro) -> None:
        """Force a final sample (if the last step fell off-cadence) and
        close the sink."""
        if self._baseline is not None and self._last_sampled != hydro.nstep:
            self.sample(hydro)
        self.close()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    @property
    def last_sample(self) -> Optional[dict]:
        """The most recent record (what the run report embeds)."""
        return self.rows[-1] if self.rows else None

    # ------------------------------------------------------------------
    # one sample
    # ------------------------------------------------------------------
    def sample(self, hydro) -> dict:
        state, comms = hydro.state, hydro.comms
        mask = comms.owned_cell_mask(state)

        # Sentinels first: a rank with poisoned state must raise before
        # entering the collectives below, so its peers abort through
        # the backend's failure machinery rather than deadlocking.
        violations = state.sentinel_scan(cell_mask=mask)
        if violations:
            self._trip(hydro, violations)

        cn = state.mesh.cell_nodes
        cu = state.u[cn]
        cv = state.v[cn]
        # Corner-mass partition of the kinetic energy: summed over
        # owned cells this reproduces the nodal-mass total exactly
        # (node mass *is* the scatter-sum of corner masses), and it
        # partitions cleanly across ranks.
        ke_cells = 0.5 * np.sum(state.corner_mass * (cu ** 2 + cv ** 2),
                                axis=1)
        hg_cells = state.cell_mass * hourglass_amplitude(cu, cv) ** 2
        if mask is None:
            local_sums = np.array([
                state.cell_mass.sum(),
                (state.cell_mass * state.e).sum(),
                ke_cells.sum(),
                hg_cells.sum(),
            ])
            local_mins = np.array([
                state.volume.min(), state.rho.min(), state.p.min(),
            ])
        else:
            local_sums = np.array([
                state.cell_mass[mask].sum(),
                (state.cell_mass[mask] * state.e[mask]).sum(),
                ke_cells[mask].sum(),
                hg_cells[mask].sum(),
            ])
            local_mins = np.array([
                state.volume[mask].min(),
                state.rho[mask].min(),
                state.p[mask].min(),
            ])

        mass, ie, ke, hg = comms.allreduce_sum(local_sums)
        vol_min, rho_min, p_min = comms.allreduce_min(local_mins)
        total = ie + ke

        if self._baseline is None:
            mass_drift = 0.0
            energy_drift = 0.0
        else:
            b = self._baseline
            mass_drift = ((mass - b["mass"])
                          / max(abs(b["mass"]), _DRIFT_FLOOR))
            energy_drift = ((total - b["total_energy"])
                            / max(abs(b["total_energy"]), _DRIFT_FLOOR))

        rec = {
            "schema_version": METRICS_SCHEMA_VERSION,
            "nstep": int(hydro.nstep),
            "time": float(hydro.time),
            "dt": float(hydro.dt),
            "dt_reason": hydro.dt_reason,
            "dt_cell": int(hydro.dt_cell),
            "nranks": int(comms.size),
            "mass": float(mass),
            "internal_energy": float(ie),
            "kinetic_energy": float(ke),
            "total_energy": float(total),
            "mass_drift": float(mass_drift),
            "energy_drift": float(energy_drift),
            "hourglass_energy": float(hg),
            "vol_min": float(vol_min),
            "rho_min": float(rho_min),
            "p_min": float(p_min),
            "sentinel_trips": 0,
        }
        if self._baseline is None:
            self._baseline = rec
        self._last_sampled = rec["nstep"]
        self._emit(rec, rank=comms.rank)
        return rec

    # ------------------------------------------------------------------
    def _emit(self, rec: dict, rank: int) -> None:
        if self.record:
            self.rows.append(rec)
        if self.sink_path is not None:
            if self._sink is None:
                self._sink = open(self.sink_path, "w")
            self._sink.write(json.dumps(rec) + "\n")
            self._sink.flush()
        reg = self.registry
        if reg is not None:
            reg.counter("diagnostics_samples_total", rank=rank).inc()
            for name in ("mass", "total_energy", "mass_drift",
                         "energy_drift", "hourglass_energy",
                         "vol_min", "rho_min", "p_min", "dt"):
                reg.gauge(name, rank=rank).set(rec[name])
            reg.histogram("dt_seconds", rank=rank).observe(rec["dt"])

    def _trip(self, hydro, violations: dict) -> None:
        """A sentinel fired: snapshot the state, raise HealthError."""
        state, comms = hydro.state, hydro.comms
        rank = comms.rank
        path = self.snapshot_path
        if path is None:
            path = f"HEALTH_snapshot_rank{rank}.npz"
        # Globalise the *cell* ids for decomposed runs; node-field ids
        # (nonfinite:x/y/u/v) stay local — the rank disambiguates.
        reported = {}
        for name, ids in violations.items():
            field = name.split(":", 1)[1]
            if (self.cell_global is not None
                    and field not in state.SENTINEL_NODE_FIELDS):
                reported[name] = [int(self.cell_global[i]) for i in ids]
            else:
                reported[name] = [int(i) for i in ids]
        snapshot = dump_snapshot(
            state, path, nstep=hydro.nstep, time=hydro.time,
            rank=rank, violations=reported,
        )
        if self.registry is not None:
            self.registry.counter("sentinel_trips_total", rank=rank).inc()
        raise HealthError(reported, nstep=hydro.nstep, time=hydro.time,
                          snapshot=snapshot,
                          rank=rank if comms.size > 1 else None)
