"""Verification utilities: error norms and mesh-convergence studies.

The tools a downstream user needs to do what tests/integration does by
hand: run a bundled problem across a resolution ladder, measure error
norms against the analytic solution and estimate the observed order of
accuracy.

Example::

    from repro.validation import convergence_study, sod_density_error

    study = convergence_study("sod", (25, 50, 100), sod_density_error)
    print(study.table())
    assert study.orders()[-1] > 0.6   # first-order at shocks, as expected
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from .analytic import noh_exact, sod_solution
from .core.hydro import Hydro
from .problems import load_problem

#: an error functional: finished driver -> scalar error
ErrorFn = Callable[[Hydro], float]


def l1_norm(computed: np.ndarray, exact: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.abs(computed - exact).mean())


def l2_norm(computed: np.ndarray, exact: np.ndarray) -> float:
    """Root-mean-square error."""
    return float(np.sqrt(((computed - exact) ** 2).mean()))


def linf_norm(computed: np.ndarray, exact: np.ndarray) -> float:
    """Maximum absolute error."""
    return float(np.abs(computed - exact).max())


def sod_density_error(hydro: Hydro, norm=l1_norm) -> float:
    """Density error of a finished Sod run vs the exact solution."""
    state = hydro.state
    xc, _ = state.mesh.cell_centroids(state.x, state.y)
    rho_exact, _, _ = sod_solution().sample((xc - 0.5) / hydro.time)
    return norm(state.rho, rho_exact)


def noh_density_error(hydro: Hydro, norm=l1_norm) -> float:
    """Density error of a finished Noh run vs the exact solution."""
    state = hydro.state
    xc, yc = state.mesh.cell_centroids(state.x, state.y)
    r = np.hypot(xc, yc)
    rho_exact, _, _ = noh_exact.solution(r, hydro.time)
    return norm(state.rho, rho_exact)


@dataclass
class ConvergenceStudy:
    """Resolutions, errors and observed orders of one refinement ladder."""

    problem: str
    resolutions: List[int]
    errors: List[float]
    meta: Dict[str, object] = field(default_factory=dict)

    def orders(self) -> List[float]:
        """Observed order between consecutive resolutions
        (assumes each step doubles nx)."""
        out = []
        for (n1, e1), (n2, e2) in zip(
            zip(self.resolutions, self.errors),
            zip(self.resolutions[1:], self.errors[1:]),
        ):
            ratio = n2 / n1
            out.append(float(np.log(e1 / e2) / np.log(ratio)))
        return out

    def table(self) -> str:
        lines = [f"convergence study: {self.problem}",
                 f"{'nx':>8}{'error':>14}{'order':>9}"]
        orders = [float("nan")] + self.orders()
        for nx, err, order in zip(self.resolutions, self.errors, orders):
            order_s = f"{order:9.2f}" if np.isfinite(order) else " " * 9
            lines.append(f"{nx:>8}{err:>14.6e}{order_s}")
        return "\n".join(lines)


def convergence_study(problem: str, resolutions: Sequence[int],
                      error_fn: ErrorFn, **problem_kwargs
                      ) -> ConvergenceStudy:
    """Run ``problem`` at each resolution and collect ``error_fn``.

    ``nx`` is swept; other setup arguments pass through unchanged (for
    square-domain problems pass matching ``ny`` via ``ny_follows=True``,
    the default, which sets ny = nx unless ny was given explicitly).
    """
    ny_follows = problem_kwargs.pop("ny_follows", "ny" not in problem_kwargs)
    errors = []
    for nx in resolutions:
        kwargs = dict(problem_kwargs)
        kwargs["nx"] = nx
        if ny_follows:
            kwargs["ny"] = nx
        hydro = load_problem(problem, **kwargs).run()
        errors.append(float(error_fn(hydro)))
    return ConvergenceStudy(
        problem=problem,
        resolutions=list(resolutions),
        errors=errors,
        meta=dict(problem_kwargs),
    )
