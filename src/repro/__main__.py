"""``python -m repro`` — the BookLeaf command-line front end."""

import sys

from .cli import main

sys.exit(main())
