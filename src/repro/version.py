"""The package version, in its own module so low-level layers (the
fleet result cache keys every entry by code version) can import it
without pulling in :mod:`repro`'s top-level re-exports."""

__version__ = "1.1.0"
