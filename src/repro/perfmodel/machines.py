"""Platform descriptors — the paper's Table I plus model parameters.

Each :class:`Platform` records the experimental-configuration row from
Table I (hardware, system, compiler, flags) and the hardware parameters
the performance model needs.  The seven evaluated configurations are
registered in :data:`PLATFORMS` in the paper's order.

Programming-model kinds:

* ``mpi``          — flat MPI, one process per physical core,
* ``hybrid``       — MPI+OpenMP, one process per NUMA region (socket),
* ``omp_offload``  — OpenMP 4.5 target offload to one GPU,
* ``cuda``         — CUDA Fortran on one GPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Platform:
    """One evaluated configuration (a column of Table II)."""

    key: str
    #: Table I fields
    hardware: str
    system: str
    compiler: str
    flags: str
    #: programming model kind (drives the model's transformations)
    kind: str
    #: short label used in the figures
    label: str

    # --- CPU parameters -------------------------------------------------
    sockets: int = 2
    cores_per_socket: int = 0
    #: effective per-node kernel throughput in work-units/s (calibrated
    #: against the Skylake MPI column; Broadwell scaled by core count,
    #: generation IPC and memory bandwidth)
    cpu_rate: float = 0.0

    # --- hybrid (OpenMP) parameters ------------------------------------
    #: fork/join + barrier overhead per parallel region (seconds)
    omp_region_overhead: float = 7.0e-6

    # --- GPU parameters -------------------------------------------------
    #: effective GPU kernel throughput in work-units/s before the
    #: per-kernel occupancy factors
    gpu_rate: float = 0.0
    #: kernel-launch latency (seconds per launch)
    launch_overhead: float = 8.0e-6
    #: host<->device bandwidth over PCIe (bytes/s)
    pcie_bw: float = 11.0e9
    #: dope-vector transfer cost per assumed-size array argument per
    #: launch (seconds) — the CUDA Fortran issue of paper Section IV-D
    dope_cost: float = 9.0e-6

    # --- network (Aries) parameters for the scaling model ---------------
    net_latency: float = 1.5e-6
    net_bw: float = 8.0e9
    #: effective cache per core (L2 + L3 share, bytes) — drives the
    #: superlinear strong-scaling regime of Figs 3-4
    cache_per_core: float = 3.0e6


#: Work-unit normalisation: the Noh workload (see ``noh_workload``) on
#: Skylake flat MPI must reproduce the paper's 76.068 s overall.  A
#: work unit is "one Skylake-MPI-core-second of kernel work per cell
#: per invocation" scaled so the kernel weights below are the paper's
#: per-kernel seconds directly.

SKYLAKE = Platform(
    key="skylake_mpi",
    hardware="Intel Xeon Platinum 8176 'Skylake'",
    system="Cray XC50",
    compiler="Cray",
    flags="-h cpu=x86-skylake -h network=aries -sreal64 -sinteger "
          "-ffree -ra -Oipa3 -O3",
    kind="mpi",
    label="Skylake MPI",
    cores_per_socket=28,
    cpu_rate=1.0,
)

SKYLAKE_HYBRID = Platform(
    key="skylake_hybrid",
    hardware=SKYLAKE.hardware,
    system=SKYLAKE.system,
    compiler=SKYLAKE.compiler,
    flags=SKYLAKE.flags,
    kind="hybrid",
    label="Skylake Hybrid",
    cores_per_socket=28,
    cpu_rate=1.0,
)

#: Broadwell per-node rate relative to Skylake: 44 vs 56 cores, older
#: core and slower memory; the paper's ratio (76.068/108.978 ≈ 0.70) is
#: consistent with the core-count ratio 44/56 ≈ 0.79 degraded by the
#: generation gap, so we use the measured 0.698.
BROADWELL = Platform(
    key="broadwell_mpi",
    hardware="Intel Xeon E5-2699 v4 'Broadwell'",
    system="Cray XC50",
    compiler="Cray",
    flags="-h cpu=broadwell -h network=aries -sreal64 -sinteger32 "
          "-ffree -ra -Oipa3 -O3",
    kind="mpi",
    label="Broadwell MPI",
    cores_per_socket=22,
    cpu_rate=0.698,
    cache_per_core=3.3e6,   # 256 KiB L2 + ~3 MiB L3 share
)

BROADWELL_HYBRID = Platform(
    key="broadwell_hybrid",
    hardware=BROADWELL.hardware,
    system=BROADWELL.system,
    compiler=BROADWELL.compiler,
    flags=BROADWELL.flags,
    kind="hybrid",
    label="Broadwell Hybrid",
    cores_per_socket=22,
    cpu_rate=0.698,
    cache_per_core=3.3e6,
)

P100_OPENMP = Platform(
    key="p100_openmp",
    hardware="NVIDIA P100 (OpenMP offload)",
    system="Cray XC50",
    compiler="Cray",
    flags="-h cpu=broadwell -h accel=nvidia_60 -h network=aries "
          "-sreal sinteger32 -ffree -ra -Oipa3 -O3",
    kind="omp_offload",
    label="P100 OpenMP",
    cores_per_socket=22,
    #: P100 HBM2 nominal 720 GB/s; the unoptimised Fortran offload
    #: kernels achieve a small fraction of it (the paper's register
    #: pressure discussion) — calibrated effective rate relative to the
    #: Skylake node.
    gpu_rate=0.60,
    launch_overhead=1.0e-5,
)

P100_CUDA = Platform(
    key="p100_cuda",
    hardware="NVIDIA P100 (CUDA Fortran)",
    system="SuperMicro 2028GR-TR",
    compiler="PGI",
    flags="-c -r8 -i4 -Mfree -fastsse -O2 -Mipa=fast -Mcuda=cc60",
    kind="cuda",
    label="P100 CUDA",
    cores_per_socket=14,
    gpu_rate=0.60,
)

V100_CUDA = Platform(
    key="v100_cuda",
    hardware="NVIDIA V100 (CUDA Fortran)",
    system="SuperMicro 2028GR-TR",
    compiler="PGI",
    flags="-c -r8 -i4 -Mfree -fastsse -O2 -Mipa=fast -Mcuda=cc70",
    kind="cuda",
    label="V100 CUDA",
    cores_per_socket=14,
    #: V100: ~1.25x the HBM bandwidth and ~2x the register file /
    #: scheduler improvements on these register-bound kernels.
    gpu_rate=1.30,
    pcie_bw=12.0e9,
)

PLATFORMS: Dict[str, Platform] = {
    p.key: p for p in (
        SKYLAKE, SKYLAKE_HYBRID, BROADWELL, BROADWELL_HYBRID,
        P100_OPENMP, P100_CUDA, V100_CUDA,
    )
}

#: Table II column order
TABLE2_ORDER: List[str] = [
    "skylake_mpi", "skylake_hybrid", "broadwell_mpi", "broadwell_hybrid",
    "p100_openmp", "p100_cuda", "v100_cuda",
]


def table1_rows() -> List[Dict[str, str]]:
    """The experimental-configuration table (paper Table I)."""
    seen = []
    rows = []
    for key in TABLE2_ORDER:
        p = PLATFORMS[key]
        ident = (p.hardware.split("(")[0].strip(), p.system)
        if ident in seen:
            continue
        seen.append(ident)
        rows.append({
            "hardware": p.hardware,
            "system": p.system,
            "compiler": p.compiler,
            "flags": p.flags,
        })
    return rows
