"""Kernel workload characterisation for the performance model.

The model separates *what the kernels cost* from *how a platform and
programming model transform that cost*:

* :data:`PAPER_WEIGHTS` — per-kernel work weights, calibrated so one
  work unit is one second of that kernel on the paper's baseline
  configuration (Skylake flat MPI, Table II column 1, Noh problem).
  These are measurements taken from the paper itself and are the
  model's only absolute anchor.
* :data:`HYBRID_SERIAL_FRACTION` — the Amdahl serial fraction of each
  kernel under intra-socket OpenMP threading, fitted once from the
  Skylake hybrid column and *predicting* the Broadwell hybrid column.
  The fractions encode the paper's diagnoses: the acceleration kernel's
  data dependency (Section IV-B), the expanded MINVAL/MINLOC loops in
  ``getdt`` and the workshare-directive single-threading in ``getgeom``.
* :data:`GPU_FACTORS` — per-kernel efficiency of the two GPU
  programming models relative to the GPU's effective rate, fitted on
  the P100 columns and *predicting* the V100 column through the
  hardware rate ratio.  They encode the register-pressure difference
  between CUDA and OpenMP offload in the viscosity kernel and the
  catastrophic offload code generation for ``getforce`` (Section V-B).
* ``getdt`` under CUDA runs on the host (no reduction primitives in
  CUDA Fortran, Section IV-D): its time is a structural PCIe-transfer
  term plus a host-compute term rather than a GPU factor.

:func:`measured_weights` runs this repository's own instrumented Noh
problem and returns the same weight vector measured for the *Python*
kernels — reported alongside the paper weights by the benchmarks so
the reader can see how the numpy implementation's balance differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..utils.timers import TimerRegistry

#: Table II kernel columns, in the paper's order.
KERNELS: List[str] = [
    "viscosity", "acceleration", "getdt", "getgeom", "getforce", "getpc",
]

#: everything Table II does not itemise (EoS setup, IO, the remainder
#: of the loop) — overall minus the itemised kernels
OTHER = "other"

#: timer-region name of each Table II kernel in this implementation
TIMER_NAME: Dict[str, str] = {
    "viscosity": "getq",
    "acceleration": "getacc",
    "getdt": "getdt",
    "getgeom": "getgeom",
    "getforce": "getforce",
    "getpc": "getpc",
}

#: work units == seconds on Skylake flat MPI (Table II, column 1)
PAPER_WEIGHTS: Dict[str, float] = {
    "viscosity": 46.365,
    "acceleration": 6.663,
    "getdt": 8.880,
    "getgeom": 3.396,
    "getforce": 5.364,
    "getpc": 1.314,
    OTHER: 76.068 - (46.365 + 6.663 + 8.880 + 3.396 + 5.364 + 1.314),
}

#: Amdahl serial fraction per kernel under intra-socket OpenMP.
#: Fitted from the Skylake hybrid column: s = (t_hyb/t_mpi − 1)/(T − 1)
#: with T = 28 threads/socket.  The big fractions are the paper's
#: explicitly-diagnosed problems (acceleration data dependency,
#: MINVAL/MINLOC expansion in getdt, workshare in getgeom).
HYBRID_SERIAL_FRACTION: Dict[str, float] = {
    "viscosity": 0.0052,
    "acceleration": 0.0515,
    "getdt": 0.1844,
    "getgeom": 0.2537,
    "getforce": 0.0,
    "getpc": 0.0209,
    OTHER: 0.0815,
}

#: Per-kernel GPU efficiency factors relative to the platform's
#: ``gpu_rate`` (fitted on the P100 columns; > 1 means the kernel runs
#: better on the GPU than the CPU baseline, as streaming ``getforce``
#: does under CUDA).
GPU_FACTORS: Dict[str, Dict[str, float]] = {
    "cuda": {
        "viscosity": 0.793,      # register pressure limits occupancy
        "acceleration": 0.505,   # scatter-dominated
        "getgeom": 0.144,        # gather-heavy, assumed-size arrays
        "getforce": 16.7,        # pure streaming: GPUs excel
        "getpc": 0.122,          # tiny kernel, launch-bound
        #: the CUDA "other" factor is host-bound (no gpu_rate scaling):
        #: paper P100 remainder 43.4 s vs 4.086 s baseline
        OTHER: 0.0941,
    },
    "omp_offload": {
        "viscosity": 1.018,      # better register allocation than CUDA
        "acceleration": 0.414,
        "getdt": 1.167,          # reductions work on-device
        "getgeom": 0.337,
        "getforce": 0.219,       # pathological offload code generation
        "getpc": 0.607,
        OTHER: 0.688,
    },
}

#: structural parameters of the host-side getdt under CUDA Fortran
#: (arrays copied device->host each step, then reduced on one core)
CUDA_GETDT_ARRAYS = 6          #: coords, velocities, cs2, q
CUDA_GETDT_HOST_FACTOR = 3.57  #: host-reduction time / baseline weight


def noh_workload() -> Dict[str, float]:
    """The nominal single-node Noh workload of the paper's evaluation.

    The paper does not state the mesh size; the model's absolute anchor
    is the calibrated baseline column, so only the *ratios* below
    matter (they feed the strong-scaling cache model).
    """
    return {"ncell": 1_000_000, "steps": 2000}


def weights_from_timers(timers: TimerRegistry,
                        total: Optional[float] = None) -> Dict[str, float]:
    """Extract a Table II-style weight vector from a timer registry."""
    weights = {k: timers.seconds(TIMER_NAME[k]) for k in KERNELS}
    overall = total if total is not None else timers.total()
    weights[OTHER] = max(overall - sum(weights.values()), 0.0)
    return weights


def measured_weights(nx: int = 100, ny: int = 100,
                     time_end: float = 0.2) -> Dict[str, float]:
    """Per-kernel seconds measured from this implementation's Noh run.

    Runs a reduced Noh problem with the kernel timers enabled and
    returns the measured breakdown — the Python analogue of Table II's
    baseline column.
    """
    from ..problems import load_problem

    timers = TimerRegistry()
    setup = load_problem("noh", nx=nx, ny=ny, time_end=time_end)
    setup.run(timers=timers)
    return weights_from_timers(timers)
