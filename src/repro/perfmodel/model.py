"""The single-node performance model (Table II, Figures 1–2).

``kernel_time(platform, kernel)`` transforms the calibrated baseline
work weights (:mod:`repro.perfmodel.kernels`) through the platform's
programming-model physics:

* **mpi** — the baseline: ``t = w / cpu_rate`` (flat MPI parallelises
  every kernel essentially perfectly on a node).
* **hybrid** — Amdahl's law per kernel with the fitted serial
  fractions: the serial part runs on one thread per socket instead of
  ``T``, so ``t = (w / cpu_rate) · ((1 − s) + s·T)``, plus the OpenMP
  region fork/join overhead.
* **cuda** — ``t = w / (gpu_rate · f_k)`` with the per-kernel CUDA
  factors, plus the dope-vector transfer overhead per launch (paper
  Section IV-D) — except ``getdt``, which runs on the *host*: a PCIe
  device→host transfer of the needed arrays every step plus a
  single-core reduction.
* **omp_offload** — like cuda with its own factors (no dope vectors,
  on-device reductions) plus launch overheads.

The absolute scale is calibrated (one work unit = one second of that
kernel in the paper's Skylake-MPI column); the *transformations* are
the model's predictive content, and EXPERIMENTS.md compares every
resulting cell against the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from .kernels import (
    CUDA_GETDT_ARRAYS,
    CUDA_GETDT_HOST_FACTOR,
    GPU_FACTORS,
    HYBRID_SERIAL_FRACTION,
    KERNELS,
    OTHER,
    PAPER_WEIGHTS,
    noh_workload,
)
from .machines import PLATFORMS, TABLE2_ORDER, Platform

#: OpenMP parallel regions entered per kernel per step (two predictor/
#: corrector invocations for most kernels)
REGIONS_PER_STEP: Dict[str, int] = {
    "viscosity": 2, "acceleration": 1, "getdt": 1, "getgeom": 2,
    "getforce": 2, "getpc": 2, OTHER: 2,
}

#: GPU kernel launches per kernel per step
LAUNCHES_PER_STEP = REGIONS_PER_STEP

#: assumed-size array arguments per kernel (dope vectors under CUDA)
DOPE_ARRAYS: Dict[str, int] = {
    "viscosity": 10, "acceleration": 6, "getdt": 6, "getgeom": 6,
    "getforce": 8, "getpc": 4, OTHER: 6,
}


def kernel_time(platform: Platform, kernel: str,
                weights: Optional[Dict[str, float]] = None,
                workload: Optional[Dict[str, float]] = None) -> float:
    """Modelled seconds spent in ``kernel`` over the whole Noh run."""
    weights = weights if weights is not None else PAPER_WEIGHTS
    workload = workload if workload is not None else noh_workload()
    w = weights[kernel]
    steps = workload["steps"]
    ncell = workload["ncell"]

    if platform.kind == "mpi":
        return w / platform.cpu_rate

    if platform.kind == "hybrid":
        threads = platform.cores_per_socket
        s = HYBRID_SERIAL_FRACTION[kernel]
        amdahl = (1.0 - s) + s * threads
        overhead = (platform.omp_region_overhead * REGIONS_PER_STEP[kernel]
                    * steps)
        return (w / platform.cpu_rate) * amdahl + overhead

    if platform.kind in ("cuda", "omp_offload"):
        launches = LAUNCHES_PER_STEP[kernel] * steps
        if platform.kind == "cuda" and kernel == "getdt":
            # Host-side time differential kernel (Section IV-D): copy
            # the needed arrays to the host each step, reduce there.
            transfer = steps * CUDA_GETDT_ARRAYS * ncell * 8 / platform.pcie_bw
            host = w * CUDA_GETDT_HOST_FACTOR
            return transfer + host
        if platform.kind == "cuda" and kernel == OTHER:
            # The non-kernel remainder under CUDA is host-bound (setup,
            # partitioning, the redundant device<->host copies of
            # Section IV-C) and does not speed up with a faster GPU.
            return w / GPU_FACTORS["cuda"][OTHER]
        factor = GPU_FACTORS[platform.kind][kernel]
        t = w / (platform.gpu_rate * factor)
        t += platform.launch_overhead * launches
        if platform.kind == "cuda":
            t += platform.dope_cost * DOPE_ARRAYS[kernel] * launches
        return t

    raise ValueError(f"unknown platform kind {platform.kind!r}")


def breakdown(platform: Platform,
              weights: Optional[Dict[str, float]] = None,
              workload: Optional[Dict[str, float]] = None
              ) -> Dict[str, float]:
    """Per-kernel seconds plus ``overall`` for one platform."""
    result = {
        k: kernel_time(platform, k, weights, workload)
        for k in KERNELS + [OTHER]
    }
    result["overall"] = sum(result[k] for k in KERNELS + [OTHER])
    return result


def table2(weights: Optional[Dict[str, float]] = None,
           workload: Optional[Dict[str, float]] = None
           ) -> Dict[str, Dict[str, float]]:
    """The full modelled Table II (all seven configurations)."""
    return {
        key: breakdown(PLATFORMS[key], weights, workload)
        for key in TABLE2_ORDER
    }


#: the paper's Table II, for comparison in benchmarks and EXPERIMENTS.md
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "skylake_mpi": {"overall": 76.068, "viscosity": 46.365,
                    "acceleration": 6.663, "getdt": 8.880,
                    "getgeom": 3.396, "getforce": 5.364, "getpc": 1.314},
    "skylake_hybrid": {"overall": 168.633, "viscosity": 52.913,
                       "acceleration": 15.923, "getdt": 53.086,
                       "getgeom": 26.654, "getforce": 4.925, "getpc": 2.054},
    "broadwell_mpi": {"overall": 108.978, "viscosity": 70.116,
                      "acceleration": 8.386, "getdt": 11.936,
                      "getgeom": 4.834, "getforce": 7.348, "getpc": 1.390},
    "broadwell_hybrid": {"overall": 180.438, "viscosity": 76.387,
                         "acceleration": 16.142, "getdt": 45.494,
                         "getgeom": 20.764, "getforce": 6.501,
                         "getpc": 2.108},
    "p100_openmp": {"overall": 186.506, "viscosity": 75.873,
                    "acceleration": 26.806, "getdt": 12.684,
                    "getgeom": 16.784, "getforce": 40.853, "getpc": 3.608},
    "p100_cuda": {"overall": 261.183, "viscosity": 97.445,
                  "acceleration": 21.995, "getdt": 40.433,
                  "getgeom": 39.448, "getforce": 0.536, "getpc": 17.922},
    "v100_cuda": {"overall": 191.636, "viscosity": 44.981,
                  "acceleration": 11.442, "getdt": 44.401,
                  "getgeom": 14.789, "getforce": 0.651, "getpc": 10.051},
}
