"""Parallel-efficiency analysis of the strong-scaling results.

Turns the Figure 3/4 series into the quantities a scaling study
normally reports:

* speedup and parallel efficiency relative to the smallest node count
  (efficiency > 1 in the superlinear regime — the cache effect),
* the Karp–Flatt experimentally-determined serial fraction
  ``f = (1/S − 1/p) / (1 − 1/p)`` — for BookLeaf it comes out
  *negative* in the superlinear regime and tiny afterwards, the
  quantitative form of the paper's "scales well because it barely
  communicates" conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .scaling import NODE_COUNTS, SodScalingWorkload, scaling_series
from .scaling import DEFAULT_WORKLOAD


@dataclass(frozen=True)
class EfficiencyPoint:
    """Derived scaling metrics at one node count."""

    nodes: int
    time: float
    speedup: float
    efficiency: float
    karp_flatt: Optional[float]   #: None at the baseline point


def efficiency_series(platform_key: str,
                      kernel: Optional[str] = None,
                      nodes: Optional[List[int]] = None,
                      work: SodScalingWorkload = DEFAULT_WORKLOAD
                      ) -> List[EfficiencyPoint]:
    """Speedup/efficiency/Karp–Flatt at each node count (vs the first)."""
    series = scaling_series(platform_key, kernel=kernel, nodes=nodes,
                            work=work)
    counts = sorted(series)
    base_nodes = counts[0]
    base_time = series[base_nodes]
    points = []
    for n in counts:
        p = n / base_nodes           # relative resource ratio
        speedup = base_time / series[n]
        eff = speedup / p
        if n == base_nodes:
            kf = None
        else:
            kf = (1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)
        points.append(EfficiencyPoint(
            nodes=n, time=series[n], speedup=speedup,
            efficiency=eff, karp_flatt=kf,
        ))
    return points


def format_efficiency(platform_keys: Optional[List[str]] = None) -> str:
    """Text report of the derived scaling metrics."""
    platform_keys = platform_keys or ["skylake_hybrid", "broadwell_hybrid"]
    lines = ["Strong-scaling efficiency analysis (Sod, hybrid; "
             "relative to 8 nodes)"]
    for key in platform_keys:
        lines.append(f"\n{key}:")
        lines.append(f"{'nodes':>8}{'time(s)':>11}{'speedup':>10}"
                     f"{'efficiency':>12}{'Karp-Flatt f':>14}")
        for pt in efficiency_series(key):
            kf = f"{pt.karp_flatt:+.4f}" if pt.karp_flatt is not None else "-"
            lines.append(
                f"{pt.nodes:>8}{pt.time:>11.1f}{pt.speedup:>10.2f}"
                f"{pt.efficiency:>12.2f}{kf:>14}"
            )
    lines.append(
        "\nefficiency > 1 marks the cache-driven superlinear regime; the "
        "near-zero (even negative) Karp-Flatt serial fraction is the "
        "paper's 'very few communications' conclusion, quantified."
    )
    return "\n".join(lines)
