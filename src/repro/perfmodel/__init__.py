"""The performance model that regenerates the paper's evaluation.

The hardware of Table I (Cray XC50 Skylake/Broadwell nodes, P100/V100
GPUs) is not available to a Python reproduction, so this package
substitutes a calibrated analytic model (see DESIGN.md): baseline
kernel weights anchored to the paper's Skylake-MPI column, with the
programming-model transformations (Amdahl hybrid fractions, GPU
efficiency factors, dope-vector/host-side-getdt structural terms,
cache-driven strong scaling, Typhon traffic) predicting the remaining
columns and all four figures.
"""

from .ablation import (
    dope_vector_ablation,
    format_ablations,
    gpu_aware_mpi_ablation,
    serial_partitioner_ablation,
)
from .efficiency import EfficiencyPoint, efficiency_series, format_efficiency
from .kernels import (
    GPU_FACTORS,
    HYBRID_SERIAL_FRACTION,
    KERNELS,
    OTHER,
    PAPER_WEIGHTS,
    measured_weights,
    noh_workload,
    weights_from_timers,
)
from .machines import PLATFORMS, TABLE2_ORDER, Platform, table1_rows
from .model import PAPER_TABLE2, breakdown, kernel_time, table2
from .report import format_bars, format_scaling, format_table1, format_table2
from .scaling import (
    DEFAULT_WORKLOAD,
    NODE_COUNTS,
    SodScalingWorkload,
    cache_penalty,
    comm_time,
    node_time,
    scaling_series,
    speedups,
)

__all__ = [
    "Platform",
    "PLATFORMS",
    "TABLE2_ORDER",
    "table1_rows",
    "KERNELS",
    "OTHER",
    "PAPER_WEIGHTS",
    "HYBRID_SERIAL_FRACTION",
    "GPU_FACTORS",
    "noh_workload",
    "measured_weights",
    "weights_from_timers",
    "kernel_time",
    "breakdown",
    "table2",
    "PAPER_TABLE2",
    "SodScalingWorkload",
    "DEFAULT_WORKLOAD",
    "NODE_COUNTS",
    "cache_penalty",
    "comm_time",
    "node_time",
    "scaling_series",
    "speedups",
    "format_table1",
    "format_table2",
    "dope_vector_ablation",
    "gpu_aware_mpi_ablation",
    "serial_partitioner_ablation",
    "format_ablations",
    "EfficiencyPoint",
    "efficiency_series",
    "format_efficiency",
    "format_bars",
    "format_scaling",
]
