"""Ablation studies for the design choices the paper discusses.

Three implementation decisions get quantitative treatment in the paper
beyond Table II, and each is modelled here so the benchmarks can
regenerate the claims:

* **Dope-vector elimination** (Section IV-D): CUDA Fortran transfers a
  72–96-byte dope vector per assumed-size array argument per kernel
  launch; declaring explicit sizes removed the transfers and improved
  the viscosity kernel from 4.23 s to 2.2 s on one problem set.
  :func:`dope_vector_ablation` models the kernel with and without the
  per-launch transfers.
* **GPU-aware MPI** (Section IV-C): Typhon is not GPU-aware, so
  multi-node GPU runs copy whole arrays device↔host around every halo
  exchange instead of moving only the halo.  :func:`gpu_aware_mpi_ablation`
  models the per-step exchange cost both ways.
* **The serial partitioner** (Section V-C): BookLeaf partitions on one
  rank, so at many hundreds of flat-MPI processes the O(N log N) setup
  on the root begins to dominate — the paper's stated reason for
  scaling the *hybrid* configuration.  :func:`serial_partitioner_ablation`
  models setup-vs-solve fractions across process counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from .kernels import PAPER_WEIGHTS
from .machines import PLATFORMS, Platform
from .model import DOPE_ARRAYS, LAUNCHES_PER_STEP


# ---------------------------------------------------------------------------
# dope vectors (CUDA Fortran assumed-size arrays)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DopeAblation:
    """Viscosity kernel time with/without dope-vector transfers."""

    with_dope: float
    without_dope: float

    @property
    def improvement(self) -> float:
        return self.with_dope / self.without_dope


#: the paper's anecdote: 4.23 s -> 2.2 s for "one problem set"; the
#: implied dope time (2.03 s at ~90 us per launch-with-10-arrays)
#: corresponds to ~11k timesteps of that reduced problem
PAPER_DOPE_BEFORE = 4.23
PAPER_DOPE_AFTER = 2.2


def dope_vector_ablation(platform_key: str = "p100_cuda",
                         steps: int = 11_300,
                         kernel_seconds: float = PAPER_DOPE_AFTER
                         ) -> DopeAblation:
    """Model the assumed-size-array fix on the viscosity kernel.

    ``kernel_seconds`` is the pure kernel time of the reduced problem
    set; the dope cost adds ``dope_cost × n_arrays`` per launch.
    """
    platform = PLATFORMS[platform_key]
    launches = LAUNCHES_PER_STEP["viscosity"] * steps
    dope = platform.dope_cost * DOPE_ARRAYS["viscosity"] * launches
    return DopeAblation(
        with_dope=kernel_seconds + dope,
        without_dope=kernel_seconds,
    )


# ---------------------------------------------------------------------------
# GPU-aware MPI (Typhon's missing feature)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GpuMpiAblation:
    """Per-step halo-exchange seconds with and without GPU-aware MPI."""

    non_aware: float
    aware: float

    @property
    def overhead(self) -> float:
        return self.non_aware / self.aware


def gpu_aware_mpi_ablation(platform_key: str = "p100_cuda",
                           ncell: int = 1_000_000,
                           halo_fraction: float = 0.004,
                           arrays: int = 4) -> GpuMpiAblation:
    """Model one timestep's exchange cost on a multi-node GPU run.

    Without GPU-aware MPI the implementation stages *whole arrays*
    through the host (device→host, exchange, host→device); with it,
    only the halo itself crosses PCIe/NVLink and the NIC.
    """
    platform = PLATFORMS[platform_key]
    array_bytes = ncell * 8 * arrays
    halo_bytes = array_bytes * halo_fraction
    exchanges = 2  # per step (paper Section IV-A)
    non_aware = exchanges * (
        2.0 * array_bytes / platform.pcie_bw          # D2H + H2D, full
        + halo_bytes / platform.net_bw
    )
    aware = exchanges * (
        2.0 * halo_bytes / platform.pcie_bw           # halo only
        + halo_bytes / platform.net_bw
    )
    return GpuMpiAblation(non_aware=non_aware, aware=aware)


# ---------------------------------------------------------------------------
# the serial partitioner at scale
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PartitionerPoint:
    """Setup vs solve at one process count."""

    processes: int
    partition_seconds: float
    solve_seconds: float

    @property
    def setup_fraction(self) -> float:
        total = self.partition_seconds + self.solve_seconds
        return self.partition_seconds / total


def serial_partitioner_ablation(ncell: int = 16_000_000,
                                solve_node_seconds: float = 2434.0,
                                processes: List[int] = None,
                                per_cell_cost: float = 2.0e-7
                                ) -> List[PartitionerPoint]:
    """Model the serial-partitioner fraction across process counts.

    The partition runs on one rank at O(N log N); the solve strong-
    scales.  ``solve_node_seconds`` is the single-node solve time
    (default: the Sod scaling workload on Skylake flat MPI), and
    56 processes make one node.
    """
    if processes is None:
        processes = [56, 112, 224, 448, 896, 1792]
    partition = per_cell_cost * ncell * math.log2(max(ncell, 2))
    points = []
    for p in processes:
        nodes = p / 56.0
        points.append(PartitionerPoint(
            processes=p,
            partition_seconds=partition,
            solve_seconds=solve_node_seconds / nodes,
        ))
    return points


def format_ablations() -> str:
    """Text report of all three ablation studies."""
    lines = ["ABLATIONS: modelled design-choice studies (paper Sections "
             "IV-C, IV-D, V-C)", ""]
    dope = dope_vector_ablation()
    lines.append(
        f"1. CUDA dope vectors (viscosity kernel, reduced problem set):\n"
        f"   with transfers  : {dope.with_dope:6.2f} s   (paper 4.23 s)\n"
        f"   explicit sizes  : {dope.without_dope:6.2f} s   (paper 2.20 s)\n"
        f"   improvement     : {dope.improvement:6.2f}x  (paper 1.92x)"
    )
    gpu = gpu_aware_mpi_ablation()
    lines.append(
        f"\n2. GPU-aware MPI (per-step halo exchange, 1M cells):\n"
        f"   staging whole arrays through the host: "
        f"{gpu.non_aware * 1e3:7.2f} ms/step\n"
        f"   GPU-aware (halo only)                : "
        f"{gpu.aware * 1e3:7.2f} ms/step\n"
        f"   overhead: {gpu.overhead:.0f}x — why multi-node GPU runs are "
        f"'currently suboptimal'"
    )
    lines.append("\n3. Serial partitioner at scale (Sod workload, flat MPI):")
    lines.append(f"   {'procs':>8}{'partition(s)':>14}{'solve(s)':>12}"
                 f"{'setup share':>13}")
    for pt in serial_partitioner_ablation():
        lines.append(
            f"   {pt.processes:>8}{pt.partition_seconds:>14.1f}"
            f"{pt.solve_seconds:>12.1f}{pt.setup_fraction:>12.1%}"
        )
    lines.append("   -> the paper scales the hybrid configuration to keep "
                 "process counts down")
    return "\n".join(lines)
