"""The strong-scaling model (Figures 3–4).

The paper strong-scales the Sod solver with the hybrid MPI+OpenMP
implementation on a Cray XC50 over 8–64 nodes and observes *superlinear*
scaling between 8 and 16 nodes followed by near-linear scaling — which
it attributes to cache: once the per-core working set fits in cache the
effective rate jumps, and because BookLeaf communicates so little the
gain survives at scale (paper Section V-C).

The model reproduces that mechanism:

    t(n) = (W / (n · rate)) · cache_penalty(working_set(n)) + t_comm(n)

* ``working_set(n)`` — bytes per core at n nodes,
* ``cache_penalty`` — a smooth logistic step: ``1 + A σ((B − C)/w)``,
  ≈ 1 + A when the working set exceeds the effective per-core cache C
  and → 1 once it fits (A and the transition width are the only tuned
  constants; C is the hardware cache size from Table I's platforms),
* ``t_comm(n)`` — the Typhon traffic: two halo exchanges per step of
  the subdomain surface plus a log₂(ranks) allreduce — small, which is
  exactly why the scaling stays near-linear out to 64 nodes,
* per-kernel series (Fig 4) use the kernel's own weight and its hybrid
  Amdahl factor, so the viscosity and acceleration kernels inherit the
  same cache step — as the paper's Figs 4a/4b show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .kernels import HYBRID_SERIAL_FRACTION, KERNELS, OTHER, PAPER_WEIGHTS
from .machines import PLATFORMS, Platform


@dataclass(frozen=True)
class SodScalingWorkload:
    """The strong-scaled Sod problem (nominal paper-scale numbers)."""

    ncell: int = 16_000_000         #: 4000 x 4000 global mesh
    steps: int = 4000
    #: bytes of state touched per cell per step (working-set density)
    bytes_per_cell: float = 120.0
    #: workload ratio to the single-node Noh calibration run
    weight_scale: float = 32.0
    #: out-of-cache slowdown amplitude (the superlinear driver)
    cache_amplitude: float = 1.0
    #: logistic transition width as a fraction of the cache size —
    #: narrow, so the jump happens between the 8- and 16-node working
    #: sets and the curve is near-linear afterwards, as in Fig 3
    cache_width: float = 0.12


DEFAULT_WORKLOAD = SodScalingWorkload()

#: the node counts of Figures 3-4
NODE_COUNTS: List[int] = [8, 16, 32, 64]


def cache_penalty(platform: Platform, nodes: int,
                  work: SodScalingWorkload = DEFAULT_WORKLOAD) -> float:
    """Rate penalty from the per-core working set at ``nodes`` nodes."""
    cores = nodes * platform.sockets * platform.cores_per_socket
    working_set = work.ncell / cores * work.bytes_per_cell
    c = platform.cache_per_core
    z = (working_set - c) / (work.cache_width * c)
    sigma = 1.0 / (1.0 + math.exp(-z))
    return 1.0 + work.cache_amplitude * sigma


def comm_time(platform: Platform, nodes: int,
              work: SodScalingWorkload = DEFAULT_WORKLOAD) -> float:
    """Typhon traffic per run: 2 halo exchanges + 1 allreduce per step."""
    ranks = nodes * platform.sockets          # hybrid: 1 rank per socket
    cells_per_rank = work.ncell / ranks
    surface_nodes = 4.0 * math.sqrt(cells_per_rank)
    halo_bytes = surface_nodes * 8.0 * 4.0    # x, y, u, v
    per_step = 2.0 * (8.0 * platform.net_latency
                      + halo_bytes / platform.net_bw)
    per_step += 2.0 * platform.net_latency * math.log2(max(ranks, 2))
    return per_step * work.steps


def kernel_weight_hybrid(platform: Platform, kernel: Optional[str],
                         work: SodScalingWorkload = DEFAULT_WORKLOAD
                         ) -> float:
    """Single-node hybrid work (seconds·node) for a kernel or overall."""
    names = [kernel] if kernel is not None else KERNELS + [OTHER]
    total = 0.0
    for name in names:
        w = PAPER_WEIGHTS[name] * work.weight_scale / platform.cpu_rate
        s = HYBRID_SERIAL_FRACTION[name]
        total += w * ((1.0 - s) + s * platform.cores_per_socket)
    return total


def node_time(platform_key: str, nodes: int,
              kernel: Optional[str] = None,
              work: SodScalingWorkload = DEFAULT_WORKLOAD) -> float:
    """Modelled runtime of the Sod strong-scaling run at ``nodes`` nodes."""
    platform = PLATFORMS[platform_key]
    compute = (kernel_weight_hybrid(platform, kernel, work) / nodes
               * cache_penalty(platform, nodes, work))
    comm = comm_time(platform, nodes, work)
    if kernel is not None:
        # Only the two communicating kernels carry the comm cost
        # (viscosity halo + acceleration sum); getdt has the allreduce.
        share = {"viscosity": 0.45, "acceleration": 0.45, "getdt": 0.10}
        comm *= share.get(kernel, 0.0)
    return compute + comm


def scaling_series(platform_key: str,
                   kernel: Optional[str] = None,
                   nodes: Optional[List[int]] = None,
                   work: SodScalingWorkload = DEFAULT_WORKLOAD
                   ) -> Dict[int, float]:
    """Runtime at each node count (one line of Fig 3 or Fig 4)."""
    nodes = nodes if nodes is not None else NODE_COUNTS
    return {n: node_time(platform_key, n, kernel, work) for n in nodes}


def speedups(series: Dict[int, float]) -> Dict[str, float]:
    """Consecutive speedup factors (8→16, 16→32, 32→64)."""
    keys = sorted(series)
    return {
        f"{a}->{b}": series[a] / series[b]
        for a, b in zip(keys, keys[1:])
    }
