"""Formatting helpers that print the paper's tables and figures as text.

Every benchmark target ends by printing one of these reports so running
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
evaluation section in the terminal: Table I, Table II (model vs paper,
with ratios), the Figure 1/2 bars and the Figure 3/4 scaling series.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .kernels import KERNELS
from .machines import PLATFORMS, TABLE2_ORDER, table1_rows
from .model import PAPER_TABLE2


def format_table1() -> str:
    """The experimental-configuration table (paper Table I)."""
    lines = ["TABLE I: Experimental configuration",
             f"{'Hardware':<38}{'System':<24}{'Compiler':<10}Flags"]
    for row in table1_rows():
        lines.append(
            f"{row['hardware']:<38}{row['system']:<24}"
            f"{row['compiler']:<10}{row['flags']}"
        )
    return "\n".join(lines)


def format_table2(model: Dict[str, Dict[str, float]],
                  paper: Optional[Dict[str, Dict[str, float]]] = None
                  ) -> str:
    """Model (and optionally paper) per-kernel breakdown, Table II layout."""
    paper = paper if paper is not None else PAPER_TABLE2
    cols = ["overall"] + KERNELS
    head = f"{'Hardware':<18}" + "".join(f"{c:>14}" for c in cols)
    lines = ["TABLE II: Per-kernel breakdown in seconds "
             "(model / paper / ratio)", head]
    for key in TABLE2_ORDER:
        label = PLATFORMS[key].label
        m = model[key]
        p = paper.get(key, {})
        row_m = f"{label:<18}" + "".join(f"{m[c]:>14.3f}" for c in cols)
        lines.append(row_m)
        if p:
            row_p = f"{'  (paper)':<18}" + "".join(
                f"{p.get(c, float('nan')):>14.3f}" for c in cols
            )
            row_r = f"{'  (ratio)':<18}" + "".join(
                f"{m[c] / p[c]:>14.2f}" if p.get(c) else f"{'-':>14}"
                for c in cols
            )
            lines.append(row_p)
            lines.append(row_r)
    return "\n".join(lines)


def format_bars(title: str, values: Dict[str, float],
                paper: Optional[Dict[str, float]] = None,
                width: int = 48) -> str:
    """ASCII bar chart in the style of Figures 1 and 2."""
    lines = [title]
    peak = max(values.values())
    for key in TABLE2_ORDER:
        if key not in values:
            continue
        label = PLATFORMS[key].label
        v = values[key]
        bar = "#" * max(int(round(width * v / peak)), 1)
        extra = f"  (paper {paper[key]:.1f}s)" if paper and key in paper else ""
        lines.append(f"{label:<18}{v:>9.2f}s |{bar}{extra}")
    return "\n".join(lines)


def format_scaling(title: str, series: Dict[str, Dict[int, float]]) -> str:
    """Text rendering of a strong-scaling figure (Figs 3/4)."""
    lines = [title]
    nodes = sorted(next(iter(series.values())))
    head = f"{'platform':<18}" + "".join(f"{n:>12}" for n in nodes)
    lines.append(head + f"{'8->16':>10}{'16->32':>10}{'32->64':>10}")
    for name, s in series.items():
        vals = "".join(f"{s[n]:>12.1f}" for n in nodes)
        keys = sorted(s)
        sp = [s[a] / s[b] for a, b in zip(keys, keys[1:])]
        sps = "".join(f"{x:>10.2f}" for x in sp)
        lines.append(f"{name:<18}{vals}{sps}")
    lines.append("(speedup > 2 between consecutive points = superlinear)")
    return "\n".join(lines)
