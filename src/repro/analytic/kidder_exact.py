"""Exact solution of Kidder's isentropic shell compression (Kidder 1976).

A cylindrical shell of ideal gas between radii ``r1 < r2`` is
compressed isentropically by time-dependent boundary pressures.  For
the self-similar solution to exist in cylindrical geometry (ν = 2) the
adiabatic index must be γ = 1 + 2/ν = 2; every fluid particle then
moves homothetically,

    R(r, t) = h(t) · r ,       h(t) = sqrt(1 − t²/τ²) ,

with ``r`` the initial (Lagrangian) radius, so the whole shell focuses
onto the axis at the *focalisation time*

    τ = sqrt( (γ − 1)/2 · (r2² − r1²) / (c2² − c1²) ) ,

where ``c_i² = γ p_i / ρ_i`` are the initial boundary sound speeds.
The initial density interpolates the boundary values in r² along one
isentrope ``p = s ρ^γ`` (s = p2/ρ2^γ = p1/ρ1^γ):

    ρ0(r) = [ (r2² − r²)/(r2² − r1²) · ρ1^{γ−1}
            + (r² − r1²)/(r2² − r1²) · ρ2^{γ−1} ]^{1/(γ−1)} ,

and the flow at time ``t < τ`` is, at Eulerian radius ``R = h r``:

    ρ(R, t) = h^{−2/(γ−1)}   ρ0(R/h)
    u(R, t) = ḣ(t) · R/h ,    ḣ(t) = −t / (τ² h(t))
    p(R, t) = h^{−2γ/(γ−1)} p0(R/h) ,   p0 = s ρ0^γ .

The default parameters (shell [0.9, 1.0], p1 = 0.1, p2 = 10,
ρ2 = 10⁻², hence ρ1 = 10⁻³ on the shared isentrope) give
τ ≈ 7.265 × 10⁻³ — the standard Lagrangian-hydro configuration (e.g.
Maire, J. Comput. Phys. 228 (2009); Boscheri & Dumbser,
arXiv:1408.3719).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: the only adiabatic index admitting the cylindrical self-similar flow
GAMMA = 2.0

#: default shell geometry and boundary states (one isentrope)
R1 = 0.9            #: inner shell radius
R2 = 1.0            #: outer shell radius
P1 = 0.1            #: initial inner-boundary pressure
P2 = 10.0           #: initial outer-boundary pressure
RHO2 = 1.0e-2       #: initial outer-boundary density

#: isentrope constant s = p / ρ^γ
ENTROPY = P2 / RHO2 ** GAMMA
#: inner-boundary density on the same isentrope
RHO1 = (P1 / ENTROPY) ** (1.0 / GAMMA)


def focusing_time(r1: float = R1, r2: float = R2, p1: float = P1,
                  p2: float = P2, rho1: float = RHO1,
                  rho2: float = RHO2) -> float:
    """The focalisation time τ (the shell collapses onto the axis)."""
    c1_sq = GAMMA * p1 / rho1
    c2_sq = GAMMA * p2 / rho2
    return float(np.sqrt(
        0.5 * (GAMMA - 1.0) * (r2 * r2 - r1 * r1) / (c2_sq - c1_sq)
    ))


#: τ for the default parameters (≈ 7.2648e-3)
TAU = focusing_time()


def scale(t: float, tau: float = TAU) -> float:
    """The homothety factor h(t) = sqrt(1 − t²/τ²)."""
    return float(np.sqrt(max(1.0 - (t / tau) ** 2, 0.0)))


def scale_rate(t: float, tau: float = TAU) -> float:
    """ḣ(t) = −t / (τ² h(t)) — the radial compression rate."""
    return -t / (tau * tau * scale(t, tau))


def shell_density(r: np.ndarray, r1: float = R1, r2: float = R2,
                  rho1: float = RHO1, rho2: float = RHO2) -> np.ndarray:
    """Initial density profile ρ0(r) across the shell."""
    r = np.asarray(r, dtype=np.float64)
    w = (r * r - r1 * r1) / (r2 * r2 - r1 * r1)
    g = GAMMA - 1.0
    return ((1.0 - w) * rho1 ** g + w * rho2 ** g) ** (1.0 / g)


def shell_pressure(r: np.ndarray) -> np.ndarray:
    """Initial pressure profile p0(r) = s ρ0(r)^γ."""
    return ENTROPY * shell_density(r) ** GAMMA


def solution(r_eul: np.ndarray, t: float, tau: float = TAU
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ρ, radial u, e) at Eulerian radii ``r_eul`` and time ``t < τ``.

    ``r_eul`` should lie inside the compressed shell
    ``[h(t) r1, h(t) r2]``; values outside are extrapolated along the
    same formulas (the flow only exists inside the shell).
    """
    r_eul = np.asarray(r_eul, dtype=np.float64)
    h = scale(t, tau)
    hdot = scale_rate(t, tau)
    r_lag = r_eul / h
    g = GAMMA - 1.0
    rho = h ** (-2.0 / g) * shell_density(r_lag)
    u = hdot * r_lag
    p = h ** (-2.0 * GAMMA / g) * shell_pressure(r_lag)
    e = p / (g * rho)
    return rho, u, e
