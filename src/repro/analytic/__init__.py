"""Analytic reference solutions for the four bundled test problems.

Exact Riemann solver (Sod), the Noh implosion solution, the numerically
integrated Sedov-Taylor similarity solution and the Saltzmann piston
shock.  These provide the quantitative targets for the validation
tests and the example scripts.
"""

from . import noh_exact, saltzmann_exact, sedov_exact
from .riemann import (
    RiemannSolution,
    RiemannState,
    sod_solution,
    solve_riemann,
    solve_star,
)

__all__ = [
    "RiemannState",
    "RiemannSolution",
    "solve_riemann",
    "solve_star",
    "sod_solution",
    "noh_exact",
    "sedov_exact",
    "saltzmann_exact",
]
