"""Analytic reference solutions for the bundled test problems.

Exact Riemann solver (Sod, LeBlanc), the Noh implosion solution, the
numerically integrated Sedov-Taylor similarity solution, the Saltzmann
piston shock and Kidder's isentropic shell compression.  These provide
the quantitative targets for the validation tests and the example
scripts.
"""

from . import kidder_exact, noh_exact, saltzmann_exact, sedov_exact
from .riemann import (
    RiemannSolution,
    RiemannState,
    sod_solution,
    solve_riemann,
    solve_star,
)

__all__ = [
    "RiemannState",
    "RiemannSolution",
    "solve_riemann",
    "solve_star",
    "sod_solution",
    "noh_exact",
    "sedov_exact",
    "saltzmann_exact",
    "kidder_exact",
]
