"""Exact Riemann solver for the 1-D Euler equations (ideal gas).

Standard Godunov/Toro construction: Newton iteration on the star-region
pressure using shock (Rankine–Hugoniot) and rarefaction (isentropic)
branch functions, then similarity sampling of the full wave fan.  Used
as the reference for Sod's shock tube and exercised directly by the
property tests (the solver must reproduce trivial and symmetric cases
exactly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..utils.errors import BookLeafError


@dataclass(frozen=True)
class RiemannState:
    """A primitive-variable gas state (ρ, u, p)."""

    rho: float
    u: float
    p: float

    def __post_init__(self):
        if self.rho <= 0.0:
            raise BookLeafError(f"Riemann state needs rho > 0, got {self.rho}")
        if self.p < 0.0:
            raise BookLeafError(f"Riemann state needs p >= 0, got {self.p}")

    def sound_speed(self, gamma: float) -> float:
        return float(np.sqrt(gamma * self.p / self.rho))


def _branch(p: float, state: RiemannState, gamma: float) -> Tuple[float, float]:
    """f(p, state) and f'(p, state) for one side of the contact.

    Shock branch for p > p_k, rarefaction branch otherwise (Toro eqs
    4.6–4.7 and derivatives).
    """
    rho_k, p_k = state.rho, state.p
    c_k = state.sound_speed(gamma)
    if p > p_k:  # shock
        a = 2.0 / ((gamma + 1.0) * rho_k)
        b = (gamma - 1.0) / (gamma + 1.0) * p_k
        root = np.sqrt(a / (p + b))
        f = (p - p_k) * root
        df = root * (1.0 - 0.5 * (p - p_k) / (p + b))
    else:  # rarefaction
        f = (2.0 * c_k / (gamma - 1.0)) * (
            (p / p_k) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0
        )
        df = (1.0 / (rho_k * c_k)) * (p / p_k) ** (-(gamma + 1.0) / (2.0 * gamma))
    return float(f), float(df)


def solve_star(left: RiemannState, right: RiemannState, gamma: float,
               tol: float = 1.0e-12, max_iter: int = 200
               ) -> Tuple[float, float]:
    """Star-region pressure and velocity ``(p*, u*)``.

    Newton–Raphson with a positivity-preserving floor; raises if the
    states produce vacuum (Δu too large).
    """
    c_l = left.sound_speed(gamma)
    c_r = right.sound_speed(gamma)
    du = right.u - left.u
    if (2.0 / (gamma - 1.0)) * (c_l + c_r) <= du:
        raise BookLeafError("Riemann problem generates vacuum")
    # Two-rarefaction initial guess is robust for all shipped problems.
    z = (gamma - 1.0) / (2.0 * gamma)
    p = (
        (c_l + c_r - 0.5 * (gamma - 1.0) * du)
        / (c_l / max(left.p, 1e-300) ** z + c_r / max(right.p, 1e-300) ** z)
    ) ** (1.0 / z)
    p = max(p, 1e-14)
    for _ in range(max_iter):
        f_l, df_l = _branch(p, left, gamma)
        f_r, df_r = _branch(p, right, gamma)
        g = f_l + f_r + du
        dp = g / (df_l + df_r)
        p_new = max(p - dp, 1e-14 * p)
        if abs(p_new - p) <= tol * max(p, p_new):
            p = p_new
            break
        p = p_new
    f_l, _ = _branch(p, left, gamma)
    f_r, _ = _branch(p, right, gamma)
    u = 0.5 * (left.u + right.u) + 0.5 * (f_r - f_l)
    return float(p), float(u)


@dataclass(frozen=True)
class RiemannSolution:
    """The self-similar solution; sample with ``xi = (x − x0)/t``."""

    left: RiemannState
    right: RiemannState
    gamma: float
    p_star: float
    u_star: float

    def sample(self, xi: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Primitive variables (ρ, u, p) on the similarity coordinate."""
        xi = np.asarray(xi, dtype=np.float64)
        rho = np.empty_like(xi)
        u = np.empty_like(xi)
        p = np.empty_like(xi)
        g = self.gamma
        gm1, gp1 = g - 1.0, g + 1.0
        ps, us = self.p_star, self.u_star

        left_side = xi <= us
        for side, mask in (("L", left_side), ("R", ~left_side)):
            if not mask.any():
                continue
            state = self.left if side == "L" else self.right
            sgn = 1.0 if side == "L" else -1.0
            c_k = state.sound_speed(g)
            x = xi[mask]
            if ps > state.p:  # shock on this side
                ratio = ps / state.p
                s = state.u - sgn * c_k * np.sqrt(
                    (gp1 * ratio + gm1) / (2.0 * g)
                )
                ahead = sgn * (x - s) < 0.0
                rho_star = state.rho * (ratio + gm1 / gp1) / (gm1 / gp1 * ratio + 1.0)
                rho[mask] = np.where(ahead, state.rho, rho_star)
                u[mask] = np.where(ahead, state.u, us)
                p[mask] = np.where(ahead, state.p, ps)
            else:  # rarefaction
                c_star = c_k * (ps / state.p) ** (gm1 / (2.0 * g))
                head = state.u - sgn * c_k
                tail = us - sgn * c_star
                ahead = sgn * (x - head) < 0.0
                inside = ~ahead & (sgn * (x - tail) < 0.0)
                # ahead: undisturbed state; behind tail: star state.
                rho_fan = state.rho * (
                    2.0 / gp1 + sgn * gm1 / (gp1 * c_k) * (state.u - x)
                ) ** (2.0 / gm1)
                u_fan = 2.0 / gp1 * (sgn * c_k + gm1 / 2.0 * state.u + x)
                p_fan = state.p * (
                    2.0 / gp1 + sgn * gm1 / (gp1 * c_k) * (state.u - x)
                ) ** (2.0 * g / gm1)
                rho_star = state.rho * (ps / state.p) ** (1.0 / g)
                rho[mask] = np.where(ahead, state.rho,
                                     np.where(inside, rho_fan, rho_star))
                u[mask] = np.where(ahead, state.u, np.where(inside, u_fan, us))
                p[mask] = np.where(ahead, state.p, np.where(inside, p_fan, ps))
        return rho, u, p


def solve_riemann(left: RiemannState, right: RiemannState,
                  gamma: float) -> RiemannSolution:
    """Solve the Riemann problem between ``left`` and ``right``."""
    p_star, u_star = solve_star(left, right, gamma)
    return RiemannSolution(left, right, gamma, p_star, u_star)


def sod_solution(gamma: float = 1.4) -> RiemannSolution:
    """The canonical Sod states (ρ, u, p) = (1, 0, 1) | (0.125, 0, 0.1)."""
    return solve_riemann(
        RiemannState(1.0, 0.0, 1.0), RiemannState(0.125, 0.0, 0.1), gamma
    )
