"""Exact solution of the Saltzmann piston problem.

A piston advancing at speed ``u_p`` into a cold (p ≈ 0) ideal gas
drives a single strong shock.  The Rankine–Hugoniot relations in the
strong-shock limit give

    shock speed      D     = u_p (γ+1)/2          (= 4/3 for γ = 5/3)
    post-shock ρ     ρ1    = ρ0 (γ+1)/(γ−1)       (= 4)
    post-shock u     u1    = u_p
    post-shock p     p1    = ρ0 D u_p = ρ0 u_p² (γ+1)/2
    post-shock e     e1    = u_p²/2

Between the piston face (x = u_p t) and the shock (x = D t) the state
is uniform; ahead of the shock the gas is undisturbed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

GAMMA_DEFAULT = 5.0 / 3.0


def shock_position(t: float, gamma: float = GAMMA_DEFAULT,
                   u_p: float = 1.0) -> float:
    """Shock location at time ``t`` (piston starts at x = 0)."""
    return 0.5 * (gamma + 1.0) * u_p * t


def post_shock_state(gamma: float = GAMMA_DEFAULT, rho0: float = 1.0,
                     u_p: float = 1.0) -> Tuple[float, float, float, float]:
    """(ρ1, u1, p1, e1) behind the shock."""
    rho1 = rho0 * (gamma + 1.0) / (gamma - 1.0)
    p1 = 0.5 * rho0 * u_p * u_p * (gamma + 1.0)
    e1 = 0.5 * u_p * u_p
    return rho1, u_p, p1, e1


def solution(x: np.ndarray, t: float, gamma: float = GAMMA_DEFAULT,
             rho0: float = 1.0, u_p: float = 1.0, e0: float = 0.0
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ρ, u, e) at positions ``x`` (lab frame) and time ``t``."""
    x = np.asarray(x, dtype=np.float64)
    xs = shock_position(t, gamma, u_p)
    rho1, u1, _, e1 = post_shock_state(gamma, rho0, u_p)
    behind = x < xs
    rho = np.where(behind, rho1, rho0)
    u = np.where(behind, u1, 0.0)
    e = np.where(behind, e1, e0)
    return rho, u, e
