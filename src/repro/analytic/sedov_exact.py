"""Self-similar Sedov–Taylor blast-wave solution (cylindrical, 2-D).

The similarity ansatz (s = j + 2, j = 2 for cylindrical geometry)

    u(r,t) = (2 r)/(s t) V(λ),   ρ = ρ0 G(λ),
    p(r,t) = ρ0 (4 r²)/(s² t²) P(λ),        λ = r / R(t)

reduces the Euler equations to three coupled ODEs in ``x = ln λ``,

    (V−1) G'/G·λ           = −λV' − j V                (continuity)
    (V−1) λV' + (P/G) λP'·(1/P)·P = ...                (momentum)
    (V−1) (λP'/P − γ λG'/G) = s − 2V                   (entropy)

solved here as a 3×3 linear system for the log-derivatives at each
point and integrated inward from the strong-shock jump conditions at
λ = 1 (V = 2/(γ+1), G = (γ+1)/(γ−1), P = 2/(γ+1)).  The energy
constant follows from the integral

    α = 2π (4/s²) ∫₀¹ ( ½ G V² + P/(γ−1) ) λ³ dλ

and the shock radius is ``R(t) = (E t² / (α ρ0))^{1/s}``.  For γ = 1.4
this gives α ≈ 0.984 — the textbook value for the cylindrical blast.

Everything is computed numerically (no tabulated magic constants), so
the module doubles as a reference implementation of the similarity
solution; results are cached per γ.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

import numpy as np
from scipy.integrate import solve_ivp
from scipy.interpolate import interp1d

J = 2          #: cylindrical geometry
S = J + 2      #: the similarity exponent denominator (R ∝ t^{2/s})
_X_MIN = -16.0  #: integrate to λ = e^{-16} (the origin limit)


def _rhs(x: float, yvec: np.ndarray, gamma: float) -> np.ndarray:
    """Log-derivatives (dV/dx, dlnG/dx, dlnP/dx) at one similarity point."""
    V, lnG, lnP = yvec
    G = np.exp(lnG)
    P = np.exp(lnP)
    vm1 = V - 1.0
    # Unknowns: a = dV/dx, b = dlnG/dx, c = dlnP/dx.
    # (1) vm1*b + a = -j V
    # (2) vm1*a + (P/G) c = (s/2)V - V^2 - 2P/G
    # (3) vm1*(c - gamma*b) = s - 2V
    A = np.array([
        [1.0, vm1, 0.0],
        [vm1, 0.0, P / G],
        [0.0, -gamma * vm1, vm1],
    ])
    rhs = np.array([
        -J * V,
        0.5 * S * V - V * V - 2.0 * P / G,
        S - 2.0 * V,
    ])
    return np.linalg.solve(A, rhs)


@dataclass(frozen=True)
class SedovSimilarity:
    """The integrated similarity profiles and the energy constant α."""

    gamma: float
    alpha: float
    lam: np.ndarray     #: similarity coordinate grid (ascending, (0, 1])
    V: np.ndarray
    G: np.ndarray
    P: np.ndarray

    def profiles(self, r: np.ndarray, t: float, energy: float,
                 rho0: float = 1.0
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(ρ, radial u, p) at radii ``r`` and time ``t``."""
        r = np.asarray(r, dtype=np.float64)
        R = shock_radius(t, energy, rho0, self.gamma)
        lam = r / R
        inside = lam <= 1.0
        fV = interp1d(self.lam, self.V, bounds_error=False, fill_value=(self.V[0], self.V[-1]))
        fG = interp1d(self.lam, self.G, bounds_error=False, fill_value=(self.G[0], self.G[-1]))
        fP = interp1d(self.lam, self.P, bounds_error=False, fill_value=(self.P[0], self.P[-1]))
        rho = np.where(inside, rho0 * fG(lam), rho0)
        u = np.where(inside, (2.0 * r / (S * max(t, 1e-300))) * fV(lam), 0.0)
        p = np.where(inside, rho0 * (4.0 * r * r / (S * S * t * t)) * fP(lam), 0.0)
        return rho, u, p


@lru_cache(maxsize=8)
def similarity(gamma: float = 1.4) -> SedovSimilarity:
    """Integrate the similarity ODEs for ``gamma`` (cached)."""
    gp1 = gamma + 1.0
    gm1 = gamma - 1.0
    y0 = np.array([2.0 / gp1, np.log(gp1 / gm1), np.log(2.0 / gp1)])
    xs = np.linspace(0.0, _X_MIN, 2001)
    sol = solve_ivp(
        _rhs, (0.0, _X_MIN), y0, t_eval=xs, args=(gamma,),
        rtol=1e-10, atol=1e-12, method="Radau",
    )
    lam = np.exp(sol.t)[::-1]
    V = sol.y[0][::-1]
    G = np.exp(sol.y[1])[::-1]
    P = np.exp(sol.y[2])[::-1]
    # Energy integral on the similarity grid (trapezoid; the λ³ weight
    # makes the origin tail negligible).
    integrand = (0.5 * G * V * V + P / gm1) * lam ** 3
    integral = np.trapezoid(integrand, lam)
    alpha = 2.0 * np.pi * (4.0 / (S * S)) * integral
    return SedovSimilarity(gamma=gamma, alpha=float(alpha),
                           lam=lam, V=V, G=G, P=P)


def shock_radius(t: float, energy: float, rho0: float = 1.0,
                 gamma: float = 1.4) -> float:
    """``R(t) = (E t² / (α ρ0))^{1/4}`` for the cylindrical blast."""
    alpha = similarity(gamma).alpha
    return float((energy * t * t / (alpha * rho0)) ** (1.0 / S))


def shock_density(gamma: float = 1.4, rho0: float = 1.0) -> float:
    """Strong-shock density jump (γ+1)/(γ−1) — 6 for γ = 1.4."""
    return rho0 * (gamma + 1.0) / (gamma - 1.0)
