"""Exact solution of the Noh implosion (Noh 1987).

Cylindrical (2-D) geometry, unit inward speed, cold unit-density gas.
With γ the adiabatic index and α = 1 the cylindrical geometry exponent:

* shock position: ``r_s(t) = t (γ − 1)/2``  (= t/3 for γ = 5/3),
* post-shock (r < r_s): ``ρ = ρ0 ((γ+1)/(γ−1))^{α+1}`` (= 16), ``u = 0``,
  ``e = u0²/2``, ``p = (γ−1) ρ e``,
* pre-shock  (r > r_s): ``ρ = ρ0 (1 + u0 t/r)^α``, ``u = −u0``,
  ``e = 0``, ``p = 0``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

GAMMA_DEFAULT = 5.0 / 3.0


def shock_radius(t: float, gamma: float = GAMMA_DEFAULT, u0: float = 1.0) -> float:
    """Shock position at time ``t``."""
    return 0.5 * (gamma - 1.0) * u0 * t


def post_shock_density(gamma: float = GAMMA_DEFAULT, rho0: float = 1.0) -> float:
    """The plateau density (16 for γ = 5/3 in cylindrical geometry)."""
    return rho0 * ((gamma + 1.0) / (gamma - 1.0)) ** 2


def solution(r: np.ndarray, t: float, gamma: float = GAMMA_DEFAULT,
             rho0: float = 1.0, u0: float = 1.0
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ρ, radial u, e) at radii ``r`` and time ``t``."""
    r = np.asarray(r, dtype=np.float64)
    rs = shock_radius(t, gamma, u0)
    inside = r < rs
    safe_r = np.maximum(r, 1e-300)
    rho = np.where(
        inside,
        post_shock_density(gamma, rho0),
        rho0 * (1.0 + u0 * t / safe_r),
    )
    u = np.where(inside, 0.0, -u0)
    e = np.where(inside, 0.5 * u0 * u0, 0.0)
    return rho, u, e
