"""Unstructured quadrilateral mesh substrate (BookLeaf Section III-A).

Topology construction and validation, test-problem mesh generators,
boundary-condition classification and quality metrics.
"""

from .boundary import FIX_X, FIX_Y, BoundaryConditions, classify_box_boundary
from .io import read_mesh, write_mesh
from .generator import (
    perturbed_mesh,
    pinwheel_mesh,
    rect_mesh,
    saltzmann_mesh,
    single_cell_mesh,
)
from .quality import (
    aspect_ratio,
    corner_jacobians,
    min_edge_length,
    quality_report,
    scaled_jacobian,
)
from .regions import Region, assign_regions, box, disc, everywhere
from .topology import QuadMesh

__all__ = [
    "QuadMesh",
    "read_mesh",
    "write_mesh",
    "Region",
    "assign_regions",
    "box",
    "disc",
    "everywhere",
    "rect_mesh",
    "saltzmann_mesh",
    "perturbed_mesh",
    "pinwheel_mesh",
    "single_cell_mesh",
    "BoundaryConditions",
    "classify_box_boundary",
    "FIX_X",
    "FIX_Y",
    "aspect_ratio",
    "corner_jacobians",
    "min_edge_length",
    "quality_report",
    "scaled_jacobian",
]
