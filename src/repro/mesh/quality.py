"""Mesh-quality metrics.

Used by the generators' tests, by the ALE mesh-selection step (cells
below a quality threshold trigger relaxation) and for diagnosing
tangling failures.  All metrics are vectorised over cells and accept
moved node coordinates, since quality is interesting *during* a
Lagrangian calculation, not just at setup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .topology import QuadMesh


def corner_jacobians(mesh: QuadMesh, x: Optional[np.ndarray] = None,
                     y: Optional[np.ndarray] = None) -> np.ndarray:
    """(ncell, 4) corner Jacobians (cross products of adjacent edges).

    Corner ``k``'s Jacobian is ``(P_{k+1}-P_k) x (P_{k-1}-P_k)`` —
    positive for a locally convex CCW corner.  A non-positive value
    means the quad is non-convex (or inverted) at that corner.
    """
    cx, cy = mesh.gather_cell_coords(x, y)
    ex_next = np.roll(cx, -1, axis=1) - cx
    ey_next = np.roll(cy, -1, axis=1) - cy
    ex_prev = np.roll(cx, 1, axis=1) - cx
    ey_prev = np.roll(cy, 1, axis=1) - cy
    return ex_next * ey_prev - ey_next * ex_prev


def scaled_jacobian(mesh: QuadMesh, x: Optional[np.ndarray] = None,
                    y: Optional[np.ndarray] = None) -> np.ndarray:
    """Minimum corner Jacobian scaled by edge lengths, per cell.

    1.0 for a rectangle; <= 0 for a non-convex or inverted cell.  The
    classic quad shape metric.
    """
    cx, cy = mesh.gather_cell_coords(x, y)
    ex_next = np.roll(cx, -1, axis=1) - cx
    ey_next = np.roll(cy, -1, axis=1) - cy
    ex_prev = np.roll(cx, 1, axis=1) - cx
    ey_prev = np.roll(cy, 1, axis=1) - cy
    jac = ex_next * ey_prev - ey_next * ex_prev
    len_next = np.hypot(ex_next, ey_next)
    len_prev = np.hypot(ex_prev, ey_prev)
    denom = np.maximum(len_next * len_prev, 1e-300)
    return (jac / denom).min(axis=1)


def aspect_ratio(mesh: QuadMesh, x: Optional[np.ndarray] = None,
                 y: Optional[np.ndarray] = None) -> np.ndarray:
    """Longest edge over shortest edge, per cell (>= 1)."""
    cx, cy = mesh.gather_cell_coords(x, y)
    ex = np.roll(cx, -1, axis=1) - cx
    ey = np.roll(cy, -1, axis=1) - cy
    lengths = np.hypot(ex, ey)
    return lengths.max(axis=1) / np.maximum(lengths.min(axis=1), 1e-300)


def min_edge_length(mesh: QuadMesh, x: Optional[np.ndarray] = None,
                    y: Optional[np.ndarray] = None) -> np.ndarray:
    """Shortest side length per cell (a CFL length scale)."""
    cx, cy = mesh.gather_cell_coords(x, y)
    ex = np.roll(cx, -1, axis=1) - cx
    ey = np.roll(cy, -1, axis=1) - cy
    return np.hypot(ex, ey).min(axis=1)


def quality_report(mesh: QuadMesh, x: Optional[np.ndarray] = None,
                   y: Optional[np.ndarray] = None) -> str:
    """One-paragraph text summary of mesh quality."""
    sj = scaled_jacobian(mesh, x, y)
    ar = aspect_ratio(mesh, x, y)
    areas = mesh.cell_areas(x, y)
    return (
        f"cells={mesh.ncell} nodes={mesh.nnode}\n"
        f"scaled jacobian: min={sj.min():.4f} mean={sj.mean():.4f}\n"
        f"aspect ratio:    max={ar.max():.4f} mean={ar.mean():.4f}\n"
        f"area:            min={areas.min():.4e} max={areas.max():.4e}\n"
        f"non-convex cells: {int((sj <= 0).sum())}"
    )
