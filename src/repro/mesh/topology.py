"""Unstructured quadrilateral mesh topology.

BookLeaf solves on a 2-D unstructured mesh of quadrilateral cells:
cells connect via faces (sides), faces intersect at nodes, and the
number of cells around a node is arbitrary (paper Section III-A).  This
module builds and validates all of the connectivity the hydro kernels
need, entirely with vectorised numpy:

* ``cell_nodes``       (ncell, 4)  — the four nodes of each cell, CCW;
  side ``k`` of a cell joins local nodes ``k`` and ``(k+1) % 4``.
* ``cell_neighbours``  (ncell, 4)  — cell across side ``k`` (-1 at a
  boundary).
* ``neighbour_side``   (ncell, 4)  — which side of the neighbour faces
  back across side ``k`` (-1 at a boundary).
* node→cell adjacency in CSR form (``node_cell_offsets``,
  ``node_cell_cells``, ``node_cell_corner``) — every (cell, corner)
  pair incident on each node.
* interior face list (``face_cells``, ``face_sides``, ``face_nodes``)
  — one entry per unique interior side, used by the ALE remap.
* boundary side list (``boundary_cells``, ``boundary_sides``).

All arrays are immutable after construction; node *coordinates* are the
only thing the Lagrangian step moves, and they live in the hydro state,
not here (the mesh object stores the initial coordinates).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..utils.errors import MeshError


def _shoelace_area(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Signed area of each quad given (n, 4) vertex coordinate arrays."""
    x1, x2, x3, x4 = (x[:, k] for k in range(4))
    y1, y2, y3, y4 = (y[:, k] for k in range(4))
    return 0.5 * ((x3 - x1) * (y4 - y2) + (x2 - x4) * (y3 - y1))


class QuadMesh:
    """Topology (and initial geometry) of an unstructured quad mesh.

    Parameters
    ----------
    x, y:
        Initial node coordinates, shape (nnode,).
    cell_nodes:
        (ncell, 4) integer array of node indices in counter-clockwise
        order.  Orientation is validated (every cell must have positive
        signed area on the initial coordinates).
    validate:
        Run the full consistency checks (recommended; skip only inside
        tight construction loops that already guarantee validity).
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, cell_nodes: np.ndarray,
                 validate: bool = True):
        self.x = np.ascontiguousarray(x, dtype=np.float64)
        self.y = np.ascontiguousarray(y, dtype=np.float64)
        self.cell_nodes = np.ascontiguousarray(cell_nodes, dtype=np.int64)
        if self.x.ndim != 1 or self.y.shape != self.x.shape:
            raise MeshError("x and y must be 1-D arrays of equal length")
        if self.cell_nodes.ndim != 2 or self.cell_nodes.shape[1] != 4:
            raise MeshError("cell_nodes must have shape (ncell, 4)")
        self.nnode = self.x.size
        self.ncell = self.cell_nodes.shape[0]
        if self.ncell == 0:
            raise MeshError("mesh has no cells")
        if self.cell_nodes.min() < 0 or self.cell_nodes.max() >= self.nnode:
            raise MeshError("cell_nodes indices out of range")
        self._build_neighbours()
        self._build_node_cells()
        self._build_faces()
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_neighbours(self) -> None:
        """Match cell sides pairwise to find neighbours (vectorised)."""
        cn = self.cell_nodes
        # Side k of every cell: (node_k, node_{k+1}).
        a = cn                                  # (ncell, 4) first node
        b = np.roll(cn, -1, axis=1)             # (ncell, 4) second node
        lo = np.minimum(a, b).ravel()
        hi = np.maximum(a, b).ravel()
        key = lo * np.int64(self.nnode) + hi    # unique per undirected side
        order = np.argsort(key, kind="stable")
        sk = key[order]
        # Runs of equal keys are the same geometric side.
        is_new = np.empty(sk.size, dtype=bool)
        is_new[0] = True
        np.not_equal(sk[1:], sk[:-1], out=is_new[1:])
        run_id = np.cumsum(is_new) - 1
        counts = np.bincount(run_id)
        if counts.max(initial=0) > 2:
            bad = np.flatnonzero(counts > 2)[:5]
            raise MeshError(
                f"non-manifold mesh: {counts.max()} cells share one side "
                f"(first bad side runs: {bad.tolist()})"
            )
        cell_of = order // 4
        side_of = order % 4
        self.cell_neighbours = np.full((self.ncell, 4), -1, dtype=np.int64)
        self.neighbour_side = np.full((self.ncell, 4), -1, dtype=np.int64)
        # Pairs: positions where a run has length 2 are adjacent in the
        # sorted order: indices i, i+1 with run_id equal.
        first = np.flatnonzero(is_new)
        paired = first[counts == 2]
        c0, s0 = cell_of[paired], side_of[paired]
        c1, s1 = cell_of[paired + 1], side_of[paired + 1]
        if np.any(c0 == c1):
            raise MeshError("degenerate cell: a cell is its own neighbour")
        self.cell_neighbours[c0, s0] = c1
        self.neighbour_side[c0, s0] = s1
        self.cell_neighbours[c1, s1] = c0
        self.neighbour_side[c1, s1] = s0
        # Interior face bookkeeping reused by _build_faces.
        self._face_pairs = (c0, s0, c1, s1)
        single = first[counts == 1]
        self.boundary_cells = cell_of[single].copy()
        self.boundary_sides = side_of[single].copy()

    def _build_node_cells(self) -> None:
        """CSR node -> (cell, corner) adjacency."""
        cn = self.cell_nodes
        nodes = cn.ravel()
        corner = np.tile(np.arange(4, dtype=np.int64), self.ncell)
        cells = np.repeat(np.arange(self.ncell, dtype=np.int64), 4)
        order = np.argsort(nodes, kind="stable")
        counts = np.bincount(nodes, minlength=self.nnode)
        self.node_cell_offsets = np.concatenate(
            ([0], np.cumsum(counts))
        ).astype(np.int64)
        self.node_cell_cells = cells[order]
        self.node_cell_corner = corner[order]

    def _build_faces(self) -> None:
        """Interior face arrays from the side pairing."""
        c0, s0, c1, s1 = self._face_pairs
        del self._face_pairs
        self.nface = c0.size
        self.face_cells = np.stack([c0, c1], axis=1)   # (nface, 2)
        self.face_sides = np.stack([s0, s1], axis=1)   # (nface, 2)
        # Face nodes ordered as traversed by the *left* cell (cell 0):
        n0 = self.cell_nodes[c0, s0]
        n1 = self.cell_nodes[c0, (s0 + 1) % 4]
        self.face_nodes = np.stack([n0, n1], axis=1)   # (nface, 2)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def gather_cell_coords(self, x: Optional[np.ndarray] = None,
                           y: Optional[np.ndarray] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """(ncell, 4) per-corner coordinates for given (or initial) nodes."""
        x = self.x if x is None else x
        y = self.y if y is None else y
        return x[self.cell_nodes], y[self.cell_nodes]

    def cell_areas(self, x: Optional[np.ndarray] = None,
                   y: Optional[np.ndarray] = None) -> np.ndarray:
        """Signed cell areas (positive for valid CCW cells)."""
        cx, cy = self.gather_cell_coords(x, y)
        return _shoelace_area(cx, cy)

    def cell_centroids(self, x: Optional[np.ndarray] = None,
                       y: Optional[np.ndarray] = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Vertex-average cell centres."""
        cx, cy = self.gather_cell_coords(x, y)
        return cx.mean(axis=1), cy.mean(axis=1)

    def boundary_nodes(self) -> np.ndarray:
        """Sorted unique node indices lying on the mesh boundary."""
        n0 = self.cell_nodes[self.boundary_cells, self.boundary_sides]
        n1 = self.cell_nodes[self.boundary_cells, (self.boundary_sides + 1) % 4]
        return np.unique(np.concatenate([n0, n1]))

    def node_degree(self) -> np.ndarray:
        """Number of cells incident on each node (arbitrary — the
        defining property of an unstructured mesh)."""
        return np.diff(self.node_cell_offsets)

    def cells_around_node(self, node: int) -> np.ndarray:
        """Cell indices incident on one node."""
        lo, hi = self.node_cell_offsets[node], self.node_cell_offsets[node + 1]
        return self.node_cell_cells[lo:hi]

    def cell_adjacency_pairs(self) -> np.ndarray:
        """(nface, 2) unique neighbouring-cell pairs — the cell graph
        edges used by the partitioners."""
        return self.face_cells

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Full consistency checks; raises :class:`MeshError` on failure."""
        cn = self.cell_nodes
        # Distinct nodes per cell.
        sorted_nodes = np.sort(cn, axis=1)
        if np.any(sorted_nodes[:, :-1] == sorted_nodes[:, 1:]):
            bad = np.flatnonzero(
                (sorted_nodes[:, :-1] == sorted_nodes[:, 1:]).any(axis=1)
            )[:5]
            raise MeshError(f"cells with repeated nodes: {bad.tolist()}")
        # Positive orientation on initial coordinates.
        areas = self.cell_areas()
        if np.any(areas <= 0.0):
            bad = np.flatnonzero(areas <= 0.0)[:5]
            raise MeshError(
                f"cells with non-positive initial area: {bad.tolist()}"
            )
        # Mutual neighbour consistency.
        nb = self.cell_neighbours
        ns = self.neighbour_side
        interior = nb >= 0
        ci, si = np.nonzero(interior)
        back = nb[nb[ci, si], ns[ci, si]]
        if not np.array_equal(back, ci):
            raise MeshError("neighbour tables are not mutual")
        # Shared side must consist of the same two nodes.
        mine = np.sort(np.stack([cn[ci, si], cn[ci, (si + 1) % 4]], axis=1), axis=1)
        oc, os_ = nb[ci, si], ns[ci, si]
        theirs = np.sort(
            np.stack([cn[oc, os_], cn[oc, (os_ + 1) % 4]], axis=1), axis=1
        )
        if not np.array_equal(mine, theirs):
            raise MeshError("paired sides reference different nodes")
        # Every node must belong to at least one cell.
        if np.any(self.node_degree() == 0):
            orphan = np.flatnonzero(self.node_degree() == 0)[:5]
            raise MeshError(f"orphan nodes: {orphan.tolist()}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<QuadMesh ncell={self.ncell} nnode={self.nnode} "
            f"nface={self.nface} nboundary={self.boundary_cells.size}>"
        )
