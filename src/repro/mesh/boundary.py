"""Boundary-condition classification.

BookLeaf's kinematic boundary conditions constrain nodal velocity (and
acceleration) components.  We encode them as a per-node bitmask:

* ``FIX_X`` — the x velocity component is held at a prescribed value
  (zero for a reflecting/symmetry wall, non-zero for a piston),
* ``FIX_Y`` — likewise for y.

:func:`classify_box_boundary` assigns wall conditions on an axis-aligned
box domain (all the bundled problems), and :class:`BoundaryConditions`
applies the constraints inside the acceleration kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from .topology import QuadMesh

FIX_X = 1
FIX_Y = 2


@dataclass
class BoundaryConditions:
    """Per-node velocity constraints.

    ``flags`` is the FIX_X/FIX_Y bitmask.  ``ux``/``uy`` are the
    prescribed velocity values for constrained components (zero for
    walls; the Saltzmann piston sets ``ux = 1`` on the driven nodes).

    ``driver`` optionally makes the prescribed values *time-dependent*:
    any object with ``velocities(t) -> (ux, uy)`` (full per-node
    arrays) and ``subset(nodes) -> driver`` (restriction for domain
    decomposition).  The :class:`~repro.core.hydro.Hydro` step loop
    calls :meth:`advance` with the end-of-step time before each
    Lagrangian step, so driven nodes land exactly on the prescribed
    velocity at every time level (the Kidder shell compression drives
    its boundary arcs this way).  Time-driven conditions cannot be
    batched — lanes advance at different times — so the ensemble layer
    rejects them.
    """

    flags: np.ndarray
    ux: np.ndarray = field(default=None)  # type: ignore[assignment]
    uy: np.ndarray = field(default=None)  # type: ignore[assignment]
    driver: Optional[object] = None

    def __post_init__(self):
        self.flags = np.asarray(self.flags, dtype=np.int8)
        n = self.flags.size
        if self.ux is None:
            self.ux = np.zeros(n)
        if self.uy is None:
            self.uy = np.zeros(n)
        if self.driver is not None:
            self.advance(0.0)

    def advance(self, t: float) -> None:
        """Refresh the prescribed velocities from the driver at ``t``
        (no-op for static conditions)."""
        if self.driver is None:
            return
        ux, uy = self.driver.velocities(t)
        self.ux = np.asarray(ux, dtype=np.float64)
        self.uy = np.asarray(uy, dtype=np.float64)

    @classmethod
    def free(cls, nnode: int) -> "BoundaryConditions":
        """No constraints anywhere."""
        return cls(np.zeros(nnode, dtype=np.int8))

    def apply_velocity(self, u: np.ndarray, v: np.ndarray) -> None:
        """Overwrite constrained velocity components in place."""
        mx = (self.flags & FIX_X) != 0
        my = (self.flags & FIX_Y) != 0
        u[mx] = self.ux[mx]
        v[my] = self.uy[my]

    def apply_acceleration(self, ax: np.ndarray, ay: np.ndarray) -> None:
        """Zero accelerations along constrained components in place."""
        ax[(self.flags & FIX_X) != 0] = 0.0
        ay[(self.flags & FIX_Y) != 0] = 0.0

    def apply_velocity_batched(self, u: np.ndarray, v: np.ndarray) -> None:
        """Batched :meth:`apply_velocity` on (N, nnode) arrays.

        One mask build serves every lane; the prescribed values
        broadcast down the batch axis (same assignment per lane as the
        serial call, hence bit-identical)."""
        mx = (self.flags & FIX_X) != 0
        my = (self.flags & FIX_Y) != 0
        u[:, mx] = self.ux[mx]
        v[:, my] = self.uy[my]

    def apply_acceleration_batched(self, ax: np.ndarray,
                                   ay: np.ndarray) -> None:
        """Batched :meth:`apply_acceleration` on (N, nnode) arrays."""
        ax[:, (self.flags & FIX_X) != 0] = 0.0
        ay[:, (self.flags & FIX_Y) != 0] = 0.0

    def constrained_nodes(self) -> np.ndarray:
        """Indices of nodes with any constraint (for reporting)."""
        return np.flatnonzero(self.flags != 0)

    def subset(self, nodes: np.ndarray) -> "BoundaryConditions":
        """Restriction to a node subset (used by the domain decomposer)."""
        return BoundaryConditions(
            self.flags[nodes], self.ux[nodes], self.uy[nodes],
            driver=(self.driver.subset(nodes)
                    if self.driver is not None else None),
        )


def classify_box_boundary(
    mesh: QuadMesh,
    extents: Tuple[float, float, float, float],
    walls: Optional[Dict[str, bool]] = None,
    tol: float = 1.0e-9,
) -> BoundaryConditions:
    """Wall (reflecting) conditions on the sides of a box domain.

    ``walls`` maps side names (``left``/``right``/``bottom``/``top``) to
    whether that side is a fixed wall (default: all four).  Nodes on a
    vertical wall get ``FIX_X``; on a horizontal wall ``FIX_Y``; corner
    nodes get both.  Classification uses the *initial* coordinates, and
    the constraints keep those nodes on their walls forever, so the
    classification stays valid as the mesh moves.
    """
    walls = walls or {"left": True, "right": True, "bottom": True, "top": True}
    x0, x1, y0, y1 = extents
    scale_x = max(abs(x0), abs(x1), 1.0)
    scale_y = max(abs(y0), abs(y1), 1.0)
    flags = np.zeros(mesh.nnode, dtype=np.int8)
    if walls.get("left"):
        flags[np.abs(mesh.x - x0) <= tol * scale_x] |= FIX_X
    if walls.get("right"):
        flags[np.abs(mesh.x - x1) <= tol * scale_x] |= FIX_X
    if walls.get("bottom"):
        flags[np.abs(mesh.y - y0) <= tol * scale_y] |= FIX_Y
    if walls.get("top"):
        flags[np.abs(mesh.y - y1) <= tol * scale_y] |= FIX_Y
    return BoundaryConditions(flags)
