"""Mesh file I/O: a simple text format for unstructured quad meshes.

Lets users bring their own meshes instead of the bundled generators
(the point of an *unstructured* mini-app).  The format is line-based
and self-describing::

    # bookleaf-mesh v1
    nodes <nnode>
    <x> <y>            (nnode lines)
    cells <ncell>
    <n0> <n1> <n2> <n3>   (ncell lines, CCW node indices)
    [bc <nconstrained>
    <node> <flags> <ux> <uy>]   (optional constrained-node lines)

Comments (``#``) and blank lines are ignored.  Reading validates the
mesh through the :class:`~repro.mesh.topology.QuadMesh` constructor,
so malformed connectivity fails loudly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..utils.errors import MeshError
from .boundary import BoundaryConditions
from .topology import QuadMesh

HEADER = "# bookleaf-mesh v1"


def write_mesh(path: Union[str, Path], mesh: QuadMesh,
               bc: Optional[BoundaryConditions] = None) -> Path:
    """Write a mesh (and optional BCs) to ``path``."""
    path = Path(path)
    lines = [HEADER, f"nodes {mesh.nnode}"]
    lines.extend(f"{x:.17g} {y:.17g}" for x, y in zip(mesh.x, mesh.y))
    lines.append(f"cells {mesh.ncell}")
    lines.extend(
        " ".join(str(int(n)) for n in quad) for quad in mesh.cell_nodes
    )
    if bc is not None:
        constrained = bc.constrained_nodes()
        lines.append(f"bc {constrained.size}")
        lines.extend(
            f"{int(n)} {int(bc.flags[n])} {bc.ux[n]:.17g} {bc.uy[n]:.17g}"
            for n in constrained
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def _tokens(path: Path):
    """Yield (lineno, token-list) for content lines."""
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#")[0].strip()
        if line:
            yield lineno, line.split()


def read_mesh(path: Union[str, Path]
              ) -> Tuple[QuadMesh, BoundaryConditions]:
    """Read a mesh file; returns ``(mesh, bc)`` (free BCs if absent)."""
    path = Path(path)
    if not path.exists():
        raise MeshError(f"mesh file {path} does not exist")
    first = path.read_text().lstrip().splitlines()
    if not first or first[0].strip() != HEADER:
        raise MeshError(f"{path} is not a '{HEADER}' file")

    stream = _tokens(path)
    x = y = cell_nodes = None
    flags = ux = uy = None
    nnode = 0

    def expect_count(tokens, keyword, lineno):
        if len(tokens) != 2 or tokens[0] != keyword:
            raise MeshError(f"{path}:{lineno}: expected '{keyword} <count>'")
        try:
            return int(tokens[1])
        except ValueError:
            raise MeshError(f"{path}:{lineno}: bad count {tokens[1]!r}")

    try:
        for lineno, tokens in stream:
            if tokens[0] == "nodes":
                nnode = expect_count(tokens, "nodes", lineno)
                x = np.empty(nnode)
                y = np.empty(nnode)
                for i in range(nnode):
                    _, t = next(stream)
                    x[i], y[i] = float(t[0]), float(t[1])
            elif tokens[0] == "cells":
                ncell = expect_count(tokens, "cells", lineno)
                cell_nodes = np.empty((ncell, 4), dtype=np.int64)
                for i in range(ncell):
                    _, t = next(stream)
                    cell_nodes[i] = [int(v) for v in t[:4]]
            elif tokens[0] == "bc":
                ncon = expect_count(tokens, "bc", lineno)
                flags = np.zeros(nnode, dtype=np.int8)
                ux = np.zeros(nnode)
                uy = np.zeros(nnode)
                for _ in range(ncon):
                    _, t = next(stream)
                    node = int(t[0])
                    flags[node] = int(t[1])
                    ux[node] = float(t[2])
                    uy[node] = float(t[3])
            else:
                raise MeshError(
                    f"{path}:{lineno}: unknown section {tokens[0]!r}"
                )
    except StopIteration:
        raise MeshError(f"{path}: truncated file") from None
    except (ValueError, IndexError) as exc:
        raise MeshError(f"{path}: malformed data: {exc}") from exc

    if x is None or cell_nodes is None:
        raise MeshError(f"{path}: missing 'nodes' or 'cells' section")
    mesh = QuadMesh(x, y, cell_nodes)
    if flags is None:
        bc = BoundaryConditions.free(mesh.nnode)
    else:
        bc = BoundaryConditions(flags, ux, uy)
    return mesh, bc
