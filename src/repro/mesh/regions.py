"""Region-based problem setup on a generated mesh.

BookLeaf's input decks describe problems as *regions*: spatial pieces
of the mesh with their own material and initial thermodynamic state.
:class:`Region` couples a spatial predicate with a material index and
initial (ρ, e or p) values; :func:`assign_regions` paints them onto a
mesh's cells in order (later regions override earlier ones), returning
the per-cell material and initial fields.

This is how the multi-material problems (e.g. the water–air shock
tube) are constructed, and it generalises the hard-coded two-state
setup of the Sod problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..eos.multimaterial import MaterialTable
from ..utils.errors import MeshError
from .topology import QuadMesh

#: a predicate over cell centroids: (xc, yc) -> bool mask
Predicate = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class Region:
    """One material region with its initial state.

    Exactly one of ``e`` (specific internal energy) or ``p`` (pressure,
    inverted through the region's EoS) must be given.
    """

    where: Predicate
    material: int
    rho: float
    e: Optional[float] = None
    p: Optional[float] = None
    #: initial velocity painted on the *nodes inside* the region
    u: float = 0.0
    v: float = 0.0
    name: str = ""

    def __post_init__(self):
        if (self.e is None) == (self.p is None):
            raise MeshError(
                f"region {self.name!r}: give exactly one of e or p"
            )
        if self.rho <= 0.0:
            raise MeshError(f"region {self.name!r}: rho must be positive")


def everywhere(xc: np.ndarray, yc: np.ndarray) -> np.ndarray:
    """The whole-domain predicate (useful as a background region)."""
    return np.ones(xc.shape, dtype=bool)


def box(x0: float, x1: float, y0: float = -np.inf, y1: float = np.inf
        ) -> Predicate:
    """Axis-aligned box predicate."""
    def pred(xc, yc):
        return (xc >= x0) & (xc < x1) & (yc >= y0) & (yc < y1)
    return pred


def disc(cx: float, cy: float, radius: float) -> Predicate:
    """Circular predicate (e.g. a charge or bubble)."""
    def pred(xc, yc):
        return (xc - cx) ** 2 + (yc - cy) ** 2 < radius * radius
    return pred


def assign_regions(mesh: QuadMesh, table: MaterialTable,
                   regions: Sequence[Region]
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, np.ndarray]:
    """Paint regions onto the mesh.

    Returns ``(mat, rho, e, u, v)``: per-cell material indices and
    initial fields plus per-node velocities.  Every cell must be
    covered by at least one region, and region materials must exist in
    the table.
    """
    if not regions:
        raise MeshError("no regions given")
    xc, yc = mesh.cell_centroids()
    mat = np.full(mesh.ncell, -1, dtype=np.int64)
    rho = np.zeros(mesh.ncell)
    e = np.zeros(mesh.ncell)
    u = np.zeros(mesh.nnode)
    v = np.zeros(mesh.nnode)
    for region in regions:
        if not 0 <= region.material < table.nmat:
            raise MeshError(
                f"region {region.name!r}: material {region.material} not in "
                f"table (nmat={table.nmat})"
            )
        sel = region.where(xc, yc)
        mat[sel] = region.material
        rho[sel] = region.rho
        if region.e is not None:
            e[sel] = region.e
        else:
            eos = table.eos[region.material]
            e[sel] = eos.energy_from_pressure(
                np.full(int(sel.sum()), region.rho),
                np.full(int(sel.sum()), region.p),
            )
        node_sel = region.where(mesh.x, mesh.y)
        u[node_sel] = region.u
        v[node_sel] = region.v
    uncovered = np.flatnonzero(mat < 0)
    if uncovered.size:
        raise MeshError(
            f"{uncovered.size} cells not covered by any region "
            f"(first: {uncovered[:5].tolist()})"
        )
    return mat, rho, e, u, v
