"""Mesh generators for the bundled test problems.

BookLeaf generates its meshes from region descriptions in the input
deck.  All four shipped problems use logically-rectangular regions of
quadrilaterals (stored and solved as fully unstructured meshes — the
kernels never exploit the structure), with the Saltzmann problem using
the classic skewed mesh of Dukowicz & Meltz.

Generators return :class:`~repro.mesh.topology.QuadMesh` objects.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..utils.errors import MeshError
from .topology import QuadMesh


def _grid_nodes(nx: int, ny: int, extents: Tuple[float, float, float, float]
                ) -> Tuple[np.ndarray, np.ndarray]:
    x0, x1, y0, y1 = extents
    if nx < 1 or ny < 1:
        raise MeshError(f"need nx, ny >= 1, got {nx}x{ny}")
    if not (x1 > x0 and y1 > y0):
        raise MeshError(f"degenerate extents {extents}")
    xs = np.linspace(x0, x1, nx + 1)
    ys = np.linspace(y0, y1, ny + 1)
    gx, gy = np.meshgrid(xs, ys, indexing="xy")
    return gx.ravel(), gy.ravel()


def _grid_cells(nx: int, ny: int) -> np.ndarray:
    """CCW quads over an (nx+1) x (ny+1) node grid laid out row-major."""
    j, i = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    n0 = j * (nx + 1) + i
    n1 = n0 + 1
    n2 = n1 + (nx + 1)
    n3 = n0 + (nx + 1)
    return np.stack([n0.ravel(), n1.ravel(), n2.ravel(), n3.ravel()], axis=1)


def rect_mesh(nx: int, ny: int,
              extents: Tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0),
              warp: Optional[Callable[[np.ndarray, np.ndarray],
                                      Tuple[np.ndarray, np.ndarray]]] = None
              ) -> QuadMesh:
    """A logically-rectangular quad mesh over ``extents``.

    ``warp(x, y) -> (x', y')`` optionally remaps node coordinates (used
    for distorted-mesh tests); the warp must preserve orientation.
    """
    x, y = _grid_nodes(nx, ny, extents)
    if warp is not None:
        x, y = warp(x, y)
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
    return QuadMesh(x, y, _grid_cells(nx, ny))


def saltzmann_mesh(nx: int = 100, ny: int = 10,
                   length: float = 1.0, height: float = 0.1) -> QuadMesh:
    """The Dukowicz–Meltz skewed piston mesh.

    Interior node lines are sheared sinusoidally:

        x(ξ, η) = ξ + (height − η) · sin(π ξ) ,   y(ξ, η) = η

    so cells are maximally distorted at the lower wall and straight at
    the upper wall.  This is the standard hourglass-exacerbating mesh
    for the Saltzmann piston problem (paper Section III-B).
    """

    def warp(x, y):
        return x + (height - y) * np.sin(np.pi * x / length), y

    return rect_mesh(nx, ny, (0.0, length, 0.0, height), warp=warp)


def shell_mesh(nr: int, ntheta: int,
               r_inner: float, r_outer: float,
               theta0: float = 0.0,
               theta1: float = 0.5 * np.pi) -> QuadMesh:
    """A polar annulus sector (``nr`` radial × ``ntheta`` angular cells).

    Nodes sit at the tensor product of ``nr + 1`` radii and
    ``ntheta + 1`` angles; cells are the resulting curvilinear quads
    (straight-edged, so arcs are polygonal).  The default sector is the
    first quadrant, which is what the Kidder shell-compression problem
    meshes (symmetry walls on both axes).
    """
    if nr < 1 or ntheta < 1:
        raise MeshError(f"need nr, ntheta >= 1, got {nr}x{ntheta}")
    if not 0.0 < r_inner < r_outer:
        raise MeshError(
            f"need 0 < r_inner < r_outer, got [{r_inner}, {r_outer}]"
        )
    if not theta1 > theta0:
        raise MeshError(f"degenerate sector [{theta0}, {theta1}]")
    radii = np.linspace(r_inner, r_outer, nr + 1)
    angles = np.linspace(theta0, theta1, ntheta + 1)
    r, th = np.meshgrid(radii, angles, indexing="xy")
    # same row-major node layout as rect_mesh, with r playing x and
    # theta playing y; the polar map preserves orientation (Jacobian r)
    return QuadMesh((r * np.cos(th)).ravel(), (r * np.sin(th)).ravel(),
                    _grid_cells(nr, ntheta))


def perturbed_mesh(nx: int, ny: int,
                   extents: Tuple[float, float, float, float] = (0.0, 1.0, 0.0, 1.0),
                   amplitude: float = 0.2, seed: int = 0) -> QuadMesh:
    """A randomly-perturbed rectangular mesh for robustness testing.

    Interior nodes are displaced by ``amplitude`` times the local cell
    spacing in a uniform random direction.  Boundary nodes stay put so
    the domain shape (and BC classification) is unchanged.  Amplitudes
    below ~0.3 keep all cells convex.
    """
    if not 0.0 <= amplitude < 0.5:
        raise MeshError(f"perturbation amplitude must be in [0, 0.5), got {amplitude}")
    x0, x1, y0, y1 = extents
    dx = (x1 - x0) / nx
    dy = (y1 - y0) / ny
    x, y = _grid_nodes(nx, ny, extents)
    rng = np.random.default_rng(seed)
    interior = (
        (x > x0 + 0.5 * dx) & (x < x1 - 0.5 * dx)
        & (y > y0 + 0.5 * dy) & (y < y1 - 0.5 * dy)
    )
    n = int(interior.sum())
    x = x.copy()
    y = y.copy()
    x[interior] += amplitude * dx * rng.uniform(-1.0, 1.0, size=n)
    y[interior] += amplitude * dy * rng.uniform(-1.0, 1.0, size=n)
    return QuadMesh(x, y, _grid_cells(nx, ny))


def pinwheel_mesh(nquads: int = 3, radius: float = 1.0) -> QuadMesh:
    """A disc of ``nquads`` quads sharing one centre node.

    The centre node has valence ``nquads`` (3, 5, 6, ... — anything but
    the regular 4), which is the defining freedom of an *unstructured*
    mesh ("the number of cells surrounding a node is arbitrary", paper
    Section III-A).  Built from a ring of ``2·nquads`` nodes; quad
    ``k`` is (centre, ring[2k], ring[2k+1], ring[2k+2]).  Used by the
    tests that prove the kernels never assume 4-valent connectivity.
    """
    if nquads < 3:
        raise MeshError(f"pinwheel needs >= 3 quads, got {nquads}")
    nring = 2 * nquads
    angles = np.linspace(0.0, 2.0 * np.pi, nring, endpoint=False)
    x = np.concatenate([[0.0], radius * np.cos(angles)])
    y = np.concatenate([[0.0], radius * np.sin(angles)])
    cells = np.empty((nquads, 4), dtype=np.int64)
    for k in range(nquads):
        ring = [2 * k, 2 * k + 1, (2 * k + 2) % nring]
        cells[k] = [0, 1 + ring[0], 1 + ring[1], 1 + ring[2]]
    return QuadMesh(x, y, cells)


def single_cell_mesh(coords: Optional[np.ndarray] = None) -> QuadMesh:
    """One quadrilateral — handy for kernel unit tests.

    ``coords`` is an optional (4, 2) CCW vertex array; defaults to the
    unit square.
    """
    if coords is None:
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (4, 2):
        raise MeshError("single_cell_mesh expects (4, 2) coordinates")
    return QuadMesh(coords[:, 0], coords[:, 1],
                    np.array([[0, 1, 2, 3]], dtype=np.int64))
