"""The supported embedding surface: ``run(RunConfig(...)) -> RunResult``.

One function drives every way the mini-app executes — serial,
thread-parallel and process-parallel — behind one declarative config::

    from repro.api import RunConfig, run

    result = run(RunConfig(problem="noh", nx=64, nranks=4,
                           backend="processes"))
    print(result.nstep, result.time, result.comm_total)

:class:`RunConfig` is a plain dataclass (construct it from argparse,
a TOML table, a test fixture — anything), :class:`RunResult` carries
the gathered final state plus every telemetry stream the run produced
(merged kernel timers, trace spans, per-rank communication counters,
the per-step series) with deterministic rank-order merge rules, and
:meth:`RunResult.report` rebuilds the schema-versioned JSON run
report from them.  The CLI (:mod:`repro.cli`) is a thin adapter onto
this module; see docs/PARALLEL.md for the backend matrix.

Older embedding keywords (``ranks=``, ``method=``) are accepted by
:func:`run` as deprecated aliases and warn.
"""

from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Sequence

from .core.state import HydroState
from .problems import (
    describe_problem,
    load_problem,
    problem_names,
    setup_from_deck,
)
from .problems.base import ProblemSetup
from .utils.errors import BookLeafError
from .utils.timers import TimerRegistry

#: legacy keyword → RunConfig field (accepted with a DeprecationWarning)
_LEGACY_ALIASES = {"ranks": "nranks", "method": "partition"}


@dataclass
class RunConfig:
    """Everything that defines one mini-app run.

    Give either ``problem`` (a bundled problem name, with optional
    ``nx``/``ny``/``problem_kwargs`` overrides) or ``deck`` (an input
    deck path) — not both.

    ``backend="auto"`` resolves to ``serial`` for one rank and
    ``threads`` otherwise; any registered backend name
    (:func:`repro.parallel.available_backends`) may be forced
    explicitly.
    """

    problem: Optional[str] = None
    deck: Optional[str] = None
    nx: Optional[int] = None
    ny: Optional[int] = None
    time_end: Optional[float] = None
    max_steps: Optional[int] = None
    nranks: int = 1
    backend: str = "auto"
    partition: str = "rcb"
    #: ``"packed"`` (default) runs the compiled-CommPlan coalesced
    #: single-sync exchanges; ``"legacy"``/``None`` keeps the historic
    #: per-field protocol (bit-identical; kept one release as the
    #: equivalence reference — docs/PARALLEL.md)
    comm_plan: Optional[str] = "packed"
    trace: bool = False
    trace_allocations: bool = False
    collect_steps: bool = False
    log_every: int = 0
    #: NDJSON live-metrics stream path (``--metrics out.ndjson``);
    #: setting it turns the diagnostics probe on at the default cadence
    metrics: Optional[str] = None
    #: probe cadence in steps; ``None`` = default (10) when any metrics
    #: output is requested, ``0`` = force-off even with a path set
    metrics_every: Optional[int] = None
    #: flag a rank as stalled after this many seconds without a
    #: heartbeat (threads/processes backends; ``None`` = no watchdog)
    watchdog_timeout: Optional[float] = None
    #: directory for HealthError forensic snapshots (default: CWD)
    snapshot_dir: Optional[str] = None
    problem_kwargs: Dict[str, Any] = field(default_factory=dict)

    #: probe cadence used when metrics are requested without an
    #: explicit ``metrics_every``
    DEFAULT_METRICS_EVERY = 10

    def resolved_backend(self) -> str:
        if self.backend == "auto":
            return "serial" if self.nranks == 1 else "threads"
        return self.backend

    def resolved_metrics_every(self) -> int:
        """The effective probe cadence (0 = no probe, hot loop
        untouched).  An explicit ``metrics_every=0`` wins over a
        ``metrics`` path; a path or cadence alone enables the rest."""
        if self.metrics_every is not None:
            return int(self.metrics_every)
        if self.metrics is not None:
            return self.DEFAULT_METRICS_EVERY
        return 0

    def build_setup(self) -> ProblemSetup:
        """Materialise the :class:`ProblemSetup` this config describes."""
        if self.problem and self.deck:
            raise BookLeafError(
                "give either RunConfig.problem or RunConfig.deck, not both"
            )
        if self.deck:
            if self.nx or self.ny or self.problem_kwargs:
                raise BookLeafError(
                    "nx/ny/problem_kwargs apply to bundled problems; "
                    "set mesh sizes in the deck file"
                )
            setup = setup_from_deck(self.deck)
            if self.time_end is not None:
                setup.controls = setup.controls.with_(time_end=self.time_end)
            return setup
        if self.problem:
            kwargs = dict(self.problem_kwargs)
            if self.nx:
                kwargs["nx"] = self.nx
            if self.ny:
                kwargs["ny"] = self.ny
            if self.time_end is not None:
                kwargs["time_end"] = self.time_end
            return load_problem(self.problem, **kwargs)
        raise BookLeafError(
            "nothing to run: set RunConfig.problem or RunConfig.deck"
        )


@dataclass
class RunResult:
    """What one run produced: the physics and all its telemetry."""

    config: RunConfig
    setup: ProblemSetup
    backend: str
    nranks: int
    nstep: int
    time: float
    wall_seconds: float
    state: HydroState
    timers: TimerRegistry
    spans: List[Any]
    comm_total: Optional[dict]
    comm_per_rank: List[dict]
    step_rows: Optional[List[dict]]
    comm_summary: Optional[dict]
    #: the live-metrics sample records (None when metrics were off)
    metrics_rows: Optional[List[dict]] = None
    #: the run's :class:`~repro.metrics.registry.MetricsRegistry`
    #: (physics gauges + ingested timer/comm counters; None when off)
    metrics: Any = None
    driver: Any = None

    def report(self) -> dict:
        """The schema-versioned JSON run report for this run
        (identical shape to ``bookleaf run --report``)."""
        from .telemetry.report import StepSeries, build_report

        series = None
        if self.step_rows is not None:
            series = StepSeries()
            series.rows = list(self.step_rows)
        return build_report(
            self.setup.describe(), self.timers,
            steps=self.nstep, time_reached=self.time,
            wall_seconds=self.wall_seconds, ranks=self.nranks,
            partition=self.config.partition,
            comm_total=self.comm_total,
            comm_per_rank=self.comm_per_rank,
            step_series=series,
            diagnostics=(self.metrics_rows[-1]
                         if self.metrics_rows else None),
        )

    def diagnostics(self) -> dict:
        """Conservation scalars of the gathered final state."""
        return {
            "mass": self.state.total_mass(),
            "total_energy": self.state.total_energy(),
            "rho_max": float(self.state.rho.max()),
        }


def _config_from_kwargs(kwargs: Dict[str, Any]) -> RunConfig:
    for old, new in _LEGACY_ALIASES.items():
        if old in kwargs:
            warnings.warn(
                f"repro.api.run({old}=...) is deprecated; "
                f"use RunConfig({new}=...)",
                DeprecationWarning, stacklevel=3,
            )
            if new in kwargs:
                raise BookLeafError(
                    f"both {old!r} and {new!r} given; drop the "
                    f"deprecated {old!r}"
                )
            kwargs[new] = kwargs.pop(old)
    valid = {f.name for f in fields(RunConfig)}
    unknown = set(kwargs) - valid
    if unknown:
        raise BookLeafError(
            f"unknown run option(s): {', '.join(sorted(unknown))}"
        )
    return RunConfig(**kwargs)


def run(config: Optional[RunConfig] = None, *,
        observers: Optional[Sequence] = None,
        **kwargs) -> RunResult:
    """Run the mini-app described by ``config`` and return the result.

    Keyword form ``run(problem="sod", nranks=2, ...)`` builds the
    :class:`RunConfig` for you; the pre-redesign keywords ``ranks``
    and ``method`` still work there but emit ``DeprecationWarning``.

    ``observers`` are attached to rank 0's step loop (serial and
    threads backends only — the processes backend runs its ranks in
    child processes, so in-process observers cannot see them; use
    ``collect_steps`` for the marshalled per-step series instead).
    """
    if config is None:
        config = _config_from_kwargs(kwargs)
    elif kwargs:
        raise BookLeafError(
            "pass either a RunConfig or keyword options, not both"
        )
    from .parallel.distributed import DistributedHydro

    setup = config.build_setup()
    backend = config.resolved_backend()
    driver = DistributedHydro(
        setup, config.nranks, method=config.partition,
        trace=config.trace, backend=backend,
        log_every=config.log_every,
        trace_allocations=config.trace_allocations,
        metrics_path=config.metrics,
        metrics_every=config.resolved_metrics_every(),
        watchdog_timeout=config.watchdog_timeout,
        snapshot_dir=config.snapshot_dir,
        comm_plan=config.comm_plan,
    )
    driver.collect_step_series = config.collect_steps
    if observers:
        if not driver.hydros:
            raise BookLeafError(
                f"the {backend!r} backend runs ranks out-of-process; "
                "in-process observers are not supported — use "
                "RunConfig(collect_steps=True) for the step series"
            )
        driver.hydros[0].observers.extend(observers)
    start = _time.perf_counter()
    driver.run(max_steps=config.max_steps)
    wall = _time.perf_counter() - start
    distributed = config.nranks > 1
    merged_timers = driver.merged_timers()
    metrics = driver.result.metrics if driver.result else None
    if metrics is not None:
        # One registry holds everything: the probe's physics gauges
        # plus the merged kernel timers and per-rank comm counters.
        metrics.ingest_timers(merged_timers)
        for rank, entry in enumerate(driver.per_rank_comm()):
            metrics.ingest_comm(entry, rank=rank)
    return RunResult(
        config=config,
        setup=setup,
        backend=backend,
        nranks=config.nranks,
        nstep=driver.nstep,
        time=driver.time,
        wall_seconds=wall,
        state=driver.gather(),
        timers=merged_timers,
        spans=driver.merged_spans(),
        comm_total=driver.comm_totals() if distributed else None,
        comm_per_rank=driver.per_rank_comm(),
        step_rows=driver.result.step_rows if driver.result else None,
        comm_summary=driver.comm_summary() if distributed else None,
        metrics_rows=driver.result.metrics_rows if driver.result else None,
        metrics=metrics,
        driver=driver,
    )


def run_ensemble(configs, *, control_overrides=None):
    """Batch N serial configs into one ensemble run; one
    :class:`RunResult` per lane, in config order.

    All lanes must share mesh topology (an ensemble varies initial
    state and controls, not meshes); each lane advances at its own CFL
    timestep and lane ``i``'s result is bit-identical to
    ``run(configs[i])``.  See :mod:`repro.ensemble`.
    """
    from .ensemble.driver import run_ensemble as _run_ensemble

    return _run_ensemble(configs, control_overrides=control_overrides)


__all__ = ["RunConfig", "RunResult", "run", "run_ensemble",
           "problem_names", "describe_problem"]
