"""The supported embedding surface: submit configs, collect results.

Every way the mini-app executes — one serial run, a thread- or
process-parallel run, a batched same-mesh ensemble, or a cached
many-run sweep — goes through one submission surface::

    from repro.api import RunConfig, submit, run

    handle = submit([RunConfig(problem="noh", nx=64),
                     RunConfig(problem="sod", nx=64)])
    for result in handle.results():
        print(result.lane, result.cache_hit, result.nstep)

:func:`run` and :func:`run_ensemble` are thin wrappers over a
single-job fleet, so all three paths share config resolution and
result assembly.  :class:`RunConfig` is a frozen dataclass (construct
it from argparse, a TOML table, a test fixture — anything; derive
variants with :meth:`RunConfig.replace`) whose
:meth:`RunConfig.canonical_key` content-addresses the fleet's result
cache.  :class:`RunResult` carries the gathered final state plus every
telemetry stream the run produced (merged kernel timers, trace spans,
per-rank communication counters, the per-step series) with
deterministic rank-order merge rules, and :meth:`RunResult.report`
rebuilds the schema-versioned JSON run report from them.  The CLI
(:mod:`repro.cli`) is a thin adapter onto this module; see
docs/PARALLEL.md for the backend matrix and docs/FLEET.md for the
fleet scheduler.

The pre-redesign embedding keywords (``ranks=``, ``method=``) have
completed their deprecation cycle and now raise
:class:`~repro.utils.errors.DeprecatedOptionError`.
"""

from __future__ import annotations

import hashlib
import json
import time as _time
from dataclasses import dataclass, field, fields, replace as _dc_replace
from typing import Any, Dict, List, Optional, Sequence

from .core.state import HydroState
from .problems import (
    describe_problem,
    load_problem,
    problem_names,
    setup_from_deck,
)
from .problems.base import ProblemSetup
from .utils.errors import BookLeafError, DeprecatedOptionError
from .utils.timers import TimerRegistry
from .version import __version__ as _CODE_VERSION

#: removed legacy keyword → RunConfig field (now a structured error)
_LEGACY_ALIASES = {"ranks": "nranks", "method": "partition"}

#: bump when the canonical-key layout changes — cache entries written
#: under an older layout must miss, never alias
CANONICAL_KEY_VERSION = 2


@dataclass(frozen=True)
class RunConfig:
    """Everything that defines one mini-app run.

    Give either ``problem`` (a bundled problem name, with optional
    ``nx``/``ny``/``problem_kwargs`` overrides) or ``deck`` (an input
    deck path) — not both.

    ``backend="auto"`` resolves to ``serial`` for one rank and
    ``threads`` otherwise; any registered backend name
    (:func:`repro.parallel.available_backends`) may be forced
    explicitly.

    The dataclass is frozen: the fleet's result cache and
    compiled-artifact cache key off configs, so a config must mean the
    same run for its whole lifetime.  Derive variants with
    :meth:`replace`; the content hash is :meth:`canonical_key`.
    """

    problem: Optional[str] = None
    deck: Optional[str] = None
    nx: Optional[int] = None
    ny: Optional[int] = None
    time_end: Optional[float] = None
    max_steps: Optional[int] = None
    nranks: int = 1
    backend: str = "auto"
    partition: str = "rcb"
    #: ``"overlap"`` (default) runs the split-phase exchanges with
    #: interior/boundary compute overlap and the binomial-tree dt
    #: reduction; ``"packed"`` keeps the single-barrier collectives —
    #: bit-identical, retained as the equivalence baseline
    #: (docs/PARALLEL.md).  The pre-plan ``"legacy"`` protocol was
    #: removed and now raises ``DeprecatedOptionError``.
    comm_plan: str = "overlap"
    trace: bool = False
    trace_allocations: bool = False
    #: collapsed-stack flamegraph output path; setting it turns the
    #: sampling profiler on for the run (serial/threads backends —
    #: the sampler reads the in-process span stacks).  Pure
    #: observability: excluded from the canonical key.
    profile: Optional[str] = None
    collect_steps: bool = False
    log_every: int = 0
    #: NDJSON live-metrics stream path (``--metrics out.ndjson``);
    #: setting it turns the diagnostics probe on at the default cadence
    metrics: Optional[str] = None
    #: probe cadence in steps; ``None`` = default (10) when any metrics
    #: output is requested, ``0`` = force-off even with a path set
    metrics_every: Optional[int] = None
    #: flag a rank as stalled after this many seconds without a
    #: heartbeat (threads/processes backends; ``None`` = no watchdog)
    watchdog_timeout: Optional[float] = None
    #: directory for HealthError forensic snapshots (default: CWD)
    snapshot_dir: Optional[str] = None
    problem_kwargs: Dict[str, Any] = field(default_factory=dict)

    #: probe cadence used when metrics are requested without an
    #: explicit ``metrics_every``
    DEFAULT_METRICS_EVERY = 10

    def resolved_backend(self) -> str:
        if self.backend == "auto":
            return "serial" if self.nranks == 1 else "threads"
        return self.backend

    def replace(self, **changes) -> "RunConfig":
        """A copy of this config with ``changes`` applied (the frozen
        analogue of assigning to fields)."""
        unknown = set(changes) - {f.name for f in fields(self)}
        if unknown:
            raise BookLeafError(
                f"unknown RunConfig field(s): {', '.join(sorted(unknown))}"
            )
        return _dc_replace(self, **changes)

    def __hash__(self):
        kwargs = tuple(sorted(
            (k, repr(v)) for k, v in self.problem_kwargs.items()
        ))
        rest = tuple(
            getattr(self, f.name) for f in fields(self)
            if f.name != "problem_kwargs"
        )
        return hash((rest, kwargs))

    def canonical_dict(self) -> Dict[str, Any]:
        """The resolved, semantically-relevant view of this config.

        Two configs that would produce the same physics and the same
        result payload canonicalise identically: ``backend="auto"``
        resolves, a deck path is replaced by the deck *content* hash,
        and pure observability knobs (output paths, tracing, log
        cadence, the watchdog) are excluded — they never change what a
        run computes.  The layout is pinned by a golden test; bump
        ``CANONICAL_KEY_VERSION`` on any deliberate change.
        """
        deck_sha = None
        if self.deck:
            with open(self.deck, "rb") as fh:
                deck_sha = hashlib.sha256(fh.read()).hexdigest()
        return {
            "key_version": CANONICAL_KEY_VERSION,
            "code_version": _CODE_VERSION,
            "problem": self.problem,
            "deck_sha256": deck_sha,
            "nx": self.nx,
            "ny": self.ny,
            "time_end": self.time_end,
            "max_steps": self.max_steps,
            "nranks": int(self.nranks),
            "backend": self.resolved_backend(),
            "partition": self.partition,
            "comm_plan": self.comm_plan,
            "metrics_every": self.resolved_metrics_every(),
            "collect_steps": bool(self.collect_steps),
            "problem_kwargs": {
                str(k): self.problem_kwargs[k]
                for k in sorted(self.problem_kwargs)
            },
        }

    def canonical_key(self) -> str:
        """Content address of this config: the sha256 of the
        sorted-key JSON of :meth:`canonical_dict`.  Keys the fleet's
        on-disk result cache."""
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":"),
            default=repr,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def resolved_metrics_every(self) -> int:
        """The effective probe cadence (0 = no probe, hot loop
        untouched).  An explicit ``metrics_every=0`` wins over a
        ``metrics`` path; a path or cadence alone enables the rest."""
        if self.metrics_every is not None:
            return int(self.metrics_every)
        if self.metrics is not None:
            return self.DEFAULT_METRICS_EVERY
        return 0

    def build_setup(self) -> ProblemSetup:
        """Materialise the :class:`ProblemSetup` this config describes."""
        if self.problem and self.deck:
            raise BookLeafError(
                "give either RunConfig.problem or RunConfig.deck, not both"
            )
        if self.deck:
            if self.nx or self.ny or self.problem_kwargs:
                raise BookLeafError(
                    "nx/ny/problem_kwargs apply to bundled problems; "
                    "set mesh sizes in the deck file"
                )
            setup = setup_from_deck(self.deck)
            if self.time_end is not None:
                setup.controls = setup.controls.with_(time_end=self.time_end)
            return setup
        if self.problem:
            kwargs = dict(self.problem_kwargs)
            if self.nx:
                kwargs["nx"] = self.nx
            if self.ny:
                kwargs["ny"] = self.ny
            if self.time_end is not None:
                kwargs["time_end"] = self.time_end
            return load_problem(self.problem, **kwargs)
        raise BookLeafError(
            "nothing to run: set RunConfig.problem or RunConfig.deck"
        )


@dataclass
class RunResult:
    """What one run produced: the physics and all its telemetry."""

    config: RunConfig
    setup: ProblemSetup
    backend: str
    nranks: int
    nstep: int
    time: float
    wall_seconds: float
    state: HydroState
    timers: TimerRegistry
    spans: List[Any]
    comm_total: Optional[dict]
    comm_per_rank: List[dict]
    step_rows: Optional[List[dict]]
    comm_summary: Optional[dict]
    #: the live-metrics sample records (None when metrics were off)
    metrics_rows: Optional[List[dict]] = None
    #: the run's :class:`~repro.metrics.registry.MetricsRegistry`
    #: (physics gauges + ingested timer/comm counters; None when off)
    metrics: Any = None
    driver: Any = None
    #: scheduling provenance — which queue position (ensemble lane /
    #: sweep slot) produced this result; None for a direct single run
    lane: Optional[int] = None
    #: True when the fleet served this result from its content-addressed
    #: cache instead of executing the job
    cache_hit: bool = False
    #: cache-restored results carry the stored report verbatim (the
    #: original run's timers are not reconstructable); live results
    #: leave this None and rebuild from telemetry
    report_override: Optional[dict] = None

    def report(self) -> dict:
        """The schema-versioned JSON run report for this run
        (identical shape to ``bookleaf run --report``)."""
        from .telemetry.report import StepSeries, build_report

        if self.report_override is not None:
            return self.report_override

        series = None
        if self.step_rows is not None:
            series = StepSeries()
            series.rows = list(self.step_rows)
        return build_report(
            self.setup.describe(), self.timers,
            steps=self.nstep, time_reached=self.time,
            wall_seconds=self.wall_seconds, ranks=self.nranks,
            partition=self.config.partition,
            comm_total=self.comm_total,
            comm_per_rank=self.comm_per_rank,
            step_series=series,
            diagnostics=(self.metrics_rows[-1]
                         if self.metrics_rows else None),
        )

    def diagnostics(self) -> dict:
        """Conservation scalars of the gathered final state."""
        return {
            "mass": self.state.total_mass(),
            "total_energy": self.state.total_energy(),
            "rho_max": float(self.state.rho.max()),
        }


def _config_from_kwargs(kwargs: Dict[str, Any]) -> RunConfig:
    for old, new in _LEGACY_ALIASES.items():
        if old in kwargs:
            raise DeprecatedOptionError(f"{old}=", f"{new}=")
    valid = {f.name for f in fields(RunConfig)}
    unknown = set(kwargs) - valid
    if unknown:
        raise BookLeafError(
            f"unknown run option(s): {', '.join(sorted(unknown))}"
        )
    return RunConfig(**kwargs)


def _execute_run(config: RunConfig, *,
                 observers: Optional[Sequence] = None,
                 artifacts: Any = None,
                 on_prepared: Any = None) -> RunResult:
    """Execute one config in-process and assemble its RunResult.

    The single execution body behind every submission path.  ``artifacts``
    is an optional :class:`repro.fleet.artifacts.ArtifactCache` the
    driver may pull pre-compiled partitions/CommPlans from;
    ``on_prepared(driver, max_steps)`` is the fleet's
    checkpoint-restore hook — called after the driver is built but
    before stepping, it may overlay a saved state and return an
    adjusted remaining step budget (or ``None`` to keep ``max_steps``).
    """
    from .parallel.distributed import DistributedHydro

    setup = config.build_setup()
    backend = config.resolved_backend()
    # The sampling profiler attributes wall time to the open-span
    # stack, so profiling implies tracing for the run's duration.
    trace = config.trace or bool(config.profile)
    driver = DistributedHydro(
        setup, config.nranks, method=config.partition,
        trace=trace, backend=backend,
        log_every=config.log_every,
        trace_allocations=config.trace_allocations,
        metrics_path=config.metrics,
        metrics_every=config.resolved_metrics_every(),
        watchdog_timeout=config.watchdog_timeout,
        snapshot_dir=config.snapshot_dir,
        comm_plan=config.comm_plan,
        artifacts=artifacts,
    )
    driver.collect_step_series = config.collect_steps
    if observers:
        if not driver.hydros:
            raise BookLeafError(
                f"the {backend!r} backend runs ranks out-of-process; "
                "in-process observers are not supported — use "
                "RunConfig(collect_steps=True) for the step series"
            )
        driver.hydros[0].observers.extend(observers)
    max_steps = config.max_steps
    if on_prepared is not None:
        adjusted = on_prepared(driver, max_steps)
        if adjusted is not None:
            max_steps = adjusted
    profiler = None
    if config.profile:
        if driver.tracers:
            from .telemetry.sampling import SamplingProfiler

            profiler = SamplingProfiler(driver.tracers)
        else:
            import warnings

            warnings.warn(
                f"profiling needs in-process span stacks; the "
                f"{backend!r} backend runs ranks out-of-process — "
                f"skipping the sampler for this run"
            )
    start = _time.perf_counter()
    if profiler is not None:
        profiler.start()
    try:
        driver.run(max_steps=max_steps)
    finally:
        if profiler is not None:
            profiler.stop()
    wall = _time.perf_counter() - start
    if profiler is not None:
        from .telemetry.sampling import write_collapsed

        write_collapsed(profiler.folded(), config.profile)
    distributed = config.nranks > 1
    merged_timers = driver.merged_timers()
    metrics = driver.result.metrics if driver.result else None
    if metrics is not None:
        # One registry holds everything: the probe's physics gauges
        # plus the merged kernel timers and per-rank comm counters.
        metrics.ingest_timers(merged_timers)
        for rank, entry in enumerate(driver.per_rank_comm()):
            metrics.ingest_comm(entry, rank=rank)
    return RunResult(
        config=config,
        setup=setup,
        backend=backend,
        nranks=config.nranks,
        nstep=driver.nstep,
        time=driver.time,
        wall_seconds=wall,
        state=driver.gather(),
        timers=merged_timers,
        spans=driver.merged_spans(),
        comm_total=driver.comm_totals() if distributed else None,
        comm_per_rank=driver.per_rank_comm(),
        step_rows=driver.result.step_rows if driver.result else None,
        comm_summary=driver.comm_summary() if distributed else None,
        metrics_rows=driver.result.metrics_rows if driver.result else None,
        metrics=metrics,
        driver=driver,
    )


def submit(configs: Sequence[RunConfig], *,
           control_overrides: Optional[Sequence] = None,
           observers: Optional[Sequence] = None,
           **options) -> "Any":
    """Submit a batch of configs to the fleet; returns a
    :class:`repro.fleet.FleetHandle` whose :meth:`results` yields one
    :class:`RunResult` per config, in submission order.

    This is the one submission surface — :func:`run` and
    :func:`run_ensemble` are thin wrappers over it.  ``options`` are
    :class:`repro.fleet.FleetOptions` fields: ``workers`` (process-pool
    size; 0 executes inline), ``cache_dir`` (content-addressed result
    cache), ``checkpoint_dir``/``checkpoint_every`` (resumable jobs),
    ``ensemble`` (``"auto"`` coalesces compatible same-mesh jobs into
    one batched pass, ``"require"`` demands it, ``"off"`` disables).
    See docs/FLEET.md.
    """
    from .fleet import submit as _fleet_submit

    return _fleet_submit(configs, control_overrides=control_overrides,
                         observers=observers, **options)


def run(config: Optional[RunConfig] = None, *,
        observers: Optional[Sequence] = None,
        **kwargs) -> RunResult:
    """Run the mini-app described by ``config`` and return the result.

    Keyword form ``run(problem="sod", nranks=2, ...)`` builds the
    :class:`RunConfig` for you.  The pre-redesign keywords ``ranks``
    and ``method`` completed their deprecation cycle and now raise
    :class:`~repro.utils.errors.DeprecatedOptionError`.

    ``observers`` are attached to rank 0's step loop (serial and
    threads backends only — the processes backend runs its ranks in
    child processes, so in-process observers cannot see them; use
    ``collect_steps`` for the marshalled per-step series instead).
    """
    if config is None:
        config = _config_from_kwargs(kwargs)
    elif kwargs:
        raise BookLeafError(
            "pass either a RunConfig or keyword options, not both"
        )
    return submit([config], observers=observers,
                  ensemble="off").results()[0]


def run_ensemble(configs, *, control_overrides=None):
    """Batch N serial configs into one ensemble run; one
    :class:`RunResult` per lane, in config order.

    All lanes must share mesh topology (an ensemble varies initial
    state and controls, not meshes); each lane advances at its own CFL
    timestep and lane ``i``'s result is bit-identical to
    ``run(configs[i])``, with ``result.lane`` recording its batch row.
    Equivalent to ``submit(configs, ensemble="require").results()``;
    see :mod:`repro.ensemble`.
    """
    return submit(configs, control_overrides=control_overrides,
                  ensemble="require").results()


__all__ = ["RunConfig", "RunResult", "run", "run_ensemble", "submit",
           "problem_names", "describe_problem"]
