"""Ghost-layer (halo) construction for the domain decomposition.

Given a per-cell partition, each rank's subdomain consists of its owned
cells plus one layer of face-adjacent *ghost* cells — exactly the halo
BookLeaf stores (paper Section III-A: "data that is required from
neighbouring processes is stored in ghost layers").  One layer is
sufficient because the only off-rank data the kernels read are the
nodal kinematics of neighbouring cells (the viscosity limiter) and the
partial force/mass sums on shared nodes (the acceleration).

Communication schedules are precomputed here:

* ``recv_nodes``/``send_nodes`` — the kinematic halo: *ghost-only*
  nodes (incident to no owned cell on the receiver) are refreshed every
  step from their owner rank (the minimum rank owning an incident
  cell).  Send/recv lists are sorted by global node id so the two sides
  align element-wise.
* ``shared_nodes`` — the force-sum halo: nodes incident to owned cells
  of several ranks exchange partial nodal sums; summation in ascending
  rank order makes the completed values bit-identical on every rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..core.state import HydroState
from ..eos.multimaterial import MaterialTable
from ..mesh.boundary import BoundaryConditions
from ..mesh.topology import QuadMesh
from ..utils.errors import PartitionError


@dataclass
class Subdomain:
    """One rank's piece of the global problem (topology + schedules)."""

    rank: int
    mesh: QuadMesh
    n_owned_cells: int
    cell_global: np.ndarray
    node_global: np.ndarray
    owned_cell_mask: np.ndarray
    #: nodes incident to at least one owned cell (authoritative here)
    active_node_mask: np.ndarray
    #: local boundary-side mask: True where the side is on the *global*
    #: domain boundary (False for artificial ghost-layer edges)
    physical_boundary_mask: np.ndarray = field(default=None)  # type: ignore[assignment]
    recv_nodes: Dict[int, np.ndarray] = field(default_factory=dict)
    send_nodes: Dict[int, np.ndarray] = field(default_factory=dict)
    shared_nodes: Dict[int, np.ndarray] = field(default_factory=dict)
    #: cell-field halo: ghost cells received per owner rank, and the
    #: matching owned cells each owner sends (aligned by global id)
    recv_cells: Dict[int, np.ndarray] = field(default_factory=dict)
    send_cells: Dict[int, np.ndarray] = field(default_factory=dict)

    def physical_boundary_sides(self) -> np.ndarray:
        """(nb, 2) local node pairs of the *global* boundary sides."""
        sides = self.physical_boundary_mask
        cells = self.mesh.boundary_cells[sides]
        ks = self.mesh.boundary_sides[sides]
        n0 = self.mesh.cell_nodes[cells, ks]
        n1 = self.mesh.cell_nodes[cells, (ks + 1) % 4]
        return np.stack([n0, n1], axis=1)

    def physical_boundary_nodes(self) -> np.ndarray:
        """Local node ids on the *global* domain boundary."""
        return np.unique(self.physical_boundary_sides().ravel())

    def halo_node_count(self) -> int:
        """Total kinematic halo size (received nodes per step)."""
        return sum(v.size for v in self.recv_nodes.values())

    def shared_node_count(self) -> int:
        """Total force-sum exchange size per step."""
        return sum(v.size for v in self.shared_nodes.values())


def _node_part_incidence(mesh: QuadMesh, part: np.ndarray, nparts: int
                         ) -> np.ndarray:
    """(nnode, nparts) boolean: node incident to a cell of that part."""
    inc = np.zeros((mesh.nnode, nparts), dtype=bool)
    flat_nodes = mesh.cell_nodes.ravel()
    flat_part = np.repeat(part, 4)
    inc[flat_nodes, flat_part] = True
    return inc


def build_subdomains(mesh: QuadMesh, part: np.ndarray,
                     nparts: int) -> List[Subdomain]:
    """Split the global mesh into per-rank subdomains with schedules."""
    if part.shape != (mesh.ncell,):
        raise PartitionError("partition array must have one entry per cell")
    incidence = _node_part_incidence(mesh, part, nparts)
    node_owner = np.argmax(incidence, axis=1)  # min incident rank

    pairs = mesh.cell_adjacency_pairs()
    cut = part[pairs[:, 0]] != part[pairs[:, 1]]
    cut_pairs = pairs[cut]

    subs: List[Subdomain] = []
    global_to_local_nodes: List[np.ndarray] = []
    for r in range(nparts):
        owned = np.flatnonzero(part == r)
        if owned.size == 0:
            raise PartitionError(f"rank {r} owns no cells")
        # Ghost cells: the far side of every cut face touching rank r.
        mine0 = part[cut_pairs[:, 0]] == r
        mine1 = part[cut_pairs[:, 1]] == r
        ghosts = np.unique(np.concatenate([
            cut_pairs[mine0, 1], cut_pairs[mine1, 0]
        ]))
        local_cells = np.concatenate([owned, ghosts])
        local_nodes = np.unique(mesh.cell_nodes[local_cells].ravel())
        remap = np.full(mesh.nnode, -1, dtype=np.int64)
        remap[local_nodes] = np.arange(local_nodes.size)
        local_cn = remap[mesh.cell_nodes[local_cells]]
        local_mesh = QuadMesh(
            mesh.x[local_nodes], mesh.y[local_nodes], local_cn
        )
        owned_mask = np.zeros(local_cells.size, dtype=bool)
        owned_mask[: owned.size] = True
        active = np.zeros(local_nodes.size, dtype=bool)
        active[np.unique(local_cn[: owned.size].ravel())] = True
        # A local boundary side is physical iff the same side has no
        # neighbour in the *global* mesh either.
        bc_cells = local_mesh.boundary_cells
        bc_sides = local_mesh.boundary_sides
        global_nb = mesh.cell_neighbours[local_cells[bc_cells], bc_sides]
        subs.append(Subdomain(
            rank=r,
            mesh=local_mesh,
            n_owned_cells=owned.size,
            cell_global=local_cells,
            node_global=local_nodes,
            owned_cell_mask=owned_mask,
            active_node_mask=active,
            physical_boundary_mask=(global_nb < 0),
        ))
        global_to_local_nodes.append(remap)

    # Kinematic halo: ghost-only nodes are received from their owner.
    for r, sub in enumerate(subs):
        ghost_only = sub.node_global[~sub.active_node_mask]
        owners = node_owner[ghost_only]
        for s in np.unique(owners):
            globals_rs = np.sort(ghost_only[owners == s])
            sub.recv_nodes[int(s)] = global_to_local_nodes[r][globals_rs]
            subs[int(s)].send_nodes[r] = global_to_local_nodes[int(s)][globals_rs]

    # Force-sum halo: nodes whose incident cells span both r and s.
    for r in range(nparts):
        for s in range(r + 1, nparts):
            both = np.flatnonzero(incidence[:, r] & incidence[:, s])
            if both.size == 0:
                continue
            subs[r].shared_nodes[s] = global_to_local_nodes[r][both]
            subs[s].shared_nodes[r] = global_to_local_nodes[s][both]

    # Cell-field halo: ghost cells are refreshed from their owners
    # (used by the distributed ALE remap).
    global_to_local_cells = []
    for sub in subs:
        remap_c = np.full(mesh.ncell, -1, dtype=np.int64)
        remap_c[sub.cell_global] = np.arange(sub.cell_global.size)
        global_to_local_cells.append(remap_c)
    for r, sub in enumerate(subs):
        ghosts = sub.cell_global[sub.n_owned_cells:]
        owners = part[ghosts]
        for s in np.unique(owners):
            globals_rs = np.sort(ghosts[owners == s])
            sub.recv_cells[int(s)] = global_to_local_cells[r][globals_rs]
            subs[int(s)].send_cells[r] = (
                global_to_local_cells[int(s)][globals_rs]
            )
    return subs


def local_state(sub: Subdomain, global_state: HydroState) -> HydroState:
    """Restrict a global initial state to one subdomain.

    All arrays are *copied* slices of the global ones (including masses)
    so the local computation matches the serial one exactly — the
    distributed-vs-serial equivalence the tests rely on.
    """
    cells = sub.cell_global
    nodes = sub.node_global
    bc = global_state.bc
    return HydroState(
        mesh=sub.mesh,
        x=global_state.x[nodes].copy(),
        y=global_state.y[nodes].copy(),
        u=global_state.u[nodes].copy(),
        v=global_state.v[nodes].copy(),
        rho=global_state.rho[cells].copy(),
        e=global_state.e[cells].copy(),
        p=global_state.p[cells].copy(),
        cs2=global_state.cs2[cells].copy(),
        q=global_state.q[cells].copy(),
        mat=global_state.mat[cells].copy(),
        cell_mass=global_state.cell_mass[cells].copy(),
        corner_mass=global_state.corner_mass[cells].copy(),
        volume=global_state.volume[cells].copy(),
        corner_volume=global_state.corner_volume[cells].copy(),
        bc=BoundaryConditions(
            bc.flags[nodes].copy(), bc.ux[nodes].copy(), bc.uy[nodes].copy(),
            driver=(bc.driver.subset(nodes)
                    if bc.driver is not None else None),
        ),
    )
