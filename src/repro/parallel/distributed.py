"""The distributed (SPMD) hydro driver.

Runs one :class:`~repro.problems.base.ProblemSetup` decomposed over N
virtual ranks: partition the cells (RCB or the spectral METIS
substitute), build subdomains with ghost layers, restrict the global
initial state to each rank, and march every rank's *unchanged*
:class:`~repro.core.hydro.Hydro` loop in its own thread with a
:class:`~repro.parallel.typhon.TyphonComms` endpoint plugged into the
communication seam.

The result is numerically equivalent to the serial run (identical up
to floating-point summation order — verified by the integration
tests), with per-rank kernel timers and full communication statistics
for the performance model.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from ..core.hydro import Hydro
from ..core.state import HydroState
from ..problems.base import ProblemSetup
from ..utils.errors import BookLeafError
from ..utils.timers import TimerRegistry
from .halo import Subdomain, build_subdomains, local_state
from .partition.interface import partition
from .typhon import TyphonComms, TyphonContext


class DistributedHydro:
    """Decomposed mini-app run over virtual ranks.

    Pass ``trace=True`` to give every rank thread its own
    :class:`~repro.telemetry.spans.Tracer` (sharing one clock epoch so
    the per-rank streams line up);  :meth:`merged_spans` then returns
    the deterministically merged stream for the Chrome-trace writer.
    """

    def __init__(self, setup: ProblemSetup, nranks: int,
                 method: str = "rcb", trace: bool = False):
        if setup.controls.ale_on and setup.controls.ale_mode != "eulerian":
            raise BookLeafError(
                "decomposed runs support Lagrangian and Eulerian-remap "
                "modes; 'relax' needs cross-rank neighbour averaging"
            )
        self.setup = setup
        self.nranks = nranks
        self.global_mesh = setup.state.mesh
        self.part = partition(self.global_mesh, nranks, method)
        self.subdomains: List[Subdomain] = build_subdomains(
            self.global_mesh, self.part, nranks
        )
        self.context = TyphonContext(self.subdomains)
        self.tracers = []
        if trace:
            from ..telemetry.spans import Tracer
            import time

            epoch = time.perf_counter_ns()
            self.tracers = [Tracer(rank=r, epoch_ns=epoch)
                            for r in range(nranks)]
        self.hydros: List[Hydro] = []
        for sub in self.subdomains:
            state = local_state(sub, setup.state)
            tracer = self.tracers[sub.rank] if self.tracers else None
            comms = TyphonComms(self.context, sub, tracer=tracer)
            self.context.register_state(sub.rank, state)
            timers = TimerRegistry()
            timers.tracer = tracer
            self.hydros.append(Hydro(
                state, setup.table, setup.controls,
                timers=timers, comms=comms,
            ))

    # ------------------------------------------------------------------
    def run(self, max_steps: Optional[int] = None) -> int:
        """Run all ranks to completion; returns the step count."""
        errors: Dict[int, BaseException] = {}

        def worker(rank: int) -> None:
            try:
                self.hydros[rank].run(max_steps=max_steps)
            except BaseException as exc:  # propagate to the caller
                errors[rank] = exc
                self.context.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"rank{r}")
            for r in range(self.nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = sorted(errors.items())[0]
            raise BookLeafError(f"rank {rank} failed: {exc}") from exc
        steps = {h.nstep for h in self.hydros}
        times = {round(h.time, 14) for h in self.hydros}
        if len(steps) != 1 or len(times) != 1:
            raise BookLeafError(
                f"ranks desynchronised: steps={steps} times={times}"
            )
        return self.hydros[0].nstep

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        return self.hydros[0].time

    @property
    def nstep(self) -> int:
        return self.hydros[0].nstep

    def gather(self) -> HydroState:
        """Assemble the global state from the ranks' owned data."""
        template = self.setup.state
        out = template.copy()
        node_filled = np.zeros(self.global_mesh.nnode, dtype=bool)
        for sub, hydro in zip(self.subdomains, self.hydros):
            state = hydro.state
            owned_local = np.flatnonzero(sub.owned_cell_mask)
            gcells = sub.cell_global[owned_local]
            for name in ("rho", "e", "p", "cs2", "q", "cell_mass", "volume"):
                getattr(out, name)[gcells] = getattr(state, name)[owned_local]
            out.corner_mass[gcells] = state.corner_mass[owned_local]
            out.corner_volume[gcells] = state.corner_volume[owned_local]
            active = sub.active_node_mask
            gnodes = sub.node_global[active]
            fresh = ~node_filled[gnodes]
            take = gnodes[fresh]
            local = np.flatnonzero(active)[fresh]
            for name in ("x", "y", "u", "v"):
                getattr(out, name)[take] = getattr(state, name)[local]
            node_filled[take] = True
        if not node_filled.all():
            raise BookLeafError("gather left nodes unfilled")
        out.invalidate_node_mass()
        return out

    def merged_timers(self) -> TimerRegistry:
        """Sum of all ranks' kernel timers (Table II-style aggregate)."""
        merged = TimerRegistry()
        for hydro in self.hydros:
            merged.merge(hydro.timers)
        return merged

    def merged_spans(self) -> list:
        """All ranks' trace spans, merged deterministically (ascending
        rank order, per-rank recording order preserved)."""
        from ..telemetry.spans import merge_spans

        return merge_spans(self.tracers)

    def per_rank_comm(self) -> List[dict]:
        """Every rank's Typhon counters in rank order (report input)."""
        return self.context.per_rank_stats()

    def comm_summary(self) -> dict:
        """Traffic totals for the whole run (perf-model inputs)."""
        total = self.context.total_stats()
        return {
            "nranks": self.nranks,
            "steps": self.nstep,
            "messages": total.messages,
            "bytes": total.bytes_sent,
            "halo_exchanges": total.halo_exchanges,
            "reductions": total.reductions,
            "halo_nodes": sum(s.halo_node_count() for s in self.subdomains),
            "shared_nodes": sum(s.shared_node_count() for s in self.subdomains),
        }
