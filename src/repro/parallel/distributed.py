"""The distributed (SPMD) hydro driver — backend-agnostic.

Runs one :class:`~repro.problems.base.ProblemSetup` decomposed over N
ranks: partition the cells (RCB or the spectral METIS substitute),
build subdomains with ghost layers, restrict the global initial state
to each rank, and march every rank's *unchanged*
:class:`~repro.core.hydro.Hydro` loop with a conforming
:class:`~repro.parallel.interface.CommEndpoint` plugged into the
communication seam.

*Where* the ranks execute is the backend's business
(:mod:`repro.parallel.backends`): ``threads`` runs them as threads of
this process (the historical simulated-Typhon model), ``processes``
runs each rank in its own forked process over shared memory.  Either
way the result is numerically equivalent to the serial run (identical
up to floating-point summation order — verified by the integration
tests) and the two distributed backends are bit-identical to each
other, with per-rank kernel timers, trace spans and communication
statistics merged back under the same deterministic rank-order rules.

The supported embedding surface is :func:`repro.api.run`; this class
is the engine underneath it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.state import HydroState
from ..problems.base import ProblemSetup
from ..utils.errors import BookLeafError, DeprecatedOptionError
from ..utils.timers import TimerRegistry
from .backends import get_backend
from .halo import Subdomain, build_subdomains
from .interface import BackendRun
from .partition.interface import partition

#: counters every per-rank comm entry carries
_COMM_FIELDS = ("messages", "bytes", "halo_exchanges", "reductions",
                "dt_reductions", "dt_hops")


class DistributedHydro:
    """Decomposed mini-app run over virtual ranks.

    Parameters
    ----------
    setup:
        The problem to run (state + materials + controls).
    nranks:
        Rank count (1 for the ``serial`` backend).
    method:
        Cell partitioner, ``"rcb"`` or ``"spectral"``.
    trace:
        Give every rank its own
        :class:`~repro.telemetry.spans.Tracer` (sharing one clock epoch
        so the per-rank streams line up); :meth:`merged_spans` then
        returns the deterministically merged stream.
    backend:
        Execution backend name (``serial``, ``threads`` or
        ``processes`` — see :mod:`repro.parallel.backends`).
    comm_plan:
        ``"overlap"`` (default) runs the split-phase exchanges — the
        kernels post a halo, compute their interior partition, and
        complete it against the *neighbouring* ranks' counters only
        (no global barrier); the dt reduction is a binomial combining
        tree.  ``"packed"`` keeps PR 5's single-barrier collectives —
        bit-identical to ``overlap`` and retained as the equivalence
        baseline.  Both run over the same compiled
        :class:`~repro.parallel.commplan.CommPlan` layouts.  The
        pre-plan ``"legacy"`` protocol was removed; requesting it (or
        passing ``None``) raises
        :class:`~repro.utils.errors.DeprecatedOptionError`.

    For the in-process backends the per-rank ``hydros`` (and, for
    ``threads``, the shared ``context``) are live attributes that
    embedding code may inspect or attach observers to; the
    ``processes`` backend keeps its rank objects in the children and
    exposes only the marshalled :class:`BackendRun` (``self.result``).
    """

    def __init__(self, setup: ProblemSetup, nranks: int,
                 method: str = "rcb", trace: bool = False,
                 backend: str = "threads", log_every: int = 0,
                 trace_allocations: bool = False,
                 metrics_path: Optional[str] = None,
                 metrics_every: int = 0,
                 watchdog_timeout: Optional[float] = None,
                 snapshot_dir: Optional[str] = None,
                 comm_plan: str = "overlap",
                 artifacts=None):
        if nranks > 1 and setup.controls.ale_on \
                and setup.controls.ale_mode != "eulerian":
            raise BookLeafError(
                "decomposed runs support Lagrangian and Eulerian-remap "
                "modes; 'relax' needs cross-rank neighbour averaging"
            )
        self.setup = setup
        self.nranks = nranks
        self.method = method
        self.trace = trace
        #: serial-backend niceties (step banners, tracemalloc); the
        #: concurrent backends ignore them — per-rank step printing
        #: would interleave and tracemalloc is process-global
        self.log_every = log_every
        self.trace_allocations = trace_allocations
        #: live-metrics configuration (repro.metrics): a cadence of 0
        #: means no probe is built — the hot loop stays bit-identical
        self.metrics_path = metrics_path
        self.metrics_every = int(metrics_every or 0)
        self.watchdog_timeout = watchdog_timeout
        self.snapshot_dir = snapshot_dir
        if comm_plan in (None, "legacy"):
            raise DeprecatedOptionError(
                "comm_plan='legacy'", "comm_plan='packed'",
                context="repro.parallel.DistributedHydro",
            )
        if comm_plan not in ("packed", "overlap"):
            raise BookLeafError(
                f"unknown comm plan {comm_plan!r} "
                "(expected 'overlap' or 'packed')"
            )
        #: exchange mode the backends hand every endpoint
        self.comm_plan: str = comm_plan
        self.global_mesh = setup.state.mesh
        self._backend = get_backend(backend)
        self.backend_name = self._backend.name
        #: set before ``run`` to have rank 0 record a per-step series
        #: (returned as ``self.result.step_rows``)
        self.collect_step_series = False
        self.result: Optional[BackendRun] = None
        #: optional :class:`repro.fleet.artifacts.ArtifactCache` — the
        #: fleet attaches one so repeated same-mesh jobs reuse the
        #: partition/subdomains/CommPlans instead of recompiling
        self.artifacts = artifacts
        # Per-backend rank machinery, populated by prepare():
        self.hydros: List = []
        self.tracers: List = []
        self.context = None
        if self.backend_name == "serial":
            self.part = None
            self.subdomains: List[Subdomain] = []
        elif artifacts is not None:
            self.part, self.subdomains = artifacts.decomposition(
                self.global_mesh, nranks, method
            )
        else:
            self.part = partition(self.global_mesh, nranks, method)
            self.subdomains = build_subdomains(
                self.global_mesh, self.part, nranks
            )
        self._backend.prepare(self)

    # ------------------------------------------------------------------
    def compiled_plans(self):
        """This decomposition's packed-exchange CommPlans — from the
        artifact cache when one is attached, else compiled fresh.
        The plans are pure functions of (mesh topology, partition), so
        reuse across same-mesh jobs is exact."""
        from .commplan import compile_plans

        if self.artifacts is not None:
            return self.artifacts.comm_plans(
                self.global_mesh, self.nranks, self.method,
                self.subdomains,
            )
        return compile_plans(self.subdomains)

    # ------------------------------------------------------------------
    def run(self, max_steps: Optional[int] = None) -> int:
        """Run all ranks to completion; returns the step count."""
        self.result = self._backend.execute(self, max_steps=max_steps)
        return self.result.nstep

    # ------------------------------------------------------------------
    def build_probe(self, rank: int, cell_global=None):
        """Rank ``rank``'s :class:`~repro.metrics.probe.DiagnosticsProbe`
        per the metrics config, or ``None`` when metrics are off.

        Rank 0 carries the NDJSON sink, the in-memory record and the
        :class:`~repro.metrics.registry.MetricsRegistry` (the sampled
        totals are global, identical on every rank — one writer is
        enough); the other ranks probe purely for their own sentinel
        scans and the collective participation those require.
        """
        if self.metrics_every < 1:
            return None
        import os

        from ..metrics import DiagnosticsProbe, MetricsRegistry

        snapshot_path = None
        if self.snapshot_dir:
            snapshot_path = os.path.join(
                self.snapshot_dir, f"HEALTH_snapshot_rank{rank}.npz")
        if rank == 0:
            return DiagnosticsProbe(
                every=self.metrics_every, sink_path=self.metrics_path,
                registry=MetricsRegistry(), record=True,
                snapshot_path=snapshot_path, cell_global=cell_global,
            )
        return DiagnosticsProbe(
            every=self.metrics_every, record=False,
            snapshot_path=snapshot_path, cell_global=cell_global,
        )

    # ------------------------------------------------------------------
    @property
    def time(self) -> float:
        if self.result is not None:
            return self.result.time
        return self.hydros[0].time

    @property
    def nstep(self) -> int:
        if self.result is not None:
            return self.result.nstep
        return self.hydros[0].nstep

    def _final_states(self) -> List[HydroState]:
        """Per-rank final local states, ascending rank order."""
        if self.result is not None:
            return self.result.states
        return [h.state for h in self.hydros]

    def gather(self) -> HydroState:
        """Assemble the global state from the ranks' owned data."""
        states = self._final_states()
        if self.backend_name == "serial":
            return states[0]
        template = self.setup.state
        out = template.copy()
        node_filled = np.zeros(self.global_mesh.nnode, dtype=bool)
        for sub, state in zip(self.subdomains, states):
            owned_local = np.flatnonzero(sub.owned_cell_mask)
            gcells = sub.cell_global[owned_local]
            for name in ("rho", "e", "p", "cs2", "q", "cell_mass", "volume"):
                getattr(out, name)[gcells] = getattr(state, name)[owned_local]
            out.corner_mass[gcells] = state.corner_mass[owned_local]
            out.corner_volume[gcells] = state.corner_volume[owned_local]
            active = sub.active_node_mask
            gnodes = sub.node_global[active]
            fresh = ~node_filled[gnodes]
            take = gnodes[fresh]
            local = np.flatnonzero(active)[fresh]
            for name in ("x", "y", "u", "v"):
                getattr(out, name)[take] = getattr(state, name)[local]
            node_filled[take] = True
        if not node_filled.all():
            raise BookLeafError("gather left nodes unfilled")
        out.invalidate_node_mass()
        return out

    # ------------------------------------------------------------------
    # telemetry merge paths (deterministic rank-order rules)
    # ------------------------------------------------------------------
    def merged_timers(self) -> TimerRegistry:
        """Sum of all ranks' kernel timers (Table II-style aggregate)."""
        merged = TimerRegistry()
        if self.result is not None:
            for timers in self.result.timers:
                merged.merge(timers)
        else:
            for hydro in self.hydros:
                merged.merge(hydro.timers)
        return merged

    def merged_spans(self) -> list:
        """All ranks' trace spans, merged deterministically (ascending
        rank order, per-rank recording order preserved)."""
        if self.result is not None:
            return self.result.merged_spans()
        from ..telemetry.spans import merge_spans

        return merge_spans(self.tracers)

    def per_rank_comm(self) -> List[dict]:
        """Every rank's comm counters in rank order (report input)."""
        if self.result is not None:
            return self.result.comm_per_rank
        return self.context.per_rank_stats() if self.context else []

    def comm_totals(self) -> Dict[str, int]:
        """Whole-run traffic totals as a JSON-ready dict."""
        total = {key: 0 for key in _COMM_FIELDS}
        for entry in self.per_rank_comm():
            for key in _COMM_FIELDS:
                total[key] += int(entry.get(key, 0))
        return total

    def comm_summary(self) -> dict:
        """Traffic totals for the whole run (perf-model inputs)."""
        total = self.comm_totals()
        steps = self.nstep
        return {
            "nranks": self.nranks,
            "steps": steps,
            "backend": self.backend_name,
            "comm_plan": self.comm_plan,
            **total,
            "bytes_per_step": total["bytes"] / steps if steps else 0.0,
            "messages_per_step": (total["messages"] / steps
                                  if steps else 0.0),
            "halo_nodes": sum(s.halo_node_count() for s in self.subdomains),
            "shared_nodes": sum(s.shared_node_count() for s in self.subdomains),
        }
