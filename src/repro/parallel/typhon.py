"""Simulated Typhon — BookLeaf's unstructured-mesh comm library.

The real BookLeaf communicates through Typhon, a thin distributed
communication library over MPI that provides halo exchanges and
collectives for unstructured meshes.  MPI is not available in this
environment, so this module reimplements Typhon's semantics over
threads in one process: each rank runs the *unchanged* SPMD hydro code
in its own thread, and the exchange points synchronise through
barriers and move data by direct array copies between rank states.

Because numpy releases the GIL inside its kernels, the rank threads
genuinely overlap, but the purpose here is *semantic* fidelity plus
instrumentation, not speed: every exchange and reduction is counted
(messages and bytes), giving the performance model measured
communication volumes exactly where the real mini-app would have
MPI traffic — two halo exchanges and one global reduction per step
(paper Section IV-A).

Determinism: partial nodal sums are combined in ascending rank order
on every rank, so shared interface nodes receive *bit-identical*
values everywhere and a decomposed run tracks the serial one to
floating-point round-off only.

Two exchange modes share the compiled CommPlans (docs/PARALLEL.md):

* ``packed`` — every exchange is a single-barrier collective (PR 5's
  protocol, the equivalence baseline);
* ``overlap`` — split-phase: ``post_*`` packs and publishes, the
  caller computes its interior partition, ``complete_*`` waits only on
  the *neighbouring* ranks' post counters (no global barrier) and
  finishes the boundary strip.  Bit-identical to ``packed`` because
  packing is a pure reorder and the nodal-sum completion replays the
  exact ascending-rank fold over the shared-node union.

The per-step dt reduction runs a **binomial-tree combining reduction**
in both modes (min is exact, so the tree result is bitwise equal to a
root gather): each rank combines its children's candidates, forwards
one candidate to its parent, and the root's result flows back down —
O(log P) hops on the critical path instead of the O(P) rank-0 serial
gather, visible in ``CommStats.dt_hops``.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.timestep import Candidate
from ..utils.errors import CommError
from .commplan import CommPlan, SECTIONS, _widths, compile_plans
from .halo import Subdomain

_FLOAT_BYTES = 8

#: honest payload of the dt reduction: every rank publishes a
#: ``(dt, reason, cell, rank)`` tuple — four values, not one scalar
DT_REDUCE_VALUES = 4

#: the only dt-limiter reasons that cross the seam (``getdt``'s local
#: candidates); the processes backend encodes them as small ints
DT_REASONS = ("cfl", "div")

#: exchange modes an endpoint can run (the ``comm_plan`` values)
COMM_MODES = ("packed", "overlap")

#: seconds a split-phase/tree spin-wait may starve before declaring
#: the run wedged (the backends' watchdogs normally fire first)
SPIN_TIMEOUT = 120.0

#: spin-wait backoff ceiling.  Virtual ranks oversubscribe the host,
#: so a waiter must *sleep*, not yield: every quantum it burns polling
#: is a quantum stolen from the very peer it is waiting on (the packed
#: mode's Barrier sleeps on a condition variable and sets the bar).
#: A handful of free polls catch the already-arrived case; after that
#: the sleep doubles from 2 µs up to this ceiling.
SPIN_MAX_SLEEP = 500e-6


def spin_backoff(spins: int) -> float:
    """Sleep duration for the ``spins``-th unsuccessful poll."""
    if spins < 4:
        return 0.0
    return min(SPIN_MAX_SLEEP, 2e-6 * (1 << min(spins - 4, 10)))

#: shared no-op context for untraced comm calls (stateless, reusable)
_NULL_SPAN = nullcontext()


def tree_parent(rank: int) -> int:
    """Parent of ``rank`` in the binomial reduction tree (root 0):
    clear the lowest set bit."""
    return rank & (rank - 1)


def tree_children(rank: int, size: int) -> List[int]:
    """Children of ``rank`` in the binomial tree over ``size`` ranks,
    ascending.  Rank r owns r + 2^k for every k with r's low k+1 bits
    zero — the root's child count is ⌈log2 P⌉, the tree's depth bound."""
    children: List[int] = []
    k = 0
    while True:
        bit = 1 << k
        if rank & ((bit << 1) - 1):
            break
        child = rank + bit
        if child >= size:
            break
        children.append(child)
        k += 1
    return children


@dataclass
class CommStats:
    """Per-rank traffic counters (the perf model's inputs)."""

    messages: int = 0
    bytes_sent: int = 0
    halo_exchanges: int = 0
    reductions: int = 0
    #: dt reductions performed (each charges DT_REDUCE_VALUES once,
    #: whatever the tree shape — topology honesty lives in dt_hops)
    dt_reductions: int = 0
    #: combining messages *received* during dt up-sweeps: this rank's
    #: child count summed over reductions.  The per-reduction maximum
    #: over ranks is the tree's critical-path fan-in — ⌈log2 P⌉ for
    #: the binomial tree vs. P−1 for the old rank-0 root gather.
    dt_hops: int = 0

    def account(self, nvalues: int, messages: int = 1) -> None:
        """Charge ``nvalues`` float64 payload carried by ``messages``
        logical messages (1 per packed block per neighbour)."""
        self.messages += messages
        self.bytes_sent += nvalues * _FLOAT_BYTES

    def bytes_per_step(self, steps: int) -> float:
        """Traffic volume normalised per step (the scaling curves'
        x-axis companion; 0.0 for an unstepped run)."""
        return self.bytes_sent / steps if steps else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters (the run report's ``comm`` entries)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "halo_exchanges": self.halo_exchanges,
            "reductions": self.reductions,
            "dt_reductions": self.dt_reductions,
            "dt_hops": self.dt_hops,
        }


class TyphonContext:
    """Shared coordination state for all ranks of one run."""

    def __init__(self, subdomains: List[Subdomain], plans=None):
        self.subdomains = subdomains
        self.size = len(subdomains)
        self.barrier = threading.Barrier(self.size)
        #: phase-parity slots for the packed single-sync protocol:
        #: consecutive collectives publish into alternating halves
        self.pslots: List[List[Optional[object]]] = [
            [None] * self.size, [None] * self.size,
        ]
        #: split-phase neighbour-sync counters, one pair per (rank,
        #: section): cumulative posts and completes.  Single writer
        #: (the owning rank), GIL-atomic int stores — the overlap mode
        #: synchronises on these instead of the global barrier.
        self.posted: List[Dict[str, int]] = [
            dict.fromkeys(SECTIONS, 0) for _ in range(self.size)
        ]
        self.completed: List[Dict[str, int]] = [
            dict.fromkeys(SECTIONS, 0) for _ in range(self.size)
        ]
        #: binomial-tree dt combining cells: ``dt_up[r]`` holds rank
        #: r's combined candidate for its parent, ``dt_down[r]`` the
        #: broadcast result for r's children — each a ``(generation,
        #: candidate)`` tuple, single writer, generation-guarded reads.
        self.dt_up: List[Optional[tuple]] = [None] * self.size
        self.dt_down: List[Optional[tuple]] = [None] * self.size
        #: per-rank wake-up conditions for the split-phase/tree waits:
        #: a publisher notifies exactly the ranks whose predicates
        #: watch the advanced counter, so waiters sleep event-driven
        #: (like the packed Barrier) instead of burning the quantum the
        #: awaited peer needs — on an oversubscribed host a polling
        #: waiter pays either stolen CPU or wake-up latency; a
        #: condition variable pays neither, and per-rank conditions
        #: avoid the thundering herd a single shared one would wake
        self.rank_cv = [threading.Condition() for _ in range(self.size)]
        #: per-rank live state references (registered by the driver)
        self.states: List[Optional[object]] = [None] * self.size
        self.stats: List[CommStats] = [CommStats() for _ in range(self.size)]
        #: compiled packed-exchange layouts, one per rank (callers with
        #: an artifact cache hand in the precompiled set)
        self.plans: List[CommPlan] = (
            plans if plans is not None else compile_plans(subdomains)
        )
        # Staging buffers live in a Workspace arena (the PR-1 allocator
        # extended into the comm layer): allocated once here, reused by
        # every exchange of the run.  Peers read each other's staging
        # directly — shared process memory is the transport.
        from ..perf.workspace import Workspace

        self.comm_ws = Workspace()
        self.staging: List[np.ndarray] = [
            self.comm_ws.array(f"commplan.staging.rank{plan.rank}",
                               plan.staging_doubles())
            for plan in self.plans
        ]
        self._failure = threading.Event()

    def register_state(self, rank: int, state) -> None:
        self.states[rank] = state

    def sync(self) -> None:
        """Barrier with failure propagation: if any rank died, raise."""
        if self._failure.is_set():
            raise CommError("a peer rank failed; aborting collective")
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError:
            raise CommError("a peer rank failed; aborting collective") from None

    def abort(self) -> None:
        """Mark the run failed and release everyone stuck in a barrier
        or a split-phase wait."""
        self._failure.set()
        self.barrier.abort()
        for cv in self.rank_cv:
            with cv:
                cv.notify_all()

    def total_stats(self) -> CommStats:
        total = CommStats()
        for s in self.stats:
            total.messages += s.messages
            total.bytes_sent += s.bytes_sent
            total.halo_exchanges += s.halo_exchanges
            total.reductions += s.reductions
            total.dt_reductions += s.dt_reductions
            total.dt_hops += s.dt_hops
        return total

    def per_rank_stats(self) -> List[dict]:
        """Every rank's counters in ascending rank order (deterministic
        — each rank only ever writes its own :class:`CommStats`)."""
        return [s.as_dict() for s in self.stats]

    def traffic_matrix(self) -> np.ndarray:
        """(size, size) static bytes-per-step estimate between rank
        pairs, from the halo schedules: kinematic halo (4 fields) plus
        nodal-sum completion (3 fields) — the map a communication-
        topology study would draw."""
        matrix = np.zeros((self.size, self.size))
        for sub in self.subdomains:
            for src, idx in sub.recv_nodes.items():
                matrix[src, sub.rank] += 4 * idx.size * _FLOAT_BYTES
            for peer, idx in sub.shared_nodes.items():
                matrix[peer, sub.rank] += 3 * idx.size * _FLOAT_BYTES
        return matrix


class TyphonComms:
    """One rank's communication endpoint (plugs into the comms seam).

    Every exchange runs over the compiled
    :class:`~repro.parallel.commplan.CommPlan`.  In ``packed`` mode it
    is the single-sync protocol: gather the halo values into this
    rank's preallocated staging buffer, one barrier, read the peers'
    packed blocks.  In ``overlap`` mode the same staging carries the
    split-phase protocol: ``post_*`` packs at parity ``k & 1`` of the
    per-section op counter and publishes the rank's post counter;
    ``complete_*`` spins only on the *source* neighbours' post
    counters, and a post may only reuse a parity half once every
    *reader* neighbour's complete counter shows the k−2 read finished.
    No global barrier is involved, so ranks slide past each other by
    up to one exchange — and the blocking seam methods degrade to
    post + complete back to back.

    Packed nodal-sum totals are returned as rows of a reused arena
    buffer: they stay valid until the *next-but-one* completion with
    the same field count (double-buffered by parity), which covers
    every caller in the step loop — long-lived results must be
    committed by copy, the same contract as the PR-1 kernel arena.
    """

    #: declares conformance to repro.parallel.interface.CommEndpoint
    __comm_endpoint__ = True

    def __init__(self, ctx: TyphonContext, sub: Subdomain, tracer=None,
                 plan: Optional[CommPlan] = None, mode: str = "packed"):
        if mode not in COMM_MODES:
            raise CommError(f"unknown comm mode {mode!r}; "
                            f"expected one of {COMM_MODES}")
        self.ctx = ctx
        self.sub = sub
        self.rank = sub.rank
        self.size = ctx.size
        self.stats = ctx.stats[self.rank]
        #: optional :class:`~repro.telemetry.spans.Tracer`; when set,
        #: every exchange/reduction records a ``comm`` span on this
        #: rank's stream (the span covers the barrier waits too — in a
        #: trace, load imbalance shows up as long comm spans)
        self.tracer = tracer
        self.plan = plan if plan is not None else ctx.plans[self.rank]
        self.mode = mode
        #: collective-phase counter: parity selects the pslot row (and,
        #: in packed mode, the staging half).  Advanced once per
        #: barrier collective on every rank — the op sequence is SPMD,
        #: so the counters agree globally.
        self._phase = 0
        #: per-section split-phase op counts (parity source in overlap
        #: mode) and the in-flight post bookkeeping
        self._ops: Dict[str, int] = dict.fromkeys(SECTIONS, 0)
        self._pending: Dict[str, int] = {}
        self._pending_sums: Optional[tuple] = None
        #: dt-reduction generation (guards the combining cells' reuse)
        self._dt_gen = 0
        from ..perf.workspace import Workspace

        #: arena for the reusable nodal-sum totals buffers
        self._ws = Workspace()

    def comm_plan(self) -> Optional[CommPlan]:
        """This endpoint's compiled plan."""
        return self.plan

    def overlap_enabled(self) -> bool:
        """True when the split-phase (overlapped) protocol is active."""
        return self.mode == "overlap"

    def _span(self, name: str):
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return _NULL_SPAN
        return tracer.span(name, cat="comm")

    # ------------------------------------------------------------------
    # packed-protocol helpers
    # ------------------------------------------------------------------
    def _my_region(self, section: str, parity: int) -> np.ndarray:
        plan = self.plan
        return plan.region(self.ctx.staging[self.rank], section, parity)

    def _peer_region(self, peer: int, section: str,
                     parity: int) -> np.ndarray:
        plan = self.ctx.plans[peer]
        return plan.region(self.ctx.staging[peer], section, parity)

    def _slots(self) -> List[Optional[object]]:
        """Publication slots for a scalar collective: the phase-parity
        pslot row (single sync; double-buffered like the staging)."""
        return self.ctx.pslots[self._phase & 1]

    def _finish_collective(self) -> None:
        """Close a scalar collective: advance the parity phase."""
        self._phase += 1

    # ------------------------------------------------------------------
    # split-phase neighbour synchronisation (overlap mode)
    # ------------------------------------------------------------------
    def _spin(self, ready, what: str) -> None:
        """Wait until ``ready()`` — event-driven, never a global
        barrier.  The fast path (already satisfied) takes no lock;
        otherwise the wait sleeps on this rank's wake-up condition,
        re-checking the predicate whenever a watched peer publishes.
        The 100 ms guard timeout only serves the failure/deadline
        checks."""
        if ready():
            return
        ctx = self.ctx
        deadline = time.monotonic() + SPIN_TIMEOUT
        cv = ctx.rank_cv[self.rank]
        with cv:
            while not cv.wait_for(ready, timeout=0.1):
                if ctx._failure.is_set():
                    raise CommError(
                        "a peer rank failed; aborting collective")
                if time.monotonic() > deadline:
                    raise CommError(
                        f"rank {self.rank} timed out waiting for {what}"
                    )

    def _announce(self, ranks) -> None:
        """Wake the ranks whose ``_spin`` predicates watch a counter
        this rank just advanced (and nobody else)."""
        for r in ranks:
            cv = self.ctx.rank_cv[r]
            with cv:
                cv.notify_all()

    def _post_section(self, name: str, arrays) -> int:
        """Pack op k of ``name`` and publish the post counter.

        Guards: at most one in-flight post per section (a same-parity
        double post would overwrite the half a peer may still read),
        and the parity half of op k is only reclaimed once every
        reader's complete counter proves the op k−2 read finished.
        """
        if self.mode != "overlap":
            raise CommError(
                "split-phase exchange requires comm_plan='overlap' "
                f"(this endpoint runs {self.mode!r})"
            )
        if name in self._pending:
            raise CommError(
                f"rank {self.rank}: {name} exchange already posted — "
                "a second same-parity post must wait for complete"
            )
        k = self._ops[name]
        sec = self.plan.section(name)
        for peer in sec.send_peers:
            self._spin(
                lambda p=peer: self.ctx.completed[p][name] >= k - 1,
                f"rank {peer} to finish reading {name} op {k - 2}",
            )
        sec.pack(self._my_region(name, k & 1), arrays)
        self.ctx.posted[self.rank][name] = k + 1
        # readers of this staging block spin on the post counter
        self._announce(sec.send_peers)
        self._pending[name] = k
        return k

    def _begin_complete(self, name: str) -> int:
        """Wait for every source neighbour's op-k post; return k."""
        if self.mode != "overlap":
            raise CommError(
                "split-phase exchange requires comm_plan='overlap' "
                f"(this endpoint runs {self.mode!r})"
            )
        k = self._pending.get(name)
        if k is None:
            raise CommError(
                f"rank {self.rank}: complete_{name} without a post"
            )
        sec = self.plan.section(name)
        for peer in sec.recv_peers:
            self._spin(
                lambda p=peer: self.ctx.posted[p][name] >= k + 1,
                f"rank {peer} to post {name} op {k}",
            )
        return k

    def _end_complete(self, name: str, k: int) -> None:
        self.ctx.completed[self.rank][name] = k + 1
        # ranks that send to us spin on the complete counter before
        # reclaiming the parity half we just finished reading
        self._announce(self.plan.section(name).recv_peers)
        del self._pending[name]
        self._ops[name] = k + 1

    # ------------------------------------------------------------------
    # kinematic halo exchange (before the viscosity kernel)
    # ------------------------------------------------------------------
    def exchange_kinematics(self, state) -> None:
        """Refresh ghost-only nodes' x, y, u, v from their owner ranks."""
        with self._span("typhon.exchange_kinematics"):
            self._exchange_kinematics(state)

    def _exchange_kinematics(self, state) -> None:
        if self.mode == "overlap":
            self._post_kinematics(state)
            self._complete_kinematics(state)
            return
        # Packed mode: one (4, n) coalesced message per neighbour,
        # one sync.  The trailing barrier is unnecessary because the
        # next collective writes the opposite parity half.
        ctx = self.ctx
        sec = self.plan.kin
        sec.pack(self._my_region("kin", self._phase & 1),
                 (state.x, state.y, state.u, state.v))
        ctx.sync()  # every rank's halo block staged
        self._unpack_kinematics(state, self._phase & 1)
        self._phase += 1

    def _unpack_kinematics(self, state, parity: int) -> None:
        """Scatter every source neighbour's staged (4, n) block."""
        sec = self.plan.kin
        for src_rank, local_idx in self.sub.recv_nodes.items():
            bx, by, bu, bv = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "kin", parity),
                (1, 1, 1, 1)
            )
            state.x[local_idx] = bx
            state.y[local_idx] = by
            state.u[local_idx] = bu
            state.v[local_idx] = bv
            self.stats.account(4 * local_idx.size)
        self.stats.halo_exchanges += 1

    def post_kinematics(self, state) -> None:
        """Start the kinematic halo refresh (overlap mode): pack this
        rank's send blocks and publish — the caller may now compute
        the interior partition (``plan.interior_cells``)."""
        with self._span("typhon.post_kinematics"):
            self._post_kinematics(state)

    def _post_kinematics(self, state) -> None:
        self._post_section("kin", (state.x, state.y, state.u, state.v))

    def complete_kinematics(self, state) -> None:
        """Finish a posted kinematic refresh: wait for the source
        neighbours' posts, scatter the ghost rows."""
        with self._span("typhon.complete_kinematics"):
            self._complete_kinematics(state)

    def _complete_kinematics(self, state) -> None:
        k = self._begin_complete("kin")
        self._unpack_kinematics(state, k & 1)
        self._end_complete("kin", k)

    # ------------------------------------------------------------------
    # nodal sum completion (inside the acceleration kernel)
    # ------------------------------------------------------------------
    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]:
        """Complete partial nodal sums across ranks.

        ``arrays`` are this rank's per-node partial sums, accumulated
        from *owned* cells only.  Partials are combined in ascending
        rank order so every rank computes bit-identical totals for
        shared nodes.
        """
        with self._span("typhon.complete_node_arrays"):
            return self._complete_node_arrays(state, *arrays)

    def _complete_node_arrays(self, state, *partials: np.ndarray
                              ) -> Tuple[np.ndarray, ...]:
        if self.mode == "overlap":
            self._post_node_sums(state, *partials)
            return self._complete_node_sums(state)
        # Packed mode: stage only the *shared-node* values (one
        # coalesced message per peer), one sync, fold into reused
        # arena totals.  The fold visits the ascending rank sequence
        # with this rank's own partial in its sorted position, so
        # shared nodes accumulate in a fixed order bit for bit.
        ctx = self.ctx
        parity = self._phase & 1
        sec = self.plan.nodesum
        sec.pack(self._my_region("nodesum", parity), partials)
        ctx.sync()  # every rank's shared-node block staged
        totals = self._totals_buffer(partials, parity)
        widths = _widths(partials)
        nf = len(partials)
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, partials):
                    total += p
            else:
                mine = self.sub.shared_nodes[r]
                blocks = sec.peer_blocks(
                    r, self._peer_region(r, "nodesum", parity), widths
                )
                for total, block in zip(totals, blocks):
                    total[mine] += block
                self.stats.account(nf * mine.size)
        self.stats.halo_exchanges += 1
        self._phase += 1
        return totals

    def _totals_buffer(self, partials, parity: int
                       ) -> Tuple[np.ndarray, ...]:
        """Zeroed arena rows for the completed totals, double-buffered
        by parity (valid until the next-but-one same-width completion)."""
        nf = len(partials)
        buf = self._ws.zeros(f"commplan.totals{nf}.{parity}",
                             (nf, partials[0].shape[0]))
        return tuple(buf[i] for i in range(nf))

    def post_node_sums(self, state, *partials: np.ndarray) -> None:
        """Start a nodal-sum completion (overlap mode): stage this
        rank's shared-node blocks and pre-fill the totals with the
        local partials — every node *not* shared with a peer is final
        immediately; ``complete_node_sums`` re-folds only the shared
        union strip."""
        with self._span("typhon.post_node_sums"):
            self._post_node_sums(state, *partials)

    def _post_node_sums(self, state, *partials: np.ndarray) -> None:
        k = self._post_section("nodesum", partials)
        totals = self._totals_buffer(partials, k & 1)
        # 0 + p elementwise — identical to the blocking fold's first
        # visit, so interior (unshared) nodes are already bit-final
        for total, p in zip(totals, partials):
            total += p
        self._pending_sums = (partials, totals)

    def complete_node_sums(self, state) -> Tuple[np.ndarray, ...]:
        """Finish a posted nodal-sum completion: wait for the peers'
        posts, then replay the exact ascending-rank fold over the
        shared-node union (re-zeroed first), keeping shared totals
        bit-identical to the blocking path."""
        with self._span("typhon.complete_node_sums"):
            return self._complete_node_sums(state)

    def _complete_node_sums(self, state) -> Tuple[np.ndarray, ...]:
        k = self._begin_complete("nodesum")
        if self._pending_sums is None:
            raise CommError(
                f"rank {self.rank}: complete_node_sums without a post"
            )
        partials, totals = self._pending_sums
        self._pending_sums = None
        sec = self.plan.nodesum
        union = self.plan.shared_union
        widths = _widths(partials)
        nf = len(partials)
        for total in totals:
            total[union] = 0.0
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, partials):
                    total[union] += p[union]
            else:
                mine = self.sub.shared_nodes[r]
                blocks = sec.peer_blocks(
                    r, self._peer_region(r, "nodesum", k & 1), widths
                )
                for total, block in zip(totals, blocks):
                    total[mine] += block
                self.stats.account(nf * mine.size)
        self.stats.halo_exchanges += 1
        self._end_complete("nodesum", k)
        return totals

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Owned-cell scatter + deterministic cross-rank completion."""
        owned = self.sub.owned_cell_mask[:, None]
        node_fx = state.scatter_to_nodes(np.where(owned, fx, 0.0))
        node_fy = state.scatter_to_nodes(np.where(owned, fy, 0.0))
        mass = state.scatter_to_nodes(
            np.where(owned, state.corner_mass, 0.0)
        )
        return self.complete_node_arrays(state, node_fx, node_fy, mass)

    # ------------------------------------------------------------------
    # the single global reduction (getdt)
    # ------------------------------------------------------------------
    def reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Global minimum-dt candidate, with the cell id globalised."""
        with self._span("typhon.reduce_dt"):
            return self._reduce_dt(candidates)

    def _reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Binomial-tree combining reduction (both modes).

        Up-sweep: combine the children's candidates into this rank's
        local best and hand one candidate to the parent; down-sweep:
        the root's winner flows back along the same edges.  min over
        the ``(dt, src_rank)`` key is exact and associative, so the
        result is bitwise equal to a flat gather — but the critical
        path is ⌈log2 P⌉ combining messages instead of the old rank-0
        root's P−1.  Fully synchronising (no rank can leave before
        every rank has entered), which is what the parity-slot reuse
        invariant requires of every collective.
        """
        dt, reason, cell = min(candidates, key=lambda c: c[0])
        gcell = int(self.sub.cell_global[cell]) if cell >= 0 else -1
        ctx = self.ctx
        self._dt_gen += 1
        g = self._dt_gen
        best = (dt, reason, gcell, self.rank)
        hops = 0
        children = tree_children(self.rank, self.size)
        for child in children:
            self._spin(
                lambda c=child: (ctx.dt_up[c] is not None
                                 and ctx.dt_up[c][0] == g),
                f"dt candidate from child rank {child} (gen {g})",
            )
            entry = ctx.dt_up[child][1]
            best = min(best, entry, key=lambda c: (c[0], c[3]))
            hops += 1
        if self.rank == 0:
            result = best
        else:
            parent = tree_parent(self.rank)
            ctx.dt_up[self.rank] = (g, best)
            self._announce((parent,))
            self._spin(
                lambda: (ctx.dt_down[parent] is not None
                         and ctx.dt_down[parent][0] == g),
                f"dt result from parent rank {parent} (gen {g})",
            )
            result = ctx.dt_down[parent][1]
        ctx.dt_down[self.rank] = (g, result)
        self._announce(children)
        self.stats.reductions += 1
        self.stats.dt_reductions += 1
        self.stats.dt_hops += hops
        self.stats.account(DT_REDUCE_VALUES)
        return (result[0], result[1], result[2])

    def allreduce_max(self, value: float) -> float:
        """Global maximum of a scalar across ranks."""
        with self._span("typhon.allreduce_max"):
            return self._allreduce_max(value)

    def _allreduce_max(self, value: float) -> float:
        ctx = self.ctx
        slots = self._slots()
        slots[self.rank] = float(value)
        ctx.sync()
        result = max(slots)      # type: ignore[type-var]
        self.stats.reductions += 1
        self.stats.account(1)
        self._finish_collective()
        return float(result)     # type: ignore[arg-type]

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global sum of a small vector across ranks."""
        with self._span("typhon.allreduce_sum"):
            return self._allreduce_combine(values, np.add)

    def allreduce_min(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global minimum of a small vector across ranks."""
        with self._span("typhon.allreduce_min"):
            return self._allreduce_combine(values, np.minimum)

    def _allreduce_combine(self, values: np.ndarray, op) -> np.ndarray:
        # Combined by a left fold in ascending rank order on every rank
        # — the same fold the processes backend's root reduce performs —
        # so all backends produce bit-identical results.
        ctx = self.ctx
        slots = self._slots()
        slots[self.rank] = np.array(values, dtype=np.float64)
        ctx.sync()
        result = np.array(slots[0], dtype=np.float64)
        for r in range(1, self.size):
            result = op(result, slots[r])
        self.stats.reductions += 1
        self.stats.account(result.size)
        self._finish_collective()
        return result

    # ------------------------------------------------------------------
    def owned_cell_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.owned_cell_mask

    # ------------------------------------------------------------------
    # cell-field halo (the distributed ALE remap)
    # ------------------------------------------------------------------
    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Refresh the ghost-cell rows of per-cell arrays from their
        owner ranks (every rank must pass the same array list)."""
        with self._span("typhon.exchange_cell_arrays"):
            self._exchange_cell_arrays(*arrays)

    def _exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        if self.mode == "overlap":
            self._post_cell_arrays(*arrays)
            self._complete_cell_arrays(*arrays)
            return
        # Packed mode: all cell fields coalesce into one block per
        # neighbour (scalars and (n, 4) corner fields interleaved by
        # the plan's per-array widths), one sync.
        ctx = self.ctx
        sec = self.plan.cell
        sec.pack(self._my_region("cell", self._phase & 1), arrays)
        ctx.sync()  # every rank's ghost-cell block staged
        self._unpack_cell_arrays(arrays, self._phase & 1)
        self._phase += 1

    def _unpack_cell_arrays(self, arrays, parity: int) -> None:
        sec = self.plan.cell
        widths = _widths(arrays)
        for src_rank, local_idx in self.sub.recv_cells.items():
            blocks = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "cell", parity),
                widths
            )
            nvalues = 0
            for mine, block in zip(arrays, blocks):
                mine[local_idx] = block
                nvalues += block.size
            self.stats.account(nvalues)
        self.stats.halo_exchanges += 1

    def post_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Start a ghost-cell refresh (overlap mode): pack and publish
        this rank's owned-cell blocks."""
        with self._span("typhon.post_cell_arrays"):
            self._post_cell_arrays(*arrays)

    def _post_cell_arrays(self, *arrays: np.ndarray) -> None:
        self._post_section("cell", arrays)

    def complete_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Finish a posted ghost-cell refresh (pass the same arrays)."""
        with self._span("typhon.complete_cell_arrays"):
            self._complete_cell_arrays(*arrays)

    def _complete_cell_arrays(self, *arrays: np.ndarray) -> None:
        k = self._begin_complete("cell")
        self._unpack_cell_arrays(arrays, k & 1)
        self._end_complete("cell", k)

    def exchange_cell_fields(self, state) -> None:
        """Refresh ghost thermodynamics and masses before a remap."""
        self.exchange_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def post_cell_fields(self, state) -> None:
        """Start the ghost thermodynamic/mass refresh (overlap mode)."""
        self.post_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def complete_cell_fields(self, state) -> None:
        """Finish the posted ghost thermodynamic/mass refresh."""
        self.complete_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_sides()

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_mask
