"""Simulated Typhon — BookLeaf's unstructured-mesh comm library.

The real BookLeaf communicates through Typhon, a thin distributed
communication library over MPI that provides halo exchanges and
collectives for unstructured meshes.  MPI is not available in this
environment, so this module reimplements Typhon's semantics over
threads in one process: each rank runs the *unchanged* SPMD hydro code
in its own thread, and the exchange points synchronise through
barriers and move data by direct array copies between rank states.

Because numpy releases the GIL inside its kernels, the rank threads
genuinely overlap, but the purpose here is *semantic* fidelity plus
instrumentation, not speed: every exchange and reduction is counted
(messages and bytes), giving the performance model measured
communication volumes exactly where the real mini-app would have
MPI traffic — two halo exchanges and one global reduction per step
(paper Section IV-A).

Determinism: partial nodal sums are combined in ascending rank order
on every rank, so shared interface nodes receive *bit-identical*
values everywhere and a decomposed run tracks the serial one to
floating-point round-off only.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.timestep import Candidate
from ..utils.errors import CommError
from .commplan import CommPlan, _widths, compile_plans
from .halo import Subdomain

_FLOAT_BYTES = 8

#: honest payload of the dt reduction: every rank publishes a
#: ``(dt, reason, cell, rank)`` tuple — four values, not one scalar
DT_REDUCE_VALUES = 4

#: shared no-op context for untraced comm calls (stateless, reusable)
_NULL_SPAN = nullcontext()


@dataclass
class CommStats:
    """Per-rank traffic counters (the perf model's inputs)."""

    messages: int = 0
    bytes_sent: int = 0
    halo_exchanges: int = 0
    reductions: int = 0

    def account(self, nvalues: int, messages: int = 1) -> None:
        """Charge ``nvalues`` float64 payload carried by ``messages``
        logical messages (1 for a packed block, one per field on the
        legacy per-field exchange path)."""
        self.messages += messages
        self.bytes_sent += nvalues * _FLOAT_BYTES

    def bytes_per_step(self, steps: int) -> float:
        """Traffic volume normalised per step (the scaling curves'
        x-axis companion; 0.0 for an unstepped run)."""
        return self.bytes_sent / steps if steps else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters (the run report's ``comm`` entries)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "halo_exchanges": self.halo_exchanges,
            "reductions": self.reductions,
        }


class TyphonContext:
    """Shared coordination state for all ranks of one run."""

    def __init__(self, subdomains: List[Subdomain], plans=None):
        self.subdomains = subdomains
        self.size = len(subdomains)
        self.barrier = threading.Barrier(self.size)
        #: per-rank published data for the current collective phase
        #: (legacy two-sync protocol)
        self.slots: List[Optional[object]] = [None] * self.size
        #: phase-parity slots for the packed single-sync protocol:
        #: consecutive collectives publish into alternating halves
        self.pslots: List[List[Optional[object]]] = [
            [None] * self.size, [None] * self.size,
        ]
        #: per-rank live state references (registered by the driver)
        self.states: List[Optional[object]] = [None] * self.size
        self.stats: List[CommStats] = [CommStats() for _ in range(self.size)]
        #: compiled packed-exchange layouts, one per rank (callers with
        #: an artifact cache hand in the precompiled set)
        self.plans: List[CommPlan] = (
            plans if plans is not None else compile_plans(subdomains)
        )
        # Staging buffers live in a Workspace arena (the PR-1 allocator
        # extended into the comm layer): allocated once here, reused by
        # every exchange of the run.  Peers read each other's staging
        # directly — shared process memory is the transport.
        from ..perf.workspace import Workspace

        self.comm_ws = Workspace()
        self.staging: List[np.ndarray] = [
            self.comm_ws.array(f"commplan.staging.rank{plan.rank}",
                               plan.staging_doubles())
            for plan in self.plans
        ]
        self._failure = threading.Event()

    def register_state(self, rank: int, state) -> None:
        self.states[rank] = state

    def sync(self) -> None:
        """Barrier with failure propagation: if any rank died, raise."""
        if self._failure.is_set():
            raise CommError("a peer rank failed; aborting collective")
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError:
            raise CommError("a peer rank failed; aborting collective") from None

    def abort(self) -> None:
        """Mark the run failed and release everyone stuck in a barrier."""
        self._failure.set()
        self.barrier.abort()

    def total_stats(self) -> CommStats:
        total = CommStats()
        for s in self.stats:
            total.messages += s.messages
            total.bytes_sent += s.bytes_sent
            total.halo_exchanges += s.halo_exchanges
            total.reductions += s.reductions
        return total

    def per_rank_stats(self) -> List[dict]:
        """Every rank's counters in ascending rank order (deterministic
        — each rank only ever writes its own :class:`CommStats`)."""
        return [s.as_dict() for s in self.stats]

    def traffic_matrix(self) -> np.ndarray:
        """(size, size) static bytes-per-step estimate between rank
        pairs, from the halo schedules: kinematic halo (4 fields) plus
        nodal-sum completion (3 fields) — the map a communication-
        topology study would draw."""
        matrix = np.zeros((self.size, self.size))
        for sub in self.subdomains:
            for src, idx in sub.recv_nodes.items():
                matrix[src, sub.rank] += 4 * idx.size * _FLOAT_BYTES
            for peer, idx in sub.shared_nodes.items():
                matrix[peer, sub.rank] += 3 * idx.size * _FLOAT_BYTES
        return matrix


class TyphonComms:
    """One rank's communication endpoint (plugs into the comms seam).

    With a compiled :class:`~repro.parallel.commplan.CommPlan` (the
    default wiring — ``DistributedHydro(comm_plan="packed")``) every
    exchange runs the packed single-sync protocol: gather the halo
    values into this rank's preallocated staging buffer, one barrier,
    read the peers' packed blocks.  ``plan=None`` keeps the legacy
    per-field/whole-array two-sync protocol (retained for one release
    as the bit-identity reference — see docs/PARALLEL.md).

    Packed nodal-sum totals are returned as rows of a reused arena
    buffer: they stay valid until the *next-but-one* completion with
    the same field count (double-buffered by phase parity), which
    covers every caller in the step loop — long-lived results must be
    committed by copy, the same contract as the PR-1 kernel arena.
    """

    #: declares conformance to repro.parallel.interface.CommEndpoint
    __comm_endpoint__ = True

    def __init__(self, ctx: TyphonContext, sub: Subdomain, tracer=None,
                 plan: Optional[CommPlan] = None):
        self.ctx = ctx
        self.sub = sub
        self.rank = sub.rank
        self.size = ctx.size
        self.stats = ctx.stats[self.rank]
        #: optional :class:`~repro.telemetry.spans.Tracer`; when set,
        #: every exchange/reduction records a ``comm`` span on this
        #: rank's stream (the span covers the barrier waits too — in a
        #: trace, load imbalance shows up as long comm spans)
        self.tracer = tracer
        self.plan = plan
        #: collective-phase counter: parity selects the staging half /
        #: pslot row.  Advanced once per collective op on every rank —
        #: the op sequence is SPMD, so the counters agree globally.
        self._phase = 0
        if plan is not None:
            from ..perf.workspace import Workspace

            #: arena for the reusable nodal-sum totals buffers
            self._ws = Workspace()

    def comm_plan(self) -> Optional[CommPlan]:
        """This endpoint's compiled plan (None on the legacy path)."""
        return self.plan

    def _span(self, name: str):
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return _NULL_SPAN
        return tracer.span(name, cat="comm")

    # ------------------------------------------------------------------
    # packed-protocol helpers
    # ------------------------------------------------------------------
    def _my_region(self, section: str) -> np.ndarray:
        plan = self.plan
        return plan.region(self.ctx.staging[self.rank], section,
                           self._phase & 1)

    def _peer_region(self, peer: int, section: str) -> np.ndarray:
        plan = self.ctx.plans[peer]
        return plan.region(self.ctx.staging[peer], section,
                           self._phase & 1)

    def _slots(self) -> List[Optional[object]]:
        """Publication slots for a scalar collective: the phase-parity
        row on the packed path (single sync), the shared legacy row
        (framed by two syncs) otherwise."""
        if self.plan is None:
            return self.ctx.slots
        return self.ctx.pslots[self._phase & 1]

    def _finish_collective(self) -> None:
        """Close a scalar collective: advance the parity phase (packed)
        or drain the legacy barrier (slots free for reuse)."""
        if self.plan is None:
            self.ctx.sync()
        else:
            self._phase += 1

    # ------------------------------------------------------------------
    # kinematic halo exchange (before the viscosity kernel)
    # ------------------------------------------------------------------
    def exchange_kinematics(self, state) -> None:
        """Refresh ghost-only nodes' x, y, u, v from their owner ranks."""
        with self._span("typhon.exchange_kinematics"):
            self._exchange_kinematics(state)

    def _exchange_kinematics(self, state) -> None:
        ctx = self.ctx
        if self.plan is None:
            # Legacy path: publish state references, two syncs, one
            # fancy-indexed copy *per field* per neighbour.
            ctx.register_state(self.rank, state)
            ctx.sync()  # all states published and quiescent at t^n
            for src_rank, local_idx in self.sub.recv_nodes.items():
                src_state = ctx.states[src_rank]
                src_idx = ctx.subdomains[src_rank].send_nodes[self.rank]
                if src_idx.size != local_idx.size:
                    raise CommError(
                        f"halo schedule mismatch between ranks "
                        f"{self.rank} and {src_rank}"
                    )
                state.x[local_idx] = src_state.x[src_idx]
                state.y[local_idx] = src_state.y[src_idx]
                state.u[local_idx] = src_state.u[src_idx]
                state.v[local_idx] = src_state.v[src_idx]
                # Traffic is charged to the receiving rank's counters
                # (thread-safe: each rank only writes its own stats).
                self.stats.account(4 * src_idx.size, messages=4)
            self.stats.halo_exchanges += 1
            ctx.sync()  # copies complete before anyone advances
            return
        # Packed path: one (4, n) coalesced message per neighbour,
        # one sync.  The trailing barrier is unnecessary because the
        # next collective writes the opposite parity half.
        sec = self.plan.kin
        sec.pack(self._my_region("kin"), (state.x, state.y, state.u, state.v))
        ctx.sync()  # every rank's halo block staged
        for src_rank, local_idx in self.sub.recv_nodes.items():
            bx, by, bu, bv = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "kin"), (1, 1, 1, 1)
            )
            state.x[local_idx] = bx
            state.y[local_idx] = by
            state.u[local_idx] = bu
            state.v[local_idx] = bv
            self.stats.account(4 * local_idx.size)
        self.stats.halo_exchanges += 1
        self._phase += 1

    # ------------------------------------------------------------------
    # nodal sum completion (inside the acceleration kernel)
    # ------------------------------------------------------------------
    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]:
        """Complete partial nodal sums across ranks.

        ``arrays`` are this rank's per-node partial sums, accumulated
        from *owned* cells only.  Partials are combined in ascending
        rank order so every rank computes bit-identical totals for
        shared nodes.
        """
        with self._span("typhon.complete_node_arrays"):
            return self._complete_node_arrays(state, *arrays)

    def _complete_node_arrays(self, state, *partials: np.ndarray
                              ) -> Tuple[np.ndarray, ...]:
        ctx = self.ctx
        if self.plan is None:
            # Legacy path: full-array partial copies into the shared
            # slots, fresh zero totals every call, two syncs.
            ctx.slots[self.rank] = tuple(p.copy() for p in partials)
            ctx.sync()
            totals = tuple(np.zeros_like(p) for p in partials)
            ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
            for r in ranks:
                if r == self.rank:
                    for total, p in zip(totals, ctx.slots[self.rank]):
                        total += p
                else:
                    theirs = ctx.subdomains[r].shared_nodes[self.rank]
                    mine = self.sub.shared_nodes[r]
                    for total, p in zip(totals, ctx.slots[r]):
                        total[mine] += p[theirs]
                    self.stats.account(len(partials) * mine.size)
            self.stats.halo_exchanges += 1
            ctx.sync()  # slots free for reuse
            return totals
        # Packed path: stage only the *shared-node* values (one
        # coalesced message per peer), one sync, fold into reused
        # arena totals.  The fold visits the identical ascending rank
        # sequence with this rank's own partial in its sorted position,
        # so shared nodes accumulate in the legacy order bit for bit.
        parity = self._phase & 1
        sec = self.plan.nodesum
        sec.pack(self._my_region("nodesum"), partials)
        ctx.sync()  # every rank's shared-node block staged
        nf = len(partials)
        buf = self._ws.zeros(f"commplan.totals{nf}.{parity}",
                             (nf, partials[0].shape[0]))
        totals = tuple(buf[i] for i in range(nf))
        widths = _widths(partials)
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, partials):
                    total += p
            else:
                mine = self.sub.shared_nodes[r]
                blocks = sec.peer_blocks(
                    r, self._peer_region(r, "nodesum"), widths
                )
                for total, block in zip(totals, blocks):
                    total[mine] += block
                self.stats.account(nf * mine.size)
        self.stats.halo_exchanges += 1
        self._phase += 1
        return totals

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Owned-cell scatter + deterministic cross-rank completion."""
        owned = self.sub.owned_cell_mask[:, None]
        node_fx = state.scatter_to_nodes(np.where(owned, fx, 0.0))
        node_fy = state.scatter_to_nodes(np.where(owned, fy, 0.0))
        mass = state.scatter_to_nodes(
            np.where(owned, state.corner_mass, 0.0)
        )
        return self.complete_node_arrays(state, node_fx, node_fy, mass)

    # ------------------------------------------------------------------
    # the single global reduction (getdt)
    # ------------------------------------------------------------------
    def reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Global minimum-dt candidate, with the cell id globalised."""
        with self._span("typhon.reduce_dt"):
            return self._reduce_dt(candidates)

    def _reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        dt, reason, cell = min(candidates, key=lambda c: c[0])
        gcell = int(self.sub.cell_global[cell]) if cell >= 0 else -1
        ctx = self.ctx
        slots = self._slots()
        slots[self.rank] = (dt, reason, gcell, self.rank)
        ctx.sync()
        best = min(slots, key=lambda c: (c[0], c[3]))  # type: ignore[index]
        self.stats.reductions += 1
        self.stats.account(DT_REDUCE_VALUES)
        self._finish_collective()
        return (best[0], best[1], best[2])  # type: ignore[index]

    def allreduce_max(self, value: float) -> float:
        """Global maximum of a scalar across ranks."""
        with self._span("typhon.allreduce_max"):
            return self._allreduce_max(value)

    def _allreduce_max(self, value: float) -> float:
        ctx = self.ctx
        slots = self._slots()
        slots[self.rank] = float(value)
        ctx.sync()
        result = max(slots)      # type: ignore[type-var]
        self.stats.reductions += 1
        self.stats.account(1)
        self._finish_collective()
        return float(result)     # type: ignore[arg-type]

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global sum of a small vector across ranks."""
        with self._span("typhon.allreduce_sum"):
            return self._allreduce_combine(values, np.add)

    def allreduce_min(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global minimum of a small vector across ranks."""
        with self._span("typhon.allreduce_min"):
            return self._allreduce_combine(values, np.minimum)

    def _allreduce_combine(self, values: np.ndarray, op) -> np.ndarray:
        # Combined by a left fold in ascending rank order on every rank
        # — the same fold the processes backend's root reduce performs —
        # so all backends produce bit-identical results.
        ctx = self.ctx
        slots = self._slots()
        slots[self.rank] = np.array(values, dtype=np.float64)
        ctx.sync()
        result = np.array(slots[0], dtype=np.float64)
        for r in range(1, self.size):
            result = op(result, slots[r])
        self.stats.reductions += 1
        self.stats.account(result.size)
        self._finish_collective()
        return result

    # ------------------------------------------------------------------
    def owned_cell_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.owned_cell_mask

    # ------------------------------------------------------------------
    # cell-field halo (the distributed ALE remap)
    # ------------------------------------------------------------------
    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Refresh the ghost-cell rows of per-cell arrays from their
        owner ranks (every rank must pass the same array list)."""
        with self._span("typhon.exchange_cell_arrays"):
            self._exchange_cell_arrays(*arrays)

    def _exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        ctx = self.ctx
        if self.plan is None:
            # Legacy path: publish whole-array references, two syncs,
            # one fancy-indexed copy per array per neighbour.
            ctx.slots[self.rank] = arrays
            ctx.sync()
            for src_rank, local_idx in self.sub.recv_cells.items():
                src_idx = ctx.subdomains[src_rank].send_cells[self.rank]
                src_arrays = ctx.slots[src_rank]
                nvalues = 0
                for mine, theirs in zip(arrays, src_arrays):
                    mine[local_idx] = theirs[src_idx]
                    nvalues += local_idx.size * (
                        1 if mine.ndim == 1 else mine.shape[1]
                    )
                self.stats.account(nvalues, messages=len(arrays))
            self.stats.halo_exchanges += 1
            ctx.sync()
            return
        # Packed path: all cell fields coalesce into one block per
        # neighbour (scalars and (n, 4) corner fields interleaved by
        # the plan's per-array widths), one sync.
        sec = self.plan.cell
        sec.pack(self._my_region("cell"), arrays)
        ctx.sync()  # every rank's ghost-cell block staged
        widths = _widths(arrays)
        for src_rank, local_idx in self.sub.recv_cells.items():
            blocks = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "cell"), widths
            )
            nvalues = 0
            for mine, block in zip(arrays, blocks):
                mine[local_idx] = block
                nvalues += block.size
            self.stats.account(nvalues)
        self.stats.halo_exchanges += 1
        self._phase += 1

    def exchange_cell_fields(self, state) -> None:
        """Refresh ghost thermodynamics and masses before a remap."""
        self.exchange_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_sides()

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_mask
