"""Simulated Typhon — BookLeaf's unstructured-mesh comm library.

The real BookLeaf communicates through Typhon, a thin distributed
communication library over MPI that provides halo exchanges and
collectives for unstructured meshes.  MPI is not available in this
environment, so this module reimplements Typhon's semantics over
threads in one process: each rank runs the *unchanged* SPMD hydro code
in its own thread, and the exchange points synchronise through
barriers and move data by direct array copies between rank states.

Because numpy releases the GIL inside its kernels, the rank threads
genuinely overlap, but the purpose here is *semantic* fidelity plus
instrumentation, not speed: every exchange and reduction is counted
(messages and bytes), giving the performance model measured
communication volumes exactly where the real mini-app would have
MPI traffic — two halo exchanges and one global reduction per step
(paper Section IV-A).

Determinism: partial nodal sums are combined in ascending rank order
on every rank, so shared interface nodes receive *bit-identical*
values everywhere and a decomposed run tracks the serial one to
floating-point round-off only.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.timestep import Candidate
from ..utils.errors import CommError
from .halo import Subdomain

_FLOAT_BYTES = 8

#: shared no-op context for untraced comm calls (stateless, reusable)
_NULL_SPAN = nullcontext()


@dataclass
class CommStats:
    """Per-rank traffic counters (the perf model's inputs)."""

    messages: int = 0
    bytes_sent: int = 0
    halo_exchanges: int = 0
    reductions: int = 0

    def account(self, nvalues: int) -> None:
        self.messages += 1
        self.bytes_sent += nvalues * _FLOAT_BYTES

    def as_dict(self) -> dict:
        """JSON-ready counters (the run report's ``comm`` entries)."""
        return {
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "halo_exchanges": self.halo_exchanges,
            "reductions": self.reductions,
        }


class TyphonContext:
    """Shared coordination state for all ranks of one run."""

    def __init__(self, subdomains: List[Subdomain]):
        self.subdomains = subdomains
        self.size = len(subdomains)
        self.barrier = threading.Barrier(self.size)
        #: per-rank published data for the current collective phase
        self.slots: List[Optional[object]] = [None] * self.size
        #: per-rank live state references (registered by the driver)
        self.states: List[Optional[object]] = [None] * self.size
        self.stats: List[CommStats] = [CommStats() for _ in range(self.size)]
        self._failure = threading.Event()

    def register_state(self, rank: int, state) -> None:
        self.states[rank] = state

    def sync(self) -> None:
        """Barrier with failure propagation: if any rank died, raise."""
        if self._failure.is_set():
            raise CommError("a peer rank failed; aborting collective")
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError:
            raise CommError("a peer rank failed; aborting collective") from None

    def abort(self) -> None:
        """Mark the run failed and release everyone stuck in a barrier."""
        self._failure.set()
        self.barrier.abort()

    def total_stats(self) -> CommStats:
        total = CommStats()
        for s in self.stats:
            total.messages += s.messages
            total.bytes_sent += s.bytes_sent
            total.halo_exchanges += s.halo_exchanges
            total.reductions += s.reductions
        return total

    def per_rank_stats(self) -> List[dict]:
        """Every rank's counters in ascending rank order (deterministic
        — each rank only ever writes its own :class:`CommStats`)."""
        return [s.as_dict() for s in self.stats]

    def traffic_matrix(self) -> np.ndarray:
        """(size, size) static bytes-per-step estimate between rank
        pairs, from the halo schedules: kinematic halo (4 fields) plus
        nodal-sum completion (3 fields) — the map a communication-
        topology study would draw."""
        matrix = np.zeros((self.size, self.size))
        for sub in self.subdomains:
            for src, idx in sub.recv_nodes.items():
                matrix[src, sub.rank] += 4 * idx.size * _FLOAT_BYTES
            for peer, idx in sub.shared_nodes.items():
                matrix[peer, sub.rank] += 3 * idx.size * _FLOAT_BYTES
        return matrix


class TyphonComms:
    """One rank's communication endpoint (plugs into the comms seam)."""

    #: declares conformance to repro.parallel.interface.CommEndpoint
    __comm_endpoint__ = True

    def __init__(self, ctx: TyphonContext, sub: Subdomain, tracer=None):
        self.ctx = ctx
        self.sub = sub
        self.rank = sub.rank
        self.size = ctx.size
        self.stats = ctx.stats[self.rank]
        #: optional :class:`~repro.telemetry.spans.Tracer`; when set,
        #: every exchange/reduction records a ``comm`` span on this
        #: rank's stream (the span covers the barrier waits too — in a
        #: trace, load imbalance shows up as long comm spans)
        self.tracer = tracer

    def _span(self, name: str):
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return _NULL_SPAN
        return tracer.span(name, cat="comm")

    # ------------------------------------------------------------------
    # kinematic halo exchange (before the viscosity kernel)
    # ------------------------------------------------------------------
    def exchange_kinematics(self, state) -> None:
        """Refresh ghost-only nodes' x, y, u, v from their owner ranks."""
        with self._span("typhon.exchange_kinematics"):
            self._exchange_kinematics(state)

    def _exchange_kinematics(self, state) -> None:
        ctx = self.ctx
        ctx.register_state(self.rank, state)
        ctx.sync()  # all states published and quiescent at t^n
        for src_rank, local_idx in self.sub.recv_nodes.items():
            src_state = ctx.states[src_rank]
            src_idx = ctx.subdomains[src_rank].send_nodes[self.rank]
            if src_idx.size != local_idx.size:
                raise CommError(
                    f"halo schedule mismatch between ranks "
                    f"{self.rank} and {src_rank}"
                )
            state.x[local_idx] = src_state.x[src_idx]
            state.y[local_idx] = src_state.y[src_idx]
            state.u[local_idx] = src_state.u[src_idx]
            state.v[local_idx] = src_state.v[src_idx]
            # Traffic is charged to the receiving rank's counters
            # (thread-safe: each rank only writes its own stats).
            self.stats.account(4 * src_idx.size)
        self.stats.halo_exchanges += 1
        ctx.sync()  # copies complete before anyone advances

    # ------------------------------------------------------------------
    # nodal sum completion (inside the acceleration kernel)
    # ------------------------------------------------------------------
    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]:
        """Complete partial nodal sums across ranks.

        ``arrays`` are this rank's per-node partial sums, accumulated
        from *owned* cells only.  Partials are combined in ascending
        rank order so every rank computes bit-identical totals for
        shared nodes.
        """
        with self._span("typhon.complete_node_arrays"):
            return self._complete_node_arrays(state, *arrays)

    def _complete_node_arrays(self, state, *partials: np.ndarray
                              ) -> Tuple[np.ndarray, ...]:
        ctx = self.ctx
        ctx.slots[self.rank] = tuple(p.copy() for p in partials)
        ctx.sync()
        totals = tuple(np.zeros_like(p) for p in partials)
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, ctx.slots[self.rank]):
                    total += p
            else:
                theirs = ctx.subdomains[r].shared_nodes[self.rank]
                mine = self.sub.shared_nodes[r]
                for total, p in zip(totals, ctx.slots[r]):
                    total[mine] += p[theirs]
                self.stats.account(len(partials) * mine.size)
        self.stats.halo_exchanges += 1
        ctx.sync()  # slots free for reuse
        return totals

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Owned-cell scatter + deterministic cross-rank completion."""
        owned = self.sub.owned_cell_mask[:, None]
        node_fx = state.scatter_to_nodes(np.where(owned, fx, 0.0))
        node_fy = state.scatter_to_nodes(np.where(owned, fy, 0.0))
        mass = state.scatter_to_nodes(
            np.where(owned, state.corner_mass, 0.0)
        )
        return self.complete_node_arrays(state, node_fx, node_fy, mass)

    # ------------------------------------------------------------------
    # the single global reduction (getdt)
    # ------------------------------------------------------------------
    def reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Global minimum-dt candidate, with the cell id globalised."""
        with self._span("typhon.reduce_dt"):
            return self._reduce_dt(candidates)

    def _reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        dt, reason, cell = min(candidates, key=lambda c: c[0])
        gcell = int(self.sub.cell_global[cell]) if cell >= 0 else -1
        ctx = self.ctx
        ctx.slots[self.rank] = (dt, reason, gcell, self.rank)
        ctx.sync()
        best = min(ctx.slots, key=lambda c: (c[0], c[3]))  # type: ignore[index]
        self.stats.reductions += 1
        self.stats.account(1)
        ctx.sync()
        return (best[0], best[1], best[2])  # type: ignore[index]

    def allreduce_max(self, value: float) -> float:
        """Global maximum of a scalar across ranks."""
        with self._span("typhon.allreduce_max"):
            return self._allreduce_max(value)

    def _allreduce_max(self, value: float) -> float:
        ctx = self.ctx
        ctx.slots[self.rank] = float(value)
        ctx.sync()
        result = max(ctx.slots)  # type: ignore[type-var]
        self.stats.reductions += 1
        self.stats.account(1)
        ctx.sync()
        return float(result)     # type: ignore[arg-type]

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global sum of a small vector across ranks."""
        with self._span("typhon.allreduce_sum"):
            return self._allreduce_combine(values, np.add)

    def allreduce_min(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global minimum of a small vector across ranks."""
        with self._span("typhon.allreduce_min"):
            return self._allreduce_combine(values, np.minimum)

    def _allreduce_combine(self, values: np.ndarray, op) -> np.ndarray:
        # Combined by a left fold in ascending rank order on every rank
        # — the same fold the processes backend's root reduce performs —
        # so all backends produce bit-identical results.
        ctx = self.ctx
        ctx.slots[self.rank] = np.array(values, dtype=np.float64)
        ctx.sync()
        result = np.array(ctx.slots[0], dtype=np.float64)
        for r in range(1, self.size):
            result = op(result, ctx.slots[r])
        self.stats.reductions += 1
        self.stats.account(result.size)
        ctx.sync()
        return result

    # ------------------------------------------------------------------
    def owned_cell_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.owned_cell_mask

    # ------------------------------------------------------------------
    # cell-field halo (the distributed ALE remap)
    # ------------------------------------------------------------------
    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Refresh the ghost-cell rows of per-cell arrays from their
        owner ranks (every rank must pass the same array list)."""
        with self._span("typhon.exchange_cell_arrays"):
            self._exchange_cell_arrays(*arrays)

    def _exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        ctx = self.ctx
        ctx.slots[self.rank] = arrays
        ctx.sync()
        for src_rank, local_idx in self.sub.recv_cells.items():
            src_idx = ctx.subdomains[src_rank].send_cells[self.rank]
            src_arrays = ctx.slots[src_rank]
            nvalues = 0
            for mine, theirs in zip(arrays, src_arrays):
                mine[local_idx] = theirs[src_idx]
                nvalues += local_idx.size * (
                    1 if mine.ndim == 1 else mine.shape[1]
                )
            self.stats.account(nvalues)
        self.stats.halo_exchanges += 1
        ctx.sync()

    def exchange_cell_fields(self, state) -> None:
        """Refresh ghost thermodynamics and masses before a remap."""
        self.exchange_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_sides()

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_mask
