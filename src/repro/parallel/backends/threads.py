"""The ``threads`` backend: every rank is a thread in this process.

This is the original simulated-Typhon execution model (see
:mod:`repro.parallel.typhon`): rank threads run the unchanged SPMD
hydro loop and synchronise through in-process barriers; halo exchanges
are direct array copies between the rank states.  Numpy releases the
GIL inside its kernels so the ranks overlap there, but the Python-level
glue between kernels serialises on the GIL — which is exactly what the
``processes`` backend exists to remove.

Failure handling: worker exceptions are collected through a
thread-safe queue as ``(rank, exc)`` pairs (never a shared dict — rank
threads must not race on the error container), the Typhon context is
aborted so every peer blocked in a barrier wakes up, and the first
*primary* failure (lowest rank, preferring real errors over the
secondary :class:`~repro.utils.errors.CommError` cascades the abort
causes) is re-raised chained to the original traceback.
"""

from __future__ import annotations

import queue
import threading
import warnings
from typing import List, Optional, Tuple

from ...core.hydro import Hydro
from ...utils.errors import BookLeafError, CommError, StalledRankWarning
from ...utils.timers import TimerRegistry
from ..halo import local_state
from ..interface import BackendRun
from ..typhon import TyphonComms, TyphonContext


def pick_primary_failure(errors: List[Tuple[int, BaseException]]
                         ) -> Tuple[int, BaseException]:
    """The failure to report: a real error beats the CommError cascade
    it caused on the other ranks; ties break to the lowest rank."""
    return min(errors, key=lambda e: (isinstance(e[1], CommError), e[0]))


def raise_rank_failure(rank: int, exc: BaseException) -> None:
    """Wrap a rank's failure with its rank context, chaining the
    original traceback (``from exc`` keeps the full remote stack)."""
    if isinstance(exc, BookLeafError):
        message = f"rank {rank} failed: {exc}"
    else:
        # Non-BookLeaf errors keep their type visible in the message —
        # the wrapper must not launder a TypeError into a hydro error.
        message = f"rank {rank} failed: [{type(exc).__name__}] {exc}"
    raise BookLeafError(message) from exc


class ThreadsBackend:
    """Launch one thread per rank inside this process."""

    name = "threads"

    # ------------------------------------------------------------------
    def prepare(self, driver) -> None:
        """Build the shared Typhon context and the per-rank hydros.

        Everything lives on the driver (``driver.context``,
        ``driver.hydros``, ``driver.tracers``) — the in-process rank
        objects are part of this backend's public surface: tests and
        embedding code attach observers to ``driver.hydros[0]``.
        """
        setup = driver.setup
        driver.context = TyphonContext(driver.subdomains,
                                       plans=driver.compiled_plans())
        if driver.trace:
            import time

            from ...telemetry.spans import Tracer

            epoch = time.perf_counter_ns()
            driver.tracers = [Tracer(rank=r, epoch_ns=epoch)
                              for r in range(driver.nranks)]
        for sub in driver.subdomains:
            state = local_state(sub, setup.state)
            tracer = driver.tracers[sub.rank] if driver.tracers else None
            comms = TyphonComms(driver.context, sub, tracer=tracer,
                                plan=driver.context.plans[sub.rank],
                                mode=driver.comm_plan)
            driver.context.register_state(sub.rank, state)
            timers = TimerRegistry()
            timers.tracer = tracer
            driver.hydros.append(Hydro(
                state, setup.table, setup.controls,
                timers=timers, comms=comms,
                probe=driver.build_probe(sub.rank,
                                         cell_global=sub.cell_global),
            ))

    # ------------------------------------------------------------------
    def execute(self, driver, max_steps: Optional[int] = None) -> BackendRun:
        step_series = None
        if driver.collect_step_series:
            from ...telemetry.report import StepSeries

            step_series = StepSeries()
            driver.hydros[0].observers.append(step_series)

        # Heartbeats: one board write per rank per step (always on —
        # two float stores); the stall monitor only runs when a
        # watchdog timeout was configured.
        from ...metrics.watchdog import (
            Heartbeat, HeartbeatBoard, Watchdog, stall_message,
        )

        board = HeartbeatBoard.allocate(driver.nranks)
        for rank, hydro in enumerate(driver.hydros):
            hydro.observers.append(Heartbeat(board, rank))
        watchdog = None
        if driver.watchdog_timeout is not None:
            watchdog = Watchdog(
                board, driver.watchdog_timeout,
                on_stall=lambda stalled: driver.context.abort(),
            )
            watchdog.start()

        failures: "queue.Queue[Tuple[int, BaseException]]" = queue.Queue()

        def worker(rank: int) -> None:
            try:
                driver.hydros[rank].run(max_steps=max_steps)
            except BaseException as exc:  # propagate to the caller
                failures.put((rank, exc))
                driver.context.abort()

        # Daemon threads: a watchdog-confirmed stalled rank may be
        # wedged forever, and the process must still be able to exit
        # after we abandon it below.
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"rank{r}",
                             daemon=True)
            for r in range(driver.nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            while t.is_alive():
                t.join(timeout=0.1)
                if watchdog is not None and watchdog.stalled is not None \
                        and int(t.name[4:]) in watchdog.stalled:
                    break  # abandon the wedged rank's thread
        if watchdog is not None:
            watchdog.stop()

        errors: List[Tuple[int, BaseException]] = []
        while True:
            try:
                errors.append(failures.get_nowait())
            except queue.Empty:
                break

        if errors or (watchdog is not None and watchdog.stalled is not None):
            for hydro in driver.hydros:
                if hydro.probe is not None:
                    hydro.probe.close()  # the failure path skips finish()
        if watchdog is not None and watchdog.stalled is not None:
            # Warn from the main thread (daemon-thread warnings are
            # invisible to pytest.warns and user filters), then raise:
            # the surviving ranks only carry the secondary CommError
            # cascade — the stall itself is the primary failure.
            message = stall_message(watchdog.stalled, board,
                                    driver.watchdog_timeout)
            warnings.warn(message, StalledRankWarning)
            raise BookLeafError(f"run aborted: {message}")
        if errors:
            raise_rank_failure(*pick_primary_failure(errors))

        steps = {h.nstep for h in driver.hydros}
        times = {round(h.time, 14) for h in driver.hydros}
        if len(steps) != 1 or len(times) != 1:
            raise BookLeafError(
                f"ranks desynchronised: steps={steps} times={times}"
            )
        probe = driver.hydros[0].probe
        return BackendRun(
            backend=self.name,
            nranks=driver.nranks,
            nstep=driver.hydros[0].nstep,
            time=driver.hydros[0].time,
            states=[h.state for h in driver.hydros],
            timers=[h.timers for h in driver.hydros],
            spans=[t.spans for t in driver.tracers] if driver.tracers
                  else [[] for _ in range(driver.nranks)],
            comm_per_rank=driver.context.per_rank_stats(),
            step_rows=step_series.rows if step_series else None,
            metrics_rows=probe.rows if probe is not None else None,
            metrics=probe.registry if probe is not None else None,
        )
