"""Pluggable execution backends behind the unified run API.

A *backend* decides where the ranks of a decomposed run execute —
inline (``serial``), as threads of this process (``threads``), or as
one forked OS process per rank over shared memory (``processes``) —
while the SPMD hydro loop and the communication seam
(:mod:`repro.parallel.interface`) stay identical.  Select one through
``repro.api.RunConfig(backend=...)`` or ``bookleaf run --backend``.

============  =============================  ==========================
backend       rank execution                 true parallelism
============  =============================  ==========================
``serial``    the calling thread             none (1 rank)
``threads``   one thread per rank            numpy kernels only (GIL)
``processes`` one forked process per rank    full (shared-memory halos)
============  =============================  ==========================
"""

from __future__ import annotations

from typing import Dict, Type

from ...utils.errors import BookLeafError
from .processes import ProcessComms, ProcessesBackend, RemoteRankError
from .serial import SerialBackend
from .threads import ThreadsBackend

#: the backend registry — every later scaling layer (sharding, async
#: overlap, real MPI) plugs in here
BACKENDS: Dict[str, type] = {
    SerialBackend.name: SerialBackend,
    ThreadsBackend.name: ThreadsBackend,
    ProcessesBackend.name: ProcessesBackend,
}


def available_backends() -> tuple:
    """The registered backend names, in registration order."""
    return tuple(BACKENDS)


def get_backend(name: str):
    """Instantiate a backend by name (raises on unknown names)."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise BookLeafError(
            f"unknown comm backend {name!r}; "
            f"available: {', '.join(BACKENDS)}"
        ) from None
    return cls()


__all__ = [
    "BACKENDS",
    "available_backends",
    "get_backend",
    "SerialBackend",
    "ThreadsBackend",
    "ProcessesBackend",
    "ProcessComms",
    "RemoteRankError",
]
