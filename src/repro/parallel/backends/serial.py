"""The ``serial`` backend: one rank, no decomposition, ``NullComms``.

Exists so the :mod:`repro.api` façade drives serial, thread-parallel
and process-parallel runs through one code path: a serial run is a
"decomposed" run with one rank whose communication endpoint is the
do-nothing :class:`~repro.core.comms.NullComms`.  No partitioning, no
halos, no barriers — the hydro loop is byte-for-byte the serial one.
"""

from __future__ import annotations

from typing import Optional

from ...core.comms import NullComms
from ...core.hydro import Hydro
from ...utils.errors import BookLeafError
from ...utils.timers import TimerRegistry
from ..interface import BackendRun


class SerialBackend:
    """Run the single rank inline on the calling thread."""

    name = "serial"

    def prepare(self, driver) -> None:
        if driver.nranks != 1:
            raise BookLeafError(
                f"the serial backend runs exactly 1 rank, not "
                f"{driver.nranks}; pick backend='threads' or 'processes'"
            )
        setup = driver.setup
        if driver.trace:
            from ...telemetry.spans import Tracer

            driver.tracers = [Tracer(rank=0)]
        timers = TimerRegistry(
            trace_allocations=getattr(driver, "trace_allocations", False)
        )
        timers.tracer = driver.tracers[0] if driver.tracers else None
        logger = None
        if getattr(driver, "log_every", 0):
            from ...utils.log import StepLogger

            logger = StepLogger(every=driver.log_every)
        driver.hydros.append(Hydro(
            setup.state, setup.table, setup.controls,
            timers=timers, logger=logger, comms=NullComms(),
            probe=driver.build_probe(0),
        ))

    def execute(self, driver, max_steps: Optional[int] = None) -> BackendRun:
        hydro = driver.hydros[0]
        step_series = None
        if driver.collect_step_series:
            from ...telemetry.report import StepSeries

            step_series = StepSeries()
            hydro.observers.append(step_series)
        try:
            hydro.run(max_steps=max_steps)
        except BaseException:
            if hydro.probe is not None:
                hydro.probe.close()  # the failure path skips finish()
            raise
        probe = hydro.probe
        return BackendRun(
            backend=self.name,
            nranks=1,
            nstep=hydro.nstep,
            time=hydro.time,
            states=[hydro.state],
            timers=[hydro.timers],
            spans=[driver.tracers[0].spans] if driver.tracers else [[]],
            comm_per_rank=[],
            step_rows=step_series.rows if step_series else None,
            metrics_rows=probe.rows if probe is not None else None,
            metrics=probe.registry if probe is not None else None,
        )
