"""The ``processes`` backend: one OS process per rank over shared memory.

The threads backend overlaps rank work only inside GIL-releasing numpy
kernels; everything else serialises.  This backend runs each rank's
*unchanged* SPMD hydro loop in its own forked process, so the ranks
genuinely execute in parallel, and reimplements the Typhon exchange
semantics over three primitives:

* **mailboxes** — one ``multiprocessing.shared_memory`` segment per
  rank, sized for the largest publication that rank ever makes.  At
  every exchange point each rank *publishes* (copies) the arrays the
  seam call names into its own mailbox, waits on the barrier, then
  index-copies the windows it needs out of its peers' mailboxes and
  waits again — exactly the ``slots`` protocol of the threads backend,
  with the same ascending-rank summation order, so a processes run is
  **bit-identical** to a threads run of the same problem.
* **a barrier** — ``multiprocessing.Barrier`` replaces the
  ``threading.Barrier``; a failure event + ``Barrier.abort()`` give the
  same fail-fast collective semantics.
* **pipes** — the global dt reduction (and the remap's collective skip
  decision) is a gather/broadcast over per-rank ``Pipe`` pairs rooted
  at rank 0, in ascending rank order.

Per-rank :class:`~repro.parallel.typhon.CommStats`, kernel timers and
trace spans are marshalled back over a result queue when the ranks
finish and merged with the existing deterministic rank-order rules;
final states are read back out of the mailboxes by the parent, so
``gather`` is backend-agnostic.

Requires the ``fork`` start method (the run context — problem setup,
subdomains, schedules — is inherited, never pickled), i.e. Linux or
macOS-with-fork.  See docs/PARALLEL.md for the layout diagram.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import warnings
from contextlib import nullcontext
from multiprocessing import shared_memory
from threading import BrokenBarrierError
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.hydro import Hydro
from ...core.timestep import Candidate
from ...metrics.watchdog import (
    BOARD_COLS, Heartbeat, HeartbeatBoard, stall_message,
)
from ...utils.errors import BookLeafError, CommError, StalledRankWarning
from ...utils.timers import TimerRegistry
from ..commplan import CommPlan, _widths, compile_plans
from ..halo import Subdomain, local_state
from ..interface import BackendRun
from ..typhon import DT_REDUCE_VALUES, CommStats
from .threads import pick_primary_failure, raise_rank_failure

_FLOAT_BYTES = 8

#: shared no-op context for untraced comm calls (mirrors typhon.py)
_NULL_SPAN = nullcontext()

#: the final-state publication: every field ``gather`` reads, in a
#: fixed order, as (name, kind, trailing-dim) — kind sizes the leading
#: axis from the subdomain's local mesh (``node`` -> nnode,
#: ``cell`` -> ncell)
STATE_FIELDS: Tuple[Tuple[str, str, int], ...] = (
    ("x", "node", 1), ("y", "node", 1),
    ("u", "node", 1), ("v", "node", 1),
    ("rho", "cell", 1), ("e", "cell", 1), ("p", "cell", 1),
    ("cs2", "cell", 1), ("q", "cell", 1),
    ("cell_mass", "cell", 1), ("volume", "cell", 1),
    ("corner_mass", "cell", 4), ("corner_volume", "cell", 4),
)


class RemoteRankError(BookLeafError):
    """A failure that happened inside a rank process.

    Tracebacks cannot cross a process boundary as live objects, so the
    child formats its traceback and the parent chains this carrier —
    the remote stack stays readable in the exception report.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        self.remote_traceback = remote_traceback
        if remote_traceback:
            message = (f"{message}\n--- remote traceback ---\n"
                       f"{remote_traceback.rstrip()}")
        super().__init__(message)


def _mailbox_doubles(sub: Subdomain,
                     plan: Optional[CommPlan] = None) -> int:
    """Mailbox capacity (float64 slots) for one rank.

    With a compiled plan the mailbox is exactly the plan's
    double-buffered packed staging — halo-proportional, typically
    O(√ncell) — because final states travel over the result queue.
    On the legacy path the mailbox holds full-array publications: the
    largest is the final state (4·nnode + 15·ncell) with a margin of
    one nodal field set guarding future seam growth.
    """
    if plan is not None:
        return plan.staging_doubles()
    nnode, ncell = sub.mesh.nnode, sub.mesh.ncell
    return 8 * nnode + 15 * ncell


class _ProcessRunContext:
    """Everything the rank processes share, created pre-fork.

    Fork semantics are load-bearing: children inherit this object (the
    setup, subdomains and schedules are never pickled); only the
    synchronisation primitives and shared segments are truly shared.
    """

    def __init__(self, driver, max_steps: Optional[int]):
        ctx = mp.get_context("fork")
        self.setup = driver.setup
        self.subdomains: List[Subdomain] = driver.subdomains
        self.size = driver.nranks
        self.max_steps = max_steps
        self.trace = driver.trace
        self.collect_steps = driver.collect_step_series
        self.build_probe = driver.build_probe
        self.watchdog_timeout = driver.watchdog_timeout
        self.epoch_ns = time.perf_counter_ns()
        #: compiled packed-exchange layouts (None → legacy protocol)
        self.plans: Optional[List[CommPlan]] = (
            driver.compiled_plans() if driver.comm_plan else None
        )
        self.barrier = ctx.Barrier(self.size)
        self.failure = ctx.Event()
        #: SimpleQueue: the put is synchronous, so a failing child can
        #: os._exit right after reporting without losing the record
        self.errors = ctx.SimpleQueue()
        self.results: mp.Queue = ctx.Queue()
        #: rank 0 holds the root end of one duplex pipe per peer rank
        self.root_conns: Dict[int, object] = {}
        self.leaf_conns: Dict[int, object] = {}
        for r in range(1, self.size):
            root, leaf = ctx.Pipe(duplex=True)
            self.root_conns[r] = root
            self.leaf_conns[r] = leaf
        self.segments: List[shared_memory.SharedMemory] = [
            shared_memory.SharedMemory(
                create=True,
                size=_mailbox_doubles(
                    sub, self.plans[sub.rank] if self.plans else None
                ) * _FLOAT_BYTES,
            )
            for sub in self.subdomains
        ]
        # Heartbeat board: one shared (nranks, 2) float64 segment the
        # ranks beat into and the parent's stall monitor polls
        # (CLOCK_MONOTONIC is system-wide, so the stamps compare across
        # processes).  Launch-stamped pre-fork.
        self.heartbeat_seg = shared_memory.SharedMemory(
            create=True, size=self.size * BOARD_COLS * _FLOAT_BYTES
        )
        self.heartbeat_board().launch()
        self._ctx = ctx

    # ------------------------------------------------------------------
    def mailbox(self, rank: int) -> np.ndarray:
        seg = self.segments[rank]
        return np.ndarray(
            (seg.size // _FLOAT_BYTES,), dtype=np.float64, buffer=seg.buf
        )

    def heartbeat_board(self) -> HeartbeatBoard:
        """A view of the shared heartbeat segment (caller must drop the
        view — ``board.array = None`` — before interpreter teardown in
        the children, like the mailboxes)."""
        return HeartbeatBoard(np.ndarray(
            (self.size, BOARD_COLS), dtype=np.float64,
            buffer=self.heartbeat_seg.buf,
        ))

    def close_foreign_pipe_ends(self, rank: int) -> None:
        """Drop the pipe ends this rank does not own (fork duplicated
        every fd into every child; unowned copies would defeat EOF
        detection and leak descriptors)."""
        if rank != 0:
            for conn in self.root_conns.values():
                conn.close()
        for r, conn in self.leaf_conns.items():
            if r != rank:
                conn.close()

    # ------------------------------------------------------------------
    # collective semantics (mirrors TyphonContext.sync/abort)
    # ------------------------------------------------------------------
    def sync(self) -> None:
        if self.failure.is_set():
            raise CommError("a peer rank failed; aborting collective")
        try:
            self.barrier.wait()
        except BrokenBarrierError:
            raise CommError("a peer rank failed; aborting collective") from None

    def abort(self) -> None:
        self.failure.set()
        try:
            self.barrier.abort()
        except Exception:
            pass

    def recv(self, conn) -> object:
        """Blocking pipe receive that fails fast when a peer died.

        A closed pipe (the peer process is gone) is a *secondary*
        symptom, so it surfaces as :class:`CommError` — failure
        attribution then points at the rank that actually died.
        """
        try:
            while not conn.poll(0.2):
                if self.failure.is_set():
                    raise CommError(
                        "a peer rank failed; aborting collective"
                    )
            return conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            raise CommError(
                "a peer rank closed its pipe; aborting collective"
            ) from None

    def send(self, conn, payload) -> None:
        """Pipe send with the same dead-peer translation as recv."""
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            raise CommError(
                "a peer rank closed its pipe; aborting collective"
            ) from None

    def cleanup(self) -> None:
        for conn in list(self.root_conns.values()) + list(self.leaf_conns.values()):
            try:
                conn.close()
            except Exception:
                pass
        for seg in self.segments + [self.heartbeat_seg]:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass


class ProcessComms:
    """One rank's communication endpoint over shared-memory mailboxes.

    Counter accounting and summation order mirror
    :class:`~repro.parallel.typhon.TyphonComms` line for line — the
    backend-equivalence tests assert *identical* per-rank CommStats and
    bit-identical gathered states against the threads backend.
    """

    #: declares conformance to repro.parallel.interface.CommEndpoint
    __comm_endpoint__ = True

    def __init__(self, ctx: _ProcessRunContext, sub: Subdomain, tracer=None,
                 plan: Optional[CommPlan] = None):
        self.ctx = ctx
        self.sub = sub
        self.rank = sub.rank
        self.size = ctx.size
        self.stats = CommStats()
        self.tracer = tracer
        self._mailbox = ctx.mailbox(self.rank)
        self.plan = plan
        #: collective-phase counter — advanced once per collective op,
        #: mirroring TyphonComms, so parity schedules agree rank-wide
        self._phase = 0
        #: cached peer-mailbox views (one ndarray export per peer, not
        #: one per exchange) — dropped with the own view at teardown
        self._views: Dict[int, np.ndarray] = {}
        if plan is not None:
            from ...perf.workspace import Workspace

            #: arena for the reusable nodal-sum totals buffers
            self._ws = Workspace()

    def comm_plan(self) -> Optional[CommPlan]:
        """This endpoint's compiled plan (None on the legacy path)."""
        return self.plan

    def drop_segment_views(self) -> None:
        """Release every shared-segment export before interpreter
        teardown (an mmap cannot close while a numpy view is alive)."""
        self._mailbox = None
        self._views.clear()

    def _span(self, name: str):
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return _NULL_SPAN
        return tracer.span(name, cat="comm")

    # ------------------------------------------------------------------
    # packed-protocol helpers (mirror TyphonComms)
    # ------------------------------------------------------------------
    def _peer_mail(self, peer: int) -> np.ndarray:
        buf = self._views.get(peer)
        if buf is None:
            buf = self.ctx.mailbox(peer)
            self._views[peer] = buf
        return buf

    def _my_region(self, section: str) -> np.ndarray:
        return self.plan.region(self._mailbox, section, self._phase & 1)

    def _peer_region(self, peer: int, section: str) -> np.ndarray:
        return self.ctx.plans[peer].region(
            self._peer_mail(peer), section, self._phase & 1
        )

    # ------------------------------------------------------------------
    # mailbox publish/read protocol
    # ------------------------------------------------------------------
    def _publish(self, arrays) -> None:
        """Copy this rank's arrays into its mailbox, in call order.

        No header is needed: the seam is SPMD, so at any exchange point
        every rank publishes the same field list — readers derive their
        peers' offsets from the peer mesh sizes they already hold.
        """
        buf = self._mailbox
        offset = 0
        for array in arrays:
            flat = np.ascontiguousarray(array, dtype=np.float64).ravel()
            end = offset + flat.size
            if end > buf.size:
                raise CommError(
                    f"rank {self.rank} mailbox overflow: publishing "
                    f"{end} doubles into {buf.size}"
                )
            buf[offset:end] = flat
            offset = end

    def _peer_arrays(self, peer: int,
                     specs: List[Tuple[str, int]]) -> List[np.ndarray]:
        """Views of a peer's published arrays (``specs`` = the SPMD
        field list as (kind, trailing-dim) pairs)."""
        mesh = self.ctx.subdomains[peer].mesh
        sizes = {"node": mesh.nnode, "cell": mesh.ncell}
        buf = self.ctx.mailbox(peer)
        views: List[np.ndarray] = []
        offset = 0
        for kind, trailing in specs:
            n = sizes[kind]
            flat = buf[offset:offset + n * trailing]
            views.append(flat.reshape(n, trailing) if trailing > 1 else flat)
            offset += n * trailing
        return views

    # ------------------------------------------------------------------
    # kinematic halo exchange (before the viscosity kernel)
    # ------------------------------------------------------------------
    def exchange_kinematics(self, state) -> None:
        """Refresh ghost-only nodes' x, y, u, v from their owner ranks."""
        with self._span("typhon.exchange_kinematics"):
            self._exchange_kinematics(state)

    def _exchange_kinematics(self, state) -> None:
        ctx = self.ctx
        if self.plan is None:
            # Legacy path: full-array publications, two syncs, one
            # indexed copy per field per neighbour.
            self._publish((state.x, state.y, state.u, state.v))
            ctx.sync()  # all kinematics published and quiescent at t^n
            specs = [("node", 1)] * 4
            for src_rank, local_idx in self.sub.recv_nodes.items():
                src_idx = ctx.subdomains[src_rank].send_nodes[self.rank]
                if src_idx.size != local_idx.size:
                    raise CommError(
                        f"halo schedule mismatch between ranks "
                        f"{self.rank} and {src_rank}"
                    )
                px, py, pu, pv = self._peer_arrays(src_rank, specs)
                state.x[local_idx] = px[src_idx]
                state.y[local_idx] = py[src_idx]
                state.u[local_idx] = pu[src_idx]
                state.v[local_idx] = pv[src_idx]
                self.stats.account(4 * src_idx.size, messages=4)
            self.stats.halo_exchanges += 1
            ctx.sync()  # copies complete before anyone republishes
            return
        # Packed path: one (4, n) coalesced message per neighbour,
        # one sync (the next collective writes the opposite parity).
        sec = self.plan.kin
        sec.pack(self._my_region("kin"), (state.x, state.y, state.u, state.v))
        ctx.sync()  # every rank's halo block staged
        for src_rank, local_idx in self.sub.recv_nodes.items():
            bx, by, bu, bv = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "kin"), (1, 1, 1, 1)
            )
            state.x[local_idx] = bx
            state.y[local_idx] = by
            state.u[local_idx] = bu
            state.v[local_idx] = bv
            self.stats.account(4 * local_idx.size)
        self.stats.halo_exchanges += 1
        self._phase += 1

    # ------------------------------------------------------------------
    # nodal sum completion (inside the acceleration kernel)
    # ------------------------------------------------------------------
    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]:
        """Complete partial nodal sums across ranks (ascending rank
        order — bit-identical totals on every rank)."""
        with self._span("typhon.complete_node_arrays"):
            return self._complete_node_arrays(state, *arrays)

    def _complete_node_arrays(self, state, *partials: np.ndarray
                              ) -> Tuple[np.ndarray, ...]:
        ctx = self.ctx
        if self.plan is None:
            # Legacy path: full partial arrays into the mailbox, fresh
            # zero totals, two syncs.
            self._publish(partials)
            ctx.sync()
            totals = tuple(np.zeros_like(p) for p in partials)
            specs = [("node", 1)] * len(partials)
            ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
            for r in ranks:
                if r == self.rank:
                    for total, p in zip(totals, partials):
                        total += p
                else:
                    theirs = ctx.subdomains[r].shared_nodes[self.rank]
                    mine = self.sub.shared_nodes[r]
                    for total, p in zip(totals, self._peer_arrays(r, specs)):
                        total[mine] += p[theirs]
                    self.stats.account(len(partials) * mine.size)
            self.stats.halo_exchanges += 1
            ctx.sync()  # mailboxes free for reuse
            return totals
        # Packed path: stage shared-node values only, one sync, fold
        # into reused arena totals in the identical ascending order.
        parity = self._phase & 1
        sec = self.plan.nodesum
        sec.pack(self._my_region("nodesum"), partials)
        ctx.sync()  # every rank's shared-node block staged
        nf = len(partials)
        buf = self._ws.zeros(f"commplan.totals{nf}.{parity}",
                             (nf, partials[0].shape[0]))
        totals = tuple(buf[i] for i in range(nf))
        widths = _widths(partials)
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, partials):
                    total += p
            else:
                mine = self.sub.shared_nodes[r]
                blocks = sec.peer_blocks(
                    r, self._peer_region(r, "nodesum"), widths
                )
                for total, block in zip(totals, blocks):
                    total[mine] += block
                self.stats.account(nf * mine.size)
        self.stats.halo_exchanges += 1
        self._phase += 1
        return totals

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Owned-cell scatter + deterministic cross-rank completion."""
        owned = self.sub.owned_cell_mask[:, None]
        node_fx = state.scatter_to_nodes(np.where(owned, fx, 0.0))
        node_fy = state.scatter_to_nodes(np.where(owned, fy, 0.0))
        mass = state.scatter_to_nodes(
            np.where(owned, state.corner_mass, 0.0)
        )
        return self.complete_node_arrays(state, node_fx, node_fy, mass)

    # ------------------------------------------------------------------
    # the single global reduction (getdt) — gather/broadcast over pipes
    # ------------------------------------------------------------------
    def reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Global minimum-dt candidate, with the cell id globalised."""
        with self._span("typhon.reduce_dt"):
            return self._reduce_dt(candidates)

    def _reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        dt, reason, cell = min(candidates, key=lambda c: c[0])
        gcell = int(self.sub.cell_global[cell]) if cell >= 0 else -1
        best = self._root_reduce(
            (dt, reason, gcell, self.rank),
            lambda entries: min(entries, key=lambda c: (c[0], c[3])),
        )
        self.stats.reductions += 1
        self.stats.account(DT_REDUCE_VALUES)
        self._phase += 1
        return (best[0], best[1], best[2])

    def allreduce_max(self, value: float) -> float:
        """Global maximum of a scalar across ranks."""
        with self._span("typhon.allreduce_max"):
            result = self._root_reduce(float(value), max)
        self.stats.reductions += 1
        self.stats.account(1)
        self._phase += 1
        return float(result)

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global sum of a small vector across ranks."""
        return self._allreduce_combine(
            values, np.add, "typhon.allreduce_sum")

    def allreduce_min(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global minimum of a small vector across ranks."""
        return self._allreduce_combine(
            values, np.minimum, "typhon.allreduce_min")

    def _allreduce_combine(self, values: np.ndarray, op,
                           span_name: str) -> np.ndarray:
        # Ascending-rank left fold — the same fold TyphonComms performs
        # in shared slots — so threads and processes runs stay
        # bit-identical down to the diagnostics stream.
        def combine(entries):
            result = np.array(entries[0], dtype=np.float64)
            for entry in entries[1:]:
                result = op(result, entry)
            return result

        with self._span(span_name):
            result = self._root_reduce(
                np.array(values, dtype=np.float64), combine)
        self.stats.reductions += 1
        self.stats.account(result.size)
        self._phase += 1
        return result

    def _root_reduce(self, mine, combine):
        """Gather every rank's value at rank 0 (ascending rank order,
        so tie-breaks are deterministic), combine, broadcast back."""
        ctx = self.ctx
        if self.rank == 0:
            entries = [mine]
            for r in range(1, self.size):
                entries.append(ctx.recv(ctx.root_conns[r]))
            result = combine(entries)
            for r in range(1, self.size):
                ctx.send(ctx.root_conns[r], result)
            return result
        conn = ctx.leaf_conns[self.rank]
        ctx.send(conn, mine)
        return ctx.recv(conn)

    # ------------------------------------------------------------------
    def owned_cell_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.owned_cell_mask

    # ------------------------------------------------------------------
    # cell-field halo (the distributed ALE remap)
    # ------------------------------------------------------------------
    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Refresh the ghost-cell rows of per-cell arrays from their
        owner ranks (every rank must pass the same array list)."""
        with self._span("typhon.exchange_cell_arrays"):
            self._exchange_cell_arrays(*arrays)

    def _exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        ctx = self.ctx
        if self.plan is None:
            # Legacy path: whole-array publications, two syncs.
            self._publish(arrays)
            ctx.sync()
            specs = [
                ("cell", 1 if a.ndim == 1 else a.shape[1]) for a in arrays
            ]
            for src_rank, local_idx in self.sub.recv_cells.items():
                src_idx = ctx.subdomains[src_rank].send_cells[self.rank]
                src_arrays = self._peer_arrays(src_rank, specs)
                nvalues = 0
                for mine, theirs in zip(arrays, src_arrays):
                    mine[local_idx] = theirs[src_idx]
                    nvalues += local_idx.size * (
                        1 if mine.ndim == 1 else mine.shape[1]
                    )
                self.stats.account(nvalues, messages=len(arrays))
            self.stats.halo_exchanges += 1
            ctx.sync()
            return
        # Packed path: all cell fields coalesce into one block per
        # neighbour, one sync.
        sec = self.plan.cell
        sec.pack(self._my_region("cell"), arrays)
        ctx.sync()  # every rank's ghost-cell block staged
        widths = _widths(arrays)
        for src_rank, local_idx in self.sub.recv_cells.items():
            blocks = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "cell"), widths
            )
            nvalues = 0
            for mine, block in zip(arrays, blocks):
                mine[local_idx] = block
                nvalues += block.size
            self.stats.account(nvalues)
        self.stats.halo_exchanges += 1
        self._phase += 1

    def exchange_cell_fields(self, state) -> None:
        """Refresh ghost thermodynamics and masses before a remap."""
        self.exchange_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_sides()

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_mask

    # ------------------------------------------------------------------
    def publish_final_state(self, state) -> None:
        """Legacy path only: write every field ``gather`` reads into
        the full-array mailbox (called after the collective end-of-run
        barrier; the parent reads it back out once the process has
        exited).  The packed path's mailboxes are halo-sized, so its
        final states travel over the result queue instead."""
        self._publish(tuple(
            getattr(state, name) for name, _, _ in STATE_FIELDS
        ))


def _read_final_state(rc: _ProcessRunContext, rank: int):
    """Parent side: rebuild one rank's final local state from its
    mailbox (mat and boundary flags are invariants of the run, so they
    come from restricting the initial state)."""
    sub = rc.subdomains[rank]
    state = local_state(sub, rc.setup.state)
    mesh = sub.mesh
    sizes = {"node": mesh.nnode, "cell": mesh.ncell}
    buf = rc.mailbox(rank)
    offset = 0
    for name, kind, trailing in STATE_FIELDS:
        n = sizes[kind]
        flat = buf[offset:offset + n * trailing]
        value = np.array(flat, dtype=np.float64)  # copy out of the segment
        setattr(state, name,
                value.reshape(n, trailing) if trailing > 1 else value)
        offset += n * trailing
    state.invalidate_node_mass()
    return state


def _state_from_payload(rc: _ProcessRunContext, rank: int,
                        fields: Dict[str, np.ndarray]):
    """Parent side: rebuild one rank's final local state from its
    result-queue payload (the packed path — a pickle round-trip of
    float64 arrays is exact, so bit-identity is preserved)."""
    state = local_state(rc.subdomains[rank], rc.setup.state)
    for name, _, _ in STATE_FIELDS:
        setattr(state, name, fields[name])
    state.invalidate_node_mass()
    return state


def _rank_main(rc: _ProcessRunContext, rank: int) -> None:
    """Entry point of one rank process (runs in the forked child)."""
    try:
        rc.close_foreign_pipe_ends(rank)
        sub = rc.subdomains[rank]
        state = local_state(sub, rc.setup.state)
        tracer = None
        if rc.trace:
            from ...telemetry.spans import Tracer

            tracer = Tracer(rank=rank, epoch_ns=rc.epoch_ns)
        comms = ProcessComms(
            rc, sub, tracer=tracer,
            plan=rc.plans[rank] if rc.plans is not None else None,
        )
        timers = TimerRegistry()
        timers.tracer = tracer
        probe = rc.build_probe(rank, cell_global=sub.cell_global)
        hydro = Hydro(state, rc.setup.table, rc.setup.controls,
                      timers=timers, comms=comms, probe=probe)
        board = rc.heartbeat_board()
        hydro.observers.append(Heartbeat(board, rank))
        series = None
        if rank == 0 and rc.collect_steps:
            from ...telemetry.report import StepSeries

            series = StepSeries()
            hydro.observers.append(series)
        hydro.run(max_steps=rc.max_steps)
        # Collective end-of-run point: every rank is past its last
        # mailbox read before anyone overwrites a mailbox with the
        # final-state publication (legacy) or exits (packed).
        rc.sync()
        final_state = None
        if comms.plan is None:
            comms.publish_final_state(hydro.state)
        else:
            # Halo-sized mailboxes cannot carry the final state; ship
            # it over the result queue (one pickle at end of run).
            final_state = {
                name: np.ascontiguousarray(getattr(hydro.state, name))
                for name, _, _ in STATE_FIELDS
            }
        timers.tracer = None  # tracer spans travel separately
        rc.results.put((rank, {
            "nstep": hydro.nstep,
            "time": hydro.time,
            "timers": timers,
            "spans": tracer.spans if tracer is not None else [],
            "comm": comms.stats.as_dict(),
            "state": final_state,
            "step_rows": series.rows if series is not None else None,
            "metrics_rows": probe.rows if probe is not None else None,
            "metrics": probe.registry if probe is not None else None,
        }))
        # Release the shared-segment views before interpreter teardown:
        # an mmap cannot close while a numpy export is alive.
        comms.drop_segment_views()
        board.array = None
    except BaseException as exc:
        rc.errors.put((
            rank, type(exc).__name__, str(exc), traceback.format_exc(),
        ))
        rc.abort()
        os._exit(1)


class ProcessesBackend:
    """Launch one forked process per rank; marshal everything back."""

    name = "processes"

    # ------------------------------------------------------------------
    def prepare(self, driver) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise BookLeafError(
                "the processes backend needs the 'fork' start method "
                "(Linux/macOS); use backend='threads' here"
            )
        # Rank objects live in the children; the driver keeps only the
        # decomposition (and, after run, the marshalled BackendRun).

    # ------------------------------------------------------------------
    def execute(self, driver, max_steps: Optional[int] = None) -> BackendRun:
        rc = _ProcessRunContext(driver, max_steps)
        try:
            return self._execute(driver, rc)
        finally:
            rc.cleanup()

    def _execute(self, driver, rc: _ProcessRunContext) -> BackendRun:
        ctx = rc._ctx
        procs = [
            ctx.Process(target=_rank_main, args=(rc, r), name=f"rank{r}")
            for r in range(rc.size)
        ]
        for p in procs:
            p.start()
        # Parent's copies of the pipe ends are not used; close them so
        # fd accounting stays tight (children hold their own copies).
        for conn in list(rc.root_conns.values()) + list(rc.leaf_conns.values()):
            conn.close()

        results: Dict[int, dict] = {}
        error_records: List[Tuple[int, str, str, str]] = []
        dead: Dict[int, int] = {}
        board = rc.heartbeat_board()
        timeout = rc.watchdog_timeout
        stalled: Dict[int, dict] = {}

        def drain() -> None:
            while True:
                try:
                    rank, payload = rc.results.get_nowait()
                except Exception:
                    break
                results[rank] = payload
            while not rc.errors.empty():
                error_records.append(rc.errors.get())

        while True:
            drain()
            for r, p in enumerate(procs):
                if (not p.is_alive() and p.exitcode not in (0, None)
                        and r not in dead):
                    dead[r] = p.exitcode
                    rc.abort()  # free peers stuck in barriers/pipes
                    if timeout is not None and r not in stalled:
                        # A dead rank has definitively stopped beating;
                        # the watchdog reports it immediately rather
                        # than waiting out the timeout.
                        stalled[r] = board.last_seen()[r]
            if timeout is not None and not stalled:
                for r, seen in board.stalled(timeout).items():
                    if r not in results:
                        stalled[r] = seen
                if stalled:
                    rc.abort()  # diagnose the hang instead of sharing it
            if len(results) == rc.size:
                break
            if all(not p.is_alive() for p in procs):
                break
            if stalled and all(
                not procs[r].is_alive()
                for r in range(rc.size) if r not in stalled
            ):
                break  # only wedged ranks left; terminate them below
            time.sleep(0.01)
        for p in procs:
            p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        drain()

        if stalled:
            message = stall_message(stalled, board, timeout)
            warnings.warn(message, StalledRankWarning)
        board.array = None

        failures: List[Tuple[int, BaseException]] = []
        for rank, etype, emsg, tb in error_records:
            if etype == "CommError":
                failures.append((rank, CommError(emsg)))
            else:
                failures.append(
                    (rank, RemoteRankError(f"[{etype}] {emsg}", tb))
                )
        reported = {rank for rank, _ in failures}
        for rank, exitcode in sorted(dead.items()):
            if rank not in reported and rank not in results:
                failures.append((rank, RemoteRankError(
                    f"rank process terminated abnormally "
                    f"(exitcode {exitcode})"
                )))
        if stalled and all(isinstance(exc, CommError) for _, exc in failures):
            # The wedge itself never raised (that is what a wedge is);
            # the peers only carry the secondary abort cascade — the
            # watchdog verdict is the primary failure.
            raise BookLeafError(f"run aborted: {message}")
        if failures:
            rank, exc = pick_primary_failure(failures)
            raise_rank_failure(rank, exc)
        if len(results) != rc.size:
            missing = sorted(set(range(rc.size)) - set(results))
            raise BookLeafError(
                f"ranks {missing} exited without reporting results"
            )

        steps = {results[r]["nstep"] for r in range(rc.size)}
        times = {round(results[r]["time"], 14) for r in range(rc.size)}
        if len(steps) != 1 or len(times) != 1:
            raise BookLeafError(
                f"ranks desynchronised: steps={steps} times={times}"
            )
        states = [
            _state_from_payload(rc, r, results[r]["state"])
            if results[r].get("state") is not None
            else _read_final_state(rc, r)
            for r in range(rc.size)
        ]
        return BackendRun(
            backend=self.name,
            nranks=rc.size,
            nstep=results[0]["nstep"],
            time=results[0]["time"],
            states=states,
            timers=[results[r]["timers"] for r in range(rc.size)],
            spans=[results[r]["spans"] for r in range(rc.size)],
            comm_per_rank=[results[r]["comm"] for r in range(rc.size)],
            step_rows=results[0]["step_rows"],
            metrics_rows=results[0].get("metrics_rows"),
            metrics=results[0].get("metrics"),
        )
