"""The ``processes`` backend: one OS process per rank over shared memory.

The threads backend overlaps rank work only inside GIL-releasing numpy
kernels; everything else serialises.  This backend runs each rank's
*unchanged* SPMD hydro loop in its own forked process, so the ranks
genuinely execute in parallel, and reimplements the Typhon exchange
semantics over three primitives:

* **mailboxes** — one ``multiprocessing.shared_memory`` segment per
  rank, holding the rank's double-buffered packed staging (the
  compiled CommPlan's layout).  At every exchange point each rank
  packs its send blocks into its own mailbox and index-copies the
  blocks it needs out of its peers' — with the same ascending-rank
  summation order as the threads backend, so a processes run is
  **bit-identical** to a threads run of the same problem.  In
  ``packed`` mode one ``multiprocessing.Barrier`` frames each
  exchange; in ``overlap`` mode the split-phase protocol synchronises
  on per-(rank, section) post/complete counters in a small shared
  segment instead — no global rendezvous on the halo path.
* **combining cells** — the per-step dt reduction runs the binomial
  tree over a shared segment of generation-guarded cells (up-sweep
  candidates, down-sweep result), O(log P) hops on the critical path.
* **pipes** — the remaining scalar collectives (the remap's collective
  skip decision, the metrics probe's sums/minima) stay a
  gather/broadcast over per-rank ``Pipe`` pairs rooted at rank 0, in
  ascending rank order.

Per-rank :class:`~repro.parallel.typhon.CommStats`, kernel timers and
trace spans are marshalled back over a result queue when the ranks
finish and merged with the existing deterministic rank-order rules;
final states are read back out of the mailboxes by the parent, so
``gather`` is backend-agnostic.

Requires the ``fork`` start method (the run context — problem setup,
subdomains, schedules — is inherited, never pickled), i.e. Linux or
macOS-with-fork.  See docs/PARALLEL.md for the layout diagram.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import warnings
from contextlib import nullcontext
from multiprocessing import shared_memory
from threading import BrokenBarrierError
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...core.hydro import Hydro
from ...core.timestep import Candidate
from ...metrics.watchdog import (
    BOARD_COLS, Heartbeat, HeartbeatBoard, stall_message,
)
from ...utils.errors import BookLeafError, CommError, StalledRankWarning
from ...utils.timers import TimerRegistry
from ..commplan import SECTIONS, CommPlan, _widths, compile_plans
from ..halo import Subdomain, local_state
from ..interface import BackendRun
from ..typhon import (
    COMM_MODES, DT_REASONS, DT_REDUCE_VALUES, SPIN_TIMEOUT, CommStats,
    spin_backoff,
    tree_children, tree_parent,
)
from .threads import pick_primary_failure, raise_rank_failure

_FLOAT_BYTES = 8

#: column index of each section in the shared post/complete counter
#: board (one float64 pair per (rank, section), single writer)
_SECTION_COL = {name: i for i, name in enumerate(SECTIONS)}

#: one dt combining cell: (generation, dt, reason code, global cell,
#: source rank) — generation guards reuse, the rest is the candidate
_DT_CELL = 5

#: shared no-op context for untraced comm calls (mirrors typhon.py)
_NULL_SPAN = nullcontext()

#: the final-state publication: every field ``gather`` reads, in a
#: fixed order, as (name, kind, trailing-dim) — kind sizes the leading
#: axis from the subdomain's local mesh (``node`` -> nnode,
#: ``cell`` -> ncell)
STATE_FIELDS: Tuple[Tuple[str, str, int], ...] = (
    ("x", "node", 1), ("y", "node", 1),
    ("u", "node", 1), ("v", "node", 1),
    ("rho", "cell", 1), ("e", "cell", 1), ("p", "cell", 1),
    ("cs2", "cell", 1), ("q", "cell", 1),
    ("cell_mass", "cell", 1), ("volume", "cell", 1),
    ("corner_mass", "cell", 4), ("corner_volume", "cell", 4),
)


class RemoteRankError(BookLeafError):
    """A failure that happened inside a rank process.

    Tracebacks cannot cross a process boundary as live objects, so the
    child formats its traceback and the parent chains this carrier —
    the remote stack stays readable in the exception report.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        self.remote_traceback = remote_traceback
        if remote_traceback:
            message = (f"{message}\n--- remote traceback ---\n"
                       f"{remote_traceback.rstrip()}")
        super().__init__(message)


def _mailbox_doubles(sub: Subdomain, plan: CommPlan) -> int:
    """Mailbox capacity (float64 slots) for one rank: exactly the
    plan's double-buffered packed staging — halo-proportional,
    typically O(√ncell) — because final states travel over the result
    queue."""
    return plan.staging_doubles()


class _ProcessRunContext:
    """Everything the rank processes share, created pre-fork.

    Fork semantics are load-bearing: children inherit this object (the
    setup, subdomains and schedules are never pickled); only the
    synchronisation primitives and shared segments are truly shared.
    """

    def __init__(self, driver, max_steps: Optional[int]):
        ctx = mp.get_context("fork")
        self.setup = driver.setup
        self.subdomains: List[Subdomain] = driver.subdomains
        self.size = driver.nranks
        self.max_steps = max_steps
        self.trace = driver.trace
        self.collect_steps = driver.collect_step_series
        self.build_probe = driver.build_probe
        self.watchdog_timeout = driver.watchdog_timeout
        self.epoch_ns = time.perf_counter_ns()
        #: compiled packed-exchange layouts (both modes run on them)
        self.plans: List[CommPlan] = driver.compiled_plans()
        #: exchange mode every rank endpoint runs ("packed"/"overlap")
        self.comm_mode: str = driver.comm_plan
        self.barrier = ctx.Barrier(self.size)
        self.failure = ctx.Event()
        #: SimpleQueue: the put is synchronous, so a failing child can
        #: os._exit right after reporting without losing the record
        self.errors = ctx.SimpleQueue()
        self.results: mp.Queue = ctx.Queue()
        #: rank 0 holds the root end of one duplex pipe per peer rank
        self.root_conns: Dict[int, object] = {}
        self.leaf_conns: Dict[int, object] = {}
        for r in range(1, self.size):
            root, leaf = ctx.Pipe(duplex=True)
            self.root_conns[r] = root
            self.leaf_conns[r] = leaf
        self.segments: List[shared_memory.SharedMemory] = [
            shared_memory.SharedMemory(
                create=True,
                size=_mailbox_doubles(
                    sub, self.plans[sub.rank]
                ) * _FLOAT_BYTES,
            )
            for sub in self.subdomains
        ]
        # Split-phase neighbour-sync counters: (size, nsections, 2)
        # float64 — cumulative posts and completes, single writer per
        # row.  Zero-initialised by SharedMemory; the overlap protocol
        # spins on these instead of the barrier.
        self.sync_seg = shared_memory.SharedMemory(
            create=True,
            size=self.size * len(SECTIONS) * 2 * _FLOAT_BYTES,
        )
        # dt combining cells: (size, 2, _DT_CELL) float64 — row r holds
        # rank r's up-sweep candidate and down-sweep result, each
        # generation-stamped so reuse across reductions is unambiguous.
        self.dt_seg = shared_memory.SharedMemory(
            create=True, size=self.size * 2 * _DT_CELL * _FLOAT_BYTES,
        )
        # Heartbeat board: one shared (nranks, 2) float64 segment the
        # ranks beat into and the parent's stall monitor polls
        # (CLOCK_MONOTONIC is system-wide, so the stamps compare across
        # processes).  Launch-stamped pre-fork.
        self.heartbeat_seg = shared_memory.SharedMemory(
            create=True, size=self.size * BOARD_COLS * _FLOAT_BYTES
        )
        self.heartbeat_board().launch()
        self._ctx = ctx

    # ------------------------------------------------------------------
    def mailbox(self, rank: int) -> np.ndarray:
        seg = self.segments[rank]
        return np.ndarray(
            (seg.size // _FLOAT_BYTES,), dtype=np.float64, buffer=seg.buf
        )

    def sync_board(self) -> np.ndarray:
        """(size, nsections, 2) post/complete counter view (caller
        drops the view before interpreter teardown)."""
        return np.ndarray(
            (self.size, len(SECTIONS), 2), dtype=np.float64,
            buffer=self.sync_seg.buf,
        )

    def dt_cells(self) -> np.ndarray:
        """(size, 2, _DT_CELL) dt combining-cell view (0 = up-sweep
        candidate, 1 = down-sweep result)."""
        return np.ndarray(
            (self.size, 2, _DT_CELL), dtype=np.float64,
            buffer=self.dt_seg.buf,
        )

    def heartbeat_board(self) -> HeartbeatBoard:
        """A view of the shared heartbeat segment (caller must drop the
        view — ``board.array = None`` — before interpreter teardown in
        the children, like the mailboxes)."""
        return HeartbeatBoard(np.ndarray(
            (self.size, BOARD_COLS), dtype=np.float64,
            buffer=self.heartbeat_seg.buf,
        ))

    def close_foreign_pipe_ends(self, rank: int) -> None:
        """Drop the pipe ends this rank does not own (fork duplicated
        every fd into every child; unowned copies would defeat EOF
        detection and leak descriptors)."""
        if rank != 0:
            for conn in self.root_conns.values():
                conn.close()
        for r, conn in self.leaf_conns.items():
            if r != rank:
                conn.close()

    # ------------------------------------------------------------------
    # collective semantics (mirrors TyphonContext.sync/abort)
    # ------------------------------------------------------------------
    def sync(self) -> None:
        if self.failure.is_set():
            raise CommError("a peer rank failed; aborting collective")
        try:
            self.barrier.wait()
        except BrokenBarrierError:
            raise CommError("a peer rank failed; aborting collective") from None

    def abort(self) -> None:
        self.failure.set()
        try:
            self.barrier.abort()
        except Exception:
            pass

    def recv(self, conn) -> object:
        """Blocking pipe receive that fails fast when a peer died.

        A closed pipe (the peer process is gone) is a *secondary*
        symptom, so it surfaces as :class:`CommError` — failure
        attribution then points at the rank that actually died.
        """
        try:
            while not conn.poll(0.2):
                if self.failure.is_set():
                    raise CommError(
                        "a peer rank failed; aborting collective"
                    )
            return conn.recv()
        except (EOFError, BrokenPipeError, OSError):
            raise CommError(
                "a peer rank closed its pipe; aborting collective"
            ) from None

    def send(self, conn, payload) -> None:
        """Pipe send with the same dead-peer translation as recv."""
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            raise CommError(
                "a peer rank closed its pipe; aborting collective"
            ) from None

    def cleanup(self) -> None:
        for conn in list(self.root_conns.values()) + list(self.leaf_conns.values()):
            try:
                conn.close()
            except Exception:
                pass
        for seg in self.segments + [self.sync_seg, self.dt_seg,
                                    self.heartbeat_seg]:
            try:
                seg.close()
            except Exception:
                pass
            try:
                seg.unlink()
            except Exception:
                pass


class ProcessComms:
    """One rank's communication endpoint over shared-memory mailboxes.

    Counter accounting and summation order mirror
    :class:`~repro.parallel.typhon.TyphonComms` line for line — the
    backend-equivalence tests assert *identical* per-rank CommStats and
    bit-identical gathered states against the threads backend.
    """

    #: declares conformance to repro.parallel.interface.CommEndpoint
    __comm_endpoint__ = True

    def __init__(self, ctx: _ProcessRunContext, sub: Subdomain, tracer=None,
                 plan: Optional[CommPlan] = None, mode: str = "packed"):
        if mode not in COMM_MODES:
            raise CommError(f"unknown comm mode {mode!r}; "
                            f"expected one of {COMM_MODES}")
        self.ctx = ctx
        self.sub = sub
        self.rank = sub.rank
        self.size = ctx.size
        self.stats = CommStats()
        self.tracer = tracer
        self._mailbox = ctx.mailbox(self.rank)
        self.plan = plan if plan is not None else ctx.plans[sub.rank]
        self.mode = mode
        #: collective-phase counter — advanced once per barrier
        #: collective, mirroring TyphonComms, so parity schedules agree
        self._phase = 0
        #: per-section split-phase op counts and in-flight bookkeeping
        self._ops: Dict[str, int] = dict.fromkeys(SECTIONS, 0)
        self._pending: Dict[str, int] = {}
        self._pending_sums: Optional[tuple] = None
        #: shared neighbour-sync counter board and dt combining cells
        self._sync = ctx.sync_board()
        self._dt = ctx.dt_cells()
        self._dt_gen = 0
        #: cached peer-mailbox views (one ndarray export per peer, not
        #: one per exchange) — dropped with the own view at teardown
        self._views: Dict[int, np.ndarray] = {}
        from ...perf.workspace import Workspace

        #: arena for the reusable nodal-sum totals buffers
        self._ws = Workspace()

    def comm_plan(self) -> Optional[CommPlan]:
        """This endpoint's compiled plan."""
        return self.plan

    def overlap_enabled(self) -> bool:
        """True when the split-phase (overlapped) protocol is active."""
        return self.mode == "overlap"

    def drop_segment_views(self) -> None:
        """Release every shared-segment export before interpreter
        teardown (an mmap cannot close while a numpy view is alive)."""
        self._mailbox = None
        self._sync = None
        self._dt = None
        self._views.clear()

    def _span(self, name: str):
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return _NULL_SPAN
        return tracer.span(name, cat="comm")

    # ------------------------------------------------------------------
    # packed-protocol helpers (mirror TyphonComms)
    # ------------------------------------------------------------------
    def _peer_mail(self, peer: int) -> np.ndarray:
        buf = self._views.get(peer)
        if buf is None:
            buf = self.ctx.mailbox(peer)
            self._views[peer] = buf
        return buf

    def _my_region(self, section: str, parity: int) -> np.ndarray:
        return self.plan.region(self._mailbox, section, parity)

    def _peer_region(self, peer: int, section: str,
                     parity: int) -> np.ndarray:
        return self.ctx.plans[peer].region(
            self._peer_mail(peer), section, parity
        )

    # ------------------------------------------------------------------
    # split-phase neighbour synchronisation (mirrors TyphonComms; the
    # counters live in a shared float64 board instead of Python ints)
    # ------------------------------------------------------------------
    def _spin(self, ready, what: str) -> None:
        """Wait until ``ready()`` — sleeping with backoff, never a
        global barrier (and never busy-polling: on an oversubscribed
        host every burned quantum starves the awaited peer)."""
        if ready():
            return
        deadline = time.monotonic() + SPIN_TIMEOUT
        spins = 0
        while not ready():
            if self.ctx.failure.is_set():
                raise CommError("a peer rank failed; aborting collective")
            spins += 1
            time.sleep(spin_backoff(spins))
            if spins % 64 == 0 and time.monotonic() > deadline:
                raise CommError(
                    f"rank {self.rank} timed out waiting for {what}"
                )

    def _post_section(self, name: str, arrays) -> int:
        """Pack op k of ``name`` and publish the post counter (same
        guards as TyphonComms._post_section: one in-flight post per
        section, parity half reclaimed only after every reader's k−2
        complete)."""
        if self.mode != "overlap":
            raise CommError(
                "split-phase exchange requires comm_plan='overlap' "
                f"(this endpoint runs {self.mode!r})"
            )
        if name in self._pending:
            raise CommError(
                f"rank {self.rank}: {name} exchange already posted — "
                "a second same-parity post must wait for complete"
            )
        k = self._ops[name]
        sec = self.plan.section(name)
        col = _SECTION_COL[name]
        for peer in sec.send_peers:
            self._spin(
                lambda p=peer: self._sync[p, col, 1] >= k - 1,
                f"rank {peer} to finish reading {name} op {k - 2}",
            )
        sec.pack(self._my_region(name, k & 1), arrays)
        self._sync[self.rank, col, 0] = k + 1
        self._pending[name] = k
        return k

    def _begin_complete(self, name: str) -> int:
        """Wait for every source neighbour's op-k post; return k."""
        if self.mode != "overlap":
            raise CommError(
                "split-phase exchange requires comm_plan='overlap' "
                f"(this endpoint runs {self.mode!r})"
            )
        k = self._pending.get(name)
        if k is None:
            raise CommError(
                f"rank {self.rank}: complete_{name} without a post"
            )
        sec = self.plan.section(name)
        col = _SECTION_COL[name]
        for peer in sec.recv_peers:
            self._spin(
                lambda p=peer: self._sync[p, col, 0] >= k + 1,
                f"rank {peer} to post {name} op {k}",
            )
        return k

    def _end_complete(self, name: str, k: int) -> None:
        self._sync[self.rank, _SECTION_COL[name], 1] = k + 1
        del self._pending[name]
        self._ops[name] = k + 1

    # ------------------------------------------------------------------
    # kinematic halo exchange (before the viscosity kernel)
    # ------------------------------------------------------------------
    def exchange_kinematics(self, state) -> None:
        """Refresh ghost-only nodes' x, y, u, v from their owner ranks."""
        with self._span("typhon.exchange_kinematics"):
            self._exchange_kinematics(state)

    def _exchange_kinematics(self, state) -> None:
        if self.mode == "overlap":
            self._post_kinematics(state)
            self._complete_kinematics(state)
            return
        # Packed path: one (4, n) coalesced message per neighbour,
        # one sync (the next collective writes the opposite parity).
        sec = self.plan.kin
        sec.pack(self._my_region("kin", self._phase & 1),
                 (state.x, state.y, state.u, state.v))
        self.ctx.sync()  # every rank's halo block staged
        self._unpack_kinematics(state, self._phase & 1)
        self._phase += 1

    def _unpack_kinematics(self, state, parity: int) -> None:
        """Scatter every source neighbour's staged (4, n) block."""
        sec = self.plan.kin
        for src_rank, local_idx in self.sub.recv_nodes.items():
            bx, by, bu, bv = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "kin", parity),
                (1, 1, 1, 1)
            )
            state.x[local_idx] = bx
            state.y[local_idx] = by
            state.u[local_idx] = bu
            state.v[local_idx] = bv
            self.stats.account(4 * local_idx.size)
        self.stats.halo_exchanges += 1

    def post_kinematics(self, state) -> None:
        """Start the kinematic halo refresh (overlap mode): pack this
        rank's send blocks and publish — the caller may now compute
        the interior partition (``plan.interior_cells``)."""
        with self._span("typhon.post_kinematics"):
            self._post_kinematics(state)

    def _post_kinematics(self, state) -> None:
        self._post_section("kin", (state.x, state.y, state.u, state.v))

    def complete_kinematics(self, state) -> None:
        """Finish a posted kinematic refresh: wait for the source
        neighbours' posts, scatter the ghost rows."""
        with self._span("typhon.complete_kinematics"):
            self._complete_kinematics(state)

    def _complete_kinematics(self, state) -> None:
        k = self._begin_complete("kin")
        self._unpack_kinematics(state, k & 1)
        self._end_complete("kin", k)

    # ------------------------------------------------------------------
    # nodal sum completion (inside the acceleration kernel)
    # ------------------------------------------------------------------
    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]:
        """Complete partial nodal sums across ranks (ascending rank
        order — bit-identical totals on every rank)."""
        with self._span("typhon.complete_node_arrays"):
            return self._complete_node_arrays(state, *arrays)

    def _complete_node_arrays(self, state, *partials: np.ndarray
                              ) -> Tuple[np.ndarray, ...]:
        if self.mode == "overlap":
            self._post_node_sums(state, *partials)
            return self._complete_node_sums(state)
        # Packed path: stage shared-node values only, one sync, fold
        # into reused arena totals in the identical ascending order.
        parity = self._phase & 1
        sec = self.plan.nodesum
        sec.pack(self._my_region("nodesum", parity), partials)
        self.ctx.sync()  # every rank's shared-node block staged
        totals = self._totals_buffer(partials, parity)
        widths = _widths(partials)
        nf = len(partials)
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, partials):
                    total += p
            else:
                mine = self.sub.shared_nodes[r]
                blocks = sec.peer_blocks(
                    r, self._peer_region(r, "nodesum", parity), widths
                )
                for total, block in zip(totals, blocks):
                    total[mine] += block
                self.stats.account(nf * mine.size)
        self.stats.halo_exchanges += 1
        self._phase += 1
        return totals

    def _totals_buffer(self, partials, parity: int
                       ) -> Tuple[np.ndarray, ...]:
        """Zeroed arena rows for the completed totals, double-buffered
        by parity (valid until the next-but-one same-width completion)."""
        nf = len(partials)
        buf = self._ws.zeros(f"commplan.totals{nf}.{parity}",
                             (nf, partials[0].shape[0]))
        return tuple(buf[i] for i in range(nf))

    def post_node_sums(self, state, *partials: np.ndarray) -> None:
        """Start a nodal-sum completion (overlap mode): stage this
        rank's shared-node blocks and pre-fill the totals with the
        local partials — every node *not* shared with a peer is final
        immediately; ``complete_node_sums`` re-folds only the shared
        union strip."""
        with self._span("typhon.post_node_sums"):
            self._post_node_sums(state, *partials)

    def _post_node_sums(self, state, *partials: np.ndarray) -> None:
        k = self._post_section("nodesum", partials)
        totals = self._totals_buffer(partials, k & 1)
        # 0 + p elementwise — identical to the blocking fold's first
        # visit, so interior (unshared) nodes are already bit-final
        for total, p in zip(totals, partials):
            total += p
        self._pending_sums = (partials, totals)

    def complete_node_sums(self, state) -> Tuple[np.ndarray, ...]:
        """Finish a posted nodal-sum completion: wait for the peers'
        posts, then replay the exact ascending-rank fold over the
        shared-node union (re-zeroed first), keeping shared totals
        bit-identical to the blocking path."""
        with self._span("typhon.complete_node_sums"):
            return self._complete_node_sums(state)

    def _complete_node_sums(self, state) -> Tuple[np.ndarray, ...]:
        k = self._begin_complete("nodesum")
        if self._pending_sums is None:
            raise CommError(
                f"rank {self.rank}: complete_node_sums without a post"
            )
        partials, totals = self._pending_sums
        self._pending_sums = None
        sec = self.plan.nodesum
        union = self.plan.shared_union
        widths = _widths(partials)
        nf = len(partials)
        for total in totals:
            total[union] = 0.0
        ranks = sorted(set(self.sub.shared_nodes) | {self.rank})
        for r in ranks:
            if r == self.rank:
                for total, p in zip(totals, partials):
                    total[union] += p[union]
            else:
                mine = self.sub.shared_nodes[r]
                blocks = sec.peer_blocks(
                    r, self._peer_region(r, "nodesum", k & 1), widths
                )
                for total, block in zip(totals, blocks):
                    total[mine] += block
                self.stats.account(nf * mine.size)
        self.stats.halo_exchanges += 1
        self._end_complete("nodesum", k)
        return totals

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Owned-cell scatter + deterministic cross-rank completion."""
        owned = self.sub.owned_cell_mask[:, None]
        node_fx = state.scatter_to_nodes(np.where(owned, fx, 0.0))
        node_fy = state.scatter_to_nodes(np.where(owned, fy, 0.0))
        mass = state.scatter_to_nodes(
            np.where(owned, state.corner_mass, 0.0)
        )
        return self.complete_node_arrays(state, node_fx, node_fy, mass)

    # ------------------------------------------------------------------
    # the single global reduction (getdt) — binomial combining cells
    # ------------------------------------------------------------------
    def reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Global minimum-dt candidate, with the cell id globalised."""
        with self._span("typhon.reduce_dt"):
            return self._reduce_dt(candidates)

    def _write_dt_cell(self, row: int, g: int, cand: tuple) -> None:
        """Publish a candidate into this rank's combining cell: payload
        first, generation stamp last (x86 stores are not reordered, so
        a reader that observes the stamp observes the payload)."""
        dt, reason, gcell, src = cand
        try:
            code = DT_REASONS.index(reason)
        except ValueError:
            raise CommError(
                f"unencodable dt reason {reason!r}; expected one of "
                f"{DT_REASONS}"
            ) from None
        cell = self._dt[self.rank, row]
        cell[1] = dt
        cell[2] = float(code)
        cell[3] = float(gcell)
        cell[4] = float(src)
        cell[0] = float(g)

    def _read_dt_cell(self, rank: int, row: int) -> tuple:
        cell = self._dt[rank, row]
        return (float(cell[1]), DT_REASONS[int(cell[2])],
                int(cell[3]), int(cell[4]))

    def _reduce_dt(self, candidates: List[Candidate]) -> Candidate:
        """Binomial-tree combining reduction over shared cells (both
        modes) — same topology and combine key as TyphonComms, so a
        processes run's dt stream and CommStats match the threads
        backend exactly.  O(log P) hops on the critical path."""
        dt, reason, cell = min(candidates, key=lambda c: c[0])
        gcell = int(self.sub.cell_global[cell]) if cell >= 0 else -1
        self._dt_gen += 1
        g = self._dt_gen
        best = (dt, reason, gcell, self.rank)
        hops = 0
        for child in tree_children(self.rank, self.size):
            self._spin(
                lambda c=child: self._dt[c, 0, 0] >= g,
                f"dt candidate from child rank {child} (gen {g})",
            )
            entry = self._read_dt_cell(child, 0)
            best = min(best, entry, key=lambda c: (c[0], c[3]))
            hops += 1
        if self.rank == 0:
            result = best
        else:
            self._write_dt_cell(0, g, best)
            parent = tree_parent(self.rank)
            self._spin(
                lambda: self._dt[parent, 1, 0] >= g,
                f"dt result from parent rank {parent} (gen {g})",
            )
            result = self._read_dt_cell(parent, 1)
        self._write_dt_cell(1, g, result)
        self.stats.reductions += 1
        self.stats.dt_reductions += 1
        self.stats.dt_hops += hops
        self.stats.account(DT_REDUCE_VALUES)
        return (result[0], result[1], result[2])

    def allreduce_max(self, value: float) -> float:
        """Global maximum of a scalar across ranks."""
        with self._span("typhon.allreduce_max"):
            result = self._root_reduce(float(value), max)
        self.stats.reductions += 1
        self.stats.account(1)
        self._phase += 1
        return float(result)

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global sum of a small vector across ranks."""
        return self._allreduce_combine(
            values, np.add, "typhon.allreduce_sum")

    def allreduce_min(self, values: np.ndarray) -> np.ndarray:
        """Element-wise global minimum of a small vector across ranks."""
        return self._allreduce_combine(
            values, np.minimum, "typhon.allreduce_min")

    def _allreduce_combine(self, values: np.ndarray, op,
                           span_name: str) -> np.ndarray:
        # Ascending-rank left fold — the same fold TyphonComms performs
        # in shared slots — so threads and processes runs stay
        # bit-identical down to the diagnostics stream.
        def combine(entries):
            result = np.array(entries[0], dtype=np.float64)
            for entry in entries[1:]:
                result = op(result, entry)
            return result

        with self._span(span_name):
            result = self._root_reduce(
                np.array(values, dtype=np.float64), combine)
        self.stats.reductions += 1
        self.stats.account(result.size)
        self._phase += 1
        return result

    def _root_reduce(self, mine, combine):
        """Gather every rank's value at rank 0 (ascending rank order,
        so tie-breaks are deterministic), combine, broadcast back."""
        ctx = self.ctx
        if self.rank == 0:
            entries = [mine]
            for r in range(1, self.size):
                entries.append(ctx.recv(ctx.root_conns[r]))
            result = combine(entries)
            for r in range(1, self.size):
                ctx.send(ctx.root_conns[r], result)
            return result
        conn = ctx.leaf_conns[self.rank]
        ctx.send(conn, mine)
        return ctx.recv(conn)

    # ------------------------------------------------------------------
    def owned_cell_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.owned_cell_mask

    # ------------------------------------------------------------------
    # cell-field halo (the distributed ALE remap)
    # ------------------------------------------------------------------
    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Refresh the ghost-cell rows of per-cell arrays from their
        owner ranks (every rank must pass the same array list)."""
        with self._span("typhon.exchange_cell_arrays"):
            self._exchange_cell_arrays(*arrays)

    def _exchange_cell_arrays(self, *arrays: np.ndarray) -> None:
        if self.mode == "overlap":
            self._post_cell_arrays(*arrays)
            self._complete_cell_arrays(*arrays)
            return
        # Packed path: all cell fields coalesce into one block per
        # neighbour, one sync.
        sec = self.plan.cell
        sec.pack(self._my_region("cell", self._phase & 1), arrays)
        self.ctx.sync()  # every rank's ghost-cell block staged
        self._unpack_cell_arrays(arrays, self._phase & 1)
        self._phase += 1

    def _unpack_cell_arrays(self, arrays, parity: int) -> None:
        sec = self.plan.cell
        widths = _widths(arrays)
        for src_rank, local_idx in self.sub.recv_cells.items():
            blocks = sec.peer_blocks(
                src_rank, self._peer_region(src_rank, "cell", parity),
                widths
            )
            nvalues = 0
            for mine, block in zip(arrays, blocks):
                mine[local_idx] = block
                nvalues += block.size
            self.stats.account(nvalues)
        self.stats.halo_exchanges += 1

    def post_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Start a ghost-cell refresh (overlap mode): pack and publish
        this rank's owned-cell blocks."""
        with self._span("typhon.post_cell_arrays"):
            self._post_cell_arrays(*arrays)

    def _post_cell_arrays(self, *arrays: np.ndarray) -> None:
        self._post_section("cell", arrays)

    def complete_cell_arrays(self, *arrays: np.ndarray) -> None:
        """Finish a posted ghost-cell refresh (pass the same arrays)."""
        with self._span("typhon.complete_cell_arrays"):
            self._complete_cell_arrays(*arrays)

    def _complete_cell_arrays(self, *arrays: np.ndarray) -> None:
        k = self._begin_complete("cell")
        self._unpack_cell_arrays(arrays, k & 1)
        self._end_complete("cell", k)

    def exchange_cell_fields(self, state) -> None:
        """Refresh ghost thermodynamics and masses before a remap."""
        self.exchange_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def post_cell_fields(self, state) -> None:
        """Start the ghost thermodynamic/mass refresh (overlap mode)."""
        self.post_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def complete_cell_fields(self, state) -> None:
        """Finish the posted ghost thermodynamic/mass refresh."""
        self.complete_cell_arrays(
            state.rho, state.e, state.cell_mass, state.corner_mass
        )

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_sides()

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]:
        return self.sub.physical_boundary_mask


def _state_from_payload(rc: _ProcessRunContext, rank: int,
                        fields: Dict[str, np.ndarray]):
    """Parent side: rebuild one rank's final local state from its
    result-queue payload (the packed path — a pickle round-trip of
    float64 arrays is exact, so bit-identity is preserved)."""
    state = local_state(rc.subdomains[rank], rc.setup.state)
    for name, _, _ in STATE_FIELDS:
        setattr(state, name, fields[name])
    state.invalidate_node_mass()
    return state


def _rank_main(rc: _ProcessRunContext, rank: int) -> None:
    """Entry point of one rank process (runs in the forked child)."""
    try:
        rc.close_foreign_pipe_ends(rank)
        sub = rc.subdomains[rank]
        state = local_state(sub, rc.setup.state)
        tracer = None
        if rc.trace:
            from ...telemetry.spans import Tracer

            tracer = Tracer(rank=rank, epoch_ns=rc.epoch_ns)
        comms = ProcessComms(rc, sub, tracer=tracer, plan=rc.plans[rank],
                             mode=rc.comm_mode)
        timers = TimerRegistry()
        timers.tracer = tracer
        probe = rc.build_probe(rank, cell_global=sub.cell_global)
        hydro = Hydro(state, rc.setup.table, rc.setup.controls,
                      timers=timers, comms=comms, probe=probe)
        board = rc.heartbeat_board()
        hydro.observers.append(Heartbeat(board, rank))
        series = None
        if rank == 0 and rc.collect_steps:
            from ...telemetry.report import StepSeries

            series = StepSeries()
            hydro.observers.append(series)
        hydro.run(max_steps=rc.max_steps)
        # Collective end-of-run point: every rank is past its last
        # staging read before anyone tears its mailbox views down.
        rc.sync()
        # Halo-sized mailboxes cannot carry the final state; ship it
        # over the result queue (one pickle at end of run).
        final_state = {
            name: np.ascontiguousarray(getattr(hydro.state, name))
            for name, _, _ in STATE_FIELDS
        }
        timers.tracer = None  # tracer spans travel separately
        rc.results.put((rank, {
            "nstep": hydro.nstep,
            "time": hydro.time,
            "timers": timers,
            "spans": tracer.spans if tracer is not None else [],
            "comm": comms.stats.as_dict(),
            "state": final_state,
            "step_rows": series.rows if series is not None else None,
            "metrics_rows": probe.rows if probe is not None else None,
            "metrics": probe.registry if probe is not None else None,
        }))
        # Release the shared-segment views before interpreter teardown:
        # an mmap cannot close while a numpy export is alive.
        comms.drop_segment_views()
        board.array = None
    except BaseException as exc:
        rc.errors.put((
            rank, type(exc).__name__, str(exc), traceback.format_exc(),
        ))
        rc.abort()
        os._exit(1)


class ProcessesBackend:
    """Launch one forked process per rank; marshal everything back."""

    name = "processes"

    # ------------------------------------------------------------------
    def prepare(self, driver) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise BookLeafError(
                "the processes backend needs the 'fork' start method "
                "(Linux/macOS); use backend='threads' here"
            )
        # Rank objects live in the children; the driver keeps only the
        # decomposition (and, after run, the marshalled BackendRun).

    # ------------------------------------------------------------------
    def execute(self, driver, max_steps: Optional[int] = None) -> BackendRun:
        rc = _ProcessRunContext(driver, max_steps)
        try:
            return self._execute(driver, rc)
        finally:
            rc.cleanup()

    def _execute(self, driver, rc: _ProcessRunContext) -> BackendRun:
        ctx = rc._ctx
        procs = [
            ctx.Process(target=_rank_main, args=(rc, r), name=f"rank{r}")
            for r in range(rc.size)
        ]
        for p in procs:
            p.start()
        # Parent's copies of the pipe ends are not used; close them so
        # fd accounting stays tight (children hold their own copies).
        for conn in list(rc.root_conns.values()) + list(rc.leaf_conns.values()):
            conn.close()

        results: Dict[int, dict] = {}
        error_records: List[Tuple[int, str, str, str]] = []
        dead: Dict[int, int] = {}
        board = rc.heartbeat_board()
        timeout = rc.watchdog_timeout
        stalled: Dict[int, dict] = {}

        def drain() -> None:
            while True:
                try:
                    rank, payload = rc.results.get_nowait()
                except Exception:
                    break
                results[rank] = payload
            while not rc.errors.empty():
                error_records.append(rc.errors.get())

        while True:
            drain()
            for r, p in enumerate(procs):
                if (not p.is_alive() and p.exitcode not in (0, None)
                        and r not in dead):
                    dead[r] = p.exitcode
                    rc.abort()  # free peers stuck in barriers/pipes
                    if timeout is not None and r not in stalled:
                        # A dead rank has definitively stopped beating;
                        # the watchdog reports it immediately rather
                        # than waiting out the timeout.
                        stalled[r] = board.last_seen()[r]
            if timeout is not None and not stalled:
                for r, seen in board.stalled(timeout).items():
                    if r not in results:
                        stalled[r] = seen
                if stalled:
                    rc.abort()  # diagnose the hang instead of sharing it
            if len(results) == rc.size:
                break
            if all(not p.is_alive() for p in procs):
                break
            if stalled and all(
                not procs[r].is_alive()
                for r in range(rc.size) if r not in stalled
            ):
                break  # only wedged ranks left; terminate them below
            time.sleep(0.01)
        for p in procs:
            p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        drain()

        if stalled:
            message = stall_message(stalled, board, timeout)
            warnings.warn(message, StalledRankWarning)
        board.array = None

        failures: List[Tuple[int, BaseException]] = []
        for rank, etype, emsg, tb in error_records:
            if etype == "CommError":
                failures.append((rank, CommError(emsg)))
            else:
                failures.append(
                    (rank, RemoteRankError(f"[{etype}] {emsg}", tb))
                )
        reported = {rank for rank, _ in failures}
        for rank, exitcode in sorted(dead.items()):
            if rank not in reported and rank not in results:
                failures.append((rank, RemoteRankError(
                    f"rank process terminated abnormally "
                    f"(exitcode {exitcode})"
                )))
        if stalled and all(isinstance(exc, CommError) for _, exc in failures):
            # The wedge itself never raised (that is what a wedge is);
            # the peers only carry the secondary abort cascade — the
            # watchdog verdict is the primary failure.
            raise BookLeafError(f"run aborted: {message}")
        if failures:
            rank, exc = pick_primary_failure(failures)
            raise_rank_failure(rank, exc)
        if len(results) != rc.size:
            missing = sorted(set(range(rc.size)) - set(results))
            raise BookLeafError(
                f"ranks {missing} exited without reporting results"
            )

        steps = {results[r]["nstep"] for r in range(rc.size)}
        times = {round(results[r]["time"], 14) for r in range(rc.size)}
        if len(steps) != 1 or len(times) != 1:
            raise BookLeafError(
                f"ranks desynchronised: steps={steps} times={times}"
            )
        states = [
            _state_from_payload(rc, r, results[r]["state"])
            for r in range(rc.size)
        ]
        return BackendRun(
            backend=self.name,
            nranks=rc.size,
            nstep=results[0]["nstep"],
            time=results[0]["time"],
            states=states,
            timers=[results[r]["timers"] for r in range(rc.size)],
            spans=[results[r]["spans"] for r in range(rc.size)],
            comm_per_rank=[results[r]["comm"] for r in range(rc.size)],
            step_rows=results[0]["step_rows"],
            metrics_rows=results[0].get("metrics_rows"),
            metrics=results[0].get("metrics"),
        )
