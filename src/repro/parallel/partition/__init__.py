"""Domain-decomposition partitioners: RCB and the spectral METIS substitute."""

from .interface import (
    METHODS,
    edge_cut,
    imbalance,
    interface_nodes,
    partition,
    validate_partition,
)
from .rcb import rcb_partition
from .spectral import adjacency_matrix, spectral_partition

__all__ = [
    "partition",
    "METHODS",
    "rcb_partition",
    "spectral_partition",
    "adjacency_matrix",
    "edge_cut",
    "imbalance",
    "interface_nodes",
    "validate_partition",
]
