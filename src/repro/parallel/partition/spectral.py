"""Spectral recursive bisection — the METIS substitute.

BookLeaf's second decomposition option is a hypergraph strategy via
METIS; METIS is unavailable offline, so we provide the textbook
graph-partitioning equivalent: recursive spectral bisection of the
cell-adjacency graph (split at the median of the Fiedler vector of the
graph Laplacian), followed by a greedy Kernighan–Lin-style boundary
refinement that moves cells across the cut while it reduces the edge
cut and preserves balance.  The interface matches RCB (cells ->
part ids), and DESIGN.md documents the substitution.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ...mesh.topology import QuadMesh
from ...utils.errors import PartitionError


def adjacency_matrix(mesh: QuadMesh) -> sp.csr_matrix:
    """Symmetric cell-adjacency matrix from the interior face list."""
    pairs = mesh.cell_adjacency_pairs()
    i = np.concatenate([pairs[:, 0], pairs[:, 1]])
    j = np.concatenate([pairs[:, 1], pairs[:, 0]])
    data = np.ones(i.size)
    return sp.csr_matrix((data, (i, j)), shape=(mesh.ncell, mesh.ncell))


def _fiedler_split(adj: sp.csr_matrix, idx: np.ndarray, frac: float
                   ) -> np.ndarray:
    """Boolean mask over ``idx``: True for the low side of the split."""
    sub = adj[idx][:, idx]
    n = idx.size
    if n <= 2:
        mask = np.zeros(n, dtype=bool)
        mask[: max(int(round(frac * n)), 1)] = True
        return mask
    degree = np.asarray(sub.sum(axis=1)).ravel()
    lap = sp.diags(degree) - sub
    try:
        # Smallest two eigenpairs of the Laplacian; the second is the
        # Fiedler vector.  Shift-invert around 0 keeps it fast.
        _, vecs = spla.eigsh(lap.astype(np.float64), k=2, sigma=-1e-3,
                             which="LM", tol=1e-6)
        fiedler = vecs[:, 1]
    except Exception:
        # Dense fallback for tiny or ill-conditioned subgraphs.
        w, v = np.linalg.eigh(lap.toarray())
        fiedler = v[:, np.argsort(w)[1]]
    order = np.argsort(fiedler, kind="stable")
    split = min(max(int(round(frac * n)), 1), n - 1)
    mask = np.zeros(n, dtype=bool)
    mask[order[:split]] = True
    return mask


def _refine(adj: sp.csr_matrix, idx: np.ndarray, mask: np.ndarray,
            frac: float, passes: int = 2) -> np.ndarray:
    """Greedy boundary refinement: flip cells whose gain is positive."""
    sub = adj[idx][:, idx].tocsr()
    n = idx.size
    lo_target = int(round(frac * n))
    slack = max(1, n // 20)
    for _ in range(passes):
        lo_size = int(mask.sum())
        indptr, indices = sub.indptr, sub.indices
        moved = 0
        # Gain of flipping i = (neighbours on other side) - (same side).
        for i in range(n):
            nbrs = indices[indptr[i]:indptr[i + 1]]
            if nbrs.size == 0:
                continue
            same = int((mask[nbrs] == mask[i]).sum())
            other = nbrs.size - same
            gain = other - same
            if gain <= 0:
                continue
            new_lo = lo_size + (1 if not mask[i] else -1)
            if abs(new_lo - lo_target) > slack:
                continue
            mask[i] = not mask[i]
            lo_size = new_lo
            moved += 1
        if moved == 0:
            break
    return mask


def spectral_partition(mesh: QuadMesh, nparts: int,
                       refine: bool = True) -> np.ndarray:
    """Partition the mesh's cells into ``nparts`` parts spectrally."""
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    if nparts > mesh.ncell:
        raise PartitionError(
            f"cannot split {mesh.ncell} cells into {nparts} parts"
        )
    adj = adjacency_matrix(mesh)
    part = np.zeros(mesh.ncell, dtype=np.int64)

    def recurse(idx: np.ndarray, k: int, base: int) -> None:
        if k == 1:
            part[idx] = base
            return
        k_lo = k // 2
        mask = _fiedler_split(adj, idx, k_lo / k)
        if refine:
            mask = _refine(adj, idx, mask, k_lo / k)
        recurse(idx[mask], k_lo, base)
        recurse(idx[~mask], k - k_lo, base + k_lo)

    recurse(np.arange(mesh.ncell), nparts, 0)
    return part
