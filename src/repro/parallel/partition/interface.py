"""Common partitioning interface and quality metrics.

``partition(mesh, nparts, method)`` dispatches to RCB (the paper's
simple strategy) or spectral bisection (the METIS-substitute hypergraph
strategy) and validates the result.  The metrics quantify what the
performance model needs: load imbalance and the communication surface
(edge cut, i.e. halo size).
"""

from __future__ import annotations

import numpy as np

from ...mesh.topology import QuadMesh
from ...utils.errors import PartitionError
from .rcb import rcb_partition
from .spectral import spectral_partition

METHODS = ("rcb", "spectral")


def partition(mesh: QuadMesh, nparts: int, method: str = "rcb") -> np.ndarray:
    """Partition cells into ``nparts`` parts; returns per-cell part ids."""
    if method == "rcb":
        xc, yc = mesh.cell_centroids()
        part = rcb_partition(xc, yc, nparts)
    elif method == "spectral":
        part = spectral_partition(mesh, nparts)
    else:
        raise PartitionError(
            f"unknown partition method {method!r}; available: {METHODS}"
        )
    validate_partition(part, nparts)
    return part


def validate_partition(part: np.ndarray, nparts: int) -> None:
    """Every part id in range and every part non-empty."""
    if part.min(initial=0) < 0 or part.max(initial=0) >= nparts:
        raise PartitionError("part ids out of range")
    counts = np.bincount(part, minlength=nparts)
    if np.any(counts == 0):
        empty = np.flatnonzero(counts == 0).tolist()
        raise PartitionError(f"empty parts: {empty}")


def edge_cut(mesh: QuadMesh, part: np.ndarray) -> int:
    """Number of interior faces whose two cells lie in different parts."""
    pairs = mesh.cell_adjacency_pairs()
    return int((part[pairs[:, 0]] != part[pairs[:, 1]]).sum())


def imbalance(part: np.ndarray, nparts: int) -> float:
    """max(part size) / mean(part size) − 1 (0 for perfect balance)."""
    counts = np.bincount(part, minlength=nparts)
    return float(counts.max() / counts.mean() - 1.0)


def interface_nodes(mesh: QuadMesh, part: np.ndarray) -> np.ndarray:
    """Global node ids incident to cells of more than one part."""
    owner_min = np.full(mesh.nnode, np.iinfo(np.int64).max, dtype=np.int64)
    owner_max = np.full(mesh.nnode, -1, dtype=np.int64)
    flat_nodes = mesh.cell_nodes.ravel()
    flat_part = np.repeat(part, 4)
    np.minimum.at(owner_min, flat_nodes, flat_part)
    np.maximum.at(owner_max, flat_nodes, flat_part)
    return np.flatnonzero(owner_min != owner_max)
