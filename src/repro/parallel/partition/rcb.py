"""Recursive coordinate bisection (RCB) — BookLeaf's simple partitioner.

Cells are split recursively at the weighted median of their centroid
coordinates along the longest extent of the current group, producing
``nparts`` compact, balanced parts.  Non-power-of-two part counts are
handled by splitting each group proportionally (k parts -> k//2 and
k - k//2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...utils.errors import PartitionError


def rcb_partition(xc: np.ndarray, yc: np.ndarray, nparts: int,
                  weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Partition points (cell centroids) into ``nparts`` parts.

    Returns an integer part id per point.  ``weights`` (default: unit)
    balances weighted load rather than counts.
    """
    xc = np.asarray(xc, dtype=np.float64)
    yc = np.asarray(yc, dtype=np.float64)
    n = xc.size
    if nparts < 1:
        raise PartitionError(f"nparts must be >= 1, got {nparts}")
    if nparts > n:
        raise PartitionError(f"cannot split {n} cells into {nparts} parts")
    if weights is None:
        weights = np.ones(n)
    part = np.zeros(n, dtype=np.int64)
    _bisect(xc, yc, weights, np.arange(n), nparts, 0, part)
    return part


def _bisect(xc, yc, w, idx, nparts, base, part) -> None:
    """Assign parts [base, base + nparts) to the cells in ``idx``."""
    if nparts == 1:
        part[idx] = base
        return
    n_lo = nparts // 2
    frac = n_lo / nparts
    x = xc[idx]
    y = yc[idx]
    # Split along the longer extent of this group's bounding box.
    along_x = (x.max() - x.min()) >= (y.max() - y.min())
    coord = x if along_x else y
    order = np.argsort(coord, kind="stable")
    cw = np.cumsum(w[idx][order])
    target = frac * cw[-1]
    # Split where the cumulative weight is closest to the target.
    split = int(np.argmin(np.abs(cw - target))) + 1
    split = min(max(split, 1), idx.size - 1)
    lo = idx[order[:split]]
    hi = idx[order[split:]]
    _bisect(xc, yc, w, lo, n_lo, base, part)
    _bisect(xc, yc, w, hi, nparts - n_lo, base + n_lo, part)
