"""The typed communication seam: ``CommEndpoint`` and ``CommBackend``.

The hydro kernels talk to *any* communication layer through exactly one
seam (docs/PARALLEL.md): the three per-step exchange points of the
Lagrangian step plus the cell-field/gradient halos of the distributed
remap.  Historically the seam was duck-typed — ``SerialComms`` and
``TyphonComms`` just happened to agree on method names — which let the
two drift apart silently.  This module makes the seam a formal, typed
API:

* :class:`CommEndpoint` — a :class:`typing.Protocol` describing one
  rank's endpoint (what a kernel may call on ``comms``).  Conforming
  implementations: :class:`~repro.core.comms.SerialComms` (alias
  ``NullComms``), :class:`~repro.parallel.typhon.TyphonComms` (rank
  threads) and :class:`~repro.parallel.backends.processes.ProcessComms`
  (rank processes over shared memory).
* :class:`CommBackend` — a Protocol for an execution backend: the
  object that launches every rank of a decomposed run, plugs a
  conforming endpoint into each rank's hydro loop and marshals the
  results back as a :class:`BackendRun`.
* :data:`SEAM_METHODS` — the seam's method table, used by
  ``tests/parallel/test_protocol.py`` to structurally verify that every
  implementation covers the *full* seam with compatible signatures (no
  more duck-typed drift).

Backends register themselves in :mod:`repro.parallel.backends`; the
supported selection surface is ``repro.api.RunConfig(backend=...)``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import (
    Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable,
)

import numpy as np

#: the full comms seam: method name -> positional parameter names
#: (``*`` marks a variadic positional).  The structural-conformance
#: test checks every implementation against this table.
SEAM_METHODS: Dict[str, Tuple[str, ...]] = {
    "exchange_kinematics": ("state",),
    "assemble_node_sums": ("state", "fx", "fy"),
    "complete_node_arrays": ("state", "*arrays"),
    "reduce_dt": ("candidates",),
    "allreduce_max": ("value",),
    "allreduce_sum": ("values",),
    "allreduce_min": ("values",),
    "owned_cell_mask": ("state",),
    "exchange_cell_arrays": ("*arrays",),
    "exchange_cell_fields": ("state",),
    "physical_boundary_sides": ("state",),
    "physical_boundary_side_mask": ("state",),
    "comm_plan": (),
    # -- split-phase (overlapped) exchange API -------------------------
    # ``post_*`` starts an exchange (packs the staging block and
    # publishes it to the neighbours), ``complete_*`` finishes it
    # (waits for the neighbours' posts, then scatters/folds).  The
    # kernels compute the interior partition between the two calls.
    # Only meaningful when ``overlap_enabled()`` is true; the serial
    # endpoint degrades them to no-ops and the packed endpoints reject
    # them, so kernels gate the split path on ``overlap_enabled()``.
    "overlap_enabled": (),
    "post_kinematics": ("state",),
    "complete_kinematics": ("state",),
    "post_node_sums": ("state", "*partials"),
    "complete_node_sums": ("state",),
    "post_cell_arrays": ("*arrays",),
    "complete_cell_arrays": ("*arrays",),
    "post_cell_fields": ("state",),
    "complete_cell_fields": ("state",),
}

#: the plan-aware internals of the *distributed* endpoints (the
#: methods a compiled :class:`~repro.parallel.commplan.CommPlan`
#: drives).  Not part of the kernel-facing seam — SerialComms has no
#: exchanges to pack — but TyphonComms and ProcessComms must keep
#: these signatures aligned or the packed/overlap branching drifts;
#: check with ``seam_violations(cls, table=PLAN_METHODS)``.
PLAN_METHODS: Dict[str, Tuple[str, ...]] = {
    "_exchange_kinematics": ("state",),
    "_complete_node_arrays": ("state", "*partials"),
    "_exchange_cell_arrays": ("*arrays",),
    "_reduce_dt": ("candidates",),
    "_post_kinematics": ("state",),
    "_complete_kinematics": ("state",),
    "_post_node_sums": ("state", "*partials"),
    "_complete_node_sums": ("state",),
    "_post_cell_arrays": ("*arrays",),
    "_complete_cell_arrays": ("*arrays",),
}

#: attributes every endpoint must expose (per-rank identity)
SEAM_ATTRIBUTES: Tuple[str, ...] = ("rank", "size")


@runtime_checkable
class CommEndpoint(Protocol):
    """One rank's communication endpoint (what kernels see as ``comms``).

    The Lagrangian step calls :meth:`exchange_kinematics`,
    :meth:`assemble_node_sums` and :meth:`reduce_dt` (one kinematic
    halo, one nodal-sum completion, one global reduction per step —
    paper Section IV-A); the distributed remap adds the cell-field and
    gradient halos plus the collective skip decision.  The live-metrics
    probe (docs/OBSERVABILITY.md) adds the two vector collectives
    :meth:`allreduce_sum` / :meth:`allreduce_min` for its global
    conservation sums and extrema — called only on sampled steps, and
    symmetrically on every rank (the sampling cadence is SPMD state).
    """

    rank: int
    size: int

    def exchange_kinematics(self, state) -> None: ...

    def assemble_node_sums(self, state, fx: np.ndarray, fy: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]: ...

    def complete_node_arrays(self, state, *arrays: np.ndarray
                             ) -> Tuple[np.ndarray, ...]: ...

    def reduce_dt(self, candidates): ...

    def allreduce_max(self, value: float) -> float: ...

    def allreduce_sum(self, values: np.ndarray) -> np.ndarray: ...

    def allreduce_min(self, values: np.ndarray) -> np.ndarray: ...

    def owned_cell_mask(self, state) -> Optional[np.ndarray]: ...

    def exchange_cell_arrays(self, *arrays: np.ndarray) -> None: ...

    def exchange_cell_fields(self, state) -> None: ...

    def physical_boundary_sides(self, state) -> Optional[np.ndarray]: ...

    def physical_boundary_side_mask(self, state) -> Optional[np.ndarray]: ...

    def comm_plan(self): ...

    def overlap_enabled(self) -> bool: ...

    def post_kinematics(self, state) -> None: ...

    def complete_kinematics(self, state) -> None: ...

    def post_node_sums(self, state, *partials: np.ndarray) -> None: ...

    def complete_node_sums(self, state) -> Tuple[np.ndarray, ...]: ...

    def post_cell_arrays(self, *arrays: np.ndarray) -> None: ...

    def complete_cell_arrays(self, *arrays: np.ndarray) -> None: ...

    def post_cell_fields(self, state) -> None: ...

    def complete_cell_fields(self, state) -> None: ...


@dataclass
class BackendRun:
    """What one backend execution hands back to the driver.

    Every backend — threads in one process, one process per rank —
    produces the same carrier, so the telemetry merge path, ``gather``
    and the run report are backend-agnostic.  Per-rank lists are in
    ascending rank order (the deterministic merge rule).
    """

    backend: str
    nranks: int
    nstep: int
    time: float
    #: each rank's final local state (live for threads, reconstructed
    #: from the shared segments for processes)
    states: List[Any]
    #: each rank's kernel timer registry
    timers: List[Any]
    #: each rank's trace spans (empty lists when tracing was off)
    spans: List[list]
    #: each rank's CommStats counters as dicts
    comm_per_rank: List[dict]
    #: rank 0's per-step time series (when step collection was on)
    step_rows: Optional[List[dict]] = None
    #: rank 0's recorded diagnostics samples (when live metrics were on)
    metrics_rows: Optional[List[dict]] = None
    #: rank 0's live :class:`~repro.metrics.registry.MetricsRegistry`
    metrics: Optional[Any] = None

    def comm_total(self) -> dict:
        total: Dict[str, int] = {}
        for entry in self.comm_per_rank:
            for key, value in entry.items():
                total[key] = total.get(key, 0) + value
        return total

    def merged_spans(self) -> list:
        """All ranks' spans, ascending rank order, per-rank order kept."""
        merged: list = []
        for stream in self.spans:
            merged.extend(stream)
        return merged


@runtime_checkable
class CommBackend(Protocol):
    """An execution backend for decomposed runs.

    ``prepare`` is called from ``DistributedHydro.__init__`` (build
    whatever per-rank machinery the backend keeps in the driver);
    ``execute`` launches all ranks, blocks to completion and returns a
    :class:`BackendRun`.  Failures anywhere must abort every rank and
    surface as one :class:`~repro.utils.errors.BookLeafError` carrying
    the failing rank and the original traceback.
    """

    name: str

    def prepare(self, driver) -> None: ...

    def execute(self, driver, max_steps: Optional[int] = None) -> BackendRun: ...


def seam_violations(cls, table: Optional[Dict[str, Tuple[str, ...]]] = None
                    ) -> List[str]:
    """Structural conformance check of a class against a method table
    (:data:`SEAM_METHODS` by default; pass :data:`PLAN_METHODS` to
    check the distributed endpoints' plan-aware internals).

    Returns a list of human-readable problems (empty = conforming):
    missing methods, missing variadic parameters, or positional
    parameter names that drifted from the table.
    """
    if table is None:
        table = SEAM_METHODS
    problems: List[str] = []
    for name, params in table.items():
        fn = getattr(cls, name, None)
        if fn is None or not callable(fn):
            problems.append(f"{cls.__name__}.{name} is missing")
            continue
        sig = inspect.signature(fn)
        positional = [
            p for p in sig.parameters.values()
            if p.name != "self" and p.kind in (
                p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD, p.VAR_POSITIONAL,
            )
        ]
        expected: List[Tuple[str, bool]] = [
            (p.lstrip("*"), p.startswith("*")) for p in params
        ]
        got = [(p.name, p.kind == p.VAR_POSITIONAL) for p in positional]
        if got != expected:
            problems.append(
                f"{cls.__name__}.{name} signature drifted: "
                f"expected {expected}, got {got}"
            )
    return problems
