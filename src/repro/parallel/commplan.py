"""Compiled communication plans — packed, coalesced halo messages.

The halo *schedules* (:class:`~repro.parallel.halo.Subdomain`) say which
values cross each rank pair; this module compiles them into a
:class:`CommPlan` per rank that says exactly **where every byte lives**
in a preallocated staging buffer, so the warm communication path makes
zero large allocations and one message per neighbour per exchange:

* the 4 kinematic fields (x, y, u, v) of one neighbour's ghost nodes
  coalesce into a single contiguous ``(4, n)`` block instead of four
  per-field fancy-indexed copies;
* the nodal-sum partials (3 fields in the Lagrangian acceleration,
  3–4 in the momentum remap) coalesce the same way — and only the
  *shared-node* values travel, never a full-array copy of the partial;
* the ALE cell fields pack into one block per neighbour with per-array
  widths (scalars and ``(n, 4)`` corner fields interleave).

A plan is pure layout: per peer, the local gather/scatter indices, the
block's base offset inside the owning rank's staging region, and the
region capacities.  Offsets are stored in *values per field* and scaled
by the live field count at pack time, so one compiled section serves
the 3-field and the 4-field nodal sums alike.  The backends supply the
storage — a :class:`~repro.perf.workspace.Workspace`-held array for the
``threads`` backend, a ``multiprocessing.shared_memory`` mailbox for
the ``processes`` backend — each **double-buffered** (two parity
halves) so an exchange needs a single barrier: rank A may start packing
exchange *k+1* while a slow rank B still reads A's exchange-*k* block,
because consecutive exchanges write opposite parity halves, and a
same-parity reuse (exchanges *k* and *k+2*) is separated by the
intervening exchange's barrier.

Packing is a pure reorder (gather on the sender, scatter/accumulate on
the receiver), so a packed run is **bit-identical** step for step;
``tests/parallel/test_commplan.py`` and ``test_overlap.py`` hold the
``packed`` and ``overlap`` modes to that.

For the overlapped (split-phase) mode the compiler also classifies the
rank's topology once, at compile time:

* ``halo_cells`` — local cells incident to at least one *received*
  kinematic halo node (their geometry depends on the exchange);
* ``interior_cells`` — every other cell, safe to compute while the
  halo is in flight;
* ``shared_union`` — the sorted union of all shared (force-sum) nodes,
  the strip a completion must re-fold in ascending rank order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .halo import Subdomain

_FLOAT_BYTES = 8

#: the kinematic halo always carries x, y, u, v
KIN_FIELDS = 4
#: the widest nodal-sum completion (the momentum remap's vol/mass/mom)
MAX_SUM_FIELDS = 4
#: the widest cell-field exchange: rho, e, cell_mass (width 1 each)
#: plus corner_mass (width 4) — the gradient halo is only 4 wide
MAX_CELL_WIDTH = 7

#: section names in staging-layout order
SECTIONS = ("kin", "nodesum", "cell")


def _widths(arrays: Sequence[np.ndarray]) -> Tuple[int, ...]:
    """Per-array trailing widths (1 for 1-D fields, ``shape[1]`` else)."""
    return tuple(1 if a.ndim == 1 else int(a.shape[1]) for a in arrays)


@dataclass
class PackSection:
    """One exchange type's packed layout for one rank.

    ``send_base``/``recv_base`` are offsets in *values per field*:
    multiply by the live total field width to get the double offset of
    a peer's block inside the (sender's) section region.  ``recv_base``
    is the sender's ``send_base`` for *this* rank — compiled in a
    second pass over all ranks, so a receiver can index straight into
    its peer's staging without any runtime negotiation.
    """

    name: str
    max_width: int
    send_peers: Tuple[int, ...] = ()
    send_idx: Dict[int, np.ndarray] = field(default_factory=dict)
    send_base: Dict[int, int] = field(default_factory=dict)
    send_total: int = 0
    recv_peers: Tuple[int, ...] = ()
    recv_idx: Dict[int, np.ndarray] = field(default_factory=dict)
    recv_base: Dict[int, int] = field(default_factory=dict)

    @property
    def capacity(self) -> int:
        """Region size in doubles (widest message this section packs)."""
        return self.max_width * self.send_total

    # ------------------------------------------------------------------
    def pack(self, region: np.ndarray,
             arrays: Sequence[np.ndarray]) -> None:
        """Gather every peer's block into this rank's section region."""
        widths = _widths(arrays)
        total = sum(widths)
        for peer in self.send_peers:
            idx = self.send_idx[peer]
            off = total * self.send_base[peer]
            for arr, w in zip(arrays, widths):
                n = idx.size * w
                chunk = region[off:off + n]
                if w == 1:
                    np.take(arr, idx, out=chunk)
                else:
                    np.take(arr, idx, axis=0, out=chunk.reshape(idx.size, w))
                off += n

    def peer_blocks(self, peer: int, peer_region: np.ndarray,
                    widths: Sequence[int]) -> List[np.ndarray]:
        """Views of the block ``peer`` packed *for this rank*, one per
        array, shaped ``(n,)`` or ``(n, w)`` to match the originals."""
        idx = self.recv_idx[peer]
        off = sum(widths) * self.recv_base[peer]
        views: List[np.ndarray] = []
        for w in widths:
            n = idx.size * w
            chunk = peer_region[off:off + n]
            views.append(chunk if w == 1 else chunk.reshape(idx.size, w))
            off += n
        return views


@dataclass
class CommPlan:
    """One rank's complete packed-exchange layout.

    The staging buffer is one flat float64 array of
    ``2 * doubles_per_parity`` doubles: two parity halves, each holding
    the kin | nodesum | cell regions back to back.
    """

    rank: int
    kin: PackSection
    nodesum: PackSection
    cell: PackSection
    #: compile-time interior/boundary split for the overlapped mode:
    #: cells whose nodes include >= 1 received halo node ...
    halo_cells: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: ... and the complement — safe to compute during halo transit
    interior_cells: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: sorted union of every peer's shared (force-sum) nodes — the
    #: strip `complete_node_sums` re-folds in ascending rank order
    shared_union: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: ``cell_nodes[halo_cells]``, precomputed — the boundary strip's
    #: corner gather re-runs every step, so the index rows are baked
    #: at compile time instead of re-sliced per exchange
    halo_nodes: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        offset = 0
        self._offsets: Dict[str, int] = {}
        for name in SECTIONS:
            self._offsets[name] = offset
            offset += self.section(name).capacity
        #: doubles of one parity half (kin + nodesum + cell regions)
        self.doubles_per_parity = offset

    def section(self, name: str) -> PackSection:
        return getattr(self, name)

    @property
    def total_doubles(self) -> int:
        """Staging size in doubles (both parity halves)."""
        return 2 * self.doubles_per_parity

    @property
    def nbytes(self) -> int:
        return self.total_doubles * _FLOAT_BYTES

    def staging_doubles(self) -> int:
        """Allocation size for the staging buffer (never zero — a
        neighbourless rank still needs a valid, if empty, segment)."""
        return max(self.total_doubles, 1)

    def region(self, staging: np.ndarray, name: str,
               parity: int) -> np.ndarray:
        """The ``name`` section's view inside ``staging`` at ``parity``."""
        base = parity * self.doubles_per_parity + self._offsets[name]
        return staging[base:base + self.section(name).capacity]

    def describe(self) -> dict:
        """JSON-ready layout summary (bench and doc input)."""
        out: Dict[str, object] = {"rank": self.rank,
                                  "staging_bytes": self.nbytes}
        for name in SECTIONS:
            sec = self.section(name)
            out[name] = {
                "peers": len(sec.send_peers),
                "values_per_field": sec.send_total,
                "capacity_doubles": sec.capacity,
            }
        return out


def classify_interior(sub: Subdomain) -> Tuple[np.ndarray, np.ndarray]:
    """``(interior_cells, halo_cells)`` of one subdomain.

    A cell is *halo* iff one of its nodes is refreshed by the kinematic
    exchange (``recv_nodes``) — its corner gather must wait for the
    completion.  Every other cell (including all owned-interior cells)
    can be gathered while the halo is still in flight.
    """
    recv_mask = np.zeros(sub.mesh.nnode, dtype=bool)
    for idx in sub.recv_nodes.values():
        recv_mask[idx] = True
    halo = recv_mask[sub.mesh.cell_nodes].any(axis=1)
    cells = np.arange(sub.mesh.ncell, dtype=np.int64)
    return cells[~halo], cells[halo]


def shared_union(sub: Subdomain) -> np.ndarray:
    """Sorted union of all peers' shared (force-sum) node ids."""
    if not sub.shared_nodes:
        return np.zeros(0, dtype=np.int64)
    return np.unique(np.concatenate(
        [np.asarray(v, dtype=np.int64) for v in sub.shared_nodes.values()]
    ))


def _compile_section(name: str, max_width: int,
                     send: Dict[int, np.ndarray],
                     recv: Dict[int, np.ndarray]) -> PackSection:
    sec = PackSection(name=name, max_width=max_width)
    sec.send_peers = tuple(sorted(send))
    base = 0
    for peer in sec.send_peers:
        idx = np.ascontiguousarray(send[peer])
        sec.send_idx[peer] = idx
        sec.send_base[peer] = base
        base += idx.size
    sec.send_total = base
    sec.recv_peers = tuple(sorted(recv))
    for peer in sec.recv_peers:
        sec.recv_idx[peer] = np.ascontiguousarray(recv[peer])
    return sec


def compile_plans(subdomains: List[Subdomain]) -> List[CommPlan]:
    """Compile every rank's :class:`CommPlan` from the halo schedules.

    Two passes: first each rank lays out its own send blocks (ascending
    peer order), then every receiver copies its peers' block bases so
    reads need no runtime offset exchange.  The nodal-sum section is
    symmetric — ``shared_nodes[peer]`` is both what this rank packs for
    ``peer`` and where it accumulates ``peer``'s contribution.
    """
    plans = []
    for sub in subdomains:
        interior, halo = classify_interior(sub)
        plans.append(CommPlan(
            rank=sub.rank,
            kin=_compile_section("kin", KIN_FIELDS,
                                 sub.send_nodes, sub.recv_nodes),
            nodesum=_compile_section("nodesum", MAX_SUM_FIELDS,
                                     sub.shared_nodes, sub.shared_nodes),
            cell=_compile_section("cell", MAX_CELL_WIDTH,
                                  sub.send_cells, sub.recv_cells),
            halo_cells=halo,
            interior_cells=interior,
            shared_union=shared_union(sub),
            halo_nodes=sub.mesh.cell_nodes[halo],
        ))
    for plan in plans:
        for name in SECTIONS:
            sec = plan.section(name)
            for peer in sec.recv_peers:
                sec.recv_base[peer] = \
                    plans[peer].section(name).send_base[plan.rank]
    return plans


def mailbox_ratio(subdomains: List[Subdomain],
                  plans: List[CommPlan]) -> dict:
    """Legacy full-array mailbox bytes vs. the packed plan's staging
    bytes, summed over ranks — the window-shrink headline number."""
    legacy = sum(
        (8 * sub.mesh.nnode + 15 * sub.mesh.ncell) * _FLOAT_BYTES
        for sub in subdomains
    )
    packed = sum(plan.staging_doubles() * _FLOAT_BYTES for plan in plans)
    return {
        "legacy_bytes": legacy,
        "packed_bytes": packed,
        "ratio": legacy / packed if packed else float("inf"),
    }
