"""The distributed substrate: decomposition, halos and simulated Typhon.

BookLeaf decomposes its mesh with RCB or METIS, stores ghost layers and
communicates through the Typhon library over MPI (paper Section III-A).
This package reproduces all of that with virtual in-process ranks; see
DESIGN.md for the substitution rationale.
"""

from .backends import available_backends, get_backend
from .distributed import DistributedHydro
from .halo import Subdomain, build_subdomains, local_state
from .interface import BackendRun, CommBackend, CommEndpoint
from .partition import edge_cut, imbalance, partition, rcb_partition, spectral_partition
from .typhon import CommStats, TyphonComms, TyphonContext

__all__ = [
    "DistributedHydro",
    "Subdomain",
    "build_subdomains",
    "local_state",
    "partition",
    "rcb_partition",
    "spectral_partition",
    "edge_cut",
    "imbalance",
    "CommStats",
    "TyphonComms",
    "TyphonContext",
    "CommEndpoint",
    "CommBackend",
    "BackendRun",
    "available_backends",
    "get_backend",
]
