"""Ensemble batching: N same-mesh runs through one ``(N, …)`` kernel pass.

The hot kernels are memory-bound at mini-app sizes; stacking N
independent simulations along a leading batch axis amortises every
kernel launch, index gather and Python-level step over N lanes and
turns the per-cell arithmetic into larger, better-pipelined array ops.
Lane 0 of an ensemble is bit-identical to the serial run — see
docs/PERFORMANCE.md ("Ensemble batching") and the CI gate.

Entry points: :func:`repro.api.run_ensemble` (or the ``run-ensemble``
CLI subcommand) for the config-driven surface;
:class:`EnsembleHydro` to embed the batched driver directly.
"""

from .driver import EnsembleHydro, run_ensemble
from .eos import EnsembleEos
from .state import EnsembleState

__all__ = ["EnsembleHydro", "EnsembleEos", "EnsembleState",
           "run_ensemble"]
