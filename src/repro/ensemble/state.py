"""Batched state — N same-mesh :class:`HydroState` lanes in one arena.

:class:`EnsembleState` stacks the per-lane fields into leading-axis
arrays — ``(N, nnode)`` nodal, ``(N, ncell)`` cell, ``(N, ncell, 4)``
corner — that every batched kernel consumes in one pass.  One mesh, one
boundary-condition object and one material layout are shared by all
lanes (that is the contract: an ensemble varies *state and controls*,
not topology).

Lane views (:meth:`lane_state`) rebuild a genuine :class:`HydroState`
whose fields are row views into the batch arrays, so per-lane
machinery — the ALE remapper, the diagnostics probe, the final-state
extraction — runs unchanged on one lane without copying.

Ragged retirement is by *compaction*: :meth:`compact` drops finished
rows with a fancy-index copy (``arr[keep]``), which preserves every
surviving lane's bits exactly.  Masking finished lanes in place (e.g.
``dt = 0``) is deliberately avoided — a zero dt turns ``0 · inf`` NaNs
loose in the timestep kernels.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.state import HydroState
from ..utils.errors import BookLeafError

#: HydroState fields batched per lane, by shape family
NODE_FIELDS = ("x", "y", "u", "v")
CELL_FIELDS = ("rho", "e", "p", "cs2", "q", "volume", "cell_mass")
CORNER_FIELDS = ("corner_mass", "corner_volume")


class EnsembleState:
    """N stacked lanes of one same-mesh problem."""

    def __init__(self, states: List[HydroState]):
        if not states:
            raise BookLeafError("an ensemble needs at least one lane")
        first = states[0]
        if first.bc.driver is not None:
            raise BookLeafError(
                "time-driven boundary conditions (bc.driver) cannot be "
                "batched — lanes advance at different times, so the "
                "shared prescribed-velocity arrays would be wrong; run "
                "this problem through repro.api.run instead"
            )
        for i, st in enumerate(states[1:], start=1):
            if st.mesh.ncell != first.mesh.ncell \
                    or st.mesh.nnode != first.mesh.nnode \
                    or not np.array_equal(st.mesh.cell_nodes,
                                          first.mesh.cell_nodes):
                raise BookLeafError(
                    f"ensemble lane {i} has a different mesh topology; "
                    "all lanes must share one mesh"
                )
            if not np.array_equal(st.mat, first.mat):
                raise BookLeafError(
                    f"ensemble lane {i} has a different material layout"
                )
            if not (np.array_equal(st.bc.flags, first.bc.flags)
                    and np.array_equal(st.bc.ux, first.bc.ux)
                    and np.array_equal(st.bc.uy, first.bc.uy)):
                raise BookLeafError(
                    f"ensemble lane {i} has different boundary conditions"
                )
        self.mesh = first.mesh
        self.bc = first.bc
        self.mat = first.mat.copy()
        for name in NODE_FIELDS + CELL_FIELDS + CORNER_FIELDS:
            setattr(self, name,
                    np.stack([getattr(st, name) for st in states]))
        self._node_mass: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return self.x.shape[0]

    def node_mass(self, scatter) -> np.ndarray:
        """Cached (N, nnode) nodal mass; ``scatter`` is the batched
        corner-to-node scatter callable (one shared plan)."""
        if self._node_mass is None:
            self._node_mass = scatter(self.corner_mass)
        return self._node_mass

    def invalidate_node_mass(self) -> None:
        """Corner masses changed (ALE remap) — drop the cache."""
        self._node_mass = None

    # ------------------------------------------------------------------
    def lane_state(self, i: int) -> HydroState:
        """A :class:`HydroState` whose fields are row views of lane i.

        Mutating the view's arrays *in place* mutates the batch; code
        that rebinds fields (the ALE update) must be followed by
        :meth:`absorb_lane` to copy the rebound arrays back.
        """
        return HydroState(
            mesh=self.mesh,
            x=self.x[i], y=self.y[i], u=self.u[i], v=self.v[i],
            rho=self.rho[i], e=self.e[i], p=self.p[i], cs2=self.cs2[i],
            q=self.q[i], volume=self.volume[i],
            cell_mass=self.cell_mass[i],
            corner_mass=self.corner_mass[i],
            corner_volume=self.corner_volume[i],
            mat=self.mat, bc=self.bc,
        )

    def absorb_lane(self, i: int, st: HydroState) -> None:
        """Copy a lane state's (possibly rebound) fields back into row i."""
        for name in NODE_FIELDS + CELL_FIELDS + CORNER_FIELDS:
            # Unconditional row copy: a no-op when the field is still
            # the row view, a commit when the remapper rebound it.
            getattr(self, name)[i] = getattr(st, name)
        self.invalidate_node_mass()

    def extract_lane(self, i: int) -> HydroState:
        """A standalone copy of lane i (the final per-lane result)."""
        return self.lane_state(i).copy()

    # ------------------------------------------------------------------
    def compact(self, keep: np.ndarray) -> None:
        """Drop retired lanes: keep only rows where ``keep`` is True.

        A fancy-index copy per field — bit-preserving for survivors.
        """
        for name in NODE_FIELDS + CELL_FIELDS + CORNER_FIELDS:
            setattr(self, name, getattr(self, name)[keep])
        if self._node_mass is not None:
            self._node_mass = self._node_mass[keep]
