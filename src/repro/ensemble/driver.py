"""The ensemble driver: N same-mesh runs through one batched kernel pass.

:class:`EnsembleHydro` mirrors :class:`repro.core.hydro.Hydro`'s step
loop over a batch of lanes: every active lane shares one pass through
the batched kernels per step, each at its *own* dt (per-lane CFL — the
dt enters the lagstep as an ``(N, 1)`` broadcast column).  Lanes finish
at different times; a finished lane is *retired* — its final state is
extracted and the batch arrays are compacted so the remaining lanes
keep running in a dense block (no masked dead rows, no ``0 · inf``
hazards).

The correctness contract is strict: lane ``i`` of the ensemble is
bit-identical — state arrays, step count, dt sequence, diagnostics
records — to the same problem run through the serial driver.  Kernels
stay in the serial association per lane (:mod:`repro.ensemble.kernels`)
and the loop bookkeeping here stays in Python-float scalar arithmetic
exactly like ``Hydro``; CI gates this on Noh and Sod.

:func:`run_ensemble` is the embedding surface:
``run_ensemble([RunConfig(...), ...]) -> [RunResult, ...]``, one result
per lane (same order as the configs), each carrying the lane's final
state, per-lane diagnostics rows from its own probe, and the shared
ensemble timer registry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..api import RunConfig, RunResult
from ..core.comms import SerialComms
from ..core.hourglass import GAMMA
from ..perf.plans import MeshPlans
from ..perf.workspace import Workspace
from ..problems.base import ProblemSetup
from ..utils.errors import BookLeafError
from ..utils.timers import TimerRegistry
from . import kernels
from .eos import EnsembleEos
from .lagstep import EnsembleContext, lagstep_batch
from .state import EnsembleState
from .timestep import getdt_batch

#: controls that enter the *batched* array expressions and therefore
#: must be uniform across lanes (per-lane values would need per-lane
#: columns the kernels do not carry — cq1/cq2/γ and everything in
#: getdt's scalar stage already are per-lane)
UNIFORM_CONTROLS = ("viscosity_form", "use_limiter", "subzonal_kappa",
                    "filter_kappa", "dencut", "ccut")


class _LaneView:
    """Duck-typed ``Hydro`` stand-in for one lane.

    Carries exactly the attributes the diagnostics probe reads
    (``state``/``comms``/``nstep``/``time``/``dt``/``dt_reason``/
    ``dt_cell``), so :class:`DiagnosticsProbe` samples a lane without
    knowing it lives in a batch.
    """

    def __init__(self, state, comms, nstep, time, dt, dt_reason, dt_cell):
        self.state = state
        self.comms = comms
        self.nstep = nstep
        self.time = time
        self.dt = dt
        self.dt_reason = dt_reason
        self.dt_cell = dt_cell


class EnsembleHydro:
    """Time-marches N same-mesh problems through batched kernels.

    Parameters
    ----------
    setups:
        One :class:`ProblemSetup` per lane.  All lanes must share mesh
        topology, material layout and boundary conditions (checked by
        :class:`EnsembleState`) and the :data:`UNIFORM_CONTROLS`;
        initial state, γ, cq1/cq2 and all timestep controls may differ
        per lane.
    probes:
        Optional per-lane :class:`DiagnosticsProbe` list (None entries
        = no probe for that lane).
    timers:
        Shared :class:`TimerRegistry`; each region now times all lanes
        at once.
    max_steps:
        Optional per-lane step limits (None entries fall back to the
        lane's ``controls.max_steps``), mirroring ``Hydro.run``.
    plans:
        Optional precompiled :class:`~repro.perf.plans.MeshPlans` for
        the shared mesh (the fleet's artifact cache hands these in;
        they are pure index tables, so reuse is exact).
    resume:
        Optional per-lane resume records for lanes carried over from an
        earlier batch (the fleet's lane-refill path): each non-None
        entry is a dict with ``time``/``nstep``/``dt``/``dt_reason``/
        ``dt_cell`` — and, when present, a ``remapper`` key whose value
        (possibly None) *replaces* building one from the lane's setup
        state.  Carrying the original remapper is load-bearing: it
        holds the pristine initial coordinates as its Eulerian target,
        which a mid-flight state no longer has.
    """

    def __init__(self, setups: Sequence[ProblemSetup], *,
                 probes: Optional[Sequence] = None,
                 timers: Optional[TimerRegistry] = None,
                 max_steps: Optional[Sequence[Optional[int]]] = None,
                 xp=None, plans=None,
                 resume: Optional[Sequence[Optional[dict]]] = None):
        self.xp = xp if xp is not None else np
        self.setups = list(setups)
        if not self.setups:
            raise BookLeafError("an ensemble needs at least one lane")
        n = len(self.setups)
        self.controls_list = [s.controls.validated() for s in self.setups]
        first = self.controls_list[0]
        for i, c in enumerate(self.controls_list[1:], start=1):
            for name in UNIFORM_CONTROLS:
                if getattr(c, name) != getattr(first, name):
                    raise BookLeafError(
                        f"ensemble lane {i} differs in {name!r}; "
                        f"{', '.join(UNIFORM_CONTROLS)} must be uniform "
                        "across lanes (they enter the batched kernel "
                        "expressions)"
                    )
        self.timers = timers if timers is not None else TimerRegistry()
        self.comms = SerialComms()

        self.es = EnsembleState([s.state for s in self.setups])
        mesh = self.es.mesh
        self.cell_nodes = mesh.cell_nodes
        self.plans = plans if plans is not None else MeshPlans(mesh)
        self.ws = Workspace()
        self.eos = EnsembleEos([s.table for s in self.setups], xp=self.xp)
        xp = self.xp
        self.ctx = EnsembleContext(
            xp=xp,
            cell_nodes=self.cell_nodes,
            lim=(self.plans.lim_n_b1, self.plans.lim_n_b0,
                 self.plans.lim_n_f1, self.plans.lim_n_f0,
                 self.plans.lim_off),
            gamma=self.eos.gamma_like(self.es.mat),
            gamma_vec=xp.asarray(GAMMA),
            cq1_col=xp.asarray([[c.cq1] for c in self.controls_list]),
            cq2_col=xp.asarray([[c.cq2] for c in self.controls_list]),
            viscosity_form=first.viscosity_form,
            use_limiter=first.use_limiter,
            subzonal_kappa=first.subzonal_kappa,
            filter_kappa=first.filter_kappa,
            dencut=first.dencut,
            bc=self.es.bc,
            eos=self.eos,
            scatter=self.plans.scatter_to_nodes_batched,
            ws=self.ws,
        )

        if resume is None:
            resume = [None] * n
        elif len(resume) != n:
            raise BookLeafError(
                f"resume must carry one entry per lane "
                f"({len(resume)} != {n})"
            )
        self.resume = list(resume)

        # Per-lane ALE remappers, built from the *initial* lane states
        # exactly as the serial driver does — except carried lanes,
        # whose original remapper (with its pristine Eulerian target)
        # rides along in the resume record.
        self.remappers: List[Any] = []
        for i, (setup, controls) in enumerate(
                zip(self.setups, self.controls_list)):
            entry = self.resume[i]
            if entry is not None and "remapper" in entry:
                self.remappers.append(entry["remapper"])
            elif controls.ale_on:
                # Imported here to avoid an ensemble <-> ale cycle.
                from ..ale.driver import AleStep

                self.remappers.append(
                    AleStep.from_controls(setup.state, controls,
                                          setup.table))
            else:
                self.remappers.append(None)

        # Per-lane loop bookkeeping in Python floats — bit-for-bit the
        # same scalar arithmetic as the serial driver's attributes.
        if max_steps is None:
            max_steps = [None] * n
        self.limits = [
            ms if ms is not None else c.max_steps
            for ms, c in zip(max_steps, self.controls_list)
        ]
        self.times = [c.time_start for c in self.controls_list]
        self.nsteps = [0] * n
        self.dts = [c.dt_initial for c in self.controls_list]
        self.dt_reasons = ["initial"] * n
        self.dt_cells = [-1] * n
        # Carried lanes continue their clocks mid-flight.
        for i, entry in enumerate(self.resume):
            if entry is None:
                continue
            self.times[i] = entry["time"]
            self.nsteps[i] = entry["nstep"]
            self.dts[i] = entry["dt"]
            self.dt_reasons[i] = entry["dt_reason"]
            self.dt_cells[i] = entry["dt_cell"]
        self.probes = list(probes) if probes is not None else [None] * n
        #: batch row -> original lane index (shrinks with retirement)
        self.order = list(range(n))
        self.final_states = [None] * n
        #: committed-geometry product cache carried between steps
        #: (built by the corrector's getgeom; invalidated whenever the
        #: coordinates or the batch layout change behind its back)
        self._geom = None

    # ------------------------------------------------------------------
    @property
    def n_lanes(self) -> int:
        return len(self.setups)

    @property
    def n_active(self) -> int:
        return len(self.order)

    def _view(self, row: int, state=None) -> _LaneView:
        lane = self.order[row]
        return _LaneView(
            state if state is not None else self.es.lane_state(row),
            self.comms, self.nsteps[lane], self.times[lane],
            self.dts[lane], self.dt_reasons[lane], self.dt_cells[lane],
        )

    def _lane_done(self, lane: int) -> bool:
        controls = self.controls_list[lane]
        eps = 1e-12 * max(1.0, abs(controls.time_end))
        if self.times[lane] >= controls.time_end - eps:
            return True
        return self.nsteps[lane] >= self.limits[lane]

    def _retire_finished(self) -> None:
        keep_rows = [row for row, lane in enumerate(self.order)
                     if not self._lane_done(lane)]
        if len(keep_rows) == len(self.order):
            return
        for row, lane in enumerate(self.order):
            if self._lane_done(lane):
                final = self.es.extract_lane(row)
                self.final_states[lane] = final
                probe = self.probes[lane]
                if probe is not None:
                    probe.finish(self._view(row, state=final))
        if keep_rows:
            keep = np.zeros(len(self.order), dtype=bool)
            keep[keep_rows] = True
            self.es.compact(keep)
            self.ctx.compact(keep)
            self.eos.compact(keep)
        self._geom = None               # batch rows moved under the cache
        self.order = [self.order[row] for row in keep_rows]

    def _advance_once(self) -> None:
        xp = self.xp
        active = self.order
        # The step's shared caches: velocity products (dt fields + both
        # viscosity passes + predictor energy all read the committed
        # u/v) and the committed geometry's products (carried over from
        # the previous corrector when the coordinates haven't moved).
        vc = kernels.velocity_edge_cache(
            xp, self.cell_nodes, self.es.u, self.es.v)
        geom = self._geom
        if geom is None:
            geom = kernels.build_geom(
                xp, self.cell_nodes, self.es.x, self.es.y,
                check=False)
        # "First step" is a per-lane condition: a refilled batch mixes
        # fresh lanes (serial drivers take dt_initial without running
        # getdt at all on step 0) with carried mid-flight lanes.  An
        # all-fresh batch skips getdt entirely — the historic special
        # case; a mixed batch runs getdt for everyone and overrides the
        # fresh lanes' candidates, which is bitwise the same for both
        # populations (per-lane candidates are independent).
        fresh = [self.nsteps[lane] == 0 for lane in active]
        if all(fresh):
            cands = []
            for lane in active:
                controls = self.controls_list[lane]
                remaining = controls.time_end - self.times[lane]
                cands.append((min(controls.dt_initial, remaining),
                              "initial", -1))
        else:
            with self.timers.region("getdt"):
                cands = getdt_batch(
                    xp, self.es, geom, vc,
                    [self.controls_list[lane] for lane in active],
                    [self.dts[lane] for lane in active],
                    [self.times[lane] for lane in active],
                )
            for row, lane in enumerate(active):
                if fresh[row]:
                    controls = self.controls_list[lane]
                    remaining = controls.time_end - self.times[lane]
                    cands[row] = (min(controls.dt_initial, remaining),
                                  "initial", -1)
        for row, lane in enumerate(active):
            (self.dts[lane], self.dt_reasons[lane],
             self.dt_cells[lane]) = cands[row]

        dt_col = xp.asarray([[c[0]] for c in cands])
        self._geom = lagstep_batch(self.es, self.ctx, dt_col,
                                   self.timers,
                                   time=self.times[active[0]],
                                   vc=vc, geom=geom)

        # ALE remap, per lane on its row view — the remapper is serial
        # code (it rebinds state arrays), so each due lane round-trips
        # through lane_state/absorb_lane.
        for row, lane in enumerate(active):
            remapper = self.remappers[lane]
            if remapper is None:
                continue
            controls = self.controls_list[lane]
            if (self.nsteps[lane] + 1) % controls.ale_every != 0:
                continue
            with self.timers.region("alestep", cat="phase"):
                lane_state = self.es.lane_state(row)
                remapper.apply(lane_state, self.dts[lane], self.timers,
                               comms=self.comms)
                self.es.absorb_lane(row, lane_state)
                self._geom = None       # remap moved the coordinates

        for row, lane in enumerate(active):
            self.times[lane] += self.dts[lane]
            self.nsteps[lane] += 1
            probe = self.probes[lane]
            if probe is not None:
                probe.on_step(self._view(row))

    def begin(self) -> None:
        """Record every lane's probe baseline (idempotent per probe —
        carried lanes keep their original drift reference)."""
        for row in range(len(self.order)):
            probe = self.probes[self.order[row]]
            if probe is not None:
                probe.begin(self._view(row))

    def advance(self) -> List[int]:
        """One scheduler turn: retire finished lanes, then step the
        rest once.  Returns the lane indices retired this call (their
        final states are in ``final_states``); an empty ``order``
        afterwards means the batch is drained.  This is the fleet's
        refill seam — after retirements the caller may abandon this
        instance and rebuild a wider batch from the still-active lanes
        (:meth:`extract_active`) plus fresh queued configs.
        """
        before = list(self.order)
        self._retire_finished()
        active = set(self.order)
        retired = [lane for lane in before if lane not in active]
        if self.order:
            self._advance_once()
        return retired

    def extract_active(self) -> List[dict]:
        """Resume records for every still-active lane, in batch-row
        order: the lane index, a standalone copy of its current state,
        its clocks, its remapper and its probe — everything a rebuilt
        batch needs to continue the lane bit-identically."""
        out = []
        for row, lane in enumerate(self.order):
            out.append({
                "lane": lane,
                "state": self.es.extract_lane(row),
                "time": self.times[lane],
                "nstep": self.nsteps[lane],
                "dt": self.dts[lane],
                "dt_reason": self.dt_reasons[lane],
                "dt_cell": self.dt_cells[lane],
                "remapper": self.remappers[lane],
                "probe": self.probes[lane],
            })
        return out

    def run(self) -> "EnsembleHydro":
        """March every lane to its end time (or step limit)."""
        self.begin()
        while self.order:
            self._retire_finished()
            if not self.order:
                break
            self._advance_once()
        return self


# ----------------------------------------------------------------------
# the embedding surface
# ----------------------------------------------------------------------
def run_ensemble(configs: Sequence[RunConfig], *,
                 control_overrides: Optional[
                     Sequence[Optional[Dict[str, Any]]]] = None
                 ) -> List[RunResult]:
    """Run N serial configs as one batched ensemble; one result per lane.

    Every config must describe a serial run (``nranks=1``, backend
    ``auto``/``serial``) and all lanes must share mesh topology.
    ``control_overrides`` optionally gives one dict of
    :class:`HydroControls` field overrides per lane (how the CLI routes
    ``--sweep cq1=...`` values); ``None`` entries leave the lane's deck/
    problem defaults untouched.

    Per-lane ``metrics`` paths get each lane its own NDJSON stream —
    give distinct paths (the CLI suffixes ``.laneN``) or later lanes
    overwrite earlier ones.

    Since the fleet redesign this is a compatibility shim over the
    shared batch executor (:func:`repro.fleet.batch.run_ensemble_jobs`)
    — the same code path ``repro.api.submit`` schedules through — so
    results now carry ``lane`` provenance.
    """
    # Imported lazily: fleet sits above the ensemble layer.
    from ..fleet.batch import make_jobs, run_ensemble_jobs

    return run_ensemble_jobs(make_jobs(configs, control_overrides))
